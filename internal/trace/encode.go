package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fomodel/internal/isa"
)

// Binary trace format:
//
//	magic   [4]byte  "FOT1"
//	nameLen uint16   length of the workload name
//	name    []byte
//	count   uint64   number of instructions
//	count × record:
//	  pc    uint64
//	  addr  uint64
//	  class uint8
//	  flags uint8    bit0 = taken
//	  dest  int16
//	  src1  int16
//	  src2  int16
//
// All integers are little-endian. The format exists so traces can be
// generated once (cmd/fosim -dump) and replayed across many experiments.

var magic = [4]byte{'F', 'O', 'T', '1'}

const recordSize = 8 + 8 + 1 + 1 + 2 + 2 + 2

// maxInstrs bounds any count field read from an encoded stream; a forged
// header can never demand an unreasonable allocation.
const maxInstrs = 1 << 31

// Write encodes the trace to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(t.Name)))
	if _, err := bw.Write(hdr[0:2]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return fmt.Errorf("trace: write name: %w", err)
	}
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(t.Instrs)))
	if _, err := bw.Write(hdr[0:8]); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	var rec [recordSize]byte
	for i := range t.Instrs {
		encodeRecord(&rec, &t.Instrs[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

func encodeRecord(rec *[recordSize]byte, in *Instruction) {
	binary.LittleEndian.PutUint64(rec[0:8], in.PC)
	binary.LittleEndian.PutUint64(rec[8:16], in.Addr)
	rec[16] = uint8(in.Class)
	var flags uint8
	if in.Taken {
		flags |= 1
	}
	rec[17] = flags
	binary.LittleEndian.PutUint16(rec[18:20], uint16(in.Dest))
	binary.LittleEndian.PutUint16(rec[20:22], uint16(in.Src1))
	binary.LittleEndian.PutUint16(rec[22:24], uint16(in.Src2))
}

// Read decodes a trace previously written with Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	var hdr [10]byte
	if _, err := io.ReadFull(br, hdr[0:2]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[0:2]))
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: read name: %w", err)
	}
	if _, err := io.ReadFull(br, hdr[0:8]); err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[0:8])
	if count > maxInstrs {
		return nil, fmt.Errorf("trace: unreasonable instruction count %d", count)
	}
	// Do not trust the header's count for the allocation: a forged header
	// could demand gigabytes. Grow with the records actually present; a
	// truncated stream fails at the first short read.
	initial := count
	if initial > 1<<20 {
		initial = 1 << 20
	}
	t := &Trace{Name: string(nameBuf), Instrs: make([]Instruction, 0, initial)}
	// Decode in bulk chunks rather than one ReadFull per record: the
	// per-record call overhead dominates decode time for daemon-sized
	// traces, and the chunk bound keeps the guard above meaningful — a
	// forged count still cannot force a huge up-front allocation.
	const chunkRecords = 1 << 14
	buf := make([]byte, 0, chunkRecords*recordSize)
	for done := uint64(0); done < count; {
		n := count - done
		if n > chunkRecords {
			n = chunkRecords
		}
		b := buf[:int(n)*recordSize]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", done, err)
		}
		base := len(t.Instrs)
		t.Instrs = append(t.Instrs, make([]Instruction, n)...)
		for i := 0; i < int(n); i++ {
			decodeRecord((*[recordSize]byte)(b[i*recordSize:]), &t.Instrs[base+i])
		}
		done += n
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Producer-link binary format, used for artifact-store payloads:
//
//	magic [4]byte "FOP1"
//	count uint64  number of links
//	count × record: src1 int32, src2 int32
//
// Little-endian throughout, like the trace format above.

var producersMagic = [4]byte{'F', 'O', 'P', '1'}

// EncodeProducers serializes producer links for the artifact store.
func EncodeProducers(prod []Producer) []byte {
	buf := make([]byte, 0, 4+8+8*len(prod))
	buf = append(buf, producersMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(prod)))
	for i := range prod {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(prod[i].Src1))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(prod[i].Src2))
	}
	return buf
}

// DecodeProducers deserializes producer links written by EncodeProducers,
// verifying the record count against the framing.
func DecodeProducers(data []byte) ([]Producer, error) {
	if len(data) < 12 || [4]byte(data[:4]) != producersMagic {
		return nil, fmt.Errorf("trace: bad producers header")
	}
	count := binary.LittleEndian.Uint64(data[4:12])
	if count > maxInstrs || uint64(len(data)) != 12+8*count {
		return nil, fmt.Errorf("trace: producers length mismatch (count %d, %d bytes)", count, len(data))
	}
	prod := make([]Producer, count)
	for i := range prod {
		off := 12 + 8*i
		prod[i].Src1 = int32(binary.LittleEndian.Uint32(data[off : off+4]))
		prod[i].Src2 = int32(binary.LittleEndian.Uint32(data[off+4 : off+8]))
	}
	return prod, nil
}

func decodeRecord(rec *[recordSize]byte, in *Instruction) {
	in.PC = binary.LittleEndian.Uint64(rec[0:8])
	in.Addr = binary.LittleEndian.Uint64(rec[8:16])
	in.Class = isa.Class(rec[16])
	in.Taken = rec[17]&1 != 0
	in.Dest = int16(binary.LittleEndian.Uint16(rec[18:20]))
	in.Src1 = int16(binary.LittleEndian.Uint16(rec[20:22]))
	in.Src2 = int16(binary.LittleEndian.Uint16(rec[22:24]))
}
