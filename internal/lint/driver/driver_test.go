package driver_test

import (
	"fmt"
	"strings"
	"testing"

	"fomodel/internal/lint/analysis"
	"fomodel/internal/lint/detrand"
	"fomodel/internal/lint/driver"
	"fomodel/internal/lint/load"
)

// runSuppressFixture runs detrand alone over the suppression fixture.
func runSuppressFixture(t *testing.T) []driver.Diagnostic {
	t.Helper()
	pkg, err := load.Dir("testdata/src/suppress", "fomodel/internal/uarch")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run([]*load.Package{pkg}, []*analysis.Analyzer{detrand.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestSuppressionPath pins the whole //folint:allow contract on one
// fixture: annotated violations pass (comment-above and trailing
// forms), the unannotated twin fails, a stale annotation is reported
// as unused, a reason-less annotation is reported, and an annotation
// naming an analyzer outside the run neither suppresses nor counts as
// stale.
func TestSuppressionPath(t *testing.T) {
	diags := runSuppressFixture(t)

	type wantDiag struct {
		analyzer string
		contains string
	}
	wants := []wantDiag{
		// unannotatedTwin's violation survives.
		{"detrand", "wall-clock read (time.Now)"},
		// stale's annotation is itself a finding.
		{driver.MetaAnalyzer, "unused folint:allow(detrand)"},
		// missingReason's annotation suppresses but is flagged for
		// having no reason.
		{driver.MetaAnalyzer, "needs a reason"},
		// otherAnalyzer's lockheld annotation does not cover detrand.
		{"detrand", "wall-clock read (time.Now)"},
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), render(diags))
	}
	// Diagnostics are position-sorted; match them to wants by
	// consuming in order.
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.contains) {
				diags = append(diags[:i], diags[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic containing %q; remaining:\n%s", w.analyzer, w.contains, render(diags))
		}
	}
	if len(diags) != 0 {
		t.Errorf("unexpected extra diagnostics:\n%s", render(diags))
	}
}

// TestSuppressedLinesAreSilent pins that neither annotated form leaks
// a diagnostic for its own line.
func TestSuppressedLinesAreSilent(t *testing.T) {
	for _, d := range runSuppressFixture(t) {
		if d.Analyzer != "detrand" {
			continue
		}
		// The two surviving detrand findings are in unannotatedTwin
		// and otherAnalyzer; both are below line 20 of the fixture's
		// annotated functions. Identify leaks by checking that no
		// finding lands on a line that carries an allow(detrand).
		if d.Pos.Line <= 18 {
			t.Errorf("suppressed line %d still reported: %s", d.Pos.Line, d.Message)
		}
	}
}

func render(diags []driver.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
