// Custom workloads: the model is only as interesting as the programs you
// can feed it. This example clones a built-in profile, turns it into a
// pathological pointer-chaser (every load depends on the previous load —
// no memory-level parallelism), round-trips it through the JSON profile
// format that cmd/fosim and cmd/traceinfo accept with -profile, and shows
// how the IW characteristic and the model react.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fomodel/internal/core"
	"fomodel/internal/iw"
	"fomodel/internal/stats"
	"fomodel/internal/workload"
)

func main() {
	base, err := workload.ByName("mcf")
	if err != nil {
		log.Fatal(err)
	}

	chaser := base
	chaser.Name = "chaser"
	// Tight dependence chains: every source comes from the immediately
	// preceding instructions.
	chaser.NoDepFrac = 0.02
	chaser.DepShortFrac = 0.98
	chaser.DepShortMean = 1.2
	chaser.TwoSrcFrac = 0.1

	// Round-trip through the JSON format the CLIs accept.
	dir, err := os.MkdirTemp("", "fomodel-custom")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "chaser.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.WriteProfile(f, chaser); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("profile written to %s (usable as: go run ./cmd/fosim -profile <file>)\n\n", path)

	for _, prof := range []workload.Profile{base, chaser} {
		g, err := workload.NewGenerator(prof, 1)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := g.Generate(150000)
		if err != nil {
			log.Fatal(err)
		}
		points, err := iw.Characteristic(tr, iw.DefaultWindows(), iw.Options{})
		if err != nil {
			log.Fatal(err)
		}
		law, err := iw.Fit(points)
		if err != nil {
			log.Fatal(err)
		}
		scfg := stats.DefaultConfig()
		scfg.Warmup = true
		sum, err := stats.Analyze(tr, scfg)
		if err != nil {
			log.Fatal(err)
		}
		machine := core.DefaultMachine()
		in, err := core.InputsFromCurve(law, points, machine.WindowSize, sum)
		if err != nil {
			log.Fatal(err)
		}
		est, err := machine.Estimate(in, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s alpha %.2f  beta %.2f  L %.2f  →  steady IPC %.2f, modeled CPI %.3f\n",
			prof.Name, law.Alpha, law.Beta, sum.AvgLatency, est.SteadyIPC, est.CPI)
	}
	fmt.Println("\ntightening the dependence chains collapses beta — the window stops helping,")
	fmt.Println("the steady state sinks, and every miss-event transient rides on a slower curve.")
}
