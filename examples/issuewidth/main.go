// Issue width study: the paper's §6.2 analysis of what branch prediction
// must deliver for wide issue to pay off. Two results, both straight from
// the analytical model:
//
//   - Fig. 18: to keep the same fraction of time issuing near peak after
//     doubling the issue width, the number of instructions between branch
//     mispredictions must roughly quadruple — prediction accuracy must
//     improve as the *square* of the width.
//   - Fig. 19: with a typical misprediction distance of 100 instructions,
//     an 8-wide machine barely ramps past an issue rate of 6 before the
//     next misprediction arrives.
//
// Run with:
//
//	go run ./examples/issuewidth
package main

import (
	"fmt"
	"log"
	"strings"

	"fomodel/internal/core"
)

func main() {
	fractions := []float64{0.10, 0.20, 0.30, 0.40, 0.50}
	const depth = 5

	fmt.Println("Fig. 18 — instructions between mispredictions required to spend a given")
	fmt.Println("fraction of time within 12.5% of the issue width:")
	fmt.Printf("%12s", "width:")
	widths := []int{4, 8, 16}
	for _, w := range widths {
		fmt.Printf("%10d", w)
	}
	fmt.Println()
	reqs := map[int][]core.WidthRequirement{}
	for _, w := range widths {
		r, err := core.IssueWidthStudy(w, depth, fractions)
		if err != nil {
			log.Fatal(err)
		}
		reqs[w] = r
	}
	for i, f := range fractions {
		fmt.Printf("%10.0f%%:", 100*f)
		for _, w := range widths {
			fmt.Printf("%10.0f", reqs[w][i].InstrBetweenMispredicts)
		}
		fmt.Println()
	}
	mid := len(fractions) / 2
	fmt.Printf("\n4→8 ratio %.1f×, 8→16 ratio %.1f× — the quadratic law.\n\n",
		reqs[8][mid].InstrBetweenMispredicts/reqs[4][mid].InstrBetweenMispredicts,
		reqs[16][mid].InstrBetweenMispredicts/reqs[8][mid].InstrBetweenMispredicts)

	fmt.Println("Fig. 19 — per-cycle issue rate between two mispredictions 100 instructions apart:")
	for _, w := range []int{2, 3, 4, 8} {
		curve := core.IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: float64(w)}
		pts := curve.RampIssueTrace(depth, 100)
		var sb strings.Builder
		peak := 0.0
		glyphs := []rune(" ▁▂▃▄▅▆▇█")
		for _, p := range pts {
			g := int(p.Issue / 8 * float64(len(glyphs)-1))
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			sb.WriteRune(glyphs[g])
			if p.Issue > peak {
				peak = p.Issue
			}
		}
		fmt.Printf("  width %d (%2d cycles, peak %.2f): %s\n", w, len(pts), peak, sb.String())
	}
	fmt.Println("\nwider machines finish the 100 instructions sooner but never reach their width.")
}
