// The same drops outside the error-critical packages: not errdrop's
// business (the experiments engine reports errors through its own
// report types).
package experiments

import "encoding/json"

func marshalDrop(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}
