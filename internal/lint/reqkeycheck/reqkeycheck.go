// Package reqkeycheck guards the canonical-key contract between the
// daemon and the proxy (PR 7): every response-cache key and every
// routing decision derived from request fields must flow through
// internal/reqkey. The whole cache-aware topology rests on the two
// sides producing the same string for the same request — a hand-rolled
// fmt.Sprintf key in a handler and a subtly different one in the
// router is exactly the drift the shared package exists to make
// impossible, so this analyzer makes the hand-rolled form illegal in
// the serving packages.
//
// Mechanically, it looks for string-building expressions — fmt.Sprintf
// and friends, strings.Join, and + concatenation of non-constant
// strings — in "key positions":
//
//   - assignments to variables or fields whose name ends in "key",
//   - arguments to parameters whose name ends in "key", and
//   - return values of functions whose name ends in "Key".
//
// Values produced by internal/reqkey (or passed through untouched)
// are fine; building one by hand is the finding.
package reqkeycheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fomodel/internal/lint/analysis"
)

// Packages scopes the analyzer to the sides of the key contract.
var Packages = map[string]bool{
	"fomodel/internal/server":   true,
	"fomodel/internal/router":   true,
	"fomodel/internal/registry": true,
}

// Analyzer is the reqkeycheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "reqkeycheck",
	Doc:  "require cache/routing keys to be derived via internal/reqkey, not hand-rolled string building",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		// stack holds the path of nodes from the file to the current
		// one, so a return statement resolves to its *innermost*
		// enclosing function — a literal's return is not the named
		// function's return.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ValueSpec:
				checkValueSpec(pass, n)
			case *ast.CallExpr:
				checkCallArgs(pass, n)
			case *ast.KeyValueExpr:
				checkFieldInit(pass, n)
			case *ast.ReturnStmt:
				if fn := enclosingFuncDecl(stack); fn != nil {
					checkReturn(pass, fn, n)
				}
			}
			return true
		})
	}
	return nil
}

// enclosingFuncDecl returns the innermost enclosing function only
// when it is a named declaration; returns inside literals are not
// judged by the outer function's name.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.FuncDecl:
			return fn
		}
	}
	return nil
}

// keyName reports whether an identifier names a key.
func keyName(name string) bool {
	return strings.HasSuffix(strings.ToLower(name), "key")
}

func checkAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i, lhs := range asg.Lhs {
		name := ""
		switch l := lhs.(type) {
		case *ast.Ident:
			name = l.Name
		case *ast.SelectorExpr:
			name = l.Sel.Name
		}
		if keyName(name) {
			checkKeyExpr(pass, asg.Rhs[i], "assigned to "+name)
		}
	}
}

func checkValueSpec(pass *analysis.Pass, spec *ast.ValueSpec) {
	if len(spec.Names) != len(spec.Values) {
		return
	}
	for i, n := range spec.Names {
		if keyName(n.Name) {
			checkKeyExpr(pass, spec.Values[i], "assigned to "+n.Name)
		}
	}
}

// checkCallArgs checks arguments against the callee's parameter
// names, which survive in export data.
func checkCallArgs(pass *analysis.Pass, call *ast.CallExpr) {
	f := analysis.Callee(pass.TypesInfo, call)
	if f == nil {
		return
	}
	sig := f.Type().(*types.Signature)
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			break
		}
		if keyName(sig.Params().At(pi).Name()) {
			checkKeyExpr(pass, arg, "passed as "+sig.Params().At(pi).Name()+" to "+f.Name())
		}
	}
}

func checkFieldInit(pass *analysis.Pass, kv *ast.KeyValueExpr) {
	if id, ok := kv.Key.(*ast.Ident); ok && keyName(id.Name) {
		checkKeyExpr(pass, kv.Value, "stored in field "+id.Name)
	}
}

func checkReturn(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if !strings.HasSuffix(fn.Name.Name, "Key") && !strings.HasSuffix(fn.Name.Name, "key") {
		return
	}
	for _, r := range ret.Results {
		if tv, ok := pass.TypesInfo.Types[r]; ok && isString(tv.Type) {
			checkKeyExpr(pass, r, "returned from "+fn.Name.Name)
		}
	}
}

// checkKeyExpr flags hand-rolled string building in a key position.
func checkKeyExpr(pass *analysis.Pass, e ast.Expr, where string) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		info := pass.TypesInfo
		switch {
		case analysis.IsPkgFunc(info, e, "fmt", "Sprintf", "Sprint", "Sprintln", "Appendf"):
			pass.Reportf(e.Pos(), "hand-rolled key via fmt.%s %s: derive request keys through internal/reqkey so routing and caching cannot disagree",
				analysis.Callee(info, e).Name(), where)
		case analysis.IsPkgFunc(info, e, "strings", "Join"):
			pass.Reportf(e.Pos(), "hand-rolled key via strings.Join %s: derive request keys through internal/reqkey so routing and caching cannot disagree", where)
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD && isString(pass.TypesInfo.Types[e].Type) && !allConstant(pass, e) {
			pass.Reportf(e.Pos(), "hand-rolled key via string concatenation %s: derive request keys through internal/reqkey so routing and caching cannot disagree", where)
		}
	}
}

// allConstant reports whether every leaf of a + chain is a constant;
// concatenating constants is formatting, not key derivation.
func allConstant(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ADD {
		return allConstant(pass, b.X) && allConstant(pass, b.Y)
	}
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
