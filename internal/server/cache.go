package server

import (
	"container/list"
	"fmt"
	"sync"

	"fomodel/internal/metrics"
)

// respCache is the daemon's canonical-request response cache: finished
// response bodies keyed by the canonicalized request, bounded LRU, with
// single-flight admission — concurrent requests for the same key block
// on one computation and share its bytes. It layers on top of the
// simulator's prep cache: a response hit skips everything, a response
// miss still reuses cached classification passes underneath.
//
// Only successful (HTTP 200) responses are retained; errors and non-200
// statuses are delivered to every request already waiting on the entry
// (shared fate, like singleflight) and then forgotten, so a canceled or
// failed computation never poisons later requests. Three invariants the
// regression tests pin:
//
//   - Joining a computation that finishes in an error is shared fate,
//     not a cache hit: the hit counter only moves for retained 200s.
//   - A failing entry is removed from the map and the LRU list under
//     the lock *before* its waiters wake, so no request can find (or
//     MoveToFront) an entry that is about to be forgotten.
//   - Eviction only considers finished entries: an in-flight entry may
//     have requests blocked on it, and dropping it would strand a
//     duplicate computation, so capacity may be transiently exceeded by
//     the number of in-flight computations (bounded by the admission
//     limiter) but a waiter can never be detached from its entry.
type respCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*respEntry
	order   *list.List // front = most recently used

	hits, misses metrics.Counter
}

type respEntry struct {
	key  string
	elem *list.Element
	done chan struct{}

	// finished is set under the cache mutex once compute returned and
	// the entry's fate (retain or forget) was decided; eviction skips
	// entries that are not yet finished.
	finished bool

	status int
	body   []byte
	err    error
}

func newRespCache(capacity int) *respCache {
	return &respCache{
		cap:     capacity,
		entries: make(map[string]*respEntry),
		order:   list.New(),
	}
}

// Do returns the cached response for key, or runs compute once and
// caches its result. hit reports whether the response came from the
// cache or from joining an in-flight computation that succeeded — in
// both cases the request performed no work of its own and received
// retained bytes. Joining a computation that fails shares its outcome
// but is not counted as a hit. A panicking compute is converted into an
// error so waiters are released and the entry forgotten rather than
// blocking forever.
func (c *respCache) Do(key string, compute func() (status int, body []byte, err error)) (status int, body []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.done
		if e.err == nil && e.status == 200 {
			c.hits.Inc()
			return e.status, e.body, true, e.err
		}
		// Shared fate with a failed computation: the joiner performed no
		// work, but nothing was served "from the cache" either.
		return e.status, e.body, false, e.err
	}
	e := &respEntry{key: key, done: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	c.misses.Inc()
	status, body, err = safeCompute(compute)

	// Decide the entry's fate under the lock before waking waiters:
	// once done is closed, a lookup can never observe a failed entry,
	// because failures leave the map within this same critical section.
	c.mu.Lock()
	e.status, e.body, e.err = status, body, err
	e.finished = true
	if err != nil || status != 200 {
		if c.entries[key] == e {
			c.order.Remove(e.elem)
			delete(c.entries, key)
		}
	} else {
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.done)
	return status, body, false, err
}

// safeCompute runs compute, converting a panic into an error so a
// panicking handler computation degrades to a 500 instead of leaving
// cache waiters blocked forever (net/http would swallow the panic but
// nothing would ever close the entry's done channel).
func safeCompute(compute func() (int, []byte, error)) (status int, body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			status, body = 0, nil
			err = fmt.Errorf("internal panic: %v", r)
		}
	}()
	return compute()
}

// evictLocked trims the cache toward capacity, least-recently-used
// first, skipping entries whose computation has not finished: those may
// have requests blocked on their done channel, and every entry in the
// map must remain reachable until its fate is decided.
func (c *respCache) evictLocked() {
	for elem := c.order.Back(); elem != nil && len(c.entries) > c.cap; {
		prev := elem.Prev()
		e := elem.Value.(*respEntry)
		if e.finished {
			c.order.Remove(elem)
			delete(c.entries, e.key)
		}
		elem = prev
	}
}

// Len returns the number of cached entries (including in-flight ones).
func (c *respCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit and miss counts.
func (c *respCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
