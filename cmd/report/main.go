// Command report runs the reproduction battery and writes a markdown
// report with paper-vs-measured verdicts for every checked artifact.
//
// Usage:
//
//	report [-n instructions] [-seed seed] [-parallel workers] [-timing]
//	       [-o REPORT.md]
//
// With -o "" (default) the report goes to stdout. -parallel sizes the
// worker pool the experiments fan out across (0 = GOMAXPROCS, 1 =
// sequential); the generated report is identical at any setting. -timing
// prints a per-workload/per-experiment wall-time breakdown to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"fomodel/internal/experiments"
	"fomodel/internal/report"
)

func main() {
	n := flag.Int("n", 500000, "dynamic instructions per workload")
	seed := flag.Uint64("seed", 1, "workload generation seed")
	out := flag.String("o", "", "output file (default: stdout)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	timing := flag.Bool("timing", false, "print a timing breakdown to stderr")
	flag.Parse()

	suite := experiments.NewSuite(*n, *seed)
	suite.Workers = *parallel
	var timings *experiments.Timings
	if *timing {
		timings = &experiments.Timings{}
		suite.Timings = timings
	}
	r, err := report.Generate(suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := r.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	if *timing {
		fmt.Fprint(os.Stderr, timings.Render())
		workloads, sims := suite.Counters()
		fmt.Fprintf(os.Stderr, "counters: %d workload analyses, %d simulator runs\n", workloads, sims)
		hits, misses := suite.PrepCounters()
		fmt.Fprintf(os.Stderr, "prep cache: %d classification passes, %d reused\n", misses, hits)
	}
	fmt.Fprintf(os.Stderr, "report: %d/%d checks passed\n", r.Passed, r.Total)
	if r.Passed < r.Total {
		os.Exit(2)
	}
}
