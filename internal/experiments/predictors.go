package experiments

import (
	"fomodel/internal/core"
	"fomodel/internal/predictor"
	"fomodel/internal/stats"
	"fomodel/internal/uarch"
)

// PredictorPoint is one (predictor, benchmark) sample of the predictor
// sensitivity study.
type PredictorPoint struct {
	Predictor string
	Bench     string
	// MispredictRate is the functional mispredictions per branch.
	MispredictRate float64
	SimCPI         float64
	ModelCPI       float64
	Err            float64
}

// PredictorStudyResult validates that the model's branch term tracks the
// simulator as the predictor quality varies — the model consumes only the
// misprediction *rate*, so any predictor that the functional analyzer can
// simulate slots straight in.
type PredictorStudyResult struct {
	Points []PredictorPoint
	// MeanAbsErrByPredictor aggregates the model error per predictor.
	MeanAbsErrByPredictor map[string]float64
}

// PredictorStudy runs gshare (8K), bimodal (8K), and always-taken across
// three branch-sensitive benchmarks.
func PredictorStudy(s *Suite) (*PredictorStudyResult, error) {
	specs := []predictor.Spec{
		{Kind: predictor.KindGshare, IndexBits: 13},
		{Kind: predictor.KindBimodal, IndexBits: 13},
		{Kind: predictor.KindAlwaysTaken},
	}
	benches := []string{"gzip", "crafty", "twolf"}
	type predictorJob struct {
		bench string
		spec  predictor.Spec
	}
	var jobs []predictorJob
	for _, bench := range benches {
		for i := range specs {
			jobs = append(jobs, predictorJob{bench: bench, spec: specs[i]})
		}
	}
	res := &PredictorStudyResult{MeanAbsErrByPredictor: make(map[string]float64)}
	counts := make(map[string]int)
	err := RunOrdered(s.workers(), len(jobs), func(i int) (PredictorPoint, error) {
		var zero PredictorPoint
		bench, spec := jobs[i].bench, jobs[i].spec
		w, err := s.Workload(bench)
		if err != nil {
			return zero, err
		}
		sim, err := s.Simulate(w, func(c *uarch.Config) { c.Predictor = &spec })
		if err != nil {
			return zero, err
		}
		scfg := stats.DefaultConfig()
		scfg.Hierarchy = s.Sim.Hierarchy
		scfg.Latencies = s.Sim.Latencies
		scfg.ROBSize = s.Machine.ROBSize
		scfg.Warmup = s.Sim.Warmup
		scfg.Predictor = &spec
		sum, err := stats.Analyze(w.Trace, scfg)
		if err != nil {
			return zero, err
		}
		in, err := core.InputsFromCurve(w.Law, w.Points, s.Machine.WindowSize, sum)
		if err != nil {
			return zero, err
		}
		est, err := s.Machine.Estimate(in, modelOptions())
		if err != nil {
			return zero, err
		}
		return PredictorPoint{
			Predictor:      spec.Kind.String(),
			Bench:          bench,
			MispredictRate: sum.MispredictRate(),
			SimCPI:         sim.CPI(),
			ModelCPI:       est.CPI,
			Err:            relErr(est.CPI, sim.CPI()),
		}, nil
	}, func(_ int, pt PredictorPoint) error {
		res.Points = append(res.Points, pt)
		res.MeanAbsErrByPredictor[pt.Predictor] += abs(pt.Err)
		counts[pt.Predictor]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for name, total := range res.MeanAbsErrByPredictor {
		res.MeanAbsErrByPredictor[name] = total / float64(counts[name])
	}
	return res, nil
}

// tab builds the result table.
func (r *PredictorStudyResult) tab() *table {
	t := &table{
		title:  "Predictor sensitivity study: the model consumes only the misprediction rate",
		header: []string{"bench", "predictor", "misp/branch", "model CPI", "sim CPI", "err"},
	}
	for _, p := range r.Points {
		t.addRow(p.Bench, p.Predictor, pct(p.MispredictRate), f3(p.ModelCPI), f3(p.SimCPI), pct(p.Err))
	}
	for _, name := range []string{"gshare", "bimodal", "always-taken"} {
		if e, ok := r.MeanAbsErrByPredictor[name]; ok {
			t.addNote("mean |err| with %s: %s", name, pct(e))
		}
	}
	return t
}

// Render prints the table as aligned text.
func (r *PredictorStudyResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *PredictorStudyResult) CSV() string { return r.tab().CSV() }
