// Package server implements fomodeld, the model-serving daemon: a JSON
// API over HTTP that answers first-order CPI questions interactively —
// the whole point of the paper's model being that predictions need no
// detailed simulation. The computational surface (MachineSpec, Predict)
// is shared with the command-line tools, so a server response carries
// exactly the numbers the equivalent CLI invocation prints; the HTTP
// layer adds the production shape: a canonical-request response cache on
// top of the simulator's prep cache, per-request deadlines and
// cancellation, bounded in-flight admission with 429 shedding, graceful
// drain on shutdown, structured request logs, and /metrics counters.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"fomodel/internal/artifact"
	"fomodel/internal/cache"
	"fomodel/internal/core"
	"fomodel/internal/experiments"
	"fomodel/internal/isa"
	"fomodel/internal/iw"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/uarch"
)

// MachineSpec is the wire- and flag-facing description of a modeled
// machine: the paper's baseline with optional overrides. The zero value
// of every field means "baseline default", so an empty JSON object (or
// untouched CLI flags) selects the paper's machine.
type MachineSpec struct {
	// Width is the fetch/dispatch/issue/retire width (default 4).
	Width int `json:"width,omitempty"`
	// Depth is the front-end pipeline depth ΔP (default 5).
	Depth int `json:"depth,omitempty"`
	// Window is the issue-window size (default 48).
	Window int `json:"window,omitempty"`
	// ROB is the reorder-buffer size (default 128).
	ROB int `json:"rob,omitempty"`
	// Clusters partitions the issue window when > 1; Bypass is the
	// cross-cluster forwarding delay (default 1 when clustered).
	Clusters int `json:"clusters,omitempty"`
	Bypass   int `json:"bypass,omitempty"`
	// FetchBuffer adds fetch-buffer entries beyond the pipeline.
	FetchBuffer int `json:"fetch_buffer,omitempty"`
	// TLB adds the default 64-entry data TLB.
	TLB bool `json:"tlb,omitempty"`
	// FU limits per-class issue, e.g. "mul=1,load=2".
	FU string `json:"fu,omitempty"`
}

// withDefaults fills zero fields with the paper's baseline values.
func (m MachineSpec) withDefaults() MachineSpec {
	if m.Width == 0 {
		m.Width = 4
	}
	if m.Depth == 0 {
		m.Depth = 5
	}
	if m.Window == 0 {
		m.Window = 48
	}
	if m.ROB == 0 {
		m.ROB = 128
	}
	if m.Bypass == 0 {
		m.Bypass = 1
	}
	return m
}

// SimConfig builds the detailed-simulator configuration the spec
// describes.
func (m MachineSpec) SimConfig() (uarch.Config, error) {
	m = m.withDefaults()
	cfg := uarch.DefaultConfig()
	cfg.Width = m.Width
	cfg.FrontEndDepth = m.Depth
	cfg.WindowSize = m.Window
	cfg.ROBSize = m.ROB
	if m.Clusters > 1 {
		cfg.Clusters = m.Clusters
		cfg.BypassLatency = m.Bypass
	}
	cfg.FetchBufferSize = m.FetchBuffer
	if m.TLB {
		t := cache.DefaultTLB()
		cfg.TLB = &t
	}
	fu, err := ParseFUCounts(m.FU)
	if err != nil {
		return cfg, err
	}
	cfg.FUCounts = fu
	return cfg, nil
}

// Machine builds the analytical-model machine the spec describes.
func (m MachineSpec) Machine() (core.Machine, error) {
	m = m.withDefaults()
	mc := core.DefaultMachine()
	mc.Width = m.Width
	mc.FrontEndDepth = m.Depth
	mc.WindowSize = m.Window
	mc.ROBSize = m.ROB
	if m.Clusters > 1 {
		mc.Clusters = m.Clusters
		mc.BypassLatency = m.Bypass
	}
	mc.FetchBuffer = m.FetchBuffer
	if m.TLB {
		mc.TLBMissLatency = cache.DefaultTLB().MissLatency
	}
	fu, err := ParseFUCounts(m.FU)
	if err != nil {
		return mc, err
	}
	mc.FUCounts = fu
	return mc, nil
}

// ParseFUCounts parses "class=count" pairs ("mul=1,load=2") into a
// per-class issue-limit table.
func ParseFUCounts(s string) ([isa.NumClasses]int, error) {
	var fu [isa.NumClasses]int
	if s == "" {
		return fu, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, countStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fu, fmt.Errorf("server: malformed FU limit %q (want class=count)", pair)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return fu, fmt.Errorf("server: bad FU count in %q", pair)
		}
		found := false
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			if c.String() == name {
				fu[c] = count
				found = true
				break
			}
		}
		if !found {
			return fu, fmt.Errorf("server: unknown instruction class %q", name)
		}
	}
	return fu, nil
}

// ParseBranchMode resolves a branch-penalty mode name.
func ParseBranchMode(s string) (core.BranchPenaltyMode, error) {
	switch s {
	case "", "midpoint":
		return core.BranchMidpoint, nil
	case "isolated":
		return core.BranchIsolated, nil
	case "measured":
		return core.BranchMeasured, nil
	}
	return 0, fmt.Errorf("server: unknown branch mode %q (want midpoint, isolated, or measured)", s)
}

// PredictRecord is one workload's full model answer: the derived inputs,
// the itemized equation-(1) CPI stack, and optionally the detailed
// simulator's CPI for validation. It is the JSON shape of both the CLI's
// -json output and the daemon's /v1/predict response.
type PredictRecord struct {
	Bench    string        `json:"bench"`
	Inputs   core.Inputs   `json:"inputs"`
	Estimate core.Estimate `json:"estimate"`
	SimCPI   *float64      `json:"sim_cpi,omitempty"`
}

// predictStatsConfig is the functional-analysis configuration of the
// predict pipeline: the paper's defaults with warmup, the machine's ROB
// for the overlap statistics, and the simulator's TLB so the model's TLB
// inputs stay consistent.
func predictStatsConfig(machine core.Machine, ucfg uarch.Config) stats.Config {
	scfg := stats.DefaultConfig()
	scfg.Warmup = true
	scfg.ROBSize = machine.ROBSize
	scfg.TLB = ucfg.TLB
	return scfg
}

// Analyze computes the trace-analysis bundle the predict pipeline
// consumes — the IW characteristic and power-law fit (§3) plus the
// functional trace statistics (§5 step 5) — loading it from the artifact
// store when one is given and warm. A nil store always computes.
func Analyze(store *artifact.Store, t *trace.Trace, machine core.Machine, ucfg uarch.Config) (*experiments.AnalysisArtifact, error) {
	return experiments.ComputeAnalysis(store, t, iw.DefaultWindows(), predictStatsConfig(machine, ucfg))
}

// Predict runs the complete first-order pipeline for one trace: the IW
// characteristic and power-law fit (§3), the functional trace statistics
// (§5 step 5), and the model composition of equation (1) — plus, when
// withSim is set, a detailed simulator run for the model-error column.
// Simulator runs go through preps when non-nil, sharing classification
// passes across configs; a nil preps simulates directly. The CLI's
// fomodel tool and the daemon's /v1/predict handler both call this (the
// daemon via PredictWithAnalysis and its analysis caches), which is what
// makes their outputs byte-equivalent in content.
func Predict(t *trace.Trace, machine core.Machine, ucfg uarch.Config,
	mode core.BranchPenaltyMode, withSim bool, preps *uarch.PrepCache) (PredictRecord, error) {
	an, err := Analyze(nil, t, machine, ucfg)
	if err != nil {
		return PredictRecord{}, err
	}
	return PredictWithAnalysis(an, t, machine, ucfg, mode, withSim, preps)
}

// PredictWithAnalysis is the cheap tail of Predict: it composes the
// model answer from an already-computed (or store-served) analysis
// bundle. Callers that cache bundles by content key — the daemon — pay
// only this composition per request.
func PredictWithAnalysis(an *experiments.AnalysisArtifact, t *trace.Trace, machine core.Machine, ucfg uarch.Config,
	mode core.BranchPenaltyMode, withSim bool, preps *uarch.PrepCache) (PredictRecord, error) {
	inputs, err := core.InputsFromCurve(an.Law, an.Points, machine.WindowSize, an.Summary)
	if err != nil {
		return PredictRecord{}, err
	}
	est, err := machine.Estimate(inputs, core.Options{BranchMode: mode})
	if err != nil {
		return PredictRecord{}, err
	}
	rec := PredictRecord{Bench: t.Name, Inputs: inputs, Estimate: est}
	if withSim {
		r, err := preps.Simulate(t, ucfg)
		if err != nil {
			return PredictRecord{}, err
		}
		cpi := r.CPI()
		rec.SimCPI = &cpi
	}
	return rec, nil
}
