package workload

import (
	"strings"
	"testing"
)

func TestContentHashIgnoresName(t *testing.T) {
	a, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Name = "my-gzip-clone"
	if a.ContentHash() != b.ContentHash() {
		t.Error("renaming a profile changed its content hash")
	}
}

func TestContentHashSeesEveryGeneratorField(t *testing.T) {
	base, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ref := base.ContentHash()
	mutations := map[string]func(*Profile){
		"mix":              func(p *Profile) { p.Mix[0] += 0.01; p.Mix[1] -= 0.01 },
		"block_len_mean":   func(p *Profile) { p.BlockLenMean++ },
		"num_blocks":       func(p *Profile) { p.NumBlocks++ },
		"hot_blocks":       func(p *Profile) { p.HotBlocks++ },
		"hot_jump_frac":    func(p *Profile) { p.HotJumpFrac += 0.01 },
		"escape_frac":      func(p *Profile) { p.EscapeFrac += 0.001 },
		"hard_branch_frac": func(p *Profile) { p.HardBranchFrac += 0.01 },
		"hard_taken_prob":  func(p *Profile) { p.HardTakenProb += 0.01 },
		"easy_bias_lo":     func(p *Profile) { p.EasyBiasLo += 0.001 },
		"easy_bias_hi":     func(p *Profile) { p.EasyBiasHi -= 0.001 },
		"easy_taken_frac":  func(p *Profile) { p.EasyTakenFrac += 0.01 },
		"no_dep_frac":      func(p *Profile) { p.NoDepFrac += 0.01 },
		"dep_short_frac":   func(p *Profile) { p.DepShortFrac -= 0.01 },
		"dep_short_mean":   func(p *Profile) { p.DepShortMean += 0.1 },
		"dep_long_alpha":   func(p *Profile) { p.DepLongAlpha += 0.01 },
		"dep_long_max":     func(p *Profile) { p.DepLongMax++ },
		"two_src_frac":     func(p *Profile) { p.TwoSrcFrac += 0.01 },
		"data_hot_size":    func(p *Profile) { p.DataHotSize++ },
		"data_warm_size":   func(p *Profile) { p.DataWarmSize++ },
		"data_cold_size":   func(p *Profile) { p.DataColdSize++ },
		"data_hot_frac":    func(p *Profile) { p.DataHotFrac += 0.001 },
		"data_warm_frac":   func(p *Profile) { p.DataWarmFrac -= 0.001 },
		"cold_burst_mean":  func(p *Profile) { p.ColdBurstMean += 0.1 },
		"cold_stride":      func(p *Profile) { p.ColdStride++ },
	}
	for field, mutate := range mutations {
		p := base
		mutate(&p)
		if p.ContentHash() == ref {
			t.Errorf("mutating %s did not change the content hash", field)
		}
	}
}

func TestCustomContentIDDisjointFromBuiltins(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	custom := CustomContentID(p.ContentHash(), 1000, 7)
	if !strings.HasPrefix(custom, "custom:") {
		t.Errorf("custom content ID %q lacks the custom: prefix", custom)
	}
	if builtin := ContentID("gzip", 1000, 7); builtin == custom {
		t.Error("custom content ID collides with the built-in keyspace")
	}
	if again := CustomContentID(p.ContentHash(), 1000, 7); again != custom {
		t.Error("custom content ID not deterministic")
	}
	if other := CustomContentID(p.ContentHash(), 1000, 8); other == custom {
		t.Error("seed not part of the custom content ID")
	}
}

func TestGenerateProfileMatchesBuiltinGeneration(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = "renamed"
	tr, err := GenerateProfile(p, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "renamed" {
		t.Errorf("trace name %q, want the profile's name", tr.Name)
	}
	want := CustomContentID(p.ContentHash(), 2000, 3)
	if tr.ContentID != want {
		t.Errorf("trace content ID %q, want %q", tr.ContentID, want)
	}
	// Same numeric profile under the built-in path: instruction stream
	// must be identical, names and content IDs aside.
	ref, err := Generate("gzip", 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != ref.Len() {
		t.Fatalf("lengths differ: %d vs %d", tr.Len(), ref.Len())
	}
	for i := range tr.Instrs {
		if tr.Instrs[i] != ref.Instrs[i] {
			t.Fatalf("instruction %d differs between profile and built-in generation", i)
		}
	}
}
