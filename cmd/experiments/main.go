// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments [-n instructions] [-seed seed] [-list] [-csv] [-out dir]
//	            [experiment ...]
//
// With no arguments it runs every experiment in label order. -csv prints
// comma-separated values for tabular experiments (non-tabular ones fall
// back to text); -out writes each experiment's output to <dir>/<label>.txt
// (or .csv) instead of stdout.
package main

import (
	"fmt"
	"os"

	"fomodel/internal/cli"
)

func main() {
	if err := cli.Experiments(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
