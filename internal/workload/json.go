package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"fomodel/internal/isa"
)

// profileJSON is the on-disk form of a Profile. The instruction mix is
// keyed by class mnemonic so files stay readable and stable if class
// numbering ever changes.
type profileJSON struct {
	Name           string             `json:"name"`
	Mix            map[string]float64 `json:"mix"`
	BlockLenMean   float64            `json:"block_len_mean"`
	NumBlocks      int                `json:"num_blocks"`
	HotBlocks      int                `json:"hot_blocks"`
	HotJumpFrac    float64            `json:"hot_jump_frac"`
	EscapeFrac     float64            `json:"escape_frac"`
	HardBranchFrac float64            `json:"hard_branch_frac"`
	HardTakenProb  float64            `json:"hard_taken_prob"`
	EasyBiasLo     float64            `json:"easy_bias_lo"`
	EasyBiasHi     float64            `json:"easy_bias_hi"`
	EasyTakenFrac  float64            `json:"easy_taken_frac"`
	NoDepFrac      float64            `json:"no_dep_frac"`
	DepShortFrac   float64            `json:"dep_short_frac"`
	DepShortMean   float64            `json:"dep_short_mean"`
	DepLongAlpha   float64            `json:"dep_long_alpha"`
	DepLongMax     int                `json:"dep_long_max"`
	TwoSrcFrac     float64            `json:"two_src_frac"`
	DataHotSize    uint64             `json:"data_hot_size"`
	DataWarmSize   uint64             `json:"data_warm_size"`
	DataColdSize   uint64             `json:"data_cold_size"`
	DataHotFrac    float64            `json:"data_hot_frac"`
	DataWarmFrac   float64            `json:"data_warm_frac"`
	ColdBurstMean  float64            `json:"cold_burst_mean"`
	ColdStride     uint64             `json:"cold_stride"`
}

// classByName maps mix keys back to classes.
func classByName(name string) (isa.Class, bool) {
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the profile with mnemonic mix keys.
func (p Profile) MarshalJSON() ([]byte, error) {
	j := profileJSON{
		Name:           p.Name,
		Mix:            make(map[string]float64),
		BlockLenMean:   p.BlockLenMean,
		NumBlocks:      p.NumBlocks,
		HotBlocks:      p.HotBlocks,
		HotJumpFrac:    p.HotJumpFrac,
		EscapeFrac:     p.EscapeFrac,
		HardBranchFrac: p.HardBranchFrac,
		HardTakenProb:  p.HardTakenProb,
		EasyBiasLo:     p.EasyBiasLo,
		EasyBiasHi:     p.EasyBiasHi,
		EasyTakenFrac:  p.EasyTakenFrac,
		NoDepFrac:      p.NoDepFrac,
		DepShortFrac:   p.DepShortFrac,
		DepShortMean:   p.DepShortMean,
		DepLongAlpha:   p.DepLongAlpha,
		DepLongMax:     p.DepLongMax,
		TwoSrcFrac:     p.TwoSrcFrac,
		DataHotSize:    p.DataHotSize,
		DataWarmSize:   p.DataWarmSize,
		DataColdSize:   p.DataColdSize,
		DataHotFrac:    p.DataHotFrac,
		DataWarmFrac:   p.DataWarmFrac,
		ColdBurstMean:  p.ColdBurstMean,
		ColdStride:     p.ColdStride,
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if p.Mix[c] > 0 {
			j.Mix[c.String()] = p.Mix[c]
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a profile and rejects unknown mix keys; the
// resulting profile is NOT validated here — call Validate before use.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var j profileJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workload: decode profile: %w", err)
	}
	*p = Profile{
		Name:           j.Name,
		BlockLenMean:   j.BlockLenMean,
		NumBlocks:      j.NumBlocks,
		HotBlocks:      j.HotBlocks,
		HotJumpFrac:    j.HotJumpFrac,
		EscapeFrac:     j.EscapeFrac,
		HardBranchFrac: j.HardBranchFrac,
		HardTakenProb:  j.HardTakenProb,
		EasyBiasLo:     j.EasyBiasLo,
		EasyBiasHi:     j.EasyBiasHi,
		EasyTakenFrac:  j.EasyTakenFrac,
		NoDepFrac:      j.NoDepFrac,
		DepShortFrac:   j.DepShortFrac,
		DepShortMean:   j.DepShortMean,
		DepLongAlpha:   j.DepLongAlpha,
		DepLongMax:     j.DepLongMax,
		TwoSrcFrac:     j.TwoSrcFrac,
		DataHotSize:    j.DataHotSize,
		DataWarmSize:   j.DataWarmSize,
		DataColdSize:   j.DataColdSize,
		DataHotFrac:    j.DataHotFrac,
		DataWarmFrac:   j.DataWarmFrac,
		ColdBurstMean:  j.ColdBurstMean,
		ColdStride:     j.ColdStride,
	}
	// Iterate the mix in sorted order so a profile with several unknown
	// class names always reports the same one.
	names := make([]string, 0, len(j.Mix))
	for name := range j.Mix {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c, ok := classByName(name)
		if !ok {
			return fmt.Errorf("workload: unknown instruction class %q in mix", name)
		}
		p.Mix[c] = j.Mix[name]
	}
	return nil
}

// ReadProfile decodes and validates one profile from r.
func ReadProfile(r io.Reader) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, err
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// WriteProfile encodes p to w as indented JSON.
func WriteProfile(w io.Writer, p Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
