// Package lint assembles the fomodelvet analyzer suite: the custom
// go/analysis-style checkers that mechanically enforce this
// repository's own invariants — determinism of the pure model,
// canonical request keying, context and lock discipline, and error
// handling on the serving path. See DESIGN.md §7 for what each
// invariant protects and why.
package lint

import (
	"fomodel/internal/lint/analysis"
	"fomodel/internal/lint/ctxflow"
	"fomodel/internal/lint/detrand"
	"fomodel/internal/lint/errdrop"
	"fomodel/internal/lint/lockheld"
	"fomodel/internal/lint/reqkeycheck"
)

// Analyzers returns the full fomodelvet suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detrand.Analyzer,
		errdrop.Analyzer,
		lockheld.Analyzer,
		reqkeycheck.Analyzer,
	}
}
