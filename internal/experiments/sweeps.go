package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fomodel/internal/core"
	"fomodel/internal/stats"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

// SweepPoint is one (parameter value, benchmark) sample of a machine
// sweep.
type SweepPoint struct {
	Bench    string  `json:"bench"`
	Value    int     `json:"value"`
	SimCPI   float64 `json:"sim_cpi"`
	ModelCPI float64 `json:"model_cpi"`
	Err      float64 `json:"err"`
}

// SweepResult is a machine-parameter sweep validating the model across a
// dimension the paper varies analytically.
type SweepResult struct {
	Title      string       `json:"title"`
	Param      string       `json:"param"`
	Points     []SweepPoint `json:"points"`
	MeanAbsErr float64      `json:"mean_abs_err"`
}

// tab builds the result table.
func (r *SweepResult) tab() *table {
	t := &table{
		title:  r.Title,
		header: []string{"bench", r.Param, "model CPI", "sim CPI", "err"},
	}
	for _, p := range r.Points {
		t.addRow(p.Bench, fmt.Sprintf("%d", p.Value), f3(p.ModelCPI), f3(p.SimCPI), pct(p.Err))
	}
	t.addNote("mean |err| %s", pct(r.MeanAbsErr))
	return t
}

// Render prints the table as aligned text.
func (r *SweepResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *SweepResult) CSV() string { return r.tab().CSV() }

func (r *SweepResult) finish() {
	for _, p := range r.Points {
		r.MeanAbsErr += abs(p.Err)
	}
	if len(r.Points) > 0 {
		r.MeanAbsErr /= float64(len(r.Points))
	}
}

// SweepSpec describes a design-space sweep over one machine parameter:
// every benchmark in Benches is run (simulator and model) at every value
// in Values, with the suite's baseline machine supplying the remaining
// parameters. It is the request shape shared by the built-in sweep
// experiments and the serving daemon's /v1/sweep endpoint.
type SweepSpec struct {
	// Title heads the rendered table; empty derives one from Param and
	// Benches.
	Title string `json:"title,omitempty"`
	// Param names the swept dimension; see SweepParams.
	Param string `json:"param"`
	// Benches lists the workloads, in report order.
	Benches []string `json:"benches"`
	// Values lists the parameter values, in report order.
	Values []int `json:"values"`
}

// sweepCell computes one (benchmark, value) grid cell.
type sweepCell func(s *Suite, w *Workload, v int) (SweepPoint, error)

// sweepCells maps each supported parameter to its cell computation. The
// window and ROB cells re-derive the model inputs that depend on the
// swept size (the measured IW point and the equation-(8) miss grouping
// respectively); width and depth only move timing-side machine
// parameters, so the cached workload inputs are reused as-is.
var sweepCells = map[string]sweepCell{
	"window": windowCell,
	"rob":    robCell,
	"width":  widthCell,
	"depth":  depthCell,
}

// SweepParams returns the supported sweep parameter names, sorted.
func SweepParams() []string {
	params := make([]string, 0, len(sweepCells))
	for p := range sweepCells {
		params = append(params, p)
	}
	sort.Strings(params)
	return params
}

// Validate reports the first structural problem with the spec,
// accepting only built-in benchmark names. Servers with a workload
// registry use ValidateFor so registered names pass too.
func (sp SweepSpec) Validate() error { return sp.ValidateFor(nil) }

// ValidateFor is Validate against a suite's workload universe: a bench
// name is acceptable when it is built-in or when s resolves it through
// its registered-workload lookup. A nil s accepts built-ins only.
func (sp SweepSpec) ValidateFor(s *Suite) error {
	if _, ok := sweepCells[sp.Param]; !ok {
		return fmt.Errorf("experiments: unknown sweep parameter %q (known: %s)",
			sp.Param, strings.Join(SweepParams(), ", "))
	}
	if len(sp.Benches) == 0 {
		return fmt.Errorf("experiments: sweep needs at least one benchmark")
	}
	for _, b := range sp.Benches {
		if s.KnowsWorkload(b) {
			continue
		}
		if _, err := workload.ByName(b); err != nil {
			return err
		}
	}
	if len(sp.Values) == 0 {
		return fmt.Errorf("experiments: sweep needs at least one %s value", sp.Param)
	}
	for _, v := range sp.Values {
		if v < 1 {
			return fmt.Errorf("experiments: sweep value %d < 1", v)
		}
	}
	return nil
}

// Sweep runs the spec's bench × value grid concurrently (bounded by
// s.Workers) and collects the points in grid order, so any worker count
// produces an identical result. Cancelling ctx stops the sweep at the
// next grid cell; started cells run to completion but their results are
// discarded.
func Sweep(ctx context.Context, s *Suite, spec SweepSpec) (*SweepResult, error) {
	return SweepStream(ctx, s, spec, nil)
}

// SweepStream is Sweep with per-cell delivery: emit (when non-nil) is
// called on the calling goroutine, strictly in grid order, as each cell's
// point becomes available — the streaming surface the daemon's NDJSON
// sweep mode is built on. An emit error stops the sweep (no new cells are
// handed out) and is returned; cancelling ctx stops it at the next grid
// cell. The returned result is identical to Sweep's for the same spec.
func SweepStream(ctx context.Context, s *Suite, spec SweepSpec, emit func(SweepPoint) error) (*SweepResult, error) {
	if err := spec.ValidateFor(s); err != nil {
		return nil, err
	}
	title := spec.Title
	if title == "" {
		title = fmt.Sprintf("Design-space sweep: %s across %s",
			spec.Param, strings.Join(spec.Benches, ", "))
	}
	res := &SweepResult{Title: title, Param: spec.Param}
	cell := sweepCells[spec.Param]
	jobs := sweepGrid(spec.Benches, spec.Values)
	err := RunOrdered(s.workers(), len(jobs), func(i int) (SweepPoint, error) {
		if err := ctx.Err(); err != nil {
			return SweepPoint{}, err
		}
		w, err := s.Workload(jobs[i].bench)
		if err != nil {
			return SweepPoint{}, err
		}
		return cell(s, w, jobs[i].value)
	}, func(_ int, pt SweepPoint) error {
		res.Points = append(res.Points, pt)
		if emit != nil {
			return emit(pt)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.finish()
	return res, nil
}

// sweepJob is one (benchmark, parameter value) cell of a sweep grid.
type sweepJob struct {
	bench string
	value int
}

// sweepGrid flattens a bench × value grid into the job list fed to
// RunOrdered, keeping report order (benchmarks outer, values inner).
func sweepGrid(benches []string, values []int) []sweepJob {
	jobs := make([]sweepJob, 0, len(benches)*len(values))
	for _, b := range benches {
		for _, v := range values {
			jobs = append(jobs, sweepJob{bench: b, value: v})
		}
	}
	return jobs
}

// windowCell shrinks or grows the issue window, re-deriving the measured
// steady-state IW point at the new size (the ROB is bumped when it would
// fall below the window).
func windowCell(s *Suite, w *Workload, win int) (SweepPoint, error) {
	var zero SweepPoint
	sim, err := s.Simulate(w, func(c *uarch.Config) {
		c.WindowSize = win
		if c.ROBSize < win {
			c.ROBSize = win
		}
	})
	if err != nil {
		return zero, err
	}
	m := s.Machine
	m.WindowSize = win
	if m.ROBSize < win {
		m.ROBSize = win
	}
	// Re-derive the measured steady point at this window size.
	in, err := core.InputsFromCurve(w.Law, w.Points, win, w.Summary)
	if err != nil {
		return zero, err
	}
	est, err := m.Estimate(in, modelOptions())
	if err != nil {
		return zero, err
	}
	return SweepPoint{
		Bench:    w.Name,
		Value:    win,
		SimCPI:   sim.CPI(),
		ModelCPI: est.CPI,
		Err:      relErr(est.CPI, sim.CPI()),
	}, nil
}

// robCell resizes the reorder buffer, re-analyzing the trace so the
// equation-(8) long-miss grouping uses the new horizon.
func robCell(s *Suite, w *Workload, rob int) (SweepPoint, error) {
	var zero SweepPoint
	sim, err := s.Simulate(w, func(c *uarch.Config) { c.ROBSize = rob })
	if err != nil {
		return zero, err
	}
	// Re-analyze with the new grouping horizon.
	scfg := stats.DefaultConfig()
	scfg.Hierarchy = s.Sim.Hierarchy
	scfg.PredictorBits = s.Sim.PredictorBits
	scfg.Latencies = s.Sim.Latencies
	scfg.ROBSize = rob
	scfg.Warmup = s.Sim.Warmup
	sum, err := stats.Analyze(w.Trace, scfg)
	if err != nil {
		return zero, err
	}
	m := s.Machine
	m.ROBSize = rob
	in, err := core.InputsFromCurve(w.Law, w.Points, m.WindowSize, sum)
	if err != nil {
		return zero, err
	}
	est, err := m.Estimate(in, modelOptions())
	if err != nil {
		return zero, err
	}
	return SweepPoint{
		Bench:    w.Name,
		Value:    rob,
		SimCPI:   sim.CPI(),
		ModelCPI: est.CPI,
		Err:      relErr(est.CPI, sim.CPI()),
	}, nil
}

// widthCell varies the fetch/dispatch/issue/retire width; the workload
// inputs are width-independent, so the cached bundle is reused.
func widthCell(s *Suite, w *Workload, width int) (SweepPoint, error) {
	var zero SweepPoint
	sim, err := s.Simulate(w, func(c *uarch.Config) { c.Width = width })
	if err != nil {
		return zero, err
	}
	m := s.Machine
	m.Width = width
	est, err := m.Estimate(w.Inputs, modelOptions())
	if err != nil {
		return zero, err
	}
	return SweepPoint{
		Bench:    w.Name,
		Value:    width,
		SimCPI:   sim.CPI(),
		ModelCPI: est.CPI,
		Err:      relErr(est.CPI, sim.CPI()),
	}, nil
}

// depthCell varies the front-end pipeline depth ΔP, which only moves the
// branch misprediction penalty.
func depthCell(s *Suite, w *Workload, depth int) (SweepPoint, error) {
	var zero SweepPoint
	sim, err := s.Simulate(w, func(c *uarch.Config) { c.FrontEndDepth = depth })
	if err != nil {
		return zero, err
	}
	m := s.Machine
	m.FrontEndDepth = depth
	est, err := m.Estimate(w.Inputs, modelOptions())
	if err != nil {
		return zero, err
	}
	return SweepPoint{
		Bench:    w.Name,
		Value:    depth,
		SimCPI:   sim.CPI(),
		ModelCPI: est.CPI,
		Err:      relErr(est.CPI, sim.CPI()),
	}, nil
}

// WindowSweep validates the steady-state model through the knee of the IW
// curve: as the window shrinks below saturation, the power law (not the
// width clip) sets the background IPC. Three benchmarks spanning the beta
// range, windows 8–96.
func WindowSweep(ctx context.Context, s *Suite) (*SweepResult, error) {
	return Sweep(ctx, s, SweepSpec{
		Title:   "Window sweep: steady state through the IW-curve knee",
		Param:   "window",
		Benches: []string{"gzip", "vortex", "vpr"},
		Values:  []int{8, 16, 32, 48, 96},
	})
}

// ROBSweep validates the data-miss overlap model across reorder-buffer
// sizes: a larger ROB overlaps more long misses, so f_LDM — and with it
// the d-miss CPI — must be re-derived per size. The d-miss-heavy
// benchmarks are the sensitive ones.
func ROBSweep(ctx context.Context, s *Suite) (*SweepResult, error) {
	return Sweep(ctx, s, SweepSpec{
		Title:   "ROB sweep: equation (8) overlap across reorder-buffer sizes",
		Param:   "rob",
		Benches: []string{"mcf", "twolf", "gap"},
		Values:  []int{48, 96, 128, 256},
	})
}
