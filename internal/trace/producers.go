package trace

import "fomodel/internal/isa"

// Producer links one instruction to the trace indices of the instructions
// that produce its source operands: Src1/Src2 hold the index of the last
// earlier writer of the corresponding source register, or -1 when the
// operand has no in-trace producer (no register, or the register was last
// written before the trace began).
//
// The links are a pure function of program order and the register fields,
// so they are implementation independent: the idealized IW simulations and
// the detailed cycle-level simulator consume the exact same links instead
// of each rebuilding a last-writer table per run.
type Producer struct {
	Src1, Src2 int32
}

// ComputeProducers derives the producer links of t in one program-order
// pass. The result has len(t.Instrs) entries and is safe to share between
// concurrent read-only consumers.
func ComputeProducers(t *Trace) []Producer {
	prod := make([]Producer, len(t.Instrs))
	var lastWriter [isa.NumArchRegs]int32
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for i := range t.Instrs {
		in := &t.Instrs[i]
		p := &prod[i]
		p.Src1, p.Src2 = -1, -1
		if in.Src1 >= 0 {
			p.Src1 = lastWriter[in.Src1]
		}
		if in.Src2 >= 0 {
			p.Src2 = lastWriter[in.Src2]
		}
		if in.Dest >= 0 {
			lastWriter[in.Dest] = int32(i)
		}
	}
	return prod
}
