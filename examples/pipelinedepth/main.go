// Pipeline depth study: the paper's §6.1 trend analysis. Using only the
// analytical model (no simulation at all), it reproduces the classic
// optimal-pipeline-depth result: with realistic latch overhead, absolute
// performance peaks at a surprisingly deep front end, and the optimum
// moves shallower as issue width grows.
//
// Run with:
//
//	go run ./examples/pipelinedepth
package main

import (
	"fmt"
	"log"
	"strings"

	"fomodel/internal/core"
)

func main() {
	depths := make([]int, 100)
	for i := range depths {
		depths[i] = i + 1
	}

	fmt.Println("BIPS vs front-end depth (8200 ps logic + 90 ps latch overhead per stage,")
	fmt.Println("1-in-5 branches, 5% mispredicted, square-law IW characteristic)")
	fmt.Println()

	for _, width := range []int{2, 3, 4, 8} {
		pts, err := core.PipelineDepthStudy(width, depths)
		if err != nil {
			log.Fatal(err)
		}
		opt := core.OptimalDepth(pts)
		fmt.Printf("issue width %d: optimum %d stages → %.2f BIPS (IPC %.2f there)\n",
			width, opt.Depth, opt.BIPS, opt.IPC)

		// A sparkline of BIPS over depth.
		var sb strings.Builder
		max := opt.BIPS
		glyphs := []rune("▁▂▃▄▅▆▇█")
		for i, p := range pts {
			if i%4 != 0 {
				continue
			}
			g := int(p.BIPS / max * float64(len(glyphs)-1))
			if g < 0 {
				g = 0
			}
			sb.WriteRune(glyphs[g])
		}
		fmt.Printf("  depth 1→100: %s\n\n", sb.String())
	}

	fmt.Println("paper: ≈55-stage optimum at width 3 (matching Sprangle & Carmean), and the")
	fmt.Println("optimum shifts toward shorter pipelines for wider issue (as in Hartstein & Puzak).")
}
