// Package cache implements the set-associative caches and the two-level
// hierarchy of the paper's baseline machine: 4 KB 4-way L1 instruction and
// data caches and a unified 512 KB 4-way L2, all with 128-byte lines, LRU
// replacement, and no prefetching (the paper explicitly excludes it).
//
// The hierarchy classifies every access the way the model needs it
// classified: an L1 hit, a "short" miss (L1 miss that hits in L2, modeled
// by the paper as a long-latency functional unit), or a "long" miss (L2
// miss, which blocks retirement).
package cache

import "fmt"

// Result classifies one cache-hierarchy access.
type Result uint8

const (
	// Hit means the access hit in L1.
	Hit Result = iota
	// ShortMiss means the access missed in L1 but hit in L2.
	ShortMiss
	// LongMiss means the access missed in L2 and goes to memory.
	LongMiss
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case ShortMiss:
		return "short-miss"
	case LongMiss:
		return "long-miss"
	default:
		return fmt.Sprintf("result(%d)", uint8(r))
	}
}

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// Assoc is the set associativity.
	Assoc int
	// LineBytes is the line size; must be a power of two.
	LineBytes uint64
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes == 0:
		return fmt.Errorf("cache: zero size")
	case c.Assoc <= 0:
		return fmt.Errorf("cache: non-positive associativity %d", c.Assoc)
	case c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(uint64(c.Assoc)*c.LineBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by assoc %d × line %d", c.SizeBytes, c.Assoc, c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() uint64 { return c.SizeBytes / (uint64(c.Assoc) * c.LineBytes) }

// Cache is a single-level set-associative LRU cache. Tags are stored per
// way; recency is tracked with a per-line stamp, which is simple and exact
// for the associativities used here.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets × assoc
	valid     []bool
	stamp     []uint64
	clock     uint64

	// Accesses and Misses count every Access call.
	Accesses uint64
	Misses   uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	n := cfg.Sets() * uint64(cfg.Assoc)
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   cfg.Sets() - 1,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		stamp:     make([]uint64, n),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up addr, updating LRU state, and on a miss fills the line.
// It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.clock++
	line := addr >> c.lineShift
	set := line & c.setMask
	base := int(set) * c.cfg.Assoc
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.stamp[i] = c.clock
			return true
		}
		if !c.valid[i] {
			// Prefer an invalid way; stamp 0 loses to any valid line.
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.valid[victim] = true
	c.stamp[victim] = c.clock
	return false
}

// Probe reports whether addr currently hits, without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := line & c.setMask
	base := int(set) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.stamp[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// HierarchyConfig describes a two-level hierarchy with split L1s and a
// unified L2, plus the latencies the model and simulator charge.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	// ShortMissLatency is the L2 hit latency (the paper's ΔI, 8 cycles).
	ShortMissLatency int
	// LongMissLatency is the memory latency (the paper's ΔD, 200 cycles).
	LongMissLatency int
}

// DefaultHierarchy returns the paper's baseline hierarchy: 4 KB 4-way
// 128 B-line L1s, a 512 KB 4-way 128 B-line unified L2, ΔI = 8 and
// ΔD = 200 cycles.
func DefaultHierarchy() HierarchyConfig {
	l1 := Config{SizeBytes: 4 << 10, Assoc: 4, LineBytes: 128}
	return HierarchyConfig{
		L1I:              l1,
		L1D:              l1,
		L2:               Config{SizeBytes: 512 << 10, Assoc: 4, LineBytes: 128},
		ShortMissLatency: 8,
		LongMissLatency:  200,
	}
}

// Latency converts a result into added latency in cycles beyond the L1 hit
// time: 0 for a hit, the L2 latency for a short miss, and the memory
// latency for a long miss.
func (h HierarchyConfig) Latency(r Result) int {
	switch r {
	case ShortMiss:
		return h.ShortMissLatency
	case LongMiss:
		return h.LongMissLatency
	default:
		return 0
	}
}

// Validate checks every level and the latencies.
func (h HierarchyConfig) Validate() error {
	if err := h.L1I.Validate(); err != nil {
		return fmt.Errorf("L1I: %w", err)
	}
	if err := h.L1D.Validate(); err != nil {
		return fmt.Errorf("L1D: %w", err)
	}
	if err := h.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if h.ShortMissLatency <= 0 || h.LongMissLatency <= 0 {
		return fmt.Errorf("cache: non-positive miss latencies (%d, %d)", h.ShortMissLatency, h.LongMissLatency)
	}
	return nil
}

// Hierarchy is a two-level cache hierarchy with split L1 caches and a
// unified L2.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache

	// Per-side access/miss counters, indexed by side then Result.
	IFetches, IShort, ILong  uint64
	DAccesses, DShort, DLong uint64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{cfg: cfg, l1i: l1i, l1d: l1d, l2: l2}, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Fetch performs an instruction fetch at pc.
func (h *Hierarchy) Fetch(pc uint64) Result {
	h.IFetches++
	if h.l1i.Access(pc) {
		return Hit
	}
	if h.l2.Access(pc) {
		h.IShort++
		return ShortMiss
	}
	h.ILong++
	return LongMiss
}

// Data performs a load or store access at addr. Stores are modeled as
// allocating (write-allocate, write-back) so they warm the hierarchy like
// loads do.
func (h *Hierarchy) Data(addr uint64) Result {
	h.DAccesses++
	if h.l1d.Access(addr) {
		return Hit
	}
	if h.l2.Access(addr) {
		h.DShort++
		return ShortMiss
	}
	h.DLong++
	return LongMiss
}

// Latency converts a result into an added latency in cycles beyond the L1
// hit time (see HierarchyConfig.Latency).
func (h *Hierarchy) Latency(r Result) int { return h.cfg.Latency(r) }

// Reset clears all cache contents and statistics.
func (h *Hierarchy) Reset() {
	h.l1i.Reset()
	h.l1d.Reset()
	h.l2.Reset()
	h.ResetStats()
}

// ResetStats clears the hierarchy's statistics but keeps cache contents.
// Used after a warmup pass so measured miss rates exclude compulsory
// cold-start misses.
func (h *Hierarchy) ResetStats() {
	h.l1i.Accesses, h.l1i.Misses = 0, 0
	h.l1d.Accesses, h.l1d.Misses = 0, 0
	h.l2.Accesses, h.l2.Misses = 0, 0
	h.IFetches, h.IShort, h.ILong = 0, 0, 0
	h.DAccesses, h.DShort, h.DLong = 0, 0, 0
}
