package core

import (
	"fmt"
	"math"
)

// This file implements the §6 trend studies. Both use the model with a
// generic square-law workload (α=1, β=0.5, unit latency — the SPECint
// average once latencies are folded in, per the paper's Fig. 8 setup) and
// branch mispredictions as the only miss-event: one instruction in five is
// a branch and 5% of branches are mispredicted.

// TrendWorkload returns the generic workload of the trend studies.
func TrendWorkload() Inputs {
	return Inputs{
		Name:                "square-law",
		Alpha:               1,
		Beta:                0.5,
		AvgLatency:          1,
		MispredictsPerInstr: 0.2 * 0.05, // 1-in-5 branches, 5% mispredicted
		OverlapFactor:       1,
	}
}

// DepthPoint is one point of the §6.1 pipeline-depth study.
type DepthPoint struct {
	// Depth is the front-end pipeline depth in stages.
	Depth int
	// IPC is the modeled instructions per cycle at that depth.
	IPC float64
	// BIPS is absolute performance in billions of instructions per
	// second, using the paper's circuit assumptions: the front end has
	// 8200 ps of total logic delay plus 90 ps of flip-flop overhead per
	// stage, so cycle time = 8200/Depth + 90 ps.
	BIPS float64
}

// Circuit-delay assumptions of §6.1 (taken from Sprangle & Carmean).
const (
	// TotalFrontEndDelayPS is the un-pipelined front-end logic delay.
	TotalFrontEndDelayPS = 8200.0
	// FlipFlopOverheadPS is the per-stage latch overhead.
	FlipFlopOverheadPS = 90.0
)

// PipelineDepthStudy computes IPC and BIPS as a function of front-end
// depth for the given issue width (the paper's Fig. 17). The window is
// sized large enough to saturate the issue width so that steady-state
// performance equals the width, per the paper's setup. Branch
// mispredictions use the isolated penalty (drain + ΔP + ramp-up), which is
// the regime that limits deep pipelines.
func PipelineDepthStudy(width int, depths []int) ([]DepthPoint, error) {
	if width < 1 {
		return nil, fmt.Errorf("core: width %d < 1", width)
	}
	in := TrendWorkload()
	pts := make([]DepthPoint, 0, len(depths))
	for _, d := range depths {
		if d < 1 {
			return nil, fmt.Errorf("core: depth %d < 1", d)
		}
		m := Machine{
			Width:            width,
			FrontEndDepth:    d,
			WindowSize:       saturatingWindow(width, in),
			ROBSize:          4 * saturatingWindow(width, in),
			ShortMissLatency: 8,
			LongMissLatency:  200,
		}
		est, err := m.Estimate(in, Options{BranchMode: BranchIsolated})
		if err != nil {
			return nil, err
		}
		ipc := est.IPC()
		cycPS := TotalFrontEndDelayPS/float64(d) + FlipFlopOverheadPS
		pts = append(pts, DepthPoint{
			Depth: d,
			IPC:   ipc,
			// instructions/ps × 1000 = instructions/ns = BIPS.
			BIPS: ipc / cycPS * 1000,
		})
	}
	return pts, nil
}

// OptimalDepth returns the depth with the highest BIPS among pts.
func OptimalDepth(pts []DepthPoint) DepthPoint {
	best := DepthPoint{BIPS: math.Inf(-1)}
	for _, p := range pts {
		if p.BIPS > best.BIPS {
			best = p
		}
	}
	return best
}

// saturatingWindow returns a window size at which the latency-adjusted
// power law sustains the full issue width, with headroom.
func saturatingWindow(width int, in Inputs) int {
	w := math.Pow(float64(width)*in.AvgLatency/in.Alpha, 1/in.Beta)
	return int(math.Ceil(w)) * 2
}

// WidthRequirement is one point of the §6.2 issue-width study: to spend
// FractionClose of the time issuing within 12.5% of the machine width, the
// program must average InstrBetweenMispredicts useful instructions between
// branch mispredictions.
type WidthRequirement struct {
	Width                    int
	FractionClose            float64
	InstrBetweenMispredicts  float64
	CyclesToReachCloseIssue  float64
	InstrConsumedInTransient float64
}

// IssueWidthStudy computes, for each requested fraction of time spent
// "close" to the implemented issue width (within closeMargin, the paper
// uses 12.5%), the required number of instructions between branch
// mispredictions (the paper's Fig. 18). The transient between two
// mispredictions is ΔP cycles of refill plus ramp-up along the square-law
// IW characteristic; time beyond the transient issues at full width.
func IssueWidthStudy(width, frontEndDepth int, fractions []float64) ([]WidthRequirement, error) {
	if width < 1 {
		return nil, fmt.Errorf("core: width %d < 1", width)
	}
	if frontEndDepth < 1 {
		return nil, fmt.Errorf("core: front-end depth %d < 1", frontEndDepth)
	}
	in := TrendWorkload()
	curve := IWCurve{Alpha: in.Alpha, Beta: in.Beta, L: in.AvgLatency, Width: float64(width)}
	const closeMargin = 0.125
	target := (1 - closeMargin) * float64(width)

	// Integrate the post-misprediction ramp until issue is "close";
	// count the cycles and instructions consumed getting there.
	transientCycles := float64(frontEndDepth)
	transientInstrs := 0.0
	w := 0.0
	for transientCycles < maxTransientCycles {
		w += float64(width)
		i := curve.Eval(w)
		w -= i
		transientCycles++
		transientInstrs += i
		if i >= target {
			break
		}
	}

	reqs := make([]WidthRequirement, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("core: fraction %v outside (0,1)", f)
		}
		// closeCycles/(closeCycles+transientCycles) = f
		closeCycles := f * transientCycles / (1 - f)
		instr := transientInstrs + closeCycles*float64(width)
		reqs = append(reqs, WidthRequirement{
			Width:                    width,
			FractionClose:            f,
			InstrBetweenMispredicts:  instr,
			CyclesToReachCloseIssue:  transientCycles,
			InstrConsumedInTransient: transientInstrs,
		})
	}
	return reqs, nil
}

// OptimalDepthClosedForm returns the analytically optimal front-end depth
// for the trend workload, from minimizing
//
//	g(n) = CPI(n) · cycle(n) = (c0 + m·(n + K)) · (T/n + o)
//
// where c0 = 1/width is the steady-state CPI, m the mispredictions per
// instruction, K the depth-independent part of the branch penalty
// (drain + ramp-up), T the un-pipelined front-end delay, and o the
// per-stage latch overhead. Setting dg/dn = 0 gives
//
//	n_opt = sqrt( T·(c0 + m·K) / (m·o) )
//
// — the square-root law of Hartstein & Puzak, with this model's K. The
// numeric sweep (PipelineDepthStudy + OptimalDepth) agrees with this
// closed form to within a stage or two.
func OptimalDepthClosedForm(width int) (float64, error) {
	if width < 1 {
		return 0, fmt.Errorf("core: width %d < 1", width)
	}
	in := TrendWorkload()
	curve := IWCurve{Alpha: in.Alpha, Beta: in.Beta, L: in.AvgLatency, Width: float64(width)}
	steady := float64(width)
	k := curve.Drain(float64(saturatingWindow(width, in)), steady) + curve.RampUp(steady, 0.05)
	c0 := 1 / steady
	m := in.MispredictsPerInstr
	return math.Sqrt(TotalFrontEndDelayPS * (c0 + m*k) / (m * FlipFlopOverheadPS)), nil
}
