// The go command's vettool protocol: `go vet -vettool=fomodelvet`
// probes the tool with -V=full (a fingerprint that becomes part of
// the build cache key) and then invokes it once per package with a
// JSON config file argument describing the compilation unit — file
// list, import map, and export-data locations. This file implements
// that contract, mirroring the interface of x/tools' unitchecker
// without depending on it.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"fomodel/internal/lint"
	"fomodel/internal/lint/driver"
	"fomodel/internal/lint/load"
)

// vetConfig is the JSON the go command writes for each vetted
// package; field names are fixed by the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion emits the tool fingerprint for -V=full: the go
// command folds this line into its action IDs, so it hashes the
// binary itself — a rebuilt fomodelvet invalidates cached vet
// results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("fomodelvet version devel buildID=%02x\n", string(h.Sum(nil)))
}

// vetUnit analyzes one compilation unit described by a cfg file and
// returns the process exit code.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fomodelvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The vetx file is the facts output; this suite uses no facts,
	// but the go command expects the file to exist for caching.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts: nothing to do.
		writeVetx()
		return 0
	}
	if len(cfg.GoFiles) == 0 {
		writeVetx()
		return 0
	}
	pkg, err := load.Unit(cfg.ImportPath, cfg.GoVersion, cfg.GoFiles, func(path string) (string, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("fomodelvet: no export data for %q", path)
		}
		return file, nil
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := driver.Run([]*load.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		return 1
	}
	return 0
}
