// Package rng provides a small, deterministic pseudo-random number
// generator and the sampling distributions used by the synthetic workload
// generators. Everything in this repository that involves randomness is
// seeded through this package, so traces, simulations and experiments are
// fully reproducible.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014): a 64-bit LCG state with
// a permuted 32-bit output. It is fast, has a tiny state, and passes the
// statistical batteries that matter for workload synthesis.
package rng

import (
	"fmt"
	"math"
)

// Multiplier and default increment of the underlying 64-bit LCG.
const (
	pcgMult       = 6364136223846793005
	pcgDefaultInc = 1442695040888963407
)

// PCG is a deterministic 32-bit-output pseudo-random number generator.
// The zero value is NOT usable; construct with New.
type PCG struct {
	state uint64
	inc   uint64 // always odd
}

// New returns a PCG seeded with seed on the default stream.
func New(seed uint64) *PCG {
	return NewStream(seed, pcgDefaultInc>>1)
}

// NewStream returns a PCG seeded with seed on the given stream. Distinct
// streams yield statistically independent sequences even for equal seeds,
// which lets one workload draw dependences, addresses, and branch outcomes
// from uncorrelated sources.
func NewStream(seed, stream uint64) *PCG {
	p := &PCG{inc: stream<<1 | 1}
	p.state = 0
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// Uint32 returns the next 32 pseudo-random bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (p *PCG) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0; that is a
// programming error, not an input error.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn with non-positive n %d", n))
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint32(n)
	for {
		v := p.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound {
			return int(prod >> 32)
		}
		// Rejection zone: retry if below the threshold that would bias.
		threshold := -bound % bound
		if low >= threshold {
			return int(prod >> 32)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (p *PCG) Int63n(n int64) int64 {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Int63n with non-positive n %d", n))
	}
	max := uint64(n)
	// Simple rejection against the largest multiple of n below 2^63.
	limit := (1 << 63) / max * max
	for {
		v := p.Uint64() >> 1
		if v < limit {
			return int64(v % max)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PCG) Bool(prob float64) bool {
	return p.Float64() < prob
}

// Geometric samples from a geometric distribution with the given mean >= 1:
// the number of Bernoulli(1/mean) trials up to and including the first
// success. The returned value is always >= 1.
func (p *PCG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Inverse-CDF sampling: ceil(ln(1-u)/ln(1-p)) with p = 1/mean.
	u := p.Float64()
	q := math.Log1p(-u) / math.Log1p(-1/mean)
	n := int(math.Ceil(q))
	if n < 1 {
		n = 1
	}
	return n
}

// Pareto samples a bounded discrete Pareto (power-law) value in [1, max]
// with tail exponent alpha > 0. Small alpha → heavier tail.
func (p *PCG) Pareto(alpha float64, max int) int {
	if max <= 1 {
		return 1
	}
	// Inverse transform on the continuous Pareto, clamped.
	u := p.Float64()
	x := math.Pow(1-u, -1/alpha)
	n := int(x)
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	return n
}

// Normal samples from a normal distribution via the Box–Muller transform.
func (p *PCG) Normal(mean, stddev float64) float64 {
	u1 := p.Float64()
	u2 := p.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Weighted selects an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero or negative weights are treated as zero.
// If all weights are zero it returns 0.
func (p *PCG) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := p.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
