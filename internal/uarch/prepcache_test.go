package uarch

import (
	"reflect"
	"sync"
	"testing"

	"fomodel/internal/cache"
	"fomodel/internal/predictor"
	"fomodel/internal/rng"
	"fomodel/internal/trace"
)

// randomConfig draws a structurally valid configuration spanning both
// classification-relevant fields (hierarchy geometry, predictor, TLB,
// warmup) and timing-only fields (widths, sizes, latencies, toggles).
func randomConfig(r *rng.PCG) Config {
	cfg := DefaultConfig()
	cfg.Width = []int{1, 2, 4, 8}[r.Intn(4)]
	cfg.WindowSize = []int{4, 16, 48}[r.Intn(3)]
	cfg.ROBSize = cfg.WindowSize + []int{0, 16, 80}[r.Intn(3)]
	cfg.FrontEndDepth = []int{1, 5, 9}[r.Intn(3)]
	cfg.IdealICache = r.Bool(0.5)
	cfg.IdealDCache = r.Bool(0.5)
	cfg.IdealPredictor = r.Bool(0.5)
	cfg.Warmup = r.Bool(0.5)
	cfg.SerializeLongMisses = r.Bool(0.3)
	cfg.InOrder = r.Bool(0.2)
	if r.Bool(0.3) {
		cfg.PredictorBits = uint(8 + r.Intn(8))
	}
	if r.Bool(0.3) {
		spec := predictor.Spec{Kind: predictor.KindBimodal, IndexBits: 10}
		cfg.Predictor = &spec
	}
	if r.Bool(0.3) {
		tlb := cache.DefaultTLB()
		tlb.Entries = []int{16, 64}[r.Intn(2)]
		cfg.TLB = &tlb
	}
	if r.Bool(0.3) {
		cfg.FUCounts[0] = 1 + r.Intn(2)
	}
	if r.Bool(0.3) {
		cfg.FetchBufferSize = r.Intn(16)
	}
	if r.Bool(0.2) && cfg.Width%2 == 0 && cfg.WindowSize%2 == 0 {
		cfg.Clusters = 2
		cfg.BypassLatency = 1 + r.Intn(2)
	}
	if r.Bool(0.3) {
		cfg.Hierarchy.ShortMissLatency = 4 + r.Intn(12)
		cfg.Hierarchy.LongMissLatency = 100 + r.Intn(200)
	}
	if r.Bool(0.3) {
		cfg.Hierarchy.L1I.SizeBytes = []uint64{2 << 10, 4 << 10, 8 << 10}[r.Intn(3)]
	}
	return cfg
}

// TestPropertyPrepCacheMatchesUncached is the cache-correctness property:
// Simulate through a shared PrepCache returns results identical to the
// uncached Simulate across randomized traces and configs. The cached runs
// execute concurrently on one cache, so -race also checks the
// single-flight sharing.
func TestPropertyPrepCacheMatchesUncached(t *testing.T) {
	pc := NewPrepCache()
	r := rng.New(42)
	type job struct {
		tr  *trace.Trace
		cfg Config
	}
	var jobs []job
	for seed := uint64(1); seed <= 4; seed++ {
		tr := randomTrace(seed, 3000)
		for k := 0; k < 6; k++ {
			jobs = append(jobs, job{tr: tr, cfg: randomConfig(r)})
		}
	}

	// Uncached references, sequentially.
	refs := make([]*Result, len(jobs))
	for i, j := range jobs {
		ref, err := Simulate(j.tr, j.cfg)
		if err != nil {
			t.Fatalf("job %d: uncached: %v", i, err)
		}
		refs[i] = ref
	}

	// Cached runs, concurrently on the shared cache.
	got := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = pc.Simulate(jobs[i].tr, jobs[i].cfg)
		}(i)
	}
	wg.Wait()

	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: cached: %v", i, errs[i])
		}
		if !reflect.DeepEqual(refs[i], got[i]) {
			t.Errorf("job %d: cached result differs from uncached\ncfg: %+v\ncached: %+v\nuncached: %+v",
				i, jobs[i].cfg, got[i], refs[i])
		}
	}

	hits, misses := pc.Stats()
	if hits+misses != int64(len(jobs)) {
		t.Errorf("stats account for %d requests, want %d", hits+misses, len(jobs))
	}
	if misses == 0 || misses == int64(len(jobs)) {
		t.Errorf("degenerate cache behavior: %d hits, %d misses", hits, misses)
	}
}

// TestPrepCacheNilDisablesCaching checks the nil receiver falls back to
// the plain simulator.
func TestPrepCacheNilDisablesCaching(t *testing.T) {
	tr := randomTrace(7, 2000)
	cfg := DefaultConfig()
	ref, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (*PrepCache)(nil).Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Error("nil-cache result differs from plain Simulate")
	}
}

// TestPrepCacheKeySensitivity pins down the classification key: mutating
// any timing-only field must re-use the cached classification (no new
// miss), and mutating any classification-relevant field must always miss.
func TestPrepCacheKeySensitivity(t *testing.T) {
	tr := randomTrace(9, 2000)
	base := DefaultConfig()
	tlb := cache.DefaultTLB()
	base.TLB = &tlb

	pc := NewPrepCache()
	if _, err := pc.Simulate(tr, base); err != nil {
		t.Fatal(err)
	}
	if _, misses := pc.Stats(); misses != 1 {
		t.Fatalf("priming run: %d misses, want 1", misses)
	}

	outside := map[string]func(*Config){
		"Width":               func(c *Config) { c.Width = 8 },
		"FrontEndDepth":       func(c *Config) { c.FrontEndDepth = 9 },
		"WindowSize":          func(c *Config) { c.WindowSize = 16 },
		"ROBSize":             func(c *Config) { c.ROBSize = 256 },
		"Latencies":           func(c *Config) { c.Latencies[1] = 7 },
		"FUCounts":            func(c *Config) { c.FUCounts[0] = 2 },
		"FetchBufferSize":     func(c *Config) { c.FetchBufferSize = 8 },
		"InOrder":             func(c *Config) { c.InOrder = true },
		"RecordIssueTrace":    func(c *Config) { c.RecordIssueTrace = true },
		"Clusters":            func(c *Config) { c.Clusters = 2; c.BypassLatency = 1 },
		"SerializeLongMisses": func(c *Config) { c.SerializeLongMisses = true },
		"IdealICache":         func(c *Config) { c.IdealICache = true },
		"IdealDCache":         func(c *Config) { c.IdealDCache = true },
		"IdealPredictor":      func(c *Config) { c.IdealPredictor = true },
		"ShortMissLatency":    func(c *Config) { c.Hierarchy.ShortMissLatency = 12 },
		"LongMissLatency":     func(c *Config) { c.Hierarchy.LongMissLatency = 300 },
		"TLB.MissLatency":     func(c *Config) { t := *c.TLB; t.MissLatency = 120; c.TLB = &t },
	}
	for name, mutate := range outside {
		cfg := base
		mutate(&cfg)
		_, missesBefore := pc.Stats()
		if _, err := pc.Simulate(tr, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, missesAfter := pc.Stats(); missesAfter != missesBefore {
			t.Errorf("timing-only field %s caused a classification cache miss", name)
		}
	}

	inside := map[string]func(*Config){
		"L1I.SizeBytes": func(c *Config) { c.Hierarchy.L1I.SizeBytes = 8 << 10 },
		"L1D.Assoc":     func(c *Config) { c.Hierarchy.L1D.Assoc = 2 },
		"L2.SizeBytes":  func(c *Config) { c.Hierarchy.L2.SizeBytes = 256 << 10 },
		"PredictorBits": func(c *Config) { c.PredictorBits = 10 },
		"Predictor":     func(c *Config) { c.Predictor = &predictor.Spec{Kind: predictor.KindBimodal, IndexBits: 13} },
		"Warmup":        func(c *Config) { c.Warmup = !c.Warmup },
		"TLB.Entries":   func(c *Config) { t := *c.TLB; t.Entries = 16; c.TLB = &t },
		"TLB removed":   func(c *Config) { c.TLB = nil },
	}
	for name, mutate := range inside {
		cfg := base
		mutate(&cfg)
		_, missesBefore := pc.Stats()
		if _, err := pc.Simulate(tr, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, missesAfter := pc.Stats(); missesAfter != missesBefore+1 {
			t.Errorf("classification field %s did not cause a cache miss (misses %d -> %d)",
				name, missesBefore, missesAfter)
		}
	}
}

// TestPrepCachePredictorBitsIrrelevantUnderSpec checks the key
// normalization: when an explicit predictor spec overrides the gshare
// default, PredictorBits is dead configuration and must not fragment the
// cache.
func TestPrepCachePredictorBitsIrrelevantUnderSpec(t *testing.T) {
	tr := randomTrace(11, 2000)
	spec := predictor.Spec{Kind: predictor.KindAlwaysTaken}
	cfg := DefaultConfig()
	cfg.Predictor = &spec

	pc := NewPrepCache()
	if _, err := pc.Simulate(tr, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.PredictorBits = 20
	if _, err := pc.Simulate(tr, cfg); err != nil {
		t.Fatal(err)
	}
	if _, misses := pc.Stats(); misses != 1 {
		t.Errorf("PredictorBits fragmented the key under an explicit spec: %d misses, want 1", misses)
	}
}

// TestPrepCacheSingleFlight hammers one (trace, key) slot from many
// goroutines: exactly one classification may happen, and every caller
// must observe the same result.
func TestPrepCacheSingleFlight(t *testing.T) {
	tr := randomTrace(13, 4000)
	pc := NewPrepCache()
	const callers = 16
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := DefaultConfig()
			// Different timing parameters, same classification key.
			cfg.Width = 1 + i%4
			cfg.IdealDCache = i%2 == 0
			results[i], errs[i] = pc.Simulate(tr, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	if _, misses := pc.Stats(); misses != 1 {
		t.Errorf("single-flight violated: %d classifications for one key", misses)
	}
}
