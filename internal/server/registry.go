package server

import (
	"errors"
	"net/http"

	"fomodel/internal/metrics"
	"fomodel/internal/registry"
	"fomodel/internal/workload"
)

// This file is the daemon's named-workload surface:
//
//	POST   /v1/workloads/{name}  register (or replace) a custom profile
//	GET    /v1/workloads/{name}  read a registration back
//	DELETE /v1/workloads/{name}  remove a registration
//
// The tenant is taken from the X-Tenant header ("default" when absent).
// Registered names are then accepted anywhere a built-in benchmark name
// is: /v1/predict, /v1/batch, /v1/sweep, /v1/optimize, and the
// fomodelproxy router, which replicates registrations to every replica.

// tenantHeader carries the caller's tenant id; the fomodelproxy router
// forwards it when fanning registrations out to replicas.
const tenantHeader = "X-Tenant"

// defaultTenant is the tenant of requests that carry no X-Tenant
// header — single-user deployments never need to think about tenancy.
const defaultTenant = "default"

// tenantOf extracts and validates the request's tenant.
func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get(tenantHeader)
	if t == "" {
		return defaultTenant, nil
	}
	if !registry.ValidName(t) {
		return "", errors.New("invalid X-Tenant header (need 1-64 chars of [a-zA-Z0-9._-])")
	}
	return t, nil
}

// WorkloadRegistration is the POST/GET /v1/workloads/{name} body: the
// registration's identity plus the stored profile, so a GET round-trips
// what a POST accepted.
type WorkloadRegistration struct {
	Name        string           `json:"name"`
	Tenant      string           `json:"tenant"`
	ContentHash string           `json:"content_hash"`
	Bytes       int64            `json:"bytes"`
	Profile     workload.Profile `json:"profile"`
}

// WorkloadDeletion is the DELETE /v1/workloads/{name} body.
type WorkloadDeletion struct {
	Name    string `json:"name"`
	Deleted bool   `json:"deleted"`
}

// registrationBody projects a registry entry onto the wire shape.
func registrationBody(e registry.Entry) WorkloadRegistration {
	return WorkloadRegistration{
		Name:        e.Name,
		Tenant:      e.Tenant,
		ContentHash: e.Hash,
		Bytes:       e.Bytes,
		Profile:     e.Profile,
	}
}

// registryStatus maps a registry error onto its HTTP status.
func registryStatus(err error) int {
	switch {
	case errors.Is(err, registry.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrOwned):
		return http.StatusConflict
	case errors.Is(err, registry.ErrQuota):
		return http.StatusForbidden
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleWorkloadRegister(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	name := r.PathValue("name")
	var prof workload.Profile
	if err := decodeRequest(r, &prof); err != nil {
		s.writeRequestError(w, err)
		return
	}
	e, err := s.cfg.Registry.Register(tenant, name, prof)
	if err != nil {
		s.writeError(w, registryStatus(err), "%s", err)
		return
	}
	// Drop any suite bundles computed under a previous registration of
	// this name; content-hashed slot keys make this a correctness
	// backstop, not the primary staleness defense.
	s.suite.Forget(name)
	body, err := EncodeIndented(registrationBody(e))
	s.finishComputeState(w.(*statusWriter), http.StatusOK, body, "", err)
}

func (s *Server) handleWorkloadGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.cfg.Registry.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no workload registered under %q", name)
		return
	}
	body, err := EncodeIndented(registrationBody(e))
	s.finishComputeState(w.(*statusWriter), http.StatusOK, body, "", err)
}

func (s *Server) handleWorkloadDelete(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	name := r.PathValue("name")
	if err := s.cfg.Registry.Delete(tenant, name); err != nil {
		s.writeError(w, registryStatus(err), "%s", err)
		return
	}
	s.suite.Forget(name)
	body, err := EncodeIndented(WorkloadDeletion{Name: name, Deleted: true})
	s.finishComputeState(w.(*statusWriter), http.StatusOK, body, "", err)
}

// knownWorkload reports whether bench is acceptable wherever a
// benchmark name is: a built-in profile or a live registration.
func (s *Server) knownWorkload(bench string) bool {
	return s.suite.KnowsWorkload(bench)
}

// noteRegisteredUse records one predict evaluation of a registered
// workload for the per-workload /metrics accounting. Built-in names
// (and names no longer registered) are not tracked, so the counter maps
// stay bounded by the registered population.
func (s *Server) noteRegisteredUse(bench string, hit bool) {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	if _, ok := reg.Get(bench); !ok {
		return
	}
	s.registeredUseCounter(s.regRequests, bench).Inc()
	if hit {
		s.registeredUseCounter(s.regHits, bench).Inc()
	}
}

// registeredUseCounter returns the live counter for one registered
// workload in the given map, creating it on first use.
func (s *Server) registeredUseCounter(m map[string]*metrics.Counter, name string) *metrics.Counter {
	s.regUseMu.Lock()
	defer s.regUseMu.Unlock()
	c := m[name]
	if c == nil {
		c = &metrics.Counter{}
		m[name] = c
	}
	return c
}
