package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fomodel/internal/artifact"
	"fomodel/internal/experiments"
	"fomodel/internal/metrics"
	"fomodel/internal/registry"
	"fomodel/internal/trace"
	"fomodel/internal/workload"
)

// Config parameterizes the daemon. The zero value of every field selects
// a production-shaped default.
type Config struct {
	// N is the default dynamic instruction count per workload and Seed
	// the default generation seed; requests may override both. Defaults:
	// 500000 and 1, matching the CLI tools.
	N    int
	Seed uint64
	// Workers bounds the sweep fan-out pool (0 = GOMAXPROCS).
	Workers int
	// MaxInflight bounds concurrently executing /v1 requests; further
	// requests are shed with 429 rather than queued (0 = 2×GOMAXPROCS).
	MaxInflight int
	// CacheEntries bounds the response cache (0 = 1024).
	CacheEntries int
	// TraceCacheEntries bounds the non-default (n, seed) trace cache;
	// evicted traces release their prep-cache entries (0 = 64).
	TraceCacheEntries int
	// AnalysisCacheEntries bounds the in-memory analysis-bundle cache
	// (0 = 128).
	AnalysisCacheEntries int
	// RequestTimeout is the per-request computation deadline
	// (0 = 2 minutes).
	RequestTimeout time.Duration
	// Store, when non-nil, is the persistent workload-artifact store;
	// traces, analyses, classification preps, and producer links are
	// served from and written to it, surviving restarts.
	Store *artifact.Store
	// Registry holds named custom workloads (POST /v1/workloads/{name});
	// nil selects a fresh registry with default quotas, persisted
	// through Store. Registered names are accepted anywhere a built-in
	// benchmark name is.
	Registry *registry.Registry
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 500000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.TraceCacheEntries <= 0 {
		c.TraceCacheEntries = 64
	}
	if c.AnalysisCacheEntries <= 0 {
		c.AnalysisCacheEntries = 128
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	return c
}

// statusCodeClientGone is the nginx-convention code logged when the
// client disconnected before a response could be written.
const statusCodeClientGone = 499

// Server is the fomodeld daemon: HTTP handlers plus the shared state
// they serve from (the experiment suite with its workload and prep
// caches, the response cache, and the metrics counters).
type Server struct {
	cfg   Config
	log   *slog.Logger
	suite *experiments.Suite
	cache *respCache
	start time.Time

	inflight metrics.Gauge
	shed     metrics.Counter
	latency  *metrics.Histogram
	slots    chan struct{}

	// notReady is set while the daemon should be kept out of routing
	// rotation (boot warm-up in flight); /readyz answers 503 until it
	// clears. Inverted so the zero value — ready — matches servers that
	// never warm.
	notReady atomic.Bool

	reqMu    sync.Mutex
	requests map[requestKey]*metrics.Counter

	// traces is the bounded LRU of non-default traces, keyed by content
	// ID (recipe for built-ins, profile content hash + recipe for
	// registered workloads); analysis holds the in-memory analysis
	// bundles keyed by content.
	traceMu        sync.Mutex
	traces         map[string]*traceEntry
	traceOrder     *list.List // front = most recently used
	traceEvictions metrics.Counter
	analysis       *analysisCache

	// Per-registered-workload request/hit accounting, keyed by workload
	// name; populated only for names present in the registry, so the
	// maps are bounded by the registered population.
	regUseMu    sync.Mutex
	regRequests map[string]*metrics.Counter
	regHits     map[string]*metrics.Counter

	// Optimize-search instrumentation: candidate evaluations run (and
	// the share served by the response cache), refinement rounds, and
	// the most recent completed search's frontier size.
	optEvals    metrics.Counter
	optEvalHits metrics.Counter
	optRounds   metrics.Counter
	optFrontier metrics.Gauge

	// gate, when non-nil, blocks every admitted /v1 request until the
	// channel yields; tests use it to hold requests in flight
	// deterministically.
	gate chan struct{}
	// panicHook, when non-nil, runs inside sweep and batch computations
	// with the request's bench or parameter name; tests use it to inject
	// worker panics and pin the recovery path.
	panicHook func(name string)
}

type requestKey struct {
	path string
	code int
}

type traceEntry struct {
	key  string // content ID
	elem *list.Element
	once sync.Once
	// finished is set under traceMu after once completed; eviction skips
	// unfinished entries so a waiter is never detached from its entry.
	finished bool
	t        *trace.Trace
	err      error
}

// New builds a server. A nil logger discards logs.
func New(cfg Config, log *slog.Logger) *Server {
	cfg = cfg.withDefaults()
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	suite := experiments.NewSuite(cfg.N, cfg.Seed)
	suite.Workers = cfg.Workers
	suite.SetStore(cfg.Store)
	if cfg.Registry == nil {
		cfg.Registry = registry.New(registry.Config{Store: cfg.Store})
	}
	suite.Lookup = cfg.Registry.Snapshot
	return &Server{
		cfg:         cfg,
		log:         log,
		suite:       suite,
		cache:       newRespCache(cfg.CacheEntries),
		start:       time.Now(),
		latency:     metrics.NewHistogram(metrics.DefaultLatencyBounds()...),
		slots:       make(chan struct{}, cfg.MaxInflight),
		requests:    make(map[requestKey]*metrics.Counter),
		traces:      make(map[string]*traceEntry),
		traceOrder:  list.New(),
		analysis:    newAnalysisCache(cfg.AnalysisCacheEntries),
		regRequests: make(map[string]*metrics.Counter),
		regHits:     make(map[string]*metrics.Counter),
	}
}

// Warm precomputes every default workload bundle, filling the suite's
// caches and — when a store is configured — persisting the trace,
// analysis, producer, and prep artifacts so the next process boots warm.
// It stops early when ctx is done.
func (s *Server) Warm(ctx context.Context) error {
	for _, name := range s.suite.Names {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := s.suite.Workload(name); err != nil {
			return fmt.Errorf("warm %s: %w", name, err)
		}
	}
	return nil
}

// Handler returns the daemon's routing table. /v1 endpoints pass through
// admission control (in-flight bound with 429 shedding) and carry a
// per-request deadline; /healthz and /metrics always answer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.instrument("/v1/predict", true, s.handlePredict))
	mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", true, s.handleBatch))
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", true, s.handleSweep))
	mux.HandleFunc("POST /v1/optimize", s.instrument("/v1/optimize", true, s.handleOptimize))
	mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", true, s.handleWorkloads))
	mux.HandleFunc("POST /v1/workloads/{name}", s.instrument("/v1/workloads/{name}", true, s.handleWorkloadRegister))
	mux.HandleFunc("GET /v1/workloads/{name}", s.instrument("/v1/workloads/{name}", true, s.handleWorkloadGet))
	mux.HandleFunc("DELETE /v1/workloads/{name}", s.instrument("/v1/workloads/{name}", true, s.handleWorkloadDelete))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", false, s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", false, s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", false, s.handleMetrics))
	return mux
}

// statusWriter records the status code a handler wrote (or 499 when the
// client vanished first).
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
	// reqID is the request's X-Request-ID header, when the client (the
	// fomodelproxy router, typically) sent one; it is echoed into the
	// response headers, the structured request log, and error bodies so
	// one hedged or retried request can be traced across replicas.
	reqID string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so streamed NDJSON rows reach
// the client per grid cell rather than buffering until the sweep ends.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with admission control (when limited),
// per-request deadline, the latency histogram, per-path/per-code request
// counters, and one structured log line per request.
func (s *Server) instrument(path string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		startReq := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		if id := r.Header.Get("X-Request-ID"); id != "" {
			sw.reqID = id
			w.Header().Set("X-Request-ID", id)
		}
		if limited {
			select {
			case s.slots <- struct{}{}:
				s.inflight.Add(1)
				defer func() {
					<-s.slots
					s.inflight.Add(-1)
				}()
			default:
				s.shed.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
				s.writeError(sw, http.StatusTooManyRequests,
					"server saturated: %d requests already in flight", s.cfg.MaxInflight)
				s.finish(path, sw, startReq, "")
				return
			}
			if s.gate != nil {
				<-s.gate
			}
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
		s.finish(path, sw, startReq, w.Header().Get("X-Cache"))
	}
}

// retryAfterSeconds derives the 429 Retry-After value from observed
// service time: the mean request latency from the histogram, rounded up
// to whole seconds with a 1-second floor, so shed clients back off
// proportionally to how long requests are actually taking instead of
// hammering a saturated server once per second.
func (s *Server) retryAfterSeconds() int {
	snap := s.latency.Snapshot()
	if snap.Count == 0 {
		return 1
	}
	secs := int(math.Ceil(snap.Sum / float64(snap.Count)))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// finish records the request in the metrics and the structured log.
func (s *Server) finish(path string, sw *statusWriter, start time.Time, cacheState string) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	elapsed := time.Since(start)
	s.latency.Observe(elapsed.Seconds())
	s.requestCounter(path, sw.code).Inc()
	attrs := []any{
		"path", path,
		"status", sw.code,
		"dur_ms", elapsed.Milliseconds(),
		"bytes", sw.bytes,
	}
	if cacheState != "" {
		attrs = append(attrs, "cache", cacheState)
	}
	if sw.reqID != "" {
		attrs = append(attrs, "request_id", sw.reqID)
	}
	s.log.Info("request", attrs...)
}

// requestCounter returns the live counter for one (path, status) pair.
func (s *Server) requestCounter(path string, code int) *metrics.Counter {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	k := requestKey{path: path, code: code}
	c := s.requests[k]
	if c == nil {
		c = &metrics.Counter{}
		s.requests[k] = c
	}
	return c
}

// errorResponse is the structured error body of every non-200 response.
// RequestID is present only when the request carried an X-Request-ID
// header, so direct (headerless) requests keep their historical bodies.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	resp := errorResponse{Error: fmt.Sprintf(format, args...)}
	if sw, ok := w.(*statusWriter); ok {
		resp.RequestID = sw.reqID
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//folint:allow(errdrop) errorResponse is two plain strings; Marshal cannot fail on it
	body, _ := json.Marshal(resp)
	//folint:allow(errdrop) error-response write: the client may already be gone, and there is no fallback channel
	w.Write(append(body, '\n'))
}

// finishCompute maps a computation outcome onto the response: 200 bodies
// are written as-is, context errors become 499 (client gone, nothing
// written) or 503 (deadline), and other failures pass through with their
// computed status.
func (s *Server) finishCompute(w *statusWriter, status int, body []byte, hit bool, err error) {
	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	s.finishComputeState(w, status, body, cacheState, err)
}

// finishComputeState is finishCompute with an explicit cache state; an
// empty state omits the X-Cache header (batch responses report cache
// participation per item instead).
func (s *Server) finishComputeState(w *statusWriter, status int, body []byte, cacheState string, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		// The client disconnected; there is no one to write to. Record
		// the conventional 499 for the log and metrics.
		w.code = statusCodeClientGone
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusServiceUnavailable,
			"request exceeded the %s computation deadline", s.cfg.RequestTimeout)
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "%s", err)
	default:
		if cacheState != "" {
			w.Header().Set("X-Cache", cacheState)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		//folint:allow(errdrop) response-body write: the client may already be gone, and there is no fallback channel
		w.Write(body)
	}
}

// resolvedWorkload is one request's workload identity after name
// resolution: the content ID that keys every cache and artifact, plus
// — for registered custom workloads — the profile snapshot to generate
// from. prof is nil for built-in benchmarks.
type resolvedWorkload struct {
	bench     string
	n         int
	seed      uint64
	contentID string
	prof      *workload.Profile
}

// resolveWorkload maps a normalized predict request onto its workload
// identity: built-in names key by the classic recipe ContentID,
// registered names by the profile's name-free CustomContentID — so two
// names registered with identical content share traces, analyses, and
// artifacts, while re-registered content changes every downstream key.
func (s *Server) resolveWorkload(req PredictRequest) (resolvedWorkload, error) {
	rw := resolvedWorkload{bench: req.Bench, n: req.N, seed: req.Seed}
	_, nameErr := workload.ByName(req.Bench)
	if nameErr == nil {
		rw.contentID = workload.ContentID(req.Bench, req.N, req.Seed)
		return rw, nil
	}
	if prof, hash, ok := s.cfg.Registry.Snapshot(req.Bench); ok {
		rw.prof = &prof
		rw.contentID = workload.CustomContentID(hash, req.N, req.Seed)
		return rw, nil
	}
	return rw, nameErr
}

// traceFor returns the resolved workload's trace, sharing the suite's
// workload bundle when the request uses the server defaults (so predict,
// sweep, and workload-listing traffic all hit one prep-cache keyspace)
// and a dedicated single-flight trace cache otherwise. The dedicated
// cache is a bounded LRU keyed by content ID: evicting a trace also
// releases the prep-cache entries it pinned, so sweeping many (n, seed)
// pairs cannot grow the server's footprint without bound. Traces load
// through the artifact store when one is configured.
func (s *Server) traceFor(rw resolvedWorkload) (*trace.Trace, error) {
	if rw.n == s.cfg.N && rw.seed == s.cfg.Seed {
		// The suite resolves registered names through its own Lookup, so
		// this path serves built-ins and registered workloads alike.
		w, err := s.suite.Workload(rw.bench)
		if err != nil {
			return nil, err
		}
		return w.Trace, nil
	}
	k := rw.contentID
	s.traceMu.Lock()
	e, ok := s.traces[k]
	if ok {
		s.traceOrder.MoveToFront(e.elem)
	} else {
		e = &traceEntry{key: k}
		e.elem = s.traceOrder.PushFront(e)
		s.traces[k] = e
		s.evictTracesLocked()
	}
	s.traceMu.Unlock()
	e.once.Do(func() {
		if rw.prof != nil {
			e.t, e.err = experiments.LoadOrGenerateProfileTrace(s.cfg.Store, *rw.prof, rw.n, rw.seed)
		} else {
			e.t, e.err = experiments.LoadOrGenerateTrace(s.cfg.Store, rw.bench, rw.n, rw.seed)
		}
		s.traceMu.Lock()
		e.finished = true
		if e.err != nil && s.traces[k] == e {
			// Failed loads leave the cache immediately so they cannot
			// occupy capacity; waiters already joined on once share the
			// error regardless.
			s.traceOrder.Remove(e.elem)
			delete(s.traces, k)
		}
		s.traceMu.Unlock()
	})
	return e.t, e.err
}

// evictTracesLocked trims the trace cache toward capacity, least
// recently used first, skipping in-flight entries (a waiter may be
// blocked on them). Each evicted trace releases its prep-cache entries:
// the trace is about to become unreachable, so preps keyed to it could
// never be hit again.
func (s *Server) evictTracesLocked() {
	for elem := s.traceOrder.Back(); elem != nil && len(s.traces) > s.cfg.TraceCacheEntries; {
		prev := elem.Prev()
		e := elem.Value.(*traceEntry)
		if e.finished {
			s.traceOrder.Remove(elem)
			delete(s.traces, e.key)
			s.traceEvictions.Inc()
			if e.t != nil {
				s.suite.Preps().Forget(e.t)
			}
		}
		elem = prev
	}
}

// traceCacheLen reports the dedicated trace cache's current size.
func (s *Server) traceCacheLen() int {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return len(s.traces)
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workloads     int     `json:"workloads"`
	N             int     `json:"n"`
	Seed          uint64  `json:"seed"`
}

// SetReady flips the /readyz answer. The daemon boots ready unless its
// CLI starts a warm-up, in which case it is marked not-ready first and
// ready again when the warm-up completes — so a routing proxy keeps a
// cold replica (252µs–11ms per miss) out of the ring until its caches
// can actually serve the shard hot.
func (s *Server) SetReady(ready bool) {
	s.notReady.Store(!ready)
}

// Ready reports whether /readyz would answer 200.
func (s *Server) Ready() bool {
	return !s.notReady.Load()
}

// readyzResponse is the /readyz body.
type readyzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// handleReadyz is the routing-readiness probe, distinct from /healthz:
// a live daemon that is still running its boot warm-up answers 503 here
// (and 200 on /healthz), telling the router "alive, but route my shard
// elsewhere for now".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{Status: "ready", UptimeSeconds: time.Since(s.start).Seconds()}
	w.Header().Set("Content-Type", "application/json")
	if !s.Ready() {
		resp.Status = "warming"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	//folint:allow(errdrop) readyz encode: the client may already be gone, and there is no fallback channel
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(healthzResponse{ //folint:allow(errdrop) healthz encode: the client may already be gone, and there is no fallback channel
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workloads:     len(workload.Names()),
		N:             s.cfg.N,
		Seed:          s.cfg.Seed,
	})
}

// handleMetrics renders every counter in the Prometheus text exposition
// format. The prep-cache and suite counters are the very same
// metrics.Counter values the CLI's -timing flag prints — one counter
// type, one source, two surfaces.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	fmt.Fprintf(w, "# HELP fomodeld_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_uptime_seconds gauge\n")
	fmt.Fprintf(w, "fomodeld_uptime_seconds %.3f\n", time.Since(s.start).Seconds())

	fmt.Fprintf(w, "# HELP fomodeld_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_requests_total counter\n")
	s.reqMu.Lock()
	keys := make([]requestKey, 0, len(s.requests))
	for k := range s.requests {
		keys = append(keys, k)
	}
	s.reqMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "fomodeld_requests_total{path=%q,code=\"%d\"} %d\n",
			k.path, k.code, s.requestCounter(k.path, k.code).Load())
	}

	fmt.Fprintf(w, "# HELP fomodeld_requests_in_flight API requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_requests_in_flight gauge\n")
	fmt.Fprintf(w, "fomodeld_requests_in_flight %d\n", s.inflight.Load())

	fmt.Fprintf(w, "# HELP fomodeld_requests_shed_total Requests rejected with 429 by the in-flight limiter.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_requests_shed_total counter\n")
	fmt.Fprintf(w, "fomodeld_requests_shed_total %d\n", s.shed.Load())

	cacheHits, cacheMisses := s.cache.Stats()
	fmt.Fprintf(w, "# HELP fomodeld_response_cache_hits_total Responses served from the canonical-request cache.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_response_cache_hits_total counter\n")
	fmt.Fprintf(w, "fomodeld_response_cache_hits_total %d\n", cacheHits)
	fmt.Fprintf(w, "# HELP fomodeld_response_cache_misses_total Responses computed because the cache had no entry.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_response_cache_misses_total counter\n")
	fmt.Fprintf(w, "fomodeld_response_cache_misses_total %d\n", cacheMisses)
	fmt.Fprintf(w, "# HELP fomodeld_response_cache_entries Entries currently cached.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_response_cache_entries gauge\n")
	fmt.Fprintf(w, "fomodeld_response_cache_entries %d\n", s.cache.Len())

	prepHits, prepMisses := s.suite.Preps().Counters()
	fmt.Fprintf(w, "# HELP fomodeld_prep_cache_reuses_total Simulator runs that reused a cached classification pass.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_prep_cache_reuses_total counter\n")
	fmt.Fprintf(w, "fomodeld_prep_cache_reuses_total %d\n", prepHits.Load())
	fmt.Fprintf(w, "# HELP fomodeld_prep_cache_passes_total Classification passes computed.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_prep_cache_passes_total counter\n")
	fmt.Fprintf(w, "fomodeld_prep_cache_passes_total %d\n", prepMisses.Load())
	fmt.Fprintf(w, "# HELP fomodeld_prep_cache_evictions_total Prep-cache entries evicted by the LRU bound or trace eviction.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_prep_cache_evictions_total counter\n")
	fmt.Fprintf(w, "fomodeld_prep_cache_evictions_total %d\n", s.suite.Preps().Evictions())
	prepEntries, prodEntries := s.suite.Preps().Len()
	fmt.Fprintf(w, "# HELP fomodeld_prep_cache_entries Classification passes currently cached.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_prep_cache_entries gauge\n")
	fmt.Fprintf(w, "fomodeld_prep_cache_entries %d\n", prepEntries+prodEntries)

	fmt.Fprintf(w, "# HELP fomodeld_trace_cache_entries Non-default traces currently cached.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_trace_cache_entries gauge\n")
	fmt.Fprintf(w, "fomodeld_trace_cache_entries %d\n", s.traceCacheLen())
	fmt.Fprintf(w, "# HELP fomodeld_trace_cache_evictions_total Traces evicted from the bounded trace cache.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_trace_cache_evictions_total counter\n")
	fmt.Fprintf(w, "fomodeld_trace_cache_evictions_total %d\n", s.traceEvictions.Load())

	anHits, anMisses := s.analysis.Stats()
	fmt.Fprintf(w, "# HELP fomodeld_analysis_cache_hits_total Predict analyses served from the in-memory content-keyed cache.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_analysis_cache_hits_total counter\n")
	fmt.Fprintf(w, "fomodeld_analysis_cache_hits_total %d\n", anHits)
	fmt.Fprintf(w, "# HELP fomodeld_analysis_cache_misses_total Predict analyses computed or loaded from the store.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_analysis_cache_misses_total counter\n")
	fmt.Fprintf(w, "fomodeld_analysis_cache_misses_total %d\n", anMisses)

	fmt.Fprintf(w, "# HELP fomodeld_optimize_evaluations_total Model evaluations (candidate x workload) run by design-space searches.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_optimize_evaluations_total counter\n")
	fmt.Fprintf(w, "fomodeld_optimize_evaluations_total %d\n", s.optEvals.Load())
	fmt.Fprintf(w, "# HELP fomodeld_optimize_evaluation_cache_hits_total Optimize evaluations answered by the response cache.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_optimize_evaluation_cache_hits_total counter\n")
	fmt.Fprintf(w, "fomodeld_optimize_evaluation_cache_hits_total %d\n", s.optEvalHits.Load())
	fmt.Fprintf(w, "# HELP fomodeld_optimize_refinement_rounds_total Refinement rounds run by design-space searches.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_optimize_refinement_rounds_total counter\n")
	fmt.Fprintf(w, "fomodeld_optimize_refinement_rounds_total %d\n", s.optRounds.Load())
	fmt.Fprintf(w, "# HELP fomodeld_optimize_frontier_size Frontier size of the most recent completed search.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_optimize_frontier_size gauge\n")
	fmt.Fprintf(w, "fomodeld_optimize_frontier_size %d\n", s.optFrontier.Load())

	if reg := s.cfg.Registry; reg != nil {
		registers, deletes, rejects, persistErrors := reg.Stats()
		fmt.Fprintf(w, "# HELP fomodeld_registry_registrations_total Custom workloads registered (including replacements).\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registry_registrations_total counter\n")
		fmt.Fprintf(w, "fomodeld_registry_registrations_total %d\n", registers)
		fmt.Fprintf(w, "# HELP fomodeld_registry_deletions_total Custom workloads deleted.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registry_deletions_total counter\n")
		fmt.Fprintf(w, "fomodeld_registry_deletions_total %d\n", deletes)
		fmt.Fprintf(w, "# HELP fomodeld_registry_rejections_total Registrations rejected by validation, collision, or quota.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registry_rejections_total counter\n")
		fmt.Fprintf(w, "fomodeld_registry_rejections_total %d\n", rejects)
		fmt.Fprintf(w, "# HELP fomodeld_registry_persist_errors_total Failed writes of the registry index to the artifact store.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registry_persist_errors_total counter\n")
		fmt.Fprintf(w, "fomodeld_registry_persist_errors_total %d\n", persistErrors)

		usage := reg.TenantUsage()
		tenants := make([]string, 0, len(usage))
		for t := range usage {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		fmt.Fprintf(w, "# HELP fomodeld_registry_workloads Registered workloads currently held, by tenant.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registry_workloads gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "fomodeld_registry_workloads{tenant=%q} %d\n", t, usage[t].Count)
		}
		fmt.Fprintf(w, "# HELP fomodeld_registry_bytes Encoded profile bytes currently held, by tenant.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registry_bytes gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "fomodeld_registry_bytes{tenant=%q} %d\n", t, usage[t].Bytes)
		}

		s.regUseMu.Lock()
		names := make([]string, 0, len(s.regRequests))
		for name := range s.regRequests {
			names = append(names, name)
		}
		s.regUseMu.Unlock()
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP fomodeld_registered_workload_requests_total Predict evaluations referencing a registered workload, by name.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registered_workload_requests_total counter\n")
		for _, name := range names {
			fmt.Fprintf(w, "fomodeld_registered_workload_requests_total{workload=%q} %d\n",
				name, s.registeredUseCounter(s.regRequests, name).Load())
		}
		fmt.Fprintf(w, "# HELP fomodeld_registered_workload_cache_hits_total Registered-workload evaluations served from the response cache, by name.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_registered_workload_cache_hits_total counter\n")
		for _, name := range names {
			fmt.Fprintf(w, "fomodeld_registered_workload_cache_hits_total{workload=%q} %d\n",
				name, s.registeredUseCounter(s.regHits, name).Load())
		}
	}

	if st := s.cfg.Store; st != nil {
		hits, misses, corrupt, writes, evictions := st.Stats()
		fmt.Fprintf(w, "# HELP fomodeld_artifact_store_hits_total Artifacts served from the persistent store.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_artifact_store_hits_total counter\n")
		fmt.Fprintf(w, "fomodeld_artifact_store_hits_total %d\n", hits)
		fmt.Fprintf(w, "# HELP fomodeld_artifact_store_misses_total Store lookups that found no artifact.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_artifact_store_misses_total counter\n")
		fmt.Fprintf(w, "fomodeld_artifact_store_misses_total %d\n", misses)
		fmt.Fprintf(w, "# HELP fomodeld_artifact_store_corrupt_total Artifacts rejected by checksum or framing validation.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_artifact_store_corrupt_total counter\n")
		fmt.Fprintf(w, "fomodeld_artifact_store_corrupt_total %d\n", corrupt)
		fmt.Fprintf(w, "# HELP fomodeld_artifact_store_writes_total Artifacts written to the store.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_artifact_store_writes_total counter\n")
		fmt.Fprintf(w, "fomodeld_artifact_store_writes_total %d\n", writes)
		fmt.Fprintf(w, "# HELP fomodeld_artifact_store_evictions_total Artifacts evicted by the store size bound.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_artifact_store_evictions_total counter\n")
		fmt.Fprintf(w, "fomodeld_artifact_store_evictions_total %d\n", evictions)
		fmt.Fprintf(w, "# HELP fomodeld_artifact_store_bytes Bytes currently stored on disk.\n")
		fmt.Fprintf(w, "# TYPE fomodeld_artifact_store_bytes gauge\n")
		fmt.Fprintf(w, "fomodeld_artifact_store_bytes %d\n", st.SizeBytes())
	}

	workloads, sims := s.suite.CounterSources()
	fmt.Fprintf(w, "# HELP fomodeld_workload_analyses_total Workload analysis bundles computed.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_workload_analyses_total counter\n")
	fmt.Fprintf(w, "fomodeld_workload_analyses_total %d\n", workloads.Load())
	fmt.Fprintf(w, "# HELP fomodeld_sim_runs_total Detailed simulator runs.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_sim_runs_total counter\n")
	fmt.Fprintf(w, "fomodeld_sim_runs_total %d\n", sims.Load())

	snap := s.latency.Snapshot()
	fmt.Fprintf(w, "# HELP fomodeld_request_duration_seconds Request latency.\n")
	fmt.Fprintf(w, "# TYPE fomodeld_request_duration_seconds histogram\n")
	for i, bound := range snap.Bounds {
		fmt.Fprintf(w, "fomodeld_request_duration_seconds_bucket{le=\"%g\"} %d\n", bound, snap.Cumulative[i])
	}
	fmt.Fprintf(w, "fomodeld_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", snap.Count)
	fmt.Fprintf(w, "fomodeld_request_duration_seconds_sum %.6f\n", snap.Sum)
	fmt.Fprintf(w, "fomodeld_request_duration_seconds_count %d\n", snap.Count)
}
