// Package report generates the reproduction report: it runs the paper's
// experiments, extracts the headline metrics, checks each against the
// paper's reported value (with shape-level tolerances — see DESIGN.md §2
// for why absolute CPIs are not the target), and writes a self-contained
// markdown document with verdicts and the full result tables.
package report

import (
	"fmt"
	"io"
	"time"

	"fomodel/internal/experiments"
)

// Check is one paper-vs-measured verdict.
type Check struct {
	// ID names the paper artifact ("fig8", "table1", …).
	ID string
	// Claim states what the paper reports.
	Claim string
	// Measured states what this run produced.
	Measured string
	// Pass records whether the measured value satisfies the tolerance.
	Pass bool
}

// Report holds the verdicts and the rendered experiment bodies.
type Report struct {
	Checks   []Check
	Sections []Section
	// Passed / Total summarize the verdicts.
	Passed, Total int
	// Duration is the total experiment wall time.
	Duration time.Duration
	// N and Seed record the workload configuration.
	N    int
	Seed uint64
}

// Section is one experiment's rendered output.
type Section struct {
	Label string
	Body  string
}

// Generate runs the checked experiments on the suite and assembles the
// report. The experiments are independent, so they fan out across an
// engine pool sized by s.Workers; the checks and sections are assembled
// sequentially afterwards, in the fixed report order, so the generated
// document is identical at any parallelism.
func Generate(s *experiments.Suite) (*Report, error) {
	start := time.Now()
	r := &Report{N: s.N, Seed: s.Seed}

	check := func(id, claim string, pass bool, measuredFormat string, args ...any) {
		r.Checks = append(r.Checks, Check{
			ID:       id,
			Claim:    claim,
			Measured: fmt.Sprintf(measuredFormat, args...),
			Pass:     pass,
		})
	}
	section := func(label string, res experiments.Renderable) {
		r.Sections = append(r.Sections, Section{Label: label, Body: res.Render()})
	}

	// Compute every checked experiment on the engine pool. Each job writes
	// only its own result variable, so the fan-out needs no locks; the
	// verdict logic below runs after all jobs finish.
	var (
		f8  *experiments.Figure8Result
		t1  *experiments.Table1Result
		f2  *experiments.Figure2Result
		f9  *experiments.Figure9Result
		f11 *experiments.Figure11Result
		f14 *experiments.Figure14Result
		f15 *experiments.Figure15Result
		f16 *experiments.Figure16Result
		f17 *experiments.Figure17Result
		f18 *experiments.Figure18Result
		f19 *experiments.Figure19Result
		ss  *experiments.StatSimResult
		rb  *experiments.RefinementResult
	)
	eng := &experiments.Engine{Workers: s.Workers, Timings: s.Timings}
	job := func(name string, run func() error) experiments.Job {
		return experiments.Job{Name: name, Run: run}
	}
	err := eng.Do(
		job("fig8", func() (err error) { f8, err = experiments.Figure8(s); return }),
		job("table1", func() (err error) { t1, err = experiments.Table1(s); return }),
		job("fig2", func() (err error) { f2, err = experiments.Figure2(s); return }),
		job("fig9", func() (err error) { f9, err = experiments.Figure9(s); return }),
		job("fig11", func() (err error) { f11, err = experiments.Figure11(s); return }),
		job("fig14", func() (err error) { f14, err = experiments.Figure14(s); return }),
		job("fig15", func() (err error) { f15, err = experiments.Figure15(s); return }),
		job("fig16", func() (err error) { f16, err = experiments.Figure16(s); return }),
		job("fig17", func() (err error) { f17, err = experiments.Figure17(s); return }),
		job("fig18", func() (err error) { f18, err = experiments.Figure18(s); return }),
		job("fig19", func() (err error) { f19, err = experiments.Figure19(s); return }),
		job("statsim", func() (err error) { ss, err = experiments.StatSimStudy(s); return }),
		job("refine-branch", func() (err error) { rb, err = experiments.BranchBurstRefinement(s); return }),
	)
	if err != nil {
		return nil, err
	}

	// Figure 8 — the canonical transient numbers.
	check("fig8", "drain 2.1, ramp-up 2.7, total 9.7 cycles",
		within(f8.Drain, 1.8, 2.4) && within(f8.RampUp, 2.4, 3.0) && within(f8.Total, 9.2, 10.2),
		"drain %.2f, ramp %.2f, total %.2f", f8.Drain, f8.RampUp, f8.Total)
	section("fig8", f8)

	// Table 1 — the parameter spread.
	vortex, _ := t1.Row("vortex")
	gzip, _ := t1.Row("gzip")
	vpr, _ := t1.Row("vpr")
	check("table1", "beta: vortex (0.7) > gzip (0.5) > vpr (0.3); vpr has the highest latency",
		vortex.Beta > gzip.Beta && gzip.Beta > vpr.Beta &&
			vpr.AvgLatency > vortex.AvgLatency && vpr.AvgLatency > gzip.AvgLatency,
		"beta %.2f / %.2f / %.2f, L(vpr) %.2f", vortex.Beta, gzip.Beta, vpr.Beta, vpr.AvgLatency)
	section("table1", t1)

	// Figure 2 — miss-event independence.
	check("fig2", "independent-sum IPC error ≈5% mean; compensation improves it",
		f2.MeanIndependentErr < 0.08 && f2.MeanCompensatedErr <= f2.MeanIndependentErr,
		"independent %.1f%%, compensated %.1f%%", 100*f2.MeanIndependentErr, 100*f2.MeanCompensatedErr)
	section("fig2", f2)

	// Figure 9 — branch penalty exceeds the pipeline depth.
	allAbove := true
	for _, row := range f9.Rows {
		if row.SimPenalty5 <= 5 || row.SimPenalty9 <= row.SimPenalty5 {
			allAbove = false
		}
	}
	check("fig9", "penalty exceeds the front-end depth and grows with it",
		allAbove, "all %d benchmarks above dP at both depths: %v", len(f9.Rows), allAbove)
	section("fig9", f9)

	// Figure 11 — I-cache penalty ≈ miss delay, depth-independent.
	var num5, num9, den float64
	for _, row := range f11.Rows {
		if row.Misses5 < 1000 {
			continue // noise, as in the paper
		}
		num5 += row.SimPenalty5 * float64(row.Misses5)
		num9 += row.SimPenalty9 * float64(row.Misses5)
		den += float64(row.Misses5)
	}
	pen5, pen9 := num5/den, num9/den
	check("fig11", "penalty ≈ the 8-cycle miss delay, independent of depth",
		within(pen5, 6, 9) && abs(pen5-pen9) < 0.5,
		"%.2f at dP=5, %.2f at dP=9 (miss-weighted)", pen5, pen9)
	section("fig11", f11)

	// Figure 14 — d-miss penalty model tracks simulation.
	var errSum, errN float64
	for _, row := range f14.Rows {
		if row.LongMisses < 200 {
			continue
		}
		errSum += abs(row.ModelPenalty-row.SimPenalty) / row.SimPenalty
		errN++
	}
	check("fig14", "eq. (8) penalty reasonably close to simulation",
		errSum/errN < 0.25, "mean |err| %.1f%% across %d benchmarks", 100*errSum/errN, int(errN))
	section("fig14", f14)

	// Figure 15 — the headline accuracy.
	check("fig15", "average CPI error 5.8%, worst 13%",
		f15.MeanAbsErr < 0.10 && f15.MaxAbsErr < 0.20,
		"average %.1f%%, worst %.1f%% (%s)", 100*f15.MeanAbsErr, 100*f15.MaxAbsErr, f15.WorstBench)
	section("fig15", f15)

	// Figure 16 — stack composition.
	var mcfShare, twolfShare float64
	for _, row := range f16.Rows {
		share := row.Estimate.DCacheCPI / row.Estimate.CPI
		switch row.Name {
		case "mcf":
			mcfShare = share
		case "twolf":
			twolfShare = share
		}
	}
	check("fig16", "long d-misses ≈70% of mcf's CPI and ≈60% of twolf's",
		mcfShare > 0.5 && twolfShare > 0.45,
		"mcf %.0f%%, twolf %.0f%%", 100*mcfShare, 100*twolfShare)
	section("fig16", f16)

	// Figure 17 — optimal pipeline depth.
	check("fig17", "optimum ≈55 stages at width 3, shallower for wider issue",
		within(float64(f17.Optimal[3].Depth), 45, 70) && f17.Optimal[8].Depth < f17.Optimal[2].Depth,
		"optima %d/%d/%d/%d at widths 2/3/4/8",
		f17.Optimal[2].Depth, f17.Optimal[3].Depth, f17.Optimal[4].Depth, f17.Optimal[8].Depth)
	section("fig17", f17)

	// Figure 18 — quadratic prediction requirement.
	mid := len(f18.Fractions) / 2
	ratio := f18.Required[8][mid].InstrBetweenMispredicts / f18.Required[4][mid].InstrBetweenMispredicts
	check("fig18", "doubling the width quadruples the required misprediction distance",
		within(ratio, 3, 5), "ratio %.1f×", ratio)
	section("fig18", f18)

	// Figure 19 — ramp peaks.
	peak := func(width int) float64 {
		p := 0.0
		for _, pt := range f19.Traces[width] {
			if pt.Issue > p {
				p = pt.Issue
			}
		}
		return p
	}
	check("fig19", "width 4 barely reaches 4; width 8 barely exceeds 6",
		within(peak(4), 3.7, 4.0) && within(peak(8), 5.5, 7.5),
		"peaks %.2f and %.2f", peak(4), peak(8))
	section("fig19", f19)

	// Statistical simulation comparison.
	check("statsim", "statistical simulation and the model land in a similar accuracy band",
		ss.MeanStatSimErr < 0.10 && ss.MeanModelErr < 0.10,
		"model %.1f%%, statistical simulation %.1f%%", 100*ss.MeanModelErr, 100*ss.MeanStatSimErr)
	section("statsim", ss)

	// Branch-burst refinement.
	check("refine-branch", "measured burst statistics improve on the midpoint heuristic (§7 #3)",
		rb.MeanMeasuredErr <= rb.MeanMidpointErr+0.01,
		"midpoint %.1f%%, measured %.1f%%", 100*rb.MeanMidpointErr, 100*rb.MeanMeasuredErr)
	section("refine-branch", rb)

	for _, c := range r.Checks {
		r.Total++
		if c.Pass {
			r.Passed++
		}
	}
	r.Duration = time.Since(start)
	return r, nil
}

// Write renders the report as markdown.
func (r *Report) Write(w io.Writer) error {
	fmt.Fprintf(w, "# Reproduction report — A First-Order Superscalar Processor Model\n\n")
	fmt.Fprintf(w, "Karkhanis & Smith, ISCA 2004 · %d-instruction traces, seed %d · %d/%d checks passed · %s\n\n",
		r.N, r.Seed, r.Passed, r.Total, r.Duration.Round(time.Second))
	fmt.Fprintf(w, "| check | paper | measured | verdict |\n|---|---|---|---|\n")
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "**CHECK**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.ID, c.Claim, c.Measured, verdict)
	}
	fmt.Fprintf(w, "\n")
	for _, sec := range r.Sections {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", sec.Label, sec.Body)
	}
	return nil
}

func within(v, lo, hi float64) bool { return v >= lo && v <= hi }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
