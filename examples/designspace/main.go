// Design-space exploration: the payoff of an analytical model. The
// detailed simulator needs seconds per configuration; the first-order
// model, microseconds — so sweeping hundreds of machines is interactive.
//
// This example explores width × window × front-end depth for one workload,
// scores every design by modeled BIPS (using the paper's §6.1 circuit
// assumptions for cycle time), prints the Pareto-optimal frontier, and
// then validates the model's top pick against the detailed simulator.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"fomodel/internal/core"
	"fomodel/internal/iw"
	"fomodel/internal/stats"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

type design struct {
	width, window, depth int
	ipc, bips            float64
}

func main() {
	const bench = "gcc"
	const n = 200000

	tr, err := workload.Generate(bench, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	points, err := iw.Characteristic(tr, iw.DefaultWindows(), iw.Options{})
	if err != nil {
		log.Fatal(err)
	}
	law, err := iw.Fit(points)
	if err != nil {
		log.Fatal(err)
	}
	scfg := stats.DefaultConfig()
	scfg.Warmup = true
	sum, err := stats.Analyze(tr, scfg)
	if err != nil {
		log.Fatal(err)
	}

	widths := []int{2, 4, 8}
	windows := []int{16, 32, 48, 64, 96, 128}
	depths := []int{3, 5, 8, 12, 16, 24, 32, 48, 64, 96}

	start := time.Now()
	var designs []design
	for _, w := range widths {
		for _, win := range windows {
			for _, d := range depths {
				m := core.Machine{
					Width: w, FrontEndDepth: d,
					WindowSize: win, ROBSize: 4 * win,
					ShortMissLatency: 8, LongMissLatency: 200,
				}
				in, err := core.InputsFromCurve(law, points, win, sum)
				if err != nil {
					log.Fatal(err)
				}
				est, err := m.Estimate(in, core.Options{})
				if err != nil {
					log.Fatal(err)
				}
				cycPS := core.TotalFrontEndDelayPS/float64(d) + core.FlipFlopOverheadPS
				designs = append(designs, design{
					width: w, window: win, depth: d,
					ipc:  est.IPC(),
					bips: est.IPC() / cycPS * 1000,
				})
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("evaluated %d designs with the model in %v (%.0f µs each)\n\n",
		len(designs), elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(len(designs)))

	sort.Slice(designs, func(i, j int) bool { return designs[i].bips > designs[j].bips })
	fmt.Println("top 5 by modeled BIPS:")
	for _, d := range designs[:5] {
		fmt.Printf("  width %d, window %3d, depth %2d → IPC %.2f, %.2f BIPS\n",
			d.width, d.window, d.depth, d.ipc, d.bips)
	}

	best := designs[0]
	fmt.Printf("\nvalidating the winner against the detailed simulator...\n")
	ucfg := uarch.DefaultConfig()
	ucfg.Width = best.width
	ucfg.WindowSize = best.window
	ucfg.ROBSize = 4 * best.window
	ucfg.FrontEndDepth = best.depth
	simStart := time.Now()
	r, err := uarch.Simulate(tr, ucfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator: IPC %.2f in %v — model said %.2f (%+.1f%%), and the model\n",
		r.IPC(), time.Since(simStart).Round(time.Millisecond),
		best.ipc, 100*(best.ipc-r.IPC())/r.IPC())
	fmt.Printf("swept the whole space in a fraction of one simulation.\n")
}
