package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fomodel/internal/optimize"
)

const optimizeBody = `{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}},"budget":6}`

func TestOptimizeBadRequests(t *testing.T) {
	s := testServer(Config{})
	cases := []struct {
		name, body, wantSub string
	}{
		{"malformed JSON", `{not json`, "invalid request body"},
		{"unknown field", `{"workloads":[{"bench":"gzip"}],"bogus":1}`, "invalid request body"},
		{"no workloads", `{"bounds":{"width":{"min":1,"max":4}},"budget":4}`, "at least one workload"},
		{"unknown bench", `{"workloads":[{"bench":"nope"}],"bounds":{"width":{"min":1,"max":4}},"budget":4}`, "unknown profile"},
		{"unknown param", `{"workloads":[{"bench":"gzip"}],"bounds":{"l2":{"min":1,"max":4}},"budget":4}`,
			`unknown parameter "l2" (known: clusters, depth, fetch_buffer, rob, width, window)`},
		{"no budget", `{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}}}`, "budget 0 < 1"},
		{"bad objective", `{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}},"budget":4,"objective":"ipc"}`,
			"unknown objective"},
		{"n out of range", `{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}},"budget":4,"n":10}`,
			"outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(s, "/v1/optimize", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\nbody: %s", rec.Code, rec.Body.String())
			}
			if msg := errorBody(t, rec); !strings.Contains(msg, tc.wantSub) {
				t.Errorf("error %q does not mention %q", msg, tc.wantSub)
			}
		})
	}
}

// TestOptimizeBufferedAndCached pins the buffered path: a well-formed
// search answers 200 with a non-empty frontier, and the identical spec
// is a response-cache hit with byte-identical bytes.
func TestOptimizeBufferedAndCached(t *testing.T) {
	s := testServer(Config{})
	first := post(s, "/v1/optimize", optimizeBody)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d\nbody: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if len(resp.Frontier) == 0 || len(resp.Points) == 0 {
		t.Fatalf("empty frontier or history: %s", first.Body.String())
	}
	if resp.Evaluations > 6 {
		t.Errorf("evaluations = %d exceeds budget 6", resp.Evaluations)
	}
	if resp.Render == "" || resp.CSV == "" {
		t.Errorf("missing render or csv")
	}

	second := post(s, "/v1/optimize", optimizeBody)
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if second.Body.String() != first.Body.String() {
		t.Errorf("cached body differs from computed body")
	}
}

// TestOptimizeSpellingsCollapse pins canonicalization: explicit defaults
// and omitted defaults produce one cache key.
func TestOptimizeSpellingsCollapse(t *testing.T) {
	d := Config{N: 20000}.KeyDefaults()
	implicit := optimize.Spec{
		Workloads: []optimize.WorkloadWeight{{Bench: "gzip"}},
		Bounds:    map[string]optimize.Bound{"width": {Min: 1, Max: 4}},
		Budget:    6,
	}
	explicit := optimize.Spec{
		Workloads: []optimize.WorkloadWeight{{Bench: "gzip", Weight: 1}},
		Bounds:    map[string]optimize.Bound{"width": {Min: 1, Max: 4, Step: 1}},
		Objective: "cpi",
		Budget:    6,
		Seed:      1,
		Grid:      3,
		N:         20000,
		TraceSeed: 1,
	}
	k1, err := OptimizeCacheKey(implicit, d)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := OptimizeCacheKey(explicit, d)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("keys differ:\n%q\n%q", k1, k2)
	}
}

// TestOptimizeDeterministicAcrossWorkerCounts pins the worker-count
// independence contract through the real evaluator: two daemons
// configured with different pool sizes produce byte-identical bodies.
func TestOptimizeDeterministicAcrossWorkerCounts(t *testing.T) {
	body := `{"workloads":[{"bench":"gzip"},{"bench":"mcf","weight":2}],` +
		`"bounds":{"width":{"min":1,"max":8}},"budget":8}`
	one := post(testServer(Config{Workers: 1}), "/v1/optimize", body)
	many := post(testServer(Config{Workers: 7}), "/v1/optimize", body)
	if one.Code != http.StatusOK || many.Code != http.StatusOK {
		t.Fatalf("status = %d / %d", one.Code, many.Code)
	}
	if one.Body.String() != many.Body.String() {
		t.Errorf("worker count changed the response body")
	}
}

// TestOptimizeSharesPredictCache pins the cache interplay the design
// demands: optimize evaluations land in the predict response cache, so
// an identically-spelled /v1/predict afterwards is a hit.
func TestOptimizeSharesPredictCache(t *testing.T) {
	s := testServer(Config{})
	if rec := post(s, "/v1/optimize", optimizeBody); rec.Code != http.StatusOK {
		t.Fatalf("optimize status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	// Candidate width=4 was on the coarse grid (bounds 1..4, endpoints
	// included); its evaluation key is the fully-specified predict below.
	rec := post(s, "/v1/predict",
		`{"bench":"gzip","machine":{"width":4,"depth":5,"window":48,"rob":128}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("predict after optimize X-Cache = %q, want hit", got)
	}
}

// TestOptimizeDeadlineEnforced pins the spec-level deadline: a search
// that cannot finish inside deadline_ms answers 503 naming the deadline.
func TestOptimizeDeadlineEnforced(t *testing.T) {
	s := testServer(Config{})
	s.panicHook = func(string) { time.Sleep(30 * time.Millisecond) }
	body := `{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}},"budget":4,"deadline_ms":1}`
	rec := post(s, "/v1/optimize", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\nbody: %s", rec.Code, rec.Body.String())
	}
	if msg := errorBody(t, rec); !strings.Contains(msg, "1ms deadline") {
		t.Errorf("error %q does not name the spec deadline", msg)
	}
}

// TestOptimizeWorkerPanicIsA500 pins the panic net on the buffered path.
func TestOptimizeWorkerPanicIsA500(t *testing.T) {
	s := testServer(Config{})
	s.panicHook = func(string) { panic("injected") }
	rec := post(s, "/v1/optimize", optimizeBody)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500\nbody: %s", rec.Code, rec.Body.String())
	}
	if msg := errorBody(t, rec); !strings.Contains(msg, "internal panic") {
		t.Errorf("error %q does not report the panic", msg)
	}
}

// postOptimizeNDJSON runs one optimize request with the streaming
// Accept header.
func postOptimizeNDJSON(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(body))
	req.Header.Set("Accept", ndjsonContentType)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// parseOptimizeStream splits an NDJSON optimize body into point rows and
// the trailer row.
func parseOptimizeStream(t *testing.T, body string) ([]optimize.Point, OptimizeTrailer) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream has %d rows, want points plus a trailer:\n%s", len(lines), body)
	}
	points := make([]optimize.Point, 0, len(lines)-1)
	for _, line := range lines[:len(lines)-1] {
		var pt optimize.Point
		if err := json.Unmarshal([]byte(line), &pt); err != nil {
			t.Fatalf("bad point row %q: %v", line, err)
		}
		points = append(points, pt)
	}
	var trailer OptimizeTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("bad trailer row %q: %v", lines[len(lines)-1], err)
	}
	return points, trailer
}

// TestStreamedOptimizeMatchesBuffered pins the NDJSON equivalence
// contract: reassembling the streamed rows and trailer reproduces the
// buffered body byte for byte.
func TestStreamedOptimizeMatchesBuffered(t *testing.T) {
	s := testServer(Config{})

	buffered := post(s, "/v1/optimize", optimizeBody)
	if buffered.Code != http.StatusOK {
		t.Fatalf("buffered optimize: status = %d\nbody: %s", buffered.Code, buffered.Body.String())
	}

	streamed := postOptimizeNDJSON(s, optimizeBody)
	if streamed.Code != http.StatusOK {
		t.Fatalf("streamed optimize: status = %d\nbody: %s", streamed.Code, streamed.Body.String())
	}
	if got := streamed.Header().Get("Content-Type"); got != ndjsonContentType {
		t.Errorf("streamed Content-Type = %q, want %q", got, ndjsonContentType)
	}
	if !streamed.Flushed {
		t.Errorf("streamed response was never flushed")
	}

	points, trailer := parseOptimizeStream(t, streamed.Body.String())
	rebuilt, err := EncodeIndented(OptimizeResponse{
		Result: &optimize.Result{
			Spec:        trailer.Spec,
			Points:      points,
			Frontier:    trailer.Frontier,
			Evaluations: trailer.Evaluations,
			Rounds:      trailer.Rounds,
			GridSize:    trailer.GridSize,
			Converged:   trailer.Converged,
		},
		Render: trailer.Render,
		CSV:    trailer.CSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt) != buffered.Body.String() {
		t.Errorf("reassembled stream differs from buffered response\nstream:\n%s\nbuffered:\n%s",
			rebuilt, buffered.Body.String())
	}
}

// TestOptimizeMetricsExposed pins the /metrics wiring: after one search
// the optimize counters are present and moving.
func TestOptimizeMetricsExposed(t *testing.T) {
	s := testServer(Config{})
	if rec := post(s, "/v1/optimize", optimizeBody); rec.Code != http.StatusOK {
		t.Fatalf("optimize status = %d", rec.Code)
	}
	body := get(s, "/metrics").Body.String()
	for _, metric := range []string{
		"fomodeld_optimize_evaluations_total",
		"fomodeld_optimize_evaluation_cache_hits_total",
		"fomodeld_optimize_refinement_rounds_total",
		"fomodeld_optimize_frontier_size 1",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
	if strings.Contains(body, "fomodeld_optimize_evaluations_total 0\n") {
		t.Errorf("evaluation counter did not move:\n%s", body)
	}
}
