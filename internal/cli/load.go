package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fomodel/internal/client"
	"fomodel/internal/server"
	"fomodel/internal/workload"
)

// loadReport is fomodelload's JSON result: client-side counts of what a
// serving endpoint (a single daemon or a proxy fleet) did under a fixed
// keyset, including the X-Cache hit rate the endpoint reported — the
// number the PR7 benchmark compares across routing policies. GOMAXPROCS
// and CPUs record the generator's own parallelism so a single-CPU
// result cannot masquerade as a scaling one.
type loadReport struct {
	URL        string  `json:"url"`
	DurationS  float64 `json:"duration_s"`
	Keys       int     `json:"keys"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
	ReqPerSec  float64 `json:"req_per_sec"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	CPUs       int     `json:"cpus"`
}

// Fomodelload implements cmd/fomodelload: a closed-loop load generator
// for /v1/predict against a daemon or proxy. Its keyset is the cross
// product of the first -benches workloads and the -robs ROB sizes, and
// each worker walks the keyset cyclically through a shared cursor — the
// classic LRU-adversarial access pattern, so a cache smaller than the
// keyset thrashes while a sharded fleet whose partitions each fit
// stays hot. The JSON report goes to out.
func Fomodelload(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fomodelload", flag.ContinueOnError)
	fs.SetOutput(out)
	url := fs.String("url", "http://127.0.0.1:8760", "serving endpoint base URL")
	duration := fs.Duration("duration", 5*time.Second, "timed run length")
	conc := fs.Int("concurrency", 4, "concurrent closed-loop workers")
	benches := fs.Int("benches", 0, "workloads in the keyset (0 = all)")
	robs := fs.String("robs", "128,160,192", "comma-separated ROB sizes forming the keyset")
	warmup := fs.Bool("warmup", true, "serially touch every key once before the timed run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fomodelload: unexpected argument %q", fs.Arg(0))
	}

	names := workload.Names()
	if *benches > 0 && *benches < len(names) {
		names = names[:*benches]
	}
	var robVals []int
	for _, s := range strings.Split(*robs, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("fomodelload: bad -robs value %q", s)
		}
		robVals = append(robVals, v)
	}
	if len(robVals) == 0 {
		return fmt.Errorf("fomodelload: -robs requires at least one ROB size")
	}
	var keyset [][]byte
	for _, rob := range robVals {
		for _, name := range names {
			payload, err := json.Marshal(server.PredictRequest{
				Bench:   name,
				Machine: server.MachineSpec{ROB: rob},
			})
			if err != nil {
				return err
			}
			keyset = append(keyset, payload)
		}
	}

	cl := client.NewPooled(*url, *conc)
	cl.MaxRetries = -1 // shed responses count as errors, not stalls
	shoot := func(ctx context.Context, payload []byte) (hit bool, err error) {
		resp, err := cl.DoRaw(ctx, http.MethodPost, "/v1/predict", payload, nil, false)
		if err != nil {
			return false, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Cache") == "hit", nil
	}

	if *warmup {
		for _, payload := range keyset {
			if _, err := shoot(ctx, payload); err != nil {
				return fmt.Errorf("fomodelload: warmup: %w", err)
			}
		}
	}

	var requests, errors, hits atomic.Int64
	var cursor atomic.Uint64
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				payload := keyset[cursor.Add(1)%uint64(len(keyset))]
				hit, err := shoot(runCtx, payload)
				if runCtx.Err() != nil {
					return
				}
				requests.Add(1)
				switch {
				case err != nil:
					errors.Add(1)
				case hit:
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin).Seconds()

	rep := loadReport{
		URL:        *url,
		DurationS:  elapsed,
		Keys:       len(keyset),
		Requests:   requests.Load(),
		Errors:     errors.Load(),
		Hits:       hits.Load(),
		Misses:     requests.Load() - errors.Load() - hits.Load(),
		ReqPerSec:  float64(requests.Load()) / elapsed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}
	if ok := rep.Requests - rep.Errors; ok > 0 {
		rep.HitRate = float64(rep.Hits) / float64(ok)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
