package core

import (
	"math"
	"testing"

	"fomodel/internal/isa"
)

func TestEffectiveWidthUnlimited(t *testing.T) {
	m := DefaultMachine()
	if got := m.EffectiveWidth(squareLawInputs()); got != 4 {
		t.Fatalf("effective width %v, want 4", got)
	}
}

func TestEffectiveWidthBindsOnMix(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	in.Mix[isa.Load] = 0.4
	m.FUCounts[isa.Load] = 1
	// 1 load port / 0.4 load fraction → 2.5 sustainable IPC.
	if got := m.EffectiveWidth(in); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("effective width %v, want 2.5", got)
	}
	// The steady state and the estimate honor the lowered saturation.
	est, err := m.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.EffectiveWidth != 2.5 {
		t.Fatalf("estimate effective width %v", est.EffectiveWidth)
	}
	if est.SteadyIPC > 2.5 {
		t.Fatalf("steady IPC %v exceeds the FU-limited saturation", est.SteadyIPC)
	}
}

func TestEffectiveWidthIgnoresUnlimitedAndUnusedClasses(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	in.Mix[isa.Div] = 0 // class not present in the stream
	m.FUCounts[isa.Div] = 1
	if got := m.EffectiveWidth(in); got != 4 {
		t.Fatalf("unused limited class lowered width to %v", got)
	}
}

func TestFetchBufferReducesICachePenalty(t *testing.T) {
	base := DefaultMachine()
	buffered := DefaultMachine()
	buffered.FetchBuffer = 16
	in := squareLawInputs()
	a, err := base.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := buffered.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 16 entries at width 4 hide 4 cycles of the 8-cycle miss delay.
	if math.Abs((a.ICacheShortPenalty-b.ICacheShortPenalty)-4) > 1e-9 {
		t.Fatalf("buffer hid %v cycles, want 4", a.ICacheShortPenalty-b.ICacheShortPenalty)
	}
}

func TestFetchBufferCoverageScalesHiding(t *testing.T) {
	m := DefaultMachine()
	m.FetchBuffer = 16
	in := squareLawInputs()
	full, err := m.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := m.Estimate(in, Options{FetchBufferCoverage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if half.ICacheShortPenalty <= full.ICacheShortPenalty {
		t.Fatalf("half coverage (%v) should hide less than full (%v)",
			half.ICacheShortPenalty, full.ICacheShortPenalty)
	}
}

func TestICachePenaltyNeverNegative(t *testing.T) {
	m := DefaultMachine()
	m.FetchBuffer = 10000
	est, err := m.Estimate(squareLawInputs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.ICacheShortPenalty < 0 || est.ICacheLongPenalty < 0 {
		t.Fatalf("negative I-cache penalties: %v / %v", est.ICacheShortPenalty, est.ICacheLongPenalty)
	}
}

func TestTLBTerm(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	// Without a machine TLB latency the term stays zero even with rates.
	in.TLBMissesPerInstr = 0.001
	in.TLBOverlapFactor = 0.5
	est, err := m.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.TLBCPI != 0 {
		t.Fatalf("TLB CPI %v without machine TLB", est.TLBCPI)
	}
	m.TLBMissLatency = 80
	est, err = m.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.TLBPenalty-40) > 1e-12 { // 80 × 0.5 overlap
		t.Fatalf("TLB penalty %v, want 40", est.TLBPenalty)
	}
	if math.Abs(est.TLBCPI-0.04) > 1e-12 {
		t.Fatalf("TLB CPI %v, want 0.04", est.TLBCPI)
	}
	sum := est.SteadyCPI + est.BranchCPI + est.ICacheShortCPI + est.ICacheLongCPI + est.DCacheCPI + est.TLBCPI
	if math.Abs(sum-est.CPI) > 1e-12 {
		t.Fatal("CPI composition lost the TLB term")
	}
}

func TestTLBOverlapDefaultsToIsolated(t *testing.T) {
	m := DefaultMachine()
	m.TLBMissLatency = 80
	in := squareLawInputs()
	in.TLBMissesPerInstr = 0.001
	in.TLBOverlapFactor = 0 // unset → treated as isolated
	est, err := m.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.TLBPenalty != 80 {
		t.Fatalf("TLB penalty %v, want full walk latency", est.TLBPenalty)
	}
}

func TestExtensionValidation(t *testing.T) {
	m := DefaultMachine()
	m.FetchBuffer = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative fetch buffer accepted")
	}
	m = DefaultMachine()
	m.TLBMissLatency = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative TLB latency accepted")
	}
	m = DefaultMachine()
	m.FUCounts[isa.ALU] = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative FU count accepted")
	}
	in := squareLawInputs()
	in.TLBMissesPerInstr = 2
	if err := in.Validate(); err == nil {
		t.Fatal("TLB rate > 1 accepted")
	}
	in = squareLawInputs()
	in.TLBOverlapFactor = -0.5
	if err := in.Validate(); err == nil {
		t.Fatal("negative TLB overlap accepted")
	}
}

func TestClusteringInflatesLatency(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	if got := m.EffectiveLatency(in); got != in.AvgLatency {
		t.Fatalf("unified latency %v, want %v", got, in.AvgLatency)
	}
	m.Clusters = 2
	m.BypassLatency = 1
	if got := m.EffectiveLatency(in); math.Abs(got-(in.AvgLatency+0.5)) > 1e-12 {
		t.Fatalf("2-cluster latency %v, want +0.5", got)
	}
	m.Clusters = 4
	if got := m.EffectiveLatency(in); math.Abs(got-(in.AvgLatency+0.75)) > 1e-12 {
		t.Fatalf("4-cluster latency %v, want +0.75", got)
	}
	// Clustering lowers the modeled steady state on an unsaturated
	// machine.
	m.WindowSize = 8
	unified := DefaultMachine()
	unified.WindowSize = 8
	a := unified.SteadyStateIPC(in, Options{})
	b := m.SteadyStateIPC(in, Options{})
	if b >= a {
		t.Fatalf("clustering did not lower steady IPC: %v vs %v", b, a)
	}
}

func TestBranchMeasuredMode(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	in.BranchBurstFactor = 0.5
	meas, err := m.Estimate(in, Options{BranchMode: BranchMeasured})
	if err != nil {
		t.Fatal(err)
	}
	// ΔP + (drain+ramp)·factor.
	want := float64(m.FrontEndDepth) + (meas.Drain+meas.RampUp)*0.5
	if math.Abs(meas.BranchPenalty-want) > 1e-9 {
		t.Fatalf("measured-burst penalty %v, want %v", meas.BranchPenalty, want)
	}
	// Factor 1 (or unset) reduces to the isolated bound.
	in.BranchBurstFactor = 0
	iso, err := m.Estimate(in, Options{BranchMode: BranchMeasured})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Estimate(in, Options{BranchMode: BranchIsolated})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iso.BranchPenalty-ref.BranchPenalty) > 1e-9 {
		t.Fatalf("unset factor penalty %v, want isolated %v", iso.BranchPenalty, ref.BranchPenalty)
	}
	in.BranchBurstFactor = 1.5
	if err := in.Validate(); err == nil {
		t.Fatal("burst factor > 1 accepted")
	}
}

func TestAllExtensionsCompose(t *testing.T) {
	// Every §7 extension enabled at once must still produce a coherent
	// estimate: positive components, CPI = sum, effective width lowered.
	m := DefaultMachine()
	m.FUCounts[isa.Load] = 1
	m.FetchBuffer = 16
	m.TLBMissLatency = 80
	m.Clusters = 2
	m.BypassLatency = 1
	in := squareLawInputs()
	in.Mix[isa.Load] = 0.35
	in.TLBMissesPerInstr = 0.002
	in.TLBOverlapFactor = 0.6
	in.BranchBurstFactor = 0.7
	est, err := m.Estimate(in, Options{BranchMode: BranchMeasured})
	if err != nil {
		t.Fatal(err)
	}
	if est.EffectiveWidth >= 4 {
		t.Fatalf("effective width %v not lowered by the load port", est.EffectiveWidth)
	}
	sum := est.SteadyCPI + est.BranchCPI + est.ICacheShortCPI + est.ICacheLongCPI + est.DCacheCPI + est.TLBCPI
	if math.Abs(sum-est.CPI) > 1e-12 {
		t.Fatal("composition broken with all extensions")
	}
	if est.TLBCPI <= 0 || est.SteadyCPI <= 0.25 {
		t.Fatalf("extension terms missing: %+v", est)
	}
}
