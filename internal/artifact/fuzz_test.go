package artifact

import (
	"bytes"
	"testing"
)

// FuzzStoreRoundTrip hardens the FOA framing: a freshly encoded
// artifact must decode back to its exact payload, and any truncation or
// single-byte corruption — magic, version bump, key length, key bytes,
// payload length, payload bytes, or checksum — must come back as a
// clean error (a cache miss at the store layer), never a panic and
// never a silently different payload.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add("predict", "key", []byte("payload"), uint8(0), 0)
	f.Add("sweep", "", []byte{}, uint8(1), 3)
	f.Add("predict", "k\x00k", []byte("x"), uint8(0xff), 4) // pos 4 = format version
	f.Add("p", "key", bytes.Repeat([]byte{0xaa}, 100), uint8(7), 90)

	f.Fuzz(func(t *testing.T, kind, key string, payload []byte, mutate uint8, pos int) {
		full := fullKey(kind, key)
		data := encodeFile(full, payload)

		got, err := decodeFile(data, full)
		if err != nil {
			t.Fatalf("freshly encoded artifact rejected: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip changed the payload: %q -> %q", payload, got)
		}

		if pos < 0 {
			pos = -pos
		}
		i := pos % len(data)
		m := append([]byte(nil), data...)
		if mutate == 0 {
			// Truncation: every length field is checked exactly, so any
			// proper prefix must be rejected.
			m = m[:i]
		} else {
			// Corruption: every byte of the frame is covered by magic,
			// version, length, key, or checksum validation, so any
			// single-byte flip must be rejected.
			m[i] ^= mutate
		}
		if _, err := decodeFile(m, full); err == nil {
			t.Fatalf("corrupted frame accepted (pos %d, xor %#x)", i, mutate)
		}
	})
}
