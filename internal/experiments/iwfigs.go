package experiments

import (
	"fmt"
	"math"

	"fomodel/internal/iw"
)

// Figure4Result holds the per-benchmark IW curves of the paper's Fig. 4:
// idealized unit-latency, unlimited-width issue rate versus window size on
// a log2-log2 scale.
type Figure4Result struct {
	Windows []int
	Curves  map[string][]iw.Point
	Order   []string
}

// Figure4 measures the implementation-independent IW curves.
func Figure4(s *Suite) (*Figure4Result, error) {
	res := &Figure4Result{Windows: iw.DefaultWindows(), Curves: make(map[string][]iw.Point)}
	err := s.EachWorkload(func(w *Workload) error {
		res.Curves[w.Name] = w.Points
		res.Order = append(res.Order, w.Name)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// tab builds the result table.
func (r *Figure4Result) tab() *table {
	t := &table{
		title:  "Figure 4: power-law IW curves — log2(issue rate) by log2(window)",
		header: []string{"bench"},
	}
	for _, w := range r.Windows {
		t.header = append(t.header, fmt.Sprintf("W=%d", w))
	}
	for _, name := range r.Order {
		cells := []string{name}
		for _, p := range r.Curves[name] {
			cells = append(cells, f2(math.Log2(p.I)))
		}
		t.addRow(cells...)
	}
	return t
}

// Render prints the table as aligned text.
func (r *Figure4Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure4Result) CSV() string { return r.tab().CSV() }

// Table1Row is one benchmark of the paper's Table 1: the power-law
// parameters and average latency.
type Table1Row struct {
	Name       string
	Alpha      float64
	Beta       float64
	R2         float64
	AvgLatency float64
}

// Table1Result is the full Table 1 (the paper prints gzip, vortex and vpr;
// we compute all benchmarks and mark the paper's three).
type Table1Result struct {
	Rows []Table1Row
}

// PaperTable1Benchmarks are the three illustrative benchmarks the paper
// tabulates, spanning the curve extremes and middle.
var PaperTable1Benchmarks = []string{"gzip", "vortex", "vpr"}

// Table1 fits the power laws and reports the model parameters.
func Table1(s *Suite) (*Table1Result, error) {
	res := &Table1Result{}
	err := s.EachWorkload(func(w *Workload) error {
		res.Rows = append(res.Rows, Table1Row{
			Name:       w.Name,
			Alpha:      w.Law.Alpha,
			Beta:       w.Law.Beta,
			R2:         w.Law.R2,
			AvgLatency: w.Summary.AvgLatency,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Row returns the named row, if present.
func (r *Table1Result) Row(name string) (Table1Row, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return Table1Row{}, false
}

// tab builds the result table.
func (r *Table1Result) tab() *table {
	t := &table{
		title:  "Table 1: power-law parameters (unit latency) and average latency",
		header: []string{"bench", "alpha", "beta", "R2", "avg lat"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f2(row.Alpha), f2(row.Beta), f3(row.R2), f2(row.AvgLatency))
	}
	t.addNote("paper's illustrative rows: gzip (1.3, 0.5, 1.5), vortex (1.2, 0.7, 1.6), vpr (1.7, 0.3, 2.2)")
	return t
}

// Render prints the table as aligned text.
func (r *Table1Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Table1Result) CSV() string { return r.tab().CSV() }

// Figure5Row compares a measured IW point against the fitted line for one
// of the paper's three illustrative benchmarks.
type Figure5Row struct {
	Name      string
	W         int
	MeasuredI float64
	FittedI   float64
}

// Figure5Result is the measured-vs-fit comparison of the paper's Fig. 5.
type Figure5Result struct {
	Rows []Figure5Row
}

// Figure5 evaluates the fit quality for gzip, vortex and vpr.
func Figure5(s *Suite) (*Figure5Result, error) {
	res := &Figure5Result{}
	for _, name := range PaperTable1Benchmarks {
		w, err := s.Workload(name)
		if err != nil {
			return nil, err
		}
		for _, p := range w.Points {
			res.Rows = append(res.Rows, Figure5Row{
				Name:      name,
				W:         p.W,
				MeasuredI: p.I,
				FittedI:   w.Law.Eval(float64(p.W)),
			})
		}
	}
	return res, nil
}

// tab builds the result table.
func (r *Figure5Result) tab() *table {
	t := &table{
		title:  "Figure 5: linear (log-log) fit vs measured IW curve",
		header: []string{"bench", "W", "measured I", "fitted I", "err"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, fmt.Sprintf("%d", row.W), f3(row.MeasuredI), f3(row.FittedI),
			pct(relErr(row.FittedI, row.MeasuredI)))
	}
	return t
}

// Render prints the table as aligned text.
func (r *Figure5Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure5Result) CSV() string { return r.tab().CSV() }

// Figure6Result holds the width-limited IW curves of the paper's Fig. 6
// for one benchmark: the ideal curve follows the power law until it
// saturates at the implemented issue width.
type Figure6Result struct {
	Bench   string
	Windows []int
	// CurvesByWidth maps issue width (0 = unlimited) to measured points.
	CurvesByWidth map[int][]iw.Point
	Widths        []int
}

// Figure6 measures the limited-issue-width IW characteristics (the paper
// plots gcc; widths 2, 4, 8, and unlimited).
func Figure6(s *Suite) (*Figure6Result, error) {
	const bench = "gcc"
	w, err := s.Workload(bench)
	if err != nil {
		return nil, err
	}
	windows := []int{2, 4, 8, 16, 32, 64, 128}
	res := &Figure6Result{
		Bench:         bench,
		Windows:       windows,
		CurvesByWidth: make(map[int][]iw.Point),
		Widths:        []int{0, 8, 4, 2},
	}
	for _, width := range res.Widths {
		pts, err := iw.Characteristic(w.Trace, windows, iw.Options{IssueWidth: width})
		if err != nil {
			return nil, err
		}
		res.CurvesByWidth[width] = pts
	}
	return res, nil
}

// tab builds the result table.
func (r *Figure6Result) tab() *table {
	t := &table{
		title:  fmt.Sprintf("Figure 6: IW characteristic with limited issue width (%s)", r.Bench),
		header: []string{"width"},
	}
	for _, w := range r.Windows {
		t.header = append(t.header, fmt.Sprintf("W=%d", w))
	}
	for _, width := range r.Widths {
		label := "unlimited"
		if width > 0 {
			label = fmt.Sprintf("%d", width)
		}
		cells := []string{label}
		for _, p := range r.CurvesByWidth[width] {
			cells = append(cells, f2(math.Log2(p.I)))
		}
		t.addRow(cells...)
	}
	t.addNote("limited curves follow the ideal curve, then saturate at the issue width")
	return t
}

// Render prints the table as aligned text.
func (r *Figure6Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure6Result) CSV() string { return r.tab().CSV() }
