// Package load type-checks packages of this module for analysis
// without importing golang.org/x/tools. It drives `go list -export`
// to enumerate packages and produce compiler export data for every
// dependency, then parses the target packages from source and
// type-checks them with an importer that reads that export data — the
// same trick x/tools/go/packages uses, reduced to what the in-tree
// analyzers need.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (or the synthetic path a
	// testdata package was checked under).
	Path string

	// Fset positions every file in Files; one Fset is shared by all
	// packages of a load so diagnostics across packages sort globally.
	Fset *token.FileSet

	// Files holds the parsed source files, with comments.
	Files []*ast.File

	// Types is the type-checked package.
	Types *types.Package

	// TypesInfo records the type-checker's resolutions for Files.
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint/load: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint/load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint/load: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer resolving import paths
// through the export-data files recorded by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint/load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// check parses files and type-checks them as one package under
// pkgPath, importing dependencies through imp.
func check(fset *token.FileSet, pkgPath, goVersion string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/load: %v", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint/load: type-checking %s: %v", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: syntax, Types: pkg, TypesInfo: info}, nil
}

// Packages loads, parses, and type-checks every package matching
// patterns, resolved from dir (typically the module root, with
// patterns like "./..."). Only non-test Go files are analyzed;
// dependencies are consumed as compiler export data, never re-parsed.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, gf := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, gf)
		}
		pkg, err := check(fset, t.ImportPath, "", files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Unit type-checks one explicit compilation unit — the go command's
// vettool mode, where the file list and the location of every
// dependency's export data arrive in a config file rather than from
// `go list`. resolve maps an import path (as written in source) to
// its export data file.
func Unit(pkgPath, goVersion string, files []string, resolve func(path string) (string, error)) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return check(fset, pkgPath, goVersion, files, imp)
}

// moduleRoot walks up from dir to the enclosing go.mod. Testdata
// trees live inside the module, so import resolution for their
// dependencies must run from the module root.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint/load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Dir type-checks the single package formed by the non-test .go files
// directly under dir, under the synthetic import path pkgPath. It
// exists for testdata packages, which the go tool refuses to list:
// their imports (standard library or this module's packages) are
// resolved by one `go list -export` run from the module root.
func Dir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint/load: %v", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint/load: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Pre-parse (without resolving) to collect the import set.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lint/load: %v", err)
		}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" {
				imports[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		root, err := moduleRoot(dir)
		if err != nil {
			return nil, err
		}
		var patterns []string
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(root, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	return check(fset, pkgPath, "", files, exportImporter(fset, exports))
}
