package core

// This file maps the paper's notation onto the package's API, for readers
// following along with Karkhanis & Smith (ISCA 2004) in hand.
//
// Paper symbol / equation          → code
// ---------------------------------------------------------------------
// i (fetch/dispatch/issue/retire   → Machine.Width
//   width, §2)
// ΔP (front-end depth)             → Machine.FrontEndDepth
// win_size                         → Machine.WindowSize
// rob_size                         → Machine.ROBSize
// ΔI (L2 access delay)             → Machine.ShortMissLatency
// ΔD (memory latency)              → Machine.LongMissLatency
//
// I = α·W^β (§3, Table 1)          → Inputs.Alpha, Inputs.Beta;
//                                    IWCurve.Eval
// L (average latency, Little's     → Inputs.AvgLatency; the division
//   law I_L = I_1/L)                 I_1/L happens inside IWCurve.Eval
// issue-width saturation (Fig. 6)  → min(width, curve) clip in
//                                    IWCurve.Eval; ablated by
//                                    Options.SmoothSaturation
// CPI_steadystate                  → Estimate.SteadyCPI
//
// win_drain (§4.1, Fig. 8)         → IWCurve.Drain
// ramp_up                          → IWCurve.RampUp (convergence at
//                                    Options.RampEpsilon of steady)
// eq. (2): isolated_brmisp_penalty → Options.BranchMode =
//   = win_drain + ΔP + ramp_up       BranchIsolated
// eq. (3): ΔP + (drain+ramp)/n     → BranchBurst (fixed n) or
//                                    BranchMeasured (measured Σf(i)/i,
//                                    Inputs.BranchBurstFactor — the §7
//                                    refinement #3)
// §5 step 2 "average of 5 and 10"  → BranchMidpoint (the default)
//
// eq. (4,5): ΔI + ramp_up −        → Estimate.ICacheShortPenalty and
//   win_drain                        ICacheLongPenalty (the long variant
//                                    charges the memory latency, for
//                                    fetches missing the L2)
//
// eq. (6): ΔD − rob_fill −         → approximated as ΔD per §4.3 (the
//   win_drain + ramp_up              missing load is old at issue, so
//                                    rob_fill ≈ 0 and drain/ramp offset)
// eq. (7,8): overlap within        → Inputs.OverlapFactor = Σ f_LDM(i)/i
//   rob_size                         (stats.Summary.OverlapFactor);
//                                    Estimate.DCachePenalty = ΔD × factor
//
// eq. (1): CPI = Σ components      → Machine.Estimate → Estimate.CPI
//
// §6.1 depth study (Fig. 17)       → PipelineDepthStudy, OptimalDepth,
//                                    OptimalDepthClosedForm
// §6.2 width study (Figs. 18, 19)  → IssueWidthStudy,
//                                    IWCurve.RampIssueTrace
//
// §7 extensions:
//   #1 limited functional units    → Machine.FUCounts (+ Inputs.Mix)
//   #2 instruction fetch buffers   → Machine.FetchBuffer
//                                    (+ Options.FetchBufferCoverage)
//   #3 partitioned windows         → Machine.Clusters, BypassLatency
//   #4 TLB misses                  → Machine.TLBMissLatency
//                                    (+ Inputs.TLBMissesPerInstr,
//                                    TLBOverlapFactor)
