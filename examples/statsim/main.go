// Statistical simulation vs the first-order model: the paper's related
// work [8-11] estimates performance by measuring program statistics,
// synthesizing a random trace that exhibits them, and timing that trace on
// a simulator. The paper's pitch is that its analytical model gets the
// same accuracy with no simulation at all.
//
// This example runs the three-way comparison on a few benchmarks and
// reports both accuracy and wall-clock cost per methodology.
//
// Run with:
//
//	go run ./examples/statsim
package main

import (
	"fmt"
	"log"
	"time"

	"fomodel/internal/core"
	"fomodel/internal/iw"
	"fomodel/internal/stats"
	"fomodel/internal/statsim"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

func main() {
	const n = 200000
	cfg := uarch.DefaultConfig()

	fmt.Println("bench    reference     model (time)          stat-sim (time)")
	for _, bench := range []string{"gzip", "mcf", "vortex", "vpr"} {
		tr, err := workload.Generate(bench, n, 1)
		if err != nil {
			log.Fatal(err)
		}

		// Reference: detailed simulation of the real trace.
		ref, err := uarch.Simulate(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}

		// Methodology 1: the first-order model (functional analysis only).
		t0 := time.Now()
		points, err := iw.Characteristic(tr, iw.DefaultWindows(), iw.Options{})
		if err != nil {
			log.Fatal(err)
		}
		law, err := iw.Fit(points)
		if err != nil {
			log.Fatal(err)
		}
		scfg := stats.DefaultConfig()
		scfg.Warmup = true
		sum, err := stats.Analyze(tr, scfg)
		if err != nil {
			log.Fatal(err)
		}
		machine := core.DefaultMachine()
		in, err := core.InputsFromCurve(law, points, machine.WindowSize, sum)
		if err != nil {
			log.Fatal(err)
		}
		est, err := machine.Estimate(in, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		modelTime := time.Since(t0)

		// Methodology 2: statistical simulation.
		t0 = time.Now()
		ss, _, err := statsim.Simulate(tr, cfg, 42)
		if err != nil {
			log.Fatal(err)
		}
		ssTime := time.Since(t0)

		fmt.Printf("%-8s CPI %.3f     %.3f (%+.1f%%, %s)   %.3f (%+.1f%%, %s)\n",
			bench, ref.CPI(),
			est.CPI, 100*(est.CPI-ref.CPI())/ref.CPI(), modelTime.Round(time.Millisecond),
			ss.CPI(), 100*(ss.CPI()-ref.CPI())/ref.CPI(), ssTime.Round(time.Millisecond))
	}
	fmt.Println("\nboth methodologies consume the same statistics; the model just skips the")
	fmt.Println("synthetic-trace simulation (and once the statistics are in hand, re-evaluating")
	fmt.Println("the model for a new machine costs microseconds — see examples/designspace).")
}
