// Command fomodelvet runs this repository's project-invariant
// analyzer suite (internal/lint): determinism of the pure model,
// canonical request keying, context and lock discipline, and error
// handling on the serving path.
//
// Two modes:
//
//	fomodelvet [-json] [packages]     # standalone, default ./...
//	go vet -vettool=$(which fomodelvet) ./...
//
// The second mode speaks the go command's vettool protocol (the
// *.cfg unit-checking interface of x/tools' unitchecker), so the
// suite slots into `go vet` with per-package build caching. Exit
// status is non-zero when any diagnostic survives //folint:allow
// filtering; see DESIGN.md §7 for the invariants and the escape
// hatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fomodel/internal/lint"
	"fomodel/internal/lint/driver"
	"fomodel/internal/lint/load"
)

func main() {
	// The go command probes its vet tool before use: -V=full must
	// print a fingerprint line, -flags the supported flags.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(vetUnit(os.Args[1]))
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// standalone loads packages by pattern and prints diagnostics.
func standalone(args []string) int {
	fs := flag.NewFlagSet("fomodelvet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: fomodelvet [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nSuppress a finding with //folint:allow(<analyzer>) <reason>.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := driver.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "fomodelvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
