package experiments

import (
	"fmt"

	"fomodel/internal/core"
	"fomodel/internal/stats"
	"fomodel/internal/uarch"
)

// SweepPoint is one (parameter value, benchmark) sample of a machine
// sweep.
type SweepPoint struct {
	Bench    string
	Value    int
	SimCPI   float64
	ModelCPI float64
	Err      float64
}

// SweepResult is a machine-parameter sweep validating the model across a
// dimension the paper varies analytically.
type SweepResult struct {
	Title      string
	Param      string
	Points     []SweepPoint
	MeanAbsErr float64
}

// tab builds the result table.
func (r *SweepResult) tab() *table {
	t := &table{
		title:  r.Title,
		header: []string{"bench", r.Param, "model CPI", "sim CPI", "err"},
	}
	for _, p := range r.Points {
		t.addRow(p.Bench, fmt.Sprintf("%d", p.Value), f3(p.ModelCPI), f3(p.SimCPI), pct(p.Err))
	}
	t.addNote("mean |err| %s", pct(r.MeanAbsErr))
	return t
}

// Render prints the table as aligned text.
func (r *SweepResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *SweepResult) CSV() string { return r.tab().CSV() }

func (r *SweepResult) finish() {
	for _, p := range r.Points {
		r.MeanAbsErr += abs(p.Err)
	}
	if len(r.Points) > 0 {
		r.MeanAbsErr /= float64(len(r.Points))
	}
}

// sweepJob is one (benchmark, parameter value) cell of a sweep grid.
type sweepJob struct {
	bench string
	value int
}

// sweepGrid flattens a bench × value grid into the job list fed to
// RunOrdered, keeping report order (benchmarks outer, values inner).
func sweepGrid(benches []string, values []int) []sweepJob {
	jobs := make([]sweepJob, 0, len(benches)*len(values))
	for _, b := range benches {
		for _, v := range values {
			jobs = append(jobs, sweepJob{bench: b, value: v})
		}
	}
	return jobs
}

// runSweep executes every grid cell concurrently (bounded by s.Workers)
// and collects the points in grid order.
func runSweep(s *Suite, res *SweepResult, jobs []sweepJob,
	cell func(*Workload, int) (SweepPoint, error)) (*SweepResult, error) {
	err := RunOrdered(s.workers(), len(jobs), func(i int) (SweepPoint, error) {
		w, err := s.Workload(jobs[i].bench)
		if err != nil {
			return SweepPoint{}, err
		}
		return cell(w, jobs[i].value)
	}, func(_ int, pt SweepPoint) error {
		res.Points = append(res.Points, pt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.finish()
	return res, nil
}

// WindowSweep validates the steady-state model through the knee of the IW
// curve: as the window shrinks below saturation, the power law (not the
// width clip) sets the background IPC. Three benchmarks spanning the beta
// range, windows 8–96.
func WindowSweep(s *Suite) (*SweepResult, error) {
	res := &SweepResult{
		Title: "Window sweep: steady state through the IW-curve knee",
		Param: "window",
	}
	jobs := sweepGrid([]string{"gzip", "vortex", "vpr"}, []int{8, 16, 32, 48, 96})
	return runSweep(s, res, jobs, func(w *Workload, win int) (SweepPoint, error) {
		var zero SweepPoint
		sim, err := s.Simulate(w, func(c *uarch.Config) {
			c.WindowSize = win
			if c.ROBSize < win {
				c.ROBSize = win
			}
		})
		if err != nil {
			return zero, err
		}
		m := s.Machine
		m.WindowSize = win
		if m.ROBSize < win {
			m.ROBSize = win
		}
		// Re-derive the measured steady point at this window size.
		in, err := core.InputsFromCurve(w.Law, w.Points, win, w.Summary)
		if err != nil {
			return zero, err
		}
		est, err := m.Estimate(in, modelOptions())
		if err != nil {
			return zero, err
		}
		return SweepPoint{
			Bench:    w.Name,
			Value:    win,
			SimCPI:   sim.CPI(),
			ModelCPI: est.CPI,
			Err:      relErr(est.CPI, sim.CPI()),
		}, nil
	})
}

// ROBSweep validates the data-miss overlap model across reorder-buffer
// sizes: a larger ROB overlaps more long misses, so f_LDM — and with it
// the d-miss CPI — must be re-derived per size. The d-miss-heavy
// benchmarks are the sensitive ones.
func ROBSweep(s *Suite) (*SweepResult, error) {
	res := &SweepResult{
		Title: "ROB sweep: equation (8) overlap across reorder-buffer sizes",
		Param: "rob",
	}
	jobs := sweepGrid([]string{"mcf", "twolf", "gap"}, []int{48, 96, 128, 256})
	return runSweep(s, res, jobs, func(w *Workload, rob int) (SweepPoint, error) {
		var zero SweepPoint
		sim, err := s.Simulate(w, func(c *uarch.Config) { c.ROBSize = rob })
		if err != nil {
			return zero, err
		}
		// Re-analyze with the new grouping horizon.
		scfg := stats.DefaultConfig()
		scfg.Hierarchy = s.Sim.Hierarchy
		scfg.PredictorBits = s.Sim.PredictorBits
		scfg.Latencies = s.Sim.Latencies
		scfg.ROBSize = rob
		scfg.Warmup = s.Sim.Warmup
		sum, err := stats.Analyze(w.Trace, scfg)
		if err != nil {
			return zero, err
		}
		m := s.Machine
		m.ROBSize = rob
		in, err := core.InputsFromCurve(w.Law, w.Points, m.WindowSize, sum)
		if err != nil {
			return zero, err
		}
		est, err := m.Estimate(in, modelOptions())
		if err != nil {
			return zero, err
		}
		return SweepPoint{
			Bench:    w.Name,
			Value:    rob,
			SimCPI:   sim.CPI(),
			ModelCPI: est.CPI,
			Err:      relErr(est.CPI, sim.CPI()),
		}, nil
	})
}
