package experiments

import (
	"fmt"
	"strings"

	"fomodel/internal/core"
)

// Figure17Result is the §6.1 pipeline-depth study: IPC (17a) and BIPS
// (17b) versus front-end depth for several issue widths.
type Figure17Result struct {
	Widths  []int
	Depths  []int
	IPC     map[int][]float64 // width → IPC per depth
	BIPS    map[int][]float64
	Optimal map[int]core.DepthPoint
}

// Figure17 runs the pipeline-depth trend study (widths 2, 3, 4, 8;
// depths 1–100, the paper's x-axis).
func Figure17(s *Suite) (*Figure17Result, error) {
	res := &Figure17Result{
		Widths:  []int{2, 3, 4, 8},
		IPC:     make(map[int][]float64),
		BIPS:    make(map[int][]float64),
		Optimal: make(map[int]core.DepthPoint),
	}
	for d := 1; d <= 100; d++ {
		res.Depths = append(res.Depths, d)
	}
	for _, width := range res.Widths {
		pts, err := core.PipelineDepthStudy(width, res.Depths)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			res.IPC[width] = append(res.IPC[width], p.IPC)
			res.BIPS[width] = append(res.BIPS[width], p.BIPS)
		}
		res.Optimal[width] = core.OptimalDepth(pts)
	}
	return res, nil
}

// tab builds the result table.
func (r *Figure17Result) tab() *table {
	t := &table{
		title:  "Figure 17: IPC (a) and BIPS (b) vs front-end pipeline depth",
		header: []string{"depth"},
	}
	for _, w := range r.Widths {
		t.header = append(t.header, fmt.Sprintf("IPC w=%d", w), fmt.Sprintf("BIPS w=%d", w))
	}
	for i, d := range r.Depths {
		if d != 1 && d%10 != 0 {
			continue
		}
		cells := []string{fmt.Sprintf("%d", d)}
		for _, w := range r.Widths {
			cells = append(cells, f2(r.IPC[w][i]), f2(r.BIPS[w][i]))
		}
		t.addRow(cells...)
	}
	var opt []string
	for _, w := range r.Widths {
		opt = append(opt, fmt.Sprintf("w=%d: %d stages (%.2f BIPS)", w, r.Optimal[w].Depth, r.Optimal[w].BIPS))
	}
	t.addNote("optimal depths: %s", strings.Join(opt, ", "))
	t.addNote("paper: optimum ≈ 55 stages at width 3, shifting shallower as width grows")
	return t
}

// Render prints the table as aligned text.
func (r *Figure17Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure17Result) CSV() string { return r.tab().CSV() }

// Figure18Result is the §6.2 issue-width study: the instructions between
// mispredictions required to spend a given fraction of time within 12.5%%
// of the issue width.
type Figure18Result struct {
	Widths    []int
	Fractions []float64
	// Required[width] holds one entry per fraction.
	Required map[int][]core.WidthRequirement
	// FrontEndDepth is the assumed ΔP.
	FrontEndDepth int
}

// Figure18 runs the issue-width requirement study (widths 4, 8, 16;
// fractions 10–50%, the paper's x-axis).
func Figure18(s *Suite) (*Figure18Result, error) {
	res := &Figure18Result{
		Widths:        []int{4, 8, 16},
		Fractions:     []float64{0.10, 0.20, 0.30, 0.40, 0.50},
		Required:      make(map[int][]core.WidthRequirement),
		FrontEndDepth: s.Machine.FrontEndDepth,
	}
	for _, w := range res.Widths {
		reqs, err := core.IssueWidthStudy(w, res.FrontEndDepth, res.Fractions)
		if err != nil {
			return nil, err
		}
		res.Required[w] = reqs
	}
	return res, nil
}

// tab builds the result table.
func (r *Figure18Result) tab() *table {
	t := &table{
		title:  "Figure 18: instructions between mispredictions needed to stay within 12.5% of issue width",
		header: []string{"% time close"},
	}
	for _, w := range r.Widths {
		t.header = append(t.header, fmt.Sprintf("width %d", w))
	}
	for i, f := range r.Fractions {
		cells := []string{pct(f)}
		for _, w := range r.Widths {
			cells = append(cells, fmt.Sprintf("%.0f", r.Required[w][i].InstrBetweenMispredicts))
		}
		t.addRow(cells...)
	}
	if len(r.Widths) >= 2 {
		mid := len(r.Fractions) / 2
		ratio := r.Required[r.Widths[1]][mid].InstrBetweenMispredicts /
			r.Required[r.Widths[0]][mid].InstrBetweenMispredicts
		t.addNote("doubling the width multiplies the requirement by ≈%.1f (paper: ~4×, i.e. quadratic)", ratio)
	}
	return t
}

// Render prints the table as aligned text.
func (r *Figure18Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure18Result) CSV() string { return r.tab().CSV() }

// Figure19Result is the per-cycle issue rate between two mispredictions
// (the paper's Fig. 19).
type Figure19Result struct {
	Widths []int
	// Traces maps width to the per-cycle issue rates.
	Traces map[int][]core.TransientPoint
	// InstrBudget is the assumed useful-instruction distance between the
	// mispredictions (the paper's average: 1-in-5 branches at 5%
	// misprediction → 100 instructions).
	InstrBudget   float64
	FrontEndDepth int
}

// Figure19 computes the ramp traces for widths 2, 3, 4, 8.
func Figure19(s *Suite) (*Figure19Result, error) {
	res := &Figure19Result{
		Widths:        []int{2, 3, 4, 8},
		Traces:        make(map[int][]core.TransientPoint),
		InstrBudget:   100,
		FrontEndDepth: s.Machine.FrontEndDepth,
	}
	for _, w := range res.Widths {
		curve := squareLawCurve(w)
		res.Traces[w] = curve.RampIssueTrace(res.FrontEndDepth, res.InstrBudget)
	}
	return res, nil
}

// Render prints the issue-rate series and each width's peak.
func (r *Figure19Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 19: per-cycle issue rate between two mispredictions (%g instructions apart, dP=%d)\n",
		r.InstrBudget, r.FrontEndDepth)
	for _, w := range r.Widths {
		peak := 0.0
		for _, p := range r.Traces[w] {
			if p.Issue > peak {
				peak = p.Issue
			}
		}
		fmt.Fprintf(&sb, "width %d: %d cycles, peak issue %.2f\n", w, len(r.Traces[w]), peak)
	}
	sb.WriteString("paper: with width 4 the IPC barely reaches 4; with width 8 it barely exceeds 6\n")
	return sb.String()
}
