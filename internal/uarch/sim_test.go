package uarch

import (
	"math"
	"testing"

	"fomodel/internal/isa"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/workload"
)

// testConfig returns the baseline machine with all miss-events ideal and
// no warmup, for timing micro-tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.IdealICache = true
	cfg.IdealDCache = true
	cfg.IdealPredictor = true
	cfg.Warmup = false
	return cfg
}

// hotPC keeps micro-traces inside one I-cache line so fetch never misses
// even with a real I-cache.
const hotPC = 0x40_0000

func aluInstr(i int) trace.Instruction {
	return trace.Instruction{
		PC: hotPC, Class: isa.ALU,
		Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone,
	}
}

func independent(n int) *trace.Trace {
	tr := &trace.Trace{Name: "indep"}
	for i := 0; i < n; i++ {
		tr.Instrs = append(tr.Instrs, aluInstr(i))
	}
	return tr
}

func chain(n int) *trace.Trace {
	tr := &trace.Trace{Name: "chain"}
	for i := 0; i < n; i++ {
		in := aluInstr(i)
		if i > 0 {
			in.Src1 = int16((i - 1) % isa.NumArchRegs)
		}
		tr.Instrs = append(tr.Instrs, in)
	}
	return tr
}

func mustSim(t *testing.T, tr *trace.Trace, cfg Config) *Result {
	t.Helper()
	r, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIdealIndependentReachesWidth(t *testing.T) {
	r := mustSim(t, independent(20000), testConfig())
	if ipc := r.IPC(); math.Abs(ipc-4) > 0.05 {
		t.Fatalf("ideal IPC %v, want ~4", ipc)
	}
}

func TestChainIPCIsOne(t *testing.T) {
	r := mustSim(t, chain(5000), testConfig())
	if ipc := r.IPC(); math.Abs(ipc-1) > 0.05 {
		t.Fatalf("chain IPC %v, want ~1", ipc)
	}
}

func TestWidthScalesThroughput(t *testing.T) {
	tr := independent(20000)
	cfg := testConfig()
	cfg.Width = 2
	r2 := mustSim(t, tr, cfg)
	cfg.Width = 8
	r8 := mustSim(t, tr, cfg)
	if math.Abs(r2.IPC()-2) > 0.05 {
		t.Fatalf("width-2 IPC %v", r2.IPC())
	}
	if math.Abs(r8.IPC()-8) > 0.2 {
		t.Fatalf("width-8 IPC %v", r8.IPC())
	}
}

func TestLatencyThrottlesChain(t *testing.T) {
	tr := &trace.Trace{Name: "mulchain"}
	for i := 0; i < 2000; i++ {
		in := trace.Instruction{PC: hotPC, Class: isa.Mul,
			Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone}
		if i > 0 {
			in.Src1 = int16((i - 1) % isa.NumArchRegs)
		}
		tr.Instrs = append(tr.Instrs, in)
	}
	r := mustSim(t, tr, testConfig())
	// Mul latency 3 → one instruction per 3 cycles.
	if ipc := r.IPC(); math.Abs(ipc-1.0/3) > 0.02 {
		t.Fatalf("mul chain IPC %v, want ~1/3", ipc)
	}
}

func TestMispredictPenalty(t *testing.T) {
	// Steady independent stream with isolated mispredicted branches:
	// branches with Taken=false at fresh PCs are mispredicted on first
	// sight (gshare counters start weakly taken). Space them far apart
	// and compare against an ideal-predictor run.
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "br"}
		for i := 0; i < 20000; i++ {
			if i%1000 == 500 {
				tr.Instrs = append(tr.Instrs, trace.Instruction{
					PC: hotPC + uint64(i)%64*4, Class: isa.Branch,
					Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
					Taken: false,
				})
				continue
			}
			tr.Instrs = append(tr.Instrs, aluInstr(i))
		}
		return tr
	}
	cfg := testConfig()
	ideal := mustSim(t, mk(), cfg)
	cfg.IdealPredictor = false
	real := mustSim(t, mk(), cfg)
	if real.Mispredicts == 0 {
		t.Fatal("no mispredicts observed")
	}
	perMisp := float64(real.Cycles-ideal.Cycles) / float64(real.Mispredicts)
	// For an independent stream the drain and ramp are fast, so the
	// penalty is dominated by the front-end refill: ΔP .. ΔP + ~12.
	if perMisp < float64(cfg.FrontEndDepth) || perMisp > float64(cfg.FrontEndDepth)+12 {
		t.Fatalf("penalty per misprediction %v, want within [%d, %d]",
			perMisp, cfg.FrontEndDepth, cfg.FrontEndDepth+12)
	}
}

func TestICacheMissPenaltyIsMissDelay(t *testing.T) {
	// Instructions march through fresh code lines; with warmup the lines
	// are in L2, so every new 128-byte line (32 instructions) costs the
	// short miss delay.
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "ic"}
		for i := 0; i < 32*300; i++ {
			in := aluInstr(i)
			in.PC = hotPC + uint64(i)*4
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	ideal := mustSim(t, mk(), cfg)
	cfg.IdealICache = false
	cfg.Warmup = true
	real := mustSim(t, mk(), cfg)
	if real.ICacheShort == 0 {
		t.Fatal("no short I-cache misses observed")
	}
	perMiss := float64(real.Cycles-ideal.Cycles) / float64(real.ICacheShort+real.ICacheLong)
	// Paper §4.2: the penalty ≈ the miss delay (8): the stall is partly
	// hidden by front-end buffering, so allow [0.5·ΔI, 1.3·ΔI].
	delay := float64(cfg.Hierarchy.ShortMissLatency)
	if perMiss < 0.5*delay || perMiss > 1.3*delay {
		t.Fatalf("penalty per I-miss %v, want ≈%v", perMiss, delay)
	}
}

func TestICachePenaltyIndependentOfDepth(t *testing.T) {
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "ic2"}
		for i := 0; i < 32*200; i++ {
			in := aluInstr(i)
			in.PC = hotPC + uint64(i)*4
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	penalty := func(depth int) float64 {
		cfg := testConfig()
		cfg.FrontEndDepth = depth
		ideal := mustSim(t, mk(), cfg)
		cfg.IdealICache = false
		cfg.Warmup = true
		real := mustSim(t, mk(), cfg)
		return float64(real.Cycles-ideal.Cycles) / float64(real.ICacheShort+real.ICacheLong)
	}
	p5, p9 := penalty(5), penalty(9)
	if math.Abs(p5-p9) > 1.0 {
		t.Fatalf("I-cache penalty depends on depth: %v at 5 vs %v at 9", p5, p9)
	}
}

func TestLongDMissBlocksRetirement(t *testing.T) {
	// One cold load at the front of a long independent stream: the ROB
	// fills and the whole stream waits out the memory latency.
	mk := func(cold bool) *trace.Trace {
		tr := &trace.Trace{Name: "d"}
		for i := 0; i < 4000; i++ {
			in := aluInstr(i)
			if cold && i == 100 {
				in.Class = isa.Load
				in.Addr = 0x4000_0000
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	ideal := mustSim(t, mk(false), cfg)
	cfg.IdealDCache = false
	real := mustSim(t, mk(true), cfg)
	if real.DCacheLong != 1 {
		t.Fatalf("long misses %d, want 1", real.DCacheLong)
	}
	penalty := float64(real.Cycles - ideal.Cycles)
	// ≈ ΔD − rob_fill: the ROB keeps dispatching behind the load.
	delta := float64(cfg.Hierarchy.LongMissLatency)
	robFill := float64(cfg.ROBSize / cfg.Width)
	if penalty < delta-robFill-10 || penalty > delta+10 {
		t.Fatalf("long-miss penalty %v, want within [%v, %v]", penalty, delta-robFill-10, delta+10)
	}
}

func TestOverlappingLongMisses(t *testing.T) {
	// Two independent cold loads four instructions apart cost barely
	// more than one.
	mk := func(misses int) *trace.Trace {
		tr := &trace.Trace{Name: "d2"}
		placed := 0
		for i := 0; i < 4000; i++ {
			in := aluInstr(i)
			if i >= 100 && i%4 == 0 && placed < misses {
				in.Class = isa.Load
				in.Addr = 0x4000_0000 + uint64(placed)*128
				placed++
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	cfg.IdealDCache = false
	one := mustSim(t, mk(1), cfg)
	two := mustSim(t, mk(2), cfg)
	extra := float64(two.Cycles - one.Cycles)
	if extra > 20 {
		t.Fatalf("second overlapping miss cost %v extra cycles, want ~0", extra)
	}
}

func TestDistantLongMissesSerialize(t *testing.T) {
	// Two cold loads more than a ROB apart cost ~2× one.
	mk := func(second bool) *trace.Trace {
		tr := &trace.Trace{Name: "d3"}
		for i := 0; i < 4000; i++ {
			in := aluInstr(i)
			if i == 100 || (second && i == 100+1000) {
				in.Class = isa.Load
				in.Addr = 0x4000_0000 + uint64(i)*128
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	cfg.IdealDCache = false
	one := mustSim(t, mk(false), cfg)
	two := mustSim(t, mk(true), cfg)
	extra := float64(two.Cycles - one.Cycles)
	delta := float64(cfg.Hierarchy.LongMissLatency)
	robFill := float64(cfg.ROBSize / cfg.Width)
	if extra < delta-robFill-10 {
		t.Fatalf("distant second miss cost only %v extra cycles, want ≈%v", extra, delta-robFill)
	}
}

func TestSerializeLongMisses(t *testing.T) {
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "ser"}
		for i := 0; i < 2000; i++ {
			in := aluInstr(i)
			if i == 100 || i == 104 {
				in.Class = isa.Load
				in.Addr = 0x4000_0000 + uint64(i)*128
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	cfg.IdealDCache = false
	cfg.SerializeLongMisses = true
	r := mustSim(t, mk(), cfg)
	if r.DCacheLong != 1 {
		t.Fatalf("serialized run charged %d long misses, want 1 (second demoted)", r.DCacheLong)
	}
}

func TestClassificationMatchesStats(t *testing.T) {
	// The simulator's miss-event counts must equal the functional
	// analyzer's — the decoupling invariant the model evaluation relies
	// on.
	tr, err := workload.Generate("gzip", 60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	r, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := stats.DefaultConfig()
	scfg.Warmup = cfg.Warmup
	sum, err := stats.Analyze(tr, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mispredicts != sum.Mispredicts {
		t.Errorf("mispredicts: sim %d vs stats %d", r.Mispredicts, sum.Mispredicts)
	}
	if got, want := r.ICacheShort+r.ICacheLong, sum.ICacheShort+sum.ICacheLong; got != want {
		t.Errorf("I-cache misses: sim %d vs stats %d", got, want)
	}
	if r.DCacheShort != sum.DCacheShort {
		t.Errorf("short D-misses: sim %d vs stats %d", r.DCacheShort, sum.DCacheShort)
	}
	if r.DCacheLong != sum.DCacheLong {
		t.Errorf("long D-misses: sim %d vs stats %d", r.DCacheLong, sum.DCacheLong)
	}
}

func TestDeterminism(t *testing.T) {
	tr, err := workload.Generate("bzip", 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := mustSim(t, tr, DefaultConfig())
	b := mustSim(t, tr, DefaultConfig())
	if a.Cycles != b.Cycles || a.Mispredicts != b.Mispredicts {
		t.Fatal("simulation is not deterministic")
	}
}

func TestIssueHistogramSumsToCycles(t *testing.T) {
	r := mustSim(t, independent(5000), testConfig())
	var total int64
	var instrs int64
	for k, c := range r.IssueHistogram {
		total += c
		instrs += int64(k) * c
	}
	if total != r.Cycles {
		t.Fatalf("histogram cycles %d vs %d", total, r.Cycles)
	}
	if instrs != int64(r.Instructions) {
		t.Fatalf("histogram instructions %d vs %d", instrs, r.Instructions)
	}
}

func TestOccupancyBounds(t *testing.T) {
	r := mustSim(t, chain(3000), testConfig())
	cfg := testConfig()
	if r.AvgWindowOccupancy() > float64(cfg.WindowSize) {
		t.Fatalf("window occupancy %v exceeds capacity", r.AvgWindowOccupancy())
	}
	if r.AvgROBOccupancy() > float64(cfg.ROBSize) {
		t.Fatalf("ROB occupancy %v exceeds capacity", r.AvgROBOccupancy())
	}
	// The ROB holds everything in the window plus issued-but-unretired
	// instructions, so it is at least as full as the window.
	if r.AvgROBOccupancy() < r.AvgWindowOccupancy() {
		t.Fatalf("ROB occupancy %v below window occupancy %v", r.AvgROBOccupancy(), r.AvgWindowOccupancy())
	}
	// A blocked retirement (long miss stream) fills the ROB nearly
	// completely.
	tr := &trace.Trace{Name: "fill"}
	for i := 0; i < 4000; i++ {
		in := aluInstr(i)
		if i%500 == 100 {
			in.Class = isa.Load
			in.Addr = 0x4000_0000 + uint64(i)*128
		}
		tr.Instrs = append(tr.Instrs, in)
	}
	cfg2 := testConfig()
	cfg2.IdealDCache = false
	blocked := mustSim(t, tr, cfg2)
	if blocked.AvgROBOccupancy() < float64(cfg2.ROBSize)*0.7 {
		t.Fatalf("blocked-retirement ROB occupancy %v, want near %d", blocked.AvgROBOccupancy(), cfg2.ROBSize)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.FrontEndDepth = 0 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.WindowSize = 0 },
		func(c *Config) { c.ROBSize = c.WindowSize - 1 },
		func(c *Config) { c.Latencies[isa.ALU] = 0 },
		func(c *Config) { c.Hierarchy.L2.Assoc = 0 },
		func(c *Config) { c.PredictorBits = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Simulate(independent(10), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Simulate(&trace.Trace{Name: "e"}, DefaultConfig()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestSmallerWindowLowersILP(t *testing.T) {
	// A mixed trace with medium dependences benefits from a bigger
	// window.
	tr, err := workload.Generate("bzip", 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.WindowSize = 4
	cfg.ROBSize = 128
	small := mustSim(t, tr, cfg)
	cfg.WindowSize = 48
	big := mustSim(t, tr, cfg)
	if small.IPC() >= big.IPC() {
		t.Fatalf("window 4 IPC %v not below window 48 IPC %v", small.IPC(), big.IPC())
	}
}

func TestCPIAndIPCConsistency(t *testing.T) {
	r := mustSim(t, independent(1000), testConfig())
	if math.Abs(r.CPI()*r.IPC()-1) > 1e-9 {
		t.Fatalf("CPI %v and IPC %v are not reciprocal", r.CPI(), r.IPC())
	}
	var empty Result
	if empty.CPI() != 0 || empty.IPC() != 0 || empty.AvgWindowOccupancy() != 0 || empty.AvgROBOccupancy() != 0 {
		t.Fatal("zero result not zero-valued")
	}
}

func TestRetireWidthBoundsDrain(t *testing.T) {
	// One long miss at the head blocks retirement while ~ROB instructions
	// finish behind it; once the data returns, retirement drains them at
	// the retire width, so the tail costs ≈ ROB/width extra cycles.
	mk := func(width int) int64 {
		tr := &trace.Trace{Name: "drain"}
		for i := 0; i < 2000; i++ {
			in := aluInstr(i)
			if i == 0 {
				in.Class = isa.Load
				in.Addr = 0x4000_0000
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		cfg := testConfig()
		cfg.Width = width
		cfg.IdealDCache = false
		r := mustSim(t, tr, cfg)
		return r.Cycles
	}
	wide := mk(8)
	narrow := mk(2)
	// The narrow machine takes at least the extra instructions/width
	// difference longer; crudely, cycles(2) > cycles(8).
	if narrow <= wide {
		t.Fatalf("retire width has no effect: %d vs %d cycles", narrow, wide)
	}
}

func TestIssueTraceRecording(t *testing.T) {
	cfg := testConfig()
	cfg.RecordIssueTrace = true
	r := mustSim(t, independent(2000), cfg)
	if int64(len(r.IssueTrace)) != r.Cycles {
		t.Fatalf("issue trace length %d vs %d cycles", len(r.IssueTrace), r.Cycles)
	}
	var sum int64
	for _, v := range r.IssueTrace {
		sum += int64(v)
	}
	if sum != int64(r.Instructions) {
		t.Fatalf("issue trace sums to %d, want %d", sum, r.Instructions)
	}
	cfg.RecordIssueTrace = false
	r2 := mustSim(t, independent(2000), cfg)
	if len(r2.IssueTrace) != 0 {
		t.Fatal("issue trace recorded without the flag")
	}
}
