// The same nondeterminism sources as the detrand fixture, but loaded
// under a serving-package import path: none of it may be flagged —
// servers are allowed clocks, jitter, and map-order metrics.
package server

import (
	"math/rand"
	"time"
)

func deadline() time.Time { return time.Now().Add(time.Second) }

func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

func anyOrder(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
