package experiments

import (
	"fmt"
	"math"
	"sort"
)

// SeedsResult checks that the headline Fig. 15 accuracy is a property of
// the model, not of one lucky workload draw: the whole pipeline —
// generation, analysis, model, simulation — is repeated across independent
// seeds and the spread of the mean CPI error is reported.
type SeedsResult struct {
	Seeds []uint64
	// MeanErrs[i] is the Fig. 15 mean |CPI error| under Seeds[i].
	MeanErrs []float64
	// Mean and Stddev summarize the per-seed means.
	Mean, Stddev float64
	// WorstBench counts how often each benchmark was the worst case.
	WorstBench map[string]int
}

// SeedRobustness reruns Figure 15 across five seeds.
func SeedRobustness(s *Suite) (*SeedsResult, error) {
	res := &SeedsResult{WorstBench: make(map[string]int)}
	for i := 0; i < 5; i++ {
		seed := s.Seed + uint64(i)*1000
		sub := NewSuite(s.N, seed)
		sub.Names = s.Names
		sub.Machine = s.Machine
		sub.Sim = s.Sim
		f15, err := Figure15(sub)
		if err != nil {
			return nil, err
		}
		res.Seeds = append(res.Seeds, seed)
		res.MeanErrs = append(res.MeanErrs, f15.MeanAbsErr)
		res.WorstBench[f15.WorstBench]++
	}
	var sum, sumSq float64
	for _, e := range res.MeanErrs {
		sum += e
		sumSq += e * e
	}
	n := float64(len(res.MeanErrs))
	res.Mean = sum / n
	res.Stddev = math.Sqrt(math.Max(0, sumSq/n-res.Mean*res.Mean))
	return res, nil
}

// tab builds the result table.
func (r *SeedsResult) tab() *table {
	t := &table{
		title:  "Seed robustness: Fig. 15 mean CPI error across independent workload draws",
		header: []string{"seed", "mean |err|"},
	}
	for i, seed := range r.Seeds {
		t.addRow(fmt.Sprintf("%d", seed), pct(r.MeanErrs[i]))
	}
	t.addNote("mean of means %s ± %s", pct(r.Mean), pct(r.Stddev))
	// Deterministic note order (map iteration order is randomized):
	// most-frequent worst case first, ties by name.
	benches := make([]string, 0, len(r.WorstBench))
	for bench := range r.WorstBench {
		benches = append(benches, bench)
	}
	sort.Slice(benches, func(i, j int) bool {
		if r.WorstBench[benches[i]] != r.WorstBench[benches[j]] {
			return r.WorstBench[benches[i]] > r.WorstBench[benches[j]]
		}
		return benches[i] < benches[j]
	})
	for _, bench := range benches {
		t.addNote("worst benchmark %s in %d/%d runs", bench, r.WorstBench[bench], len(r.Seeds))
	}
	return t
}

// Render prints the table as aligned text.
func (r *SeedsResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *SeedsResult) CSV() string { return r.tab().CSV() }
