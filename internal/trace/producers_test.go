package trace

import (
	"testing"

	"fomodel/internal/isa"
)

// TestComputeProducers checks the links on a hand-built trace exercising
// every case: no sources, an unwritten register, a rewritten register,
// and an instruction reading its own earlier output chain.
func TestComputeProducers(t *testing.T) {
	tr := &Trace{Name: "links", Instrs: []Instruction{
		{Class: isa.ALU, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone}, // 0: writes r1
		{Class: isa.ALU, Dest: 2, Src1: 1, Src2: 3},                     // 1: reads r1 (from 0), r3 (never written)
		{Class: isa.ALU, Dest: 1, Src1: 2, Src2: isa.RegNone},           // 2: reads r2 (from 1), rewrites r1
		{Class: isa.ALU, Dest: isa.RegNone, Src1: 1, Src2: 2},           // 3: reads r1 (from 2, not 0), r2 (from 1)
	}}
	want := []Producer{
		{Src1: -1, Src2: -1},
		{Src1: 0, Src2: -1},
		{Src1: 1, Src2: -1},
		{Src1: 2, Src2: 1},
	}
	got := ComputeProducers(tr)
	if len(got) != len(want) {
		t.Fatalf("got %d links, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("instr %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestComputeProducersEmpty confirms the degenerate case allocates nothing
// surprising.
func TestComputeProducersEmpty(t *testing.T) {
	if got := ComputeProducers(&Trace{Name: "empty"}); len(got) != 0 {
		t.Fatalf("empty trace produced %d links", len(got))
	}
}

// TestComputeProducersMatchesIncremental cross-checks the one-pass
// precomputation against the incremental last-writer fill the simulators
// used to perform inline, on a generated-looking pseudo-random trace.
func TestComputeProducersMatchesIncremental(t *testing.T) {
	// Simple deterministic LCG; no seeding subtleties needed here.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	tr := &Trace{Name: "rand"}
	for i := 0; i < 5000; i++ {
		in := Instruction{Class: isa.ALU, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
		if next(4) > 0 {
			in.Dest = int16(next(isa.NumArchRegs))
		}
		if next(3) > 0 {
			in.Src1 = int16(next(isa.NumArchRegs))
		}
		if next(3) > 0 {
			in.Src2 = int16(next(isa.NumArchRegs))
		}
		tr.Instrs = append(tr.Instrs, in)
	}

	got := ComputeProducers(tr)
	var lastWriter [isa.NumArchRegs]int32
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		want := Producer{Src1: -1, Src2: -1}
		if in.Src1 >= 0 {
			want.Src1 = lastWriter[in.Src1]
		}
		if in.Src2 >= 0 {
			want.Src2 = lastWriter[in.Src2]
		}
		if got[i] != want {
			t.Fatalf("instr %d: got %+v, want %+v", i, got[i], want)
		}
		if in.Dest >= 0 {
			lastWriter[in.Dest] = int32(i)
		}
	}
}
