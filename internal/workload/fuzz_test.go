package workload

import (
	"strings"
	"testing"
)

// FuzzReadProfile hardens the JSON profile decoder: arbitrary input must
// produce either an error or a profile that validates and generates a
// structurally valid trace.
func FuzzReadProfile(f *testing.F) {
	var sb strings.Builder
	if err := WriteProfile(&sb, baseProfile("seed")); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())
	f.Add(`{}`)
	f.Add(`{"name":"x"}`)
	f.Add(`{"name":"x","mix":{"alu":1}}`)
	f.Add(`not json`)

	f.Fuzz(func(t *testing.T, data string) {
		p, err := ReadProfile(strings.NewReader(data))
		if err != nil {
			return
		}
		g, err := NewGenerator(p, 1)
		if err != nil {
			t.Fatalf("validated profile rejected by generator: %v", err)
		}
		tr, err := g.Generate(500)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("generated trace invalid: %v", err)
		}
	})
}
