// Package errdrop forbids silently discarded errors on the serving
// and persistence paths: HTTP handlers (internal/server), the proxy
// forward path (internal/router), and the artifact store
// (internal/artifact). These are exactly the places where a dropped
// error turns into a wrong response or silent data loss — a Marshal
// error swallowed in a handler serves an empty body with a 200, a
// dropped write error persists a truncated artifact — and where PR 6
// (silent body truncation) and PR 5 (cache error joins) have already
// paid for the pattern once.
//
// Two shapes are flagged:
//
//   - an assignment that sends an error result to the blank
//     identifier (`body, _ := json.Marshal(x)`, `_ = f()`), and
//   - an expression statement whose call returns an error that
//     nobody reads (`enc.Encode(v)` as a whole statement).
//
// Deferred calls are exempt: `defer f.Close()` on a read-side file is
// the accepted idiom. fmt.Fprint/Fprintf/Fprintln in statement
// position are exempt too — the plaintext metrics dumps are a wall of
// Fprintf calls to an http.ResponseWriter, and a short write there is
// a client disconnect nothing server-side can act on. Genuinely
// best-effort calls — cleanup where failure is the desired no-op —
// take //folint:allow(errdrop) with the reason failure is acceptable.
package errdrop

import (
	"go/ast"
	"go/types"

	"fomodel/internal/lint/analysis"
)

// Packages scopes the analyzer to the error-critical paths.
var Packages = map[string]bool{
	"fomodel/internal/server":   true,
	"fomodel/internal/router":   true,
	"fomodel/internal/artifact": true,
	"fomodel/internal/registry": true,
}

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarded errors in handlers, the router forward path, and the artifact store",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ExprStmt:
				checkExprStmt(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags blank identifiers receiving error values.
func checkAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	// Case 1: one multi-value call on the right.
	if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
		tuple, ok := pass.TypesInfo.Types[asg.Rhs[0]].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(asg.Lhs) {
			return
		}
		for i, lhs := range asg.Lhs {
			if isBlank(lhs) && analysis.IsErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded with _: handle it or annotate why failure is acceptable here",
					callName(pass, asg.Rhs[0]))
			}
		}
		return
	}
	// Case 2: parallel assignment, element-wise.
	if len(asg.Lhs) == len(asg.Rhs) {
		for i, lhs := range asg.Lhs {
			if !isBlank(lhs) {
				continue
			}
			tv, ok := pass.TypesInfo.Types[asg.Rhs[i]]
			if ok && analysis.IsErrorType(tv.Type) {
				pass.Reportf(lhs.Pos(), "error value of %s discarded with _: handle it or annotate why failure is acceptable here",
					callName(pass, asg.Rhs[i]))
			}
		}
	}
}

// checkExprStmt flags statement-level calls whose error results are
// implicitly dropped.
func checkExprStmt(pass *analysis.Pass, stmt *ast.ExprStmt) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if analysis.IsPkgFunc(pass.TypesInfo, call, "fmt", "Fprint", "Fprintf", "Fprintln") {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if analysis.IsErrorType(t.At(i).Type()) {
				pass.Reportf(call.Pos(), "error result of %s ignored: handle it or annotate why failure is acceptable here",
					callName(pass, call))
				return
			}
		}
	default:
		if analysis.IsErrorType(tv.Type) {
			pass.Reportf(call.Pos(), "error result of %s ignored: handle it or annotate why failure is acceptable here",
				callName(pass, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a short name for the offending call.
func callName(pass *analysis.Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "expression"
	}
	if f := analysis.Callee(pass.TypesInfo, call); f != nil {
		if _, typ := analysis.RecvTypeName(f); typ != "" {
			return typ + "." + f.Name()
		}
		if f.Pkg() != nil && f.Pkg() != pass.Pkg {
			return f.Pkg().Name() + "." + f.Name()
		}
		return f.Name()
	}
	return types.ExprString(call.Fun)
}
