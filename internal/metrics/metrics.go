// Package metrics provides the lock-free instrumentation primitives
// shared by every surface that reports operational counters: the
// simulator's prep cache, the experiment suite's -timing counters, and
// the fomodeld daemon's /metrics endpoint all count through the types
// defined here, so a number printed by the CLI and the same number
// scraped from the server come from one source.
//
// All types are safe for concurrent use, and every method is a no-op (or
// returns zero) on a nil receiver, so instrumented code paths need no
// guards.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count; zero on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways (e.g. requests
// currently in flight).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the gauge value outright, for gauges that publish the
// result of a completed action (e.g. the last optimize search's frontier
// size) rather than a running delta.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Load returns the current value; zero on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed cumulative buckets, in
// the Prometheus style: bucket i counts observations ≤ Bounds[i], plus a
// final +Inf bucket. The observation sum is kept in nanosecond-style
// integer units scaled by 1e9 so it can be accumulated atomically.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumNano atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Int64, len(b)+1),
	}
}

// DefaultLatencyBounds are request-latency bucket bounds in seconds,
// spanning cache hits (sub-millisecond) to long cold sweeps.
func DefaultLatencyBounds() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}
}

// HedgeLatencyBounds are finer-grained latency bucket bounds in seconds
// for routing decisions: the fomodelproxy derives its hedge delay from a
// high quantile of observed upstream latency, and cache-hot responses
// live well under the 1ms floor of DefaultLatencyBounds, so the hedge
// histogram needs sub-millisecond resolution to produce a useful P99.
func HedgeLatencyBounds() []float64 {
	return []float64{0.0002, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10}
}

// Quantile returns an upper-bound estimate of the q-th quantile
// (0 < q ≤ 1) of the observed values: the smallest bucket bound whose
// cumulative count covers at least a q fraction of all observations.
// With no observations it returns 0; when the quantile falls in the
// overflow (+Inf) bucket it returns +Inf — callers clamp to their own
// ceiling. The estimate is conservative (never below the true
// quantile), which is the right bias for hedge delays: hedging slightly
// late wastes less than hedging everything.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	snap := h.Snapshot()
	if snap.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(snap.Count)))
	if target < 1 {
		target = 1
	}
	for i, bound := range snap.Bounds {
		if snap.Cumulative[i] >= target {
			return bound
		}
	}
	return math.Inf(1)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(math.Round(v * 1e9)))
}

// HistogramSnapshot is a consistent-enough copy of a histogram's state
// for rendering (individual fields are read atomically; the snapshot as a
// whole may straddle concurrent observations, which Prometheus-style
// scrapers tolerate).
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds.
	Bounds []float64
	// Cumulative[i] counts observations ≤ Bounds[i]; the final implicit
	// +Inf bucket equals Count.
	Cumulative []int64
	// Count is the total number of observations and Sum their total.
	Count int64
	Sum   float64
}

// Snapshot returns the current bucket counts, cumulative per bound.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.bounds)),
		Count:      h.count.Load(),
		Sum:        float64(h.sumNano.Load()) / 1e9,
	}
	var running int64
	for i := range h.bounds {
		running += h.buckets[i].Load()
		s.Cumulative[i] = running
	}
	return s
}
