package experiments

import (
	"time"

	"fomodel/internal/sampling"
	"fomodel/internal/statsim"
)

// MethodsRow compares every estimation methodology in the repository on
// one benchmark against full detailed simulation.
type MethodsRow struct {
	Name   string
	RefCPI float64
	// Model / StatSim / Sampled are the estimates; the *Err fields their
	// relative errors.
	Model, StatSim, Sampled          float64
	ModelErr, StatSimErr, SampledErr float64
}

// MethodsResult is the accuracy/cost landscape the paper's introduction
// draws: detailed simulation is the accurate-but-slow reference, and the
// alternatives trade accuracy for speed in different ways.
type MethodsResult struct {
	Rows []MethodsRow
	// Mean errors per methodology.
	MeanModelErr, MeanStatSimErr, MeanSampledErr float64
	// Wall-clock totals per methodology across all benchmarks (the
	// reference simulation time is RefTime).
	RefTime, ModelTime, StatSimTime, SampledTime time.Duration
	// SampledFraction is the fraction of each trace timed by sampling.
	SampledFraction float64
}

// MethodologyComparison runs the four-way study. The model's time counts
// only Estimate evaluation (its trace analyses are shared with the other
// methodologies and already cached in the suite).
func MethodologyComparison(s *Suite) (*MethodsResult, error) {
	res := &MethodsResult{}
	// Longer windows shrink sampling's end-of-window drain bias (each
	// window pays the full latency of its in-flight misses before it can
	// finish); N/40-instruction windows (25% of the trace timed) keep it moderate.
	sc := sampling.Config{WindowLen: s.N / 40, Period: s.N / 10}
	// Each benchmark's methodology times are measured on its own worker
	// goroutine and summed afterwards, so the CPU-time totals are the same
	// whether the benchmarks run sequentially or fan out.
	type benchResult struct {
		row                              MethodsRow
		refT, modelT, statSimT, sampledT time.Duration
		sampledFraction                  float64
	}
	results, err := MapWorkloads(s, func(w *Workload) (benchResult, error) {
		var br benchResult
		t0 := time.Now()
		ref, err := s.Simulate(w, nil)
		if err != nil {
			return br, err
		}
		br.refT = time.Since(t0)

		t0 = time.Now()
		est, err := s.Machine.Estimate(w.Inputs, modelOptions())
		if err != nil {
			return br, err
		}
		br.modelT = time.Since(t0)

		t0 = time.Now()
		ss, _, err := statsim.Simulate(w.Trace, s.Sim, s.Seed+0x5757)
		if err != nil {
			return br, err
		}
		br.statSimT = time.Since(t0)

		t0 = time.Now()
		sp, err := sampling.Estimate(w.Trace, s.Sim, sc)
		if err != nil {
			return br, err
		}
		br.sampledT = time.Since(t0)
		br.sampledFraction = sp.SampledFraction()

		br.row = MethodsRow{
			Name:    w.Name,
			RefCPI:  ref.CPI(),
			Model:   est.CPI,
			StatSim: ss.CPI(),
			Sampled: sp.CPI,
		}
		br.row.ModelErr = relErr(br.row.Model, br.row.RefCPI)
		br.row.StatSimErr = relErr(br.row.StatSim, br.row.RefCPI)
		br.row.SampledErr = relErr(br.row.Sampled, br.row.RefCPI)
		return br, nil
	})
	if err != nil {
		return nil, err
	}
	for _, br := range results {
		res.Rows = append(res.Rows, br.row)
		res.RefTime += br.refT
		res.ModelTime += br.modelT
		res.StatSimTime += br.statSimT
		res.SampledTime += br.sampledT
		res.SampledFraction = br.sampledFraction
	}
	n := float64(len(res.Rows))
	for _, r := range res.Rows {
		res.MeanModelErr += abs(r.ModelErr)
		res.MeanStatSimErr += abs(r.StatSimErr)
		res.MeanSampledErr += abs(r.SampledErr)
	}
	res.MeanModelErr /= n
	res.MeanStatSimErr /= n
	res.MeanSampledErr /= n
	return res, nil
}

// tab builds the result table.
func (r *MethodsResult) tab() *table {
	t := &table{
		title:  "Methodology comparison (reference: full detailed simulation)",
		header: []string{"bench", "reference", "model", "err", "stat-sim", "err", "sampled", "err"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.RefCPI),
			f3(row.Model), pct(row.ModelErr),
			f3(row.StatSim), pct(row.StatSimErr),
			f3(row.Sampled), pct(row.SampledErr))
	}
	t.addNote("mean |err|: model %s, statistical simulation %s, %s-sampled simulation %s",
		pct(r.MeanModelErr), pct(r.MeanStatSimErr), pct(r.SampledFraction), pct(r.MeanSampledErr))
	t.addNote("sampled CPI is biased up by the end-of-window drain of in-flight misses;")
	t.addNote("the bias shrinks with window length")
	t.addNote("wall clock: reference %v, model %v, stat-sim %v, sampled %v",
		r.RefTime.Round(time.Millisecond), r.ModelTime.Round(time.Microsecond),
		r.StatSimTime.Round(time.Millisecond), r.SampledTime.Round(time.Millisecond))
	return t
}

// Render prints the table as aligned text.
func (r *MethodsResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *MethodsResult) CSV() string { return r.tab().CSV() }
