package experiments

import (
	"fmt"
	"strings"
)

// Figure13Result is the paper's Fig. 13: two overlapped long data misses
// within ROB distance of each other, showing that the pair costs about
// one isolated penalty (equation 7's y-cancellation).
type Figure13Result struct {
	// PairCycles / IsolatedCycles are the total transient lengths of the
	// overlapped pair and of a single isolated miss, measured from the
	// generated traces.
	PairCycles     int
	IsolatedCycles int
	// Y is the issue stagger between the two loads.
	Y       int
	Machine machineDesc
	Trace   string
}

// machineDesc keeps just the parameters the figure caption needs.
type machineDesc struct {
	MissDelay, ROB int
}

// Figure13 generates the overlapped-pair transient and compares its total
// cost against the isolated transient of Fig. 12.
func Figure13(s *Suite) (*Figure13Result, error) {
	m := s.Machine
	curve := squareLawCurve(m.Width)
	occupancy := m.WindowSize / 2
	const y = 8
	pair := curve.PairedDCacheTransient(float64(m.WindowSize), m.ROBSize, occupancy,
		m.LongMissLatency, y, 3, transientEpsilon)
	single := curve.DCacheTransient(float64(m.WindowSize), m.ROBSize, occupancy,
		m.LongMissLatency, 3, transientEpsilon)
	return &Figure13Result{
		PairCycles:     len(pair),
		IsolatedCycles: len(single),
		Y:              y,
		Machine:        machineDesc{MissDelay: m.LongMissLatency, ROB: m.ROBSize},
		Trace:          renderTransient(pair),
	}, nil
}

// Render prints the pair transient and the equation-(7) comparison.
func (r *Figure13Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 13: two overlapped long data misses (dD=%d, rob=%d, y=%d)\n",
		r.Machine.MissDelay, r.Machine.ROB, r.Y)
	fmt.Fprintf(&sb, "pair transient %d cycles vs isolated %d + %d stagger — the pair costs ≈ one\n",
		r.PairCycles, r.IsolatedCycles, r.Y)
	fmt.Fprintf(&sb, "isolated penalty (eq. 7: the y terms cancel), so each miss costs half\n")
	sb.WriteString(r.Trace)
	return sb.String()
}
