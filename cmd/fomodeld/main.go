// Command fomodeld serves first-order CPI predictions over HTTP: see
// internal/server for the API and internal/cli.Fomodeld for the flags.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fomodel/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Fomodeld(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fomodeld:", err)
		os.Exit(1)
	}
}
