package reqkey

import (
	"strings"
	"testing"
)

// TestCanonicalFormat pins the key encoding: endpoint, NUL, compact
// JSON in struct-field order. The daemon's response cache stored keys in
// exactly this shape before the derivation moved here; changing it would
// silently split proxy and daemon keyspaces.
func TestCanonicalFormat(t *testing.T) {
	type req struct {
		Bench string `json:"bench"`
		N     int    `json:"n,omitempty"`
	}
	key, err := Canonical("predict", req{Bench: "gzip", N: 500000})
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	want := "predict\x00{\"bench\":\"gzip\",\"n\":500000}"
	if key != want {
		t.Errorf("key = %q, want %q", key, want)
	}
	if !strings.HasPrefix(key, "predict\x00") {
		t.Errorf("key %q should start with the endpoint and a NUL", key)
	}
}

// TestCanonicalDeterministic pins that equal values give equal keys and
// different values different keys.
func TestCanonicalDeterministic(t *testing.T) {
	type req struct {
		Bench string `json:"bench"`
	}
	a, _ := Canonical("predict", req{Bench: "gzip"})
	b, _ := Canonical("predict", req{Bench: "gzip"})
	c, _ := Canonical("predict", req{Bench: "mcf"})
	d, _ := Canonical("sweep", req{Bench: "gzip"})
	if a != b {
		t.Errorf("equal values keyed differently: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different values share key %q", a)
	}
	if a == d {
		t.Errorf("different endpoints share key %q", a)
	}
}

// TestCanonicalError pins that unmarshalable values fail rather than
// producing a partial key.
func TestCanonicalError(t *testing.T) {
	if _, err := Canonical("predict", make(chan int)); err == nil {
		t.Error("Canonical over a channel should fail")
	}
}

// TestDefaultsWithFallback pins the flag-default parity with fomodeld.
func TestDefaultsWithFallback(t *testing.T) {
	d := Defaults{}.WithFallback()
	if d.N != 500000 || d.Seed != 1 {
		t.Errorf("fallback defaults = %+v, want N=500000 Seed=1", d)
	}
	d = Defaults{N: 20000, Seed: 7}.WithFallback()
	if d.N != 20000 || d.Seed != 7 {
		t.Errorf("explicit defaults overwritten: %+v", d)
	}
}
