// Package workload synthesizes SPECint2000-like dynamic instruction traces.
//
// The paper's first-order model consumes only statistical properties of a
// program trace: register dependence structure (which determines the
// power-law IW characteristic), instruction mix (which determines the
// average latency L), branch outcome entropy (which determines the gshare
// misprediction rate), and the memory working-set structure (which
// determines cache miss rates and the clustering of long misses). This
// package generates traces whose statistics are controllable through a
// per-benchmark Profile, replacing the proprietary SPEC binaries and
// SimpleScalar traces the authors used. See DESIGN.md §2 for the
// substitution argument.
//
// A workload is a static control-flow graph of basic blocks, walked
// dynamically with seeded randomness:
//
//   - Each basic block is a run of non-branch instructions terminated by a
//     conditional branch. Blocks are laid out sequentially in the code
//     address space, so the I-cache footprint equals the static code size
//     and hot-loop behaviour emerges from the block-targeting policy.
//   - Branch outcomes are drawn from per-block biases. "Easy" blocks are
//     strongly biased (predictable by gshare); "hard" blocks are
//     near-coin-flips (systematically mispredicted).
//   - Register dependences are created at controlled dynamic instruction
//     distances using a ring of the most recent producers. Destination
//     registers are allocated round-robin, so the last NumArchRegs
//     producers always occupy distinct registers and a sampled dependence
//     distance is never clobbered by an intervening write.
//   - Load/store addresses come from a three-tier working set: a hot
//     region that fits in L1, a warm region that fits in L2, and a cold
//     streaming region that always misses L2. Cold accesses arrive in
//     geometrically distributed bursts, which controls the f_LDM(i)
//     long-miss cluster distribution of the paper's equation (8).
package workload

import (
	"fmt"

	"fomodel/internal/isa"
	"fomodel/internal/rng"
	"fomodel/internal/trace"
)

// Profile parameterizes one synthetic benchmark. The zero value is not
// usable; start from one of the named profiles in profiles.go or fill in
// every field and call Validate.
type Profile struct {
	// Name identifies the benchmark (e.g. "gzip").
	Name string

	// Mix gives relative weights for non-branch instruction classes
	// (ALU, Mul, Div, FPU, Load, Store). The Branch entry is ignored:
	// branch density is set structurally by BlockLenMean.
	Mix [isa.NumClasses]float64

	// BlockLenMean is the mean number of non-branch instructions per basic
	// block; lengths are uniform in [BlockLenMean-2, BlockLenMean+2]
	// (clamped to >= 1). The low variance keeps the dynamic branch
	// fraction ≈ 1/(BlockLenMean+1) regardless of which blocks the walk
	// favours. Branch fraction of the trace ≈ 1/(BlockLenMean+1).
	BlockLenMean float64

	// NumBlocks is the static number of basic blocks; code footprint is
	// roughly NumBlocks × (BlockLenMean+1) × 4 bytes.
	NumBlocks int
	// HotBlocks is the size of the hot subset most taken branches target.
	HotBlocks int
	// HotJumpFrac is the probability a block's static taken-target lies in
	// the hot subset.
	HotJumpFrac float64
	// EscapeFrac is the per-execution probability that a taken branch
	// ignores its static target and jumps uniformly into the full code
	// footprint. Escapes model indirect calls and returns; together with
	// NumBlocks they set the I-cache pressure. Escaped targets are drawn
	// at run time, so they also perturb the global branch history the way
	// real call-intensive code does.
	EscapeFrac float64

	// HardBranchFrac is the fraction of static branches that are
	// near-random (taken with probability HardTakenProb). Hard blocks are
	// spaced deterministically (every round(1/HardBranchFrac)-th block) so
	// the hot set contains its proportional share: a random assignment
	// would let one or two lucky draws dominate the dynamic misprediction
	// rate of a small hot set.
	HardBranchFrac float64
	// HardTakenProb is the taken probability of hard branches; 0.5 gives
	// maximum entropy.
	HardTakenProb float64
	// EasyBiasLo/EasyBiasHi bound the bias magnitude of easy branches: an
	// easy block's taken probability is drawn from
	// [EasyBiasLo, EasyBiasHi] and then flipped to the not-taken side with
	// probability 1-EasyTakenFrac.
	EasyBiasLo, EasyBiasHi float64
	// EasyTakenFrac is the fraction of easy branches biased toward taken.
	// Real loop branches skew taken; values above 0.5 also keep aliased
	// gshare entries agreeing in large-footprint workloads.
	EasyTakenFrac float64

	// Dependence structure. Each source operand is, independently:
	// absent with probability NoDepFrac; otherwise its distance to its
	// producer is geometric with mean DepShortMean with probability
	// DepShortFrac, else Pareto with exponent DepLongAlpha capped at
	// DepLongMax.
	NoDepFrac    float64
	DepShortFrac float64
	DepShortMean float64
	DepLongAlpha float64
	DepLongMax   int
	// TwoSrcFrac is the probability an instruction has a second source.
	TwoSrcFrac float64

	// Memory working set. Fractions select the region of each access;
	// HotFrac + WarmFrac <= 1, the remainder is cold.
	DataHotSize  uint64
	DataWarmSize uint64
	DataColdSize uint64
	DataHotFrac  float64
	DataWarmFrac float64
	// ColdBurstMean is the mean run length of consecutive cold accesses;
	// larger values cluster long misses more tightly (mcf-like).
	ColdBurstMean float64
	// ColdStride is the byte stride of the cold streaming pointer; at
	// least a cache line to make every cold access a distinct line.
	ColdStride uint64
}

// Validate reports the first structural problem with the profile.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.BlockLenMean < 1:
		return fmt.Errorf("workload %s: BlockLenMean %v < 1", p.Name, p.BlockLenMean)
	case p.NumBlocks < 2:
		return fmt.Errorf("workload %s: NumBlocks %d < 2", p.Name, p.NumBlocks)
	case p.HotBlocks < 1 || p.HotBlocks > p.NumBlocks:
		return fmt.Errorf("workload %s: HotBlocks %d out of range [1,%d]", p.Name, p.HotBlocks, p.NumBlocks)
	case p.HotJumpFrac < 0 || p.HotJumpFrac > 1:
		return fmt.Errorf("workload %s: HotJumpFrac %v out of [0,1]", p.Name, p.HotJumpFrac)
	case p.EscapeFrac < 0 || p.EscapeFrac > 1:
		return fmt.Errorf("workload %s: EscapeFrac %v out of [0,1]", p.Name, p.EscapeFrac)
	case p.HardBranchFrac < 0 || p.HardBranchFrac > 1:
		return fmt.Errorf("workload %s: HardBranchFrac %v out of [0,1]", p.Name, p.HardBranchFrac)
	case p.HardTakenProb < 0 || p.HardTakenProb > 1:
		return fmt.Errorf("workload %s: HardTakenProb %v out of [0,1]", p.Name, p.HardTakenProb)
	case p.EasyBiasLo < 0.5 || p.EasyBiasHi > 1 || p.EasyBiasLo > p.EasyBiasHi:
		return fmt.Errorf("workload %s: easy bias range [%v,%v] invalid (need 0.5<=lo<=hi<=1)", p.Name, p.EasyBiasLo, p.EasyBiasHi)
	case p.EasyTakenFrac < 0 || p.EasyTakenFrac > 1:
		return fmt.Errorf("workload %s: EasyTakenFrac %v out of [0,1]", p.Name, p.EasyTakenFrac)
	case p.NoDepFrac < 0 || p.NoDepFrac > 1:
		return fmt.Errorf("workload %s: NoDepFrac %v out of [0,1]", p.Name, p.NoDepFrac)
	case p.DepShortFrac < 0 || p.DepShortFrac > 1:
		return fmt.Errorf("workload %s: DepShortFrac %v out of [0,1]", p.Name, p.DepShortFrac)
	case p.DepShortMean < 1:
		return fmt.Errorf("workload %s: DepShortMean %v < 1", p.Name, p.DepShortMean)
	case p.DepLongAlpha <= 0:
		return fmt.Errorf("workload %s: DepLongAlpha %v <= 0", p.Name, p.DepLongAlpha)
	case p.DepLongMax < 1:
		return fmt.Errorf("workload %s: DepLongMax %d < 1", p.Name, p.DepLongMax)
	case p.TwoSrcFrac < 0 || p.TwoSrcFrac > 1:
		return fmt.Errorf("workload %s: TwoSrcFrac %v out of [0,1]", p.Name, p.TwoSrcFrac)
	case p.DataHotFrac < 0 || p.DataWarmFrac < 0 || p.DataHotFrac+p.DataWarmFrac > 1:
		return fmt.Errorf("workload %s: data region fractions hot=%v warm=%v invalid", p.Name, p.DataHotFrac, p.DataWarmFrac)
	case p.DataHotSize == 0 || p.DataWarmSize == 0 || p.DataColdSize == 0:
		return fmt.Errorf("workload %s: data region sizes must be non-zero", p.Name)
	case p.ColdBurstMean < 1:
		return fmt.Errorf("workload %s: ColdBurstMean %v < 1", p.Name, p.ColdBurstMean)
	case p.ColdStride == 0:
		return fmt.Errorf("workload %s: ColdStride must be non-zero", p.Name)
	}
	var mixTotal float64
	for c, w := range p.Mix {
		if w < 0 {
			return fmt.Errorf("workload %s: negative mix weight for %v", p.Name, isa.Class(c))
		}
		if isa.Class(c) != isa.Branch {
			mixTotal += w
		}
	}
	if mixTotal <= 0 {
		return fmt.Errorf("workload %s: instruction mix has no weight", p.Name)
	}
	return nil
}

// Memory layout of the synthetic address space. Regions are disjoint so a
// cache line is unambiguously hot, warm, or cold.
const (
	codeBase uint64 = 0x0040_0000
	hotBase  uint64 = 0x1000_0000
	warmBase uint64 = 0x2000_0000
	coldBase uint64 = 0x4000_0000
)

// block is one static basic block of the synthetic CFG.
type block struct {
	start       uint64  // PC of the first instruction
	bodyLen     int     // non-branch instructions before the terminal branch
	takenProb   float64 // probability the terminal branch is taken
	hard        bool
	takenTarget int // static successor when the branch is taken
}

// Generator produces dynamic instruction traces for one profile. A
// Generator is deterministic in (profile, seed); it is not safe for
// concurrent use.
type Generator struct {
	prof   Profile
	blocks []block

	structRNG *rng.PCG // CFG walk: targets, block choices
	depRNG    *rng.PCG // dependence distances
	memRNG    *rng.PCG // data addresses
	brRNG     *rng.PCG // branch outcomes

	// producers is a ring of the dynamic indices of the most recent
	// NumArchRegs destination-writing instructions. producers[k] holds the
	// dynamic index of the producer whose destination register is k.
	producers    [isa.NumArchRegs]int64
	nextDestReg  int16
	dynIdx       int64
	coldPtr      uint64
	coldBurstRem int
	mixWeights   []float64
	mixClasses   []isa.Class
}

// NewGenerator validates the profile, builds its static CFG, and returns a
// generator seeded with seed.
func NewGenerator(prof Profile, seed uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof:      prof,
		structRNG: rng.NewStream(seed, 0x01),
		depRNG:    rng.NewStream(seed, 0x02),
		memRNG:    rng.NewStream(seed, 0x03),
		brRNG:     rng.NewStream(seed, 0x04),
	}
	for i := range g.producers {
		g.producers[i] = -1
	}
	// Static CFG construction draws from its own stream so that changing
	// the trace length never changes the program structure.
	cfgRNG := rng.NewStream(seed, 0x05)
	g.blocks = make([]block, prof.NumBlocks)
	hardStride := 0
	if prof.HardBranchFrac > 0 {
		hardStride = int(1/prof.HardBranchFrac + 0.5)
		if hardStride < 1 {
			hardStride = 1
		}
	}
	pc := codeBase
	for i := range g.blocks {
		b := &g.blocks[i]
		b.start = pc
		b.bodyLen = int(prof.BlockLenMean) - 2 + cfgRNG.Intn(5)
		if b.bodyLen < 1 {
			b.bodyLen = 1
		}
		pc += uint64(b.bodyLen+1) * 4
		if hardStride > 0 && i%hardStride == hardStride/2 {
			b.hard = true
			b.takenProb = prof.HardTakenProb
		} else {
			bias := prof.EasyBiasLo + cfgRNG.Float64()*(prof.EasyBiasHi-prof.EasyBiasLo)
			if !cfgRNG.Bool(prof.EasyTakenFrac) {
				bias = 1 - bias
			}
			b.takenProb = bias
		}
		// Static taken-target: usually a hot block (uniform over the hot
		// subset keeps the dynamic instruction mix stable), otherwise
		// anywhere in the footprint. Fixed targets make control flow —
		// and hence global branch history — repeat, which is what lets
		// gshare learn the biased branches.
		if cfgRNG.Bool(prof.HotJumpFrac) {
			b.takenTarget = cfgRNG.Intn(prof.HotBlocks)
		} else {
			b.takenTarget = cfgRNG.Intn(prof.NumBlocks)
		}
		// A strongly taken-biased self-loop would capture the walk for
		// long stretches and let one block dominate the dynamic
		// statistics; step past it instead.
		if b.takenTarget == i {
			b.takenTarget = (i + 1) % prof.NumBlocks
		}
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if c == isa.Branch || prof.Mix[c] <= 0 {
			continue
		}
		g.mixClasses = append(g.mixClasses, c)
		g.mixWeights = append(g.mixWeights, prof.Mix[c])
	}
	return g, nil
}

// CodeFootprint returns the static code size in bytes.
func (g *Generator) CodeFootprint() uint64 {
	last := g.blocks[len(g.blocks)-1]
	return last.start + uint64(last.bodyLen+1)*4 - codeBase
}

// Generate produces a trace of at least n dynamic instructions (generation
// stops at the first block boundary at or after n, so every block is
// complete and ends with its branch).
func (g *Generator) Generate(n int) (*trace.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload %s: trace length %d must be positive", g.prof.Name, n)
	}
	t := &trace.Trace{
		Name:   g.prof.Name,
		Instrs: make([]trace.Instruction, 0, n+int(g.prof.BlockLenMean)+2),
	}
	bi := 0
	for len(t.Instrs) < n {
		b := &g.blocks[bi]
		pc := b.start
		for k := 0; k < b.bodyLen; k++ {
			t.Instrs = append(t.Instrs, g.makeInstr(pc))
			pc += 4
		}
		taken := g.brRNG.Bool(b.takenProb)
		br := trace.Instruction{
			PC:    pc,
			Class: isa.Branch,
			Dest:  isa.RegNone,
			Src1:  g.sampleSource(),
			Src2:  isa.RegNone,
			Taken: taken,
		}
		t.Instrs = append(t.Instrs, br)
		g.dynIdx++
		if taken {
			if g.structRNG.Bool(g.prof.EscapeFrac) {
				bi = g.structRNG.Intn(g.prof.NumBlocks)
			} else {
				bi = b.takenTarget
			}
		} else {
			bi++
			if bi >= len(g.blocks) {
				bi = 0
			}
		}
	}
	return t, nil
}

// makeInstr builds one non-branch instruction at pc.
func (g *Generator) makeInstr(pc uint64) trace.Instruction {
	c := g.mixClasses[g.structRNG.Weighted(g.mixWeights)]
	in := trace.Instruction{
		PC:    pc,
		Class: c,
		Dest:  isa.RegNone,
		Src1:  g.sampleSource(),
		Src2:  isa.RegNone,
	}
	if g.depRNG.Bool(g.prof.TwoSrcFrac) {
		in.Src2 = g.sampleSource()
	}
	if c != isa.Store {
		in.Dest = g.allocDest()
	}
	if c == isa.Load || c == isa.Store {
		in.Addr = g.sampleAddr()
	}
	if in.Dest >= 0 {
		g.producers[in.Dest] = g.dynIdx
	}
	g.dynIdx++
	return in
}

// allocDest assigns destination registers round-robin so the last
// NumArchRegs producers always hold distinct registers.
func (g *Generator) allocDest() int16 {
	r := g.nextDestReg
	g.nextDestReg++
	if g.nextDestReg >= isa.NumArchRegs {
		g.nextDestReg = 0
	}
	return r
}

// sampleSource draws a source register that realizes a dependence at a
// controlled dynamic distance, or RegNone for a ready operand.
func (g *Generator) sampleSource() int16 {
	if g.depRNG.Bool(g.prof.NoDepFrac) {
		return isa.RegNone
	}
	var dist int
	if g.depRNG.Bool(g.prof.DepShortFrac) {
		dist = g.depRNG.Geometric(g.prof.DepShortMean)
	} else {
		dist = g.depRNG.Pareto(g.prof.DepLongAlpha, g.prof.DepLongMax)
	}
	// Find the most recent producer at dynamic distance >= dist. Because
	// destinations are allocated round-robin, the producer that is k
	// dest-writes back holds register (nextDestReg-1-k) mod NumArchRegs.
	// Scan from the most recent producer outward until the distance
	// constraint is met; give up at the ring's horizon (the operand is
	// then ready anyway, equivalent to RegNone at window sizes <= 64).
	want := g.dynIdx - int64(dist)
	reg := int(g.nextDestReg) - 1
	for k := 0; k < isa.NumArchRegs; k++ {
		if reg < 0 {
			reg += isa.NumArchRegs
		}
		idx := g.producers[reg]
		if idx < 0 {
			return isa.RegNone
		}
		if idx <= want {
			return int16(reg)
		}
		reg--
	}
	return isa.RegNone
}

// sampleAddr draws a data address from the three-tier working set.
func (g *Generator) sampleAddr() uint64 {
	if g.coldBurstRem > 0 {
		g.coldBurstRem--
		return g.nextColdAddr()
	}
	u := g.memRNG.Float64()
	switch {
	case u < g.prof.DataHotFrac:
		return hotBase + uint64(g.memRNG.Int63n(int64(g.prof.DataHotSize)))&^7
	case u < g.prof.DataHotFrac+g.prof.DataWarmFrac:
		return warmBase + uint64(g.memRNG.Int63n(int64(g.prof.DataWarmSize)))&^7
	default:
		g.coldBurstRem = g.memRNG.Geometric(g.prof.ColdBurstMean) - 1
		return g.nextColdAddr()
	}
}

func (g *Generator) nextColdAddr() uint64 {
	a := coldBase + g.coldPtr
	g.coldPtr += g.prof.ColdStride
	if g.coldPtr >= g.prof.DataColdSize {
		g.coldPtr = 0
	}
	return a
}

// GenVersion is the trace-generation algorithm version. It is part of
// every ContentID, so any change to the generator (profiles, rng
// consumption order, block layout) invalidates content-keyed caches and
// stored artifacts instead of serving traces that no longer match what
// the current code would generate.
const GenVersion = 1

// ContentID returns the content key of the trace Generate(name, n, seed)
// produces: generation is deterministic, so the recipe fully determines
// every instruction. Caches and the artifact store use it to recognize
// "the same trace" across pointers, processes, and restarts.
func ContentID(name string, n int, seed uint64) string {
	return fmt.Sprintf("%s|n=%d|seed=%d|g%d", name, n, seed, GenVersion)
}

// Generate is a convenience that builds a generator for the named profile
// and produces a trace of at least n instructions. The returned trace
// carries the ContentID of its recipe.
func Generate(name string, n int, seed uint64) (*trace.Trace, error) {
	prof, err := ByName(name)
	if err != nil {
		return nil, err
	}
	g, err := NewGenerator(prof, seed)
	if err != nil {
		return nil, err
	}
	t, err := g.Generate(n)
	if err != nil {
		return nil, err
	}
	t.ContentID = ContentID(name, n, seed)
	return t, nil
}
