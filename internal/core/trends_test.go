package core

import (
	"math"
	"testing"
)

func TestPipelineDepthStudyShapes(t *testing.T) {
	depths := make([]int, 100)
	for i := range depths {
		depths[i] = i + 1
	}
	pts3, err := PipelineDepthStudy(3, depths)
	if err != nil {
		t.Fatal(err)
	}
	// IPC decreases monotonically with depth.
	for i := 1; i < len(pts3); i++ {
		if pts3[i].IPC >= pts3[i-1].IPC {
			t.Fatalf("IPC not decreasing at depth %d", pts3[i].Depth)
		}
	}
	// BIPS has an interior optimum near the paper's ~55 stages.
	opt3 := OptimalDepth(pts3)
	if opt3.Depth < 40 || opt3.Depth > 75 {
		t.Fatalf("width-3 optimal depth %d, paper ≈55", opt3.Depth)
	}

	// Wider issue moves the optimum shallower.
	pts8, err := PipelineDepthStudy(8, depths)
	if err != nil {
		t.Fatal(err)
	}
	opt8 := OptimalDepth(pts8)
	if opt8.Depth >= opt3.Depth {
		t.Fatalf("width-8 optimum (%d) not shallower than width-3 (%d)", opt8.Depth, opt3.Depth)
	}

	// Deep pipelines lose the advantage of wider issue (Fig. 17a): the
	// IPC ratio between width 8 and width 2 shrinks with depth.
	pts2, err := PipelineDepthStudy(2, depths)
	if err != nil {
		t.Fatal(err)
	}
	shallowRatio := pts8[0].IPC / pts2[0].IPC
	deepRatio := pts8[99].IPC / pts2[99].IPC
	if deepRatio >= shallowRatio {
		t.Fatalf("wide-issue advantage did not shrink with depth: %v vs %v", shallowRatio, deepRatio)
	}
}

func TestPipelineDepthStudyErrors(t *testing.T) {
	if _, err := PipelineDepthStudy(0, []int{1}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := PipelineDepthStudy(4, []int{0}); err == nil {
		t.Fatal("zero depth accepted")
	}
}

func TestCycleTimeModel(t *testing.T) {
	pts, err := PipelineDepthStudy(4, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	// BIPS = IPC / (8200/10 + 90) ps × 1000.
	want := pts[0].IPC / (8200.0/10 + 90) * 1000
	if math.Abs(pts[0].BIPS-want) > 1e-12 {
		t.Fatalf("BIPS %v, want %v", pts[0].BIPS, want)
	}
}

func TestIssueWidthStudyQuadratic(t *testing.T) {
	fractions := []float64{0.1, 0.3, 0.5}
	req4, err := IssueWidthStudy(4, 5, fractions)
	if err != nil {
		t.Fatal(err)
	}
	req8, err := IssueWidthStudy(8, 5, fractions)
	if err != nil {
		t.Fatal(err)
	}
	req16, err := IssueWidthStudy(16, 5, fractions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fractions {
		r1 := req8[i].InstrBetweenMispredicts / req4[i].InstrBetweenMispredicts
		r2 := req16[i].InstrBetweenMispredicts / req8[i].InstrBetweenMispredicts
		if r1 < 3 || r1 > 5.5 || r2 < 3 || r2 > 5.5 {
			t.Fatalf("width doubling ratios %.2f, %.2f at f=%v — want ≈4 (quadratic)", r1, r2, fractions[i])
		}
	}
	// The requirement grows with the demanded fraction.
	for i := 1; i < len(fractions); i++ {
		if req4[i].InstrBetweenMispredicts <= req4[i-1].InstrBetweenMispredicts {
			t.Fatal("requirement not increasing with fraction")
		}
	}
}

func TestIssueWidthStudyErrors(t *testing.T) {
	if _, err := IssueWidthStudy(0, 5, []float64{0.5}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := IssueWidthStudy(4, 0, []float64{0.5}); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := IssueWidthStudy(4, 5, []float64{1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestTrendWorkload(t *testing.T) {
	in := TrendWorkload()
	if err := in.Validate(); err != nil {
		t.Fatalf("trend workload invalid: %v", err)
	}
	if in.MispredictsPerInstr != 0.01 {
		t.Fatalf("mispredict rate %v, want 0.01 (1-in-5 branches, 5%%)", in.MispredictsPerInstr)
	}
}

func TestOptimalDepthEmpty(t *testing.T) {
	// With no points the result is the zero point with -Inf BIPS; all we
	// require is that it does not panic and reports no depth.
	p := OptimalDepth(nil)
	if p.Depth != 0 {
		t.Fatalf("empty optimum depth %d", p.Depth)
	}
}

func TestInputsFromAnalysisRoundTrip(t *testing.T) {
	// Adapter correctness is covered with real data in the experiments
	// tests; here check that saturatingWindow gives a window that indeed
	// saturates.
	in := TrendWorkload()
	for _, width := range []int{2, 4, 8, 16} {
		w := saturatingWindow(width, in)
		c := IWCurve{Alpha: in.Alpha, Beta: in.Beta, L: in.AvgLatency, Width: float64(width)}
		if got := c.Eval(float64(w)); got < float64(width) {
			t.Fatalf("window %d does not saturate width %d (rate %v)", w, width, got)
		}
	}
}

func TestOptimalDepthClosedFormMatchesSweep(t *testing.T) {
	depths := make([]int, 100)
	for i := range depths {
		depths[i] = i + 1
	}
	for _, width := range []int{2, 3, 4, 8} {
		pts, err := PipelineDepthStudy(width, depths)
		if err != nil {
			t.Fatal(err)
		}
		numeric := OptimalDepth(pts).Depth
		closed, err := OptimalDepthClosedForm(width)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-float64(numeric)) > 3 {
			t.Errorf("width %d: closed form %.1f vs numeric %d", width, closed, numeric)
		}
	}
	if _, err := OptimalDepthClosedForm(0); err == nil {
		t.Fatal("zero width accepted")
	}
}
