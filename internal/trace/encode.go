package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fomodel/internal/isa"
)

// Binary trace format:
//
//	magic   [4]byte  "FOT1"
//	nameLen uint16   length of the workload name
//	name    []byte
//	count   uint64   number of instructions
//	count × record:
//	  pc    uint64
//	  addr  uint64
//	  class uint8
//	  flags uint8    bit0 = taken
//	  dest  int16
//	  src1  int16
//	  src2  int16
//
// All integers are little-endian. The format exists so traces can be
// generated once (cmd/fosim -dump) and replayed across many experiments.

var magic = [4]byte{'F', 'O', 'T', '1'}

const recordSize = 8 + 8 + 1 + 1 + 2 + 2 + 2

// Write encodes the trace to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(t.Name)))
	if _, err := bw.Write(hdr[0:2]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return fmt.Errorf("trace: write name: %w", err)
	}
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(t.Instrs)))
	if _, err := bw.Write(hdr[0:8]); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	var rec [recordSize]byte
	for i := range t.Instrs {
		encodeRecord(&rec, &t.Instrs[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

func encodeRecord(rec *[recordSize]byte, in *Instruction) {
	binary.LittleEndian.PutUint64(rec[0:8], in.PC)
	binary.LittleEndian.PutUint64(rec[8:16], in.Addr)
	rec[16] = uint8(in.Class)
	var flags uint8
	if in.Taken {
		flags |= 1
	}
	rec[17] = flags
	binary.LittleEndian.PutUint16(rec[18:20], uint16(in.Dest))
	binary.LittleEndian.PutUint16(rec[20:22], uint16(in.Src1))
	binary.LittleEndian.PutUint16(rec[22:24], uint16(in.Src2))
}

// Read decodes a trace previously written with Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	var hdr [10]byte
	if _, err := io.ReadFull(br, hdr[0:2]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[0:2]))
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: read name: %w", err)
	}
	if _, err := io.ReadFull(br, hdr[0:8]); err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[0:8])
	const maxInstrs = 1 << 31
	if count > maxInstrs {
		return nil, fmt.Errorf("trace: unreasonable instruction count %d", count)
	}
	// Do not trust the header's count for the allocation: a forged header
	// could demand gigabytes. Grow with the records actually present; a
	// truncated stream fails at the first short read.
	initial := count
	if initial > 1<<20 {
		initial = 1 << 20
	}
	t := &Trace{Name: string(nameBuf), Instrs: make([]Instruction, 0, initial)}
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", i, err)
		}
		var in Instruction
		decodeRecord(&rec, &in)
		t.Instrs = append(t.Instrs, in)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func decodeRecord(rec *[recordSize]byte, in *Instruction) {
	in.PC = binary.LittleEndian.Uint64(rec[0:8])
	in.Addr = binary.LittleEndian.Uint64(rec[8:16])
	in.Class = isa.Class(rec[16])
	in.Taken = rec[17]&1 != 0
	in.Dest = int16(binary.LittleEndian.Uint16(rec[18:20]))
	in.Src1 = int16(binary.LittleEndian.Uint16(rec[20:22]))
	in.Src2 = int16(binary.LittleEndian.Uint16(rec[22:24]))
}
