// Package client is the Go client for fomodeld, the model-serving
// daemon. It is the consumer half of the serving stack: per-request
// deadlines, bounded exponential backoff with jitter on 429/503 that
// honors the server's Retry-After header, one-round-trip batch
// prediction, and streaming (NDJSON) sweep consumption. The request and
// response types are internal/server's own, so a client binary and the
// daemon can never disagree about the wire shape.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"fomodel/internal/experiments"
	"fomodel/internal/optimize"
	"fomodel/internal/server"
	"fomodel/internal/workload"
)

// Default knobs; see the corresponding Client fields.
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxRetries     = 4
	DefaultBaseBackoff    = 200 * time.Millisecond
	DefaultMaxBackoff     = 5 * time.Second
)

// Client talks to one fomodeld daemon. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8750".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// RequestTimeout bounds each non-streaming attempt (not the whole
	// retry loop); 0 means DefaultRequestTimeout, negative disables it.
	// Streaming requests are bounded only by the caller's context.
	RequestTimeout time.Duration
	// MaxRetries is how many times a 429/503 response is retried after
	// the first attempt; 0 means DefaultMaxRetries, negative disables
	// retries.
	MaxRetries int
	// Tenant, when non-empty, is sent as the X-Tenant header on every
	// request; workload registrations are owned per tenant.
	Tenant string
	// BaseBackoff and MaxBackoff bound the exponential retry schedule:
	// the k-th retry waits a jittered delay drawn from
	// [backoff/2, backoff] where backoff doubles from BaseBackoff up to
	// MaxBackoff — unless the server sent Retry-After, which is honored
	// exactly (the server knows its own service time better than the
	// client's guess). Zero values select the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// AttemptObserver, if non-nil, is called after every individual HTTP
	// attempt inside the retry loop with the attempt's wall-clock
	// duration, the response status (0 on transport error), and the
	// transport error. It fires before any backoff or Retry-After sleep,
	// so observed durations measure upstream service time only, never
	// the retry schedule — the fomodelproxy router derives its hedge
	// delay from these. Must be safe for concurrent use.
	AttemptObserver func(d time.Duration, status int, err error)

	// sleep parks between retries; tests replace it to observe the
	// schedule without waiting it out. nil means a context-aware sleep.
	sleep func(ctx context.Context, d time.Duration) error
	// jitter maps a backoff ceiling to the actual delay; nil draws
	// uniformly from [d/2, d].
	jitter func(d time.Duration) time.Duration
}

// New returns a client for the daemon at baseURL with default timeout,
// retry, and backoff settings; adjust the exported fields before first
// use to tune them.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// NewPooled returns a client with its own dedicated connection pool
// instead of http.DefaultClient's shared one. The fomodelproxy router
// keeps one pooled client per replica, so each replica's keep-alive
// connections are reused across requests and one slow replica cannot
// exhaust the idle-connection budget of the others.
func NewPooled(baseURL string, maxIdleConns int) *Client {
	if maxIdleConns <= 0 {
		maxIdleConns = 32
	}
	tr := &http.Transport{
		MaxIdleConns:        maxIdleConns,
		MaxIdleConnsPerHost: maxIdleConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{Transport: tr}}
}

// APIError is a non-200 daemon response, carrying the HTTP status and
// the structured error message.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fomodeld: %s (HTTP %d)", e.Message, e.Status)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) requestTimeout() time.Duration {
	switch {
	case c.RequestTimeout < 0:
		return 0
	case c.RequestTimeout == 0:
		return DefaultRequestTimeout
	}
	return c.RequestTimeout
}

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return DefaultMaxRetries
	}
	return c.MaxRetries
}

func (c *Client) baseBackoff() time.Duration {
	if c.BaseBackoff <= 0 {
		return DefaultBaseBackoff
	}
	return c.BaseBackoff
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return DefaultMaxBackoff
	}
	return c.MaxBackoff
}

func (c *Client) sleepFn(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) jitterFn(d time.Duration) time.Duration {
	if c.jitter != nil {
		return c.jitter(d)
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// retryable reports whether the status signals transient overload or
// unavailability worth retrying.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryAfter parses the response's Retry-After header as a delay;
// 0 means absent or unparseable. RFC 7231 allows both forms: delta
// seconds and an HTTP-date. The date form is interpreted relative to
// the response's own Date header (the server's clock, which produced
// both) falling back to local time, and — unlike an exact delta, which
// is honored as sent — is clamped to MaxBackoff, since clock skew can
// inflate it arbitrarily.
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	at, err := http.ParseTime(h)
	if err != nil {
		return 0
	}
	now := time.Now()
	if d, err := http.ParseTime(resp.Header.Get("Date")); err == nil {
		now = d
	}
	delay := at.Sub(now)
	if delay < 0 {
		return 0
	}
	if max := c.maxBackoff(); delay > max {
		delay = max
	}
	return delay
}

// apiError drains the response and converts its structured error body
// into an *APIError.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	msg := ""
	if json.Unmarshal(body, &e) == nil {
		msg = e.Error
	}
	if msg == "" {
		msg = http.StatusText(resp.StatusCode)
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

// do runs one request through the retry loop and returns a 200
// response whose body the caller must close. stream requests skip the
// per-attempt timeout (rows may flow for a long time); buffered
// attempts each carry RequestTimeout. Non-200 terminal responses become
// *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, stream bool) (*http.Response, error) {
	resp, err := c.doRetry(ctx, method, path, body, nil, stream, true)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp) // drains and closes the body
	}
	return resp, nil
}

// DoRaw runs one request through the 429/503 retry schedule and returns
// the terminal response — whatever its status — with its body intact for
// the caller to relay. It is the proxying entry point: the fomodelproxy
// router forwards the terminal status line, headers, and body verbatim,
// which is what keeps proxied responses byte-equal to a daemon's own.
// Two deliberate differences from the consumer methods:
//
//   - Exhausted retries return the final shedding response itself (so
//     the proxy can relay the daemon's authoritative 429 body and
//     Retry-After) instead of an *APIError.
//   - Transport errors are returned immediately, never retried: a dead
//     replica should fail over to its ring successor at once, not be
//     backed off against. Status-based retries (429/503) still back off
//     per the client's schedule, honoring Retry-After — and because the
//     router's hedge timer runs concurrently, a long Retry-After from a
//     shedding replica stalls only this attempt, never the hedge.
//
// hdr entries (may be nil) are added to the request headers — the router
// uses this to forward X-Request-ID and Accept.
func (c *Client) DoRaw(ctx context.Context, method, path string, body []byte, hdr http.Header, stream bool) (*http.Response, error) {
	return c.doRetry(ctx, method, path, body, hdr, stream, false)
}

// doRetry is the shared retry loop. retryTransport selects whether
// transport-level failures are retried (consumer mode) or surfaced
// immediately (proxy mode); in both modes 429/503 responses are retried
// until the schedule is exhausted, after which the final response is
// returned as-is.
func (c *Client) doRetry(ctx context.Context, method, path string, body []byte, hdr http.Header, stream, retryTransport bool) (*http.Response, error) {
	backoff := c.baseBackoff()
	retries := c.maxRetries()
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if t := c.requestTimeout(); t > 0 && !stream {
			actx, cancel = context.WithTimeout(ctx, t)
		}
		begin := time.Now()
		resp, err := c.attempt(actx, method, path, body, hdr, stream)
		if c.AttemptObserver != nil {
			status := 0
			if resp != nil {
				status = resp.StatusCode
			}
			c.AttemptObserver(time.Since(begin), status, err)
		}
		if err != nil {
			if cancel != nil {
				cancel()
			}
			if !retryTransport || attempt >= retries {
				return nil, err
			}
			if err := c.sleepFn(ctx, c.jitterFn(backoff)); err != nil {
				return nil, err
			}
			backoff = c.nextBackoff(backoff)
			continue
		}
		if !retryable(resp.StatusCode) || attempt >= retries {
			if cancel != nil {
				resp.Body = &cancelingBody{ReadCloser: resp.Body, cancel: cancel}
			}
			return resp, nil
		}

		// Retryable status with attempts remaining: honor Retry-After,
		// release this attempt's resources, back off, go again.
		delay := c.retryAfter(resp)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if cancel != nil {
			cancel()
		}
		if delay == 0 {
			delay = c.jitterFn(backoff)
		}
		if err := c.sleepFn(ctx, delay); err != nil {
			return nil, err
		}
		backoff = c.nextBackoff(backoff)
	}
}

// nextBackoff doubles the backoff up to the configured ceiling.
func (c *Client) nextBackoff(backoff time.Duration) time.Duration {
	backoff *= 2
	if max := c.maxBackoff(); backoff > max {
		backoff = max
	}
	return backoff
}

// attempt issues a single HTTP request.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, hdr http.Header, stream bool) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if stream {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return c.httpClient().Do(req)
}

// cancelingBody ties a per-attempt context to the response body's
// lifetime so the deadline timer is released when the caller is done.
type cancelingBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelingBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// postJSON marshals req, posts it, and reads the whole 200 body.
func (c *Client) postJSON(ctx context.Context, path string, req any) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, path, payload, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// PredictRaw returns the exact /v1/predict response bytes — the same
// bytes `fomodel -json` prints for the equivalent invocation.
func (c *Client) PredictRaw(ctx context.Context, req server.PredictRequest) ([]byte, error) {
	return c.postJSON(ctx, "/v1/predict", req)
}

// Predict returns one workload's decoded CPI prediction.
func (c *Client) Predict(ctx context.Context, req server.PredictRequest) (server.PredictRecord, error) {
	var rec server.PredictRecord
	body, err := c.PredictRaw(ctx, req)
	if err != nil {
		return rec, err
	}
	err = json.Unmarshal(body, &rec)
	return rec, err
}

// Batch evaluates many predict requests in one round trip. The returned
// items are in request order; each carries its own status, cache state,
// and either the exact per-item /v1/predict body or an error message —
// a failing item does not fail the batch.
func (c *Client) Batch(ctx context.Context, items []server.PredictRequest) ([]server.BatchItem, error) {
	body, err := c.postJSON(ctx, "/v1/batch", server.BatchRequest{Items: items})
	if err != nil {
		return nil, err
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// Sweep runs a buffered design-space sweep.
func (c *Client) Sweep(ctx context.Context, spec experiments.SweepSpec) (*server.SweepResponse, error) {
	body, err := c.postJSON(ctx, "/v1/sweep", spec)
	if err != nil {
		return nil, err
	}
	var resp server.SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SweepStream runs a streaming sweep: onPoint is called for each grid
// cell's row as it arrives, and the sweep-level trailer is returned
// once the stream ends. An onPoint error abandons the stream (closing
// the connection cancels the server's remaining cells), as does ctx.
func (c *Client) SweepStream(ctx context.Context, spec experiments.SweepSpec, onPoint func(experiments.SweepPoint) error) (*server.SweepTrailer, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/sweep", payload, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Bench  *string `json:"bench"`
			Render *string `json:"render"`
			Error  *string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("client: malformed stream row %q: %v", line, err)
		}
		switch {
		case probe.Error != nil:
			return nil, &APIError{Status: http.StatusInternalServerError, Message: *probe.Error}
		case probe.Render != nil:
			var trailer server.SweepTrailer
			if err := json.Unmarshal(line, &trailer); err != nil {
				return nil, err
			}
			return &trailer, nil
		case probe.Bench != nil:
			var pt experiments.SweepPoint
			if err := json.Unmarshal(line, &pt); err != nil {
				return nil, err
			}
			if onPoint != nil {
				if err := onPoint(pt); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("client: unrecognized stream row %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("client: stream ended without a trailer row")
}

// OptimizeRaw returns the exact buffered /v1/optimize response bytes —
// the same bytes `fomodel -optimize -json` prints for the same spec.
func (c *Client) OptimizeRaw(ctx context.Context, spec optimize.Spec) ([]byte, error) {
	return c.postJSON(ctx, "/v1/optimize", spec)
}

// Optimize runs a buffered design-space search.
func (c *Client) Optimize(ctx context.Context, spec optimize.Spec) (*server.OptimizeResponse, error) {
	body, err := c.OptimizeRaw(ctx, spec)
	if err != nil {
		return nil, err
	}
	var resp server.OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// OptimizeStream runs a streaming design-space search: onPoint is called
// for each accepted incumbent or frontier point as the search discovers
// it, and the search-level trailer is returned once the stream ends. An
// onPoint error abandons the stream (closing the connection cancels the
// server's remaining evaluations), as does ctx.
func (c *Client) OptimizeStream(ctx context.Context, spec optimize.Spec, onPoint func(optimize.Point) error) (*server.OptimizeTrailer, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/optimize", payload, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Eval   *int    `json:"eval"`
			Render *string `json:"render"`
			Error  *string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("client: malformed stream row %q: %v", line, err)
		}
		switch {
		case probe.Error != nil:
			return nil, &APIError{Status: http.StatusInternalServerError, Message: *probe.Error}
		case probe.Render != nil:
			var trailer server.OptimizeTrailer
			if err := json.Unmarshal(line, &trailer); err != nil {
				return nil, err
			}
			return &trailer, nil
		case probe.Eval != nil:
			var pt optimize.Point
			if err := json.Unmarshal(line, &pt); err != nil {
				return nil, err
			}
			if onPoint != nil {
				if err := onPoint(pt); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("client: unrecognized stream row %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("client: stream ended without a trailer row")
}

// Workloads lists the daemon's built-in workloads and their model-facing
// statistics.
func (c *Client) Workloads(ctx context.Context) (*server.WorkloadsResponse, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var w server.WorkloadsResponse
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		return nil, err
	}
	return &w, nil
}

// workloadPath builds the per-name workload route.
func workloadPath(name string) string {
	return "/v1/workloads/" + url.PathEscape(name)
}

// RegisterWorkload registers (or replaces) a custom workload profile
// under name; the registered name is then accepted anywhere a built-in
// benchmark name is. Ownership follows the client's Tenant.
func (c *Client) RegisterWorkload(ctx context.Context, name string, prof workload.Profile) (*server.WorkloadRegistration, error) {
	body, err := c.postJSON(ctx, workloadPath(name), prof)
	if err != nil {
		return nil, err
	}
	var reg server.WorkloadRegistration
	if err := json.Unmarshal(body, &reg); err != nil {
		return nil, err
	}
	return &reg, nil
}

// Workload reads one registered workload back.
func (c *Client) Workload(ctx context.Context, name string) (*server.WorkloadRegistration, error) {
	resp, err := c.do(ctx, http.MethodGet, workloadPath(name), nil, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var reg server.WorkloadRegistration
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return nil, err
	}
	return &reg, nil
}

// DeleteWorkload removes one of the tenant's registered workloads.
func (c *Client) DeleteWorkload(ctx context.Context, name string) error {
	resp, err := c.do(ctx, http.MethodDelete, workloadPath(name), nil, false)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
