// Package ctxflow enforces context discipline on the serving path: a
// function that accepts a context.Context must actually thread it
// into the work it does, and fresh root contexts must not be minted
// in library code. A dropped context is an invisible bug here — the
// daemon's deadline, the proxy's hedging cancellation, and the
// client-disconnect propagation all ride on ctx reaching every
// blocking call, and a context.Background() buried in a library
// silently detaches everything below it from cancellation.
//
// Three rules:
//
//   - context.Background() and context.TODO() are forbidden outside
//     package main (tests are exempt; the driver drops _test.go
//     diagnostics). Library code receives its context.
//   - a named context.Context parameter must be used somewhere in the
//     function body; an ignored ctx means some call below is blocking
//     without cancellation. Rename the parameter to _ (a deliberate,
//     visible choice) or annotate if an interface forces the shape.
//   - inside a function that has a context, construct requests and
//     commands with the ctx-aware constructors (http.NewRequestWithContext,
//     exec.CommandContext), not their detached cousins.
package ctxflow

import (
	"go/ast"
	"go/types"

	"fomodel/internal/lint/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require received contexts to be threaded into blocking work; forbid fresh root contexts outside main",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRootContext(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Type, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkRootContext flags context.Background()/TODO() outside main.
func checkRootContext(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.Pkg.Name() == "main" {
		return
	}
	if analysis.IsPkgFunc(pass.TypesInfo, call, "context", "Background", "TODO") {
		name := analysis.Callee(pass.TypesInfo, call).Name()
		pass.Reportf(call.Pos(), "context.%s() outside package main: accept a ctx from the caller so cancellation and deadlines propagate", name)
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkFunc applies the per-function rules to one declaration or
// literal with a context parameter.
func checkFunc(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	var ctxParams []*ast.Ident
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok || !isContextType(tv.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					ctxParams = append(ctxParams, name)
				}
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}

	// Usage counts anywhere below, including closures that capture ctx.
	used := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	// Constructor checks stay within this function's own statements:
	// nested literals are visited on their own by run, so each call
	// site is judged (and reported) exactly once, against the
	// signature of the function that directly contains it.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkDetachedConstructor(pass, call)
		}
		return true
	})
	for _, p := range ctxParams {
		obj := pass.TypesInfo.Defs[p]
		if obj != nil && !used[obj] {
			pass.Reportf(p.Pos(), "context parameter %s is never used: thread it into the blocking calls below, or rename it to _ to declare the drop deliberate", p.Name)
		}
	}
}

// checkDetachedConstructor flags ctx-less constructors inside
// functions that do have a context available.
func checkDetachedConstructor(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch {
	case analysis.IsPkgFunc(info, call, "net/http", "NewRequest"):
		pass.Reportf(call.Pos(), "http.NewRequest in a function that has a ctx: use http.NewRequestWithContext so the request is cancellable")
	case analysis.IsPkgFunc(info, call, "net/http", "Get", "Post", "Head", "PostForm"):
		pass.Reportf(call.Pos(), "http.%s uses the background context: build the request with http.NewRequestWithContext and the function's ctx",
			analysis.Callee(info, call).Name())
	case analysis.IsPkgFunc(info, call, "os/exec", "Command"):
		pass.Reportf(call.Pos(), "exec.Command in a function that has a ctx: use exec.CommandContext so the child is killed on cancellation")
	}
}
