// Package detrand enforces the repository's determinism invariant on
// the pure-model packages: model outputs must be byte-identical
// across runs, worker counts, and serving surfaces, because the
// paper's eq. 1 validation — and every byte-equality test pinning CLI
// against daemon against proxy — is meaningless if renders drift.
//
// Inside the pure packages it therefore flags the three ways
// nondeterminism leaks into computed results:
//
//   - wall-clock reads (time.Now / Since / Until),
//   - the process-global math/rand source (package-level rand.Intn
//     etc.; explicitly seeded *rand.Rand values are fine), and
//   - ranging over a map, whose iteration order is randomized per run
//     and reaches output the moment the loop does anything
//     order-sensitive — including float accumulation, which is not
//     associative.
//
// The one map-range shape admitted without annotation is the
// collect-then-sort idiom: a loop whose entire body appends the range
// key to a slice, which is order-insensitive by construction once the
// slice is sorted. Everything else needs a //folint:allow(detrand)
// with a reason arguing order-insensitivity.
package detrand

import (
	"go/ast"
	"go/types"

	"fomodel/internal/lint/analysis"
)

// PurePackages is the set of import paths the determinism invariant
// covers: the packages whose outputs feed rendered reports, cache
// keys, and the byte-equality contracts between serving surfaces.
// Serving packages (server, router, client) are exempt — they may
// read clocks for deadlines and metrics.
var PurePackages = map[string]bool{
	"fomodel/internal/core":     true,
	"fomodel/internal/uarch":    true,
	"fomodel/internal/iw":       true,
	"fomodel/internal/stats":    true,
	"fomodel/internal/trace":    true,
	"fomodel/internal/workload": true,
	"fomodel/internal/fit":      true,
	"fomodel/internal/optimize": true,
}

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock, global math/rand, and order-sensitive map iteration in the pure-model packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !PurePackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now", "Since", "Until") {
		pass.Reportf(call.Pos(), "wall-clock read (time.%s) in pure-model package %s: model results must not depend on real time",
			analysis.Callee(pass.TypesInfo, call).Name(), pass.Pkg.Name())
		return
	}
	f := analysis.Callee(pass.TypesInfo, call)
	if f != nil && analysis.FuncPkgPath(f) == "math/rand" && f.Type().(*types.Signature).Recv() == nil {
		switch f.Name() {
		case "New", "NewSource", "NewZipf":
			// Constructing an explicitly seeded source is the approved
			// path (internal/rng wraps it); only the process-global
			// convenience functions are nondeterministic.
		default:
			pass.Reportf(call.Pos(), "global math/rand.%s in pure-model package %s: use an explicitly seeded *rand.Rand (internal/rng) so results are reproducible",
				f.Name(), pass.Pkg.Name())
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isCollectKeys(pass, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order may reach model output in pure-model package %s: collect keys and sort, or annotate with //folint:allow(detrand) <why order-insensitive>",
		pass.Pkg.Name())
}

// isCollectKeys recognizes the one admitted map-range body:
//
//	for k := range m { keys = append(keys, k) }
//
// whose result is order-insensitive once sorted.
func isCollectKeys(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 || rng.Value != nil {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || arg.Name != key.Name {
		return false
	}
	// The append target must be what the result is assigned to.
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	dst, ok2 := call.Args[0].(*ast.Ident)
	return ok && ok2 && lhs.Name == dst.Name
}
