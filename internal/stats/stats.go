// Package stats performs the functional (timing-free) trace analysis that
// parameterizes the first-order model. This is the paper's step 5 in §5:
// simple trace-driven simulations of the caches and branch predictor that
// produce miss-event *rates*, plus the clustering distribution of long data
// cache misses needed by equation (8) — no detailed cycle-level simulation
// involved.
package stats

import (
	"fmt"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/predictor"
	"fomodel/internal/trace"
)

// Summary holds every trace statistic the model consumes.
type Summary struct {
	// Name is the workload name; Instructions the dynamic count.
	Name         string
	Instructions int

	// Mix is the fraction of each operation class.
	Mix [isa.NumClasses]float64

	// Branches and Mispredicts count conditional branches and predictor
	// misses under the configured predictor.
	Branches    uint64
	Mispredicts uint64
	// MispredictGroups clusters mispredictions the way LongMissGroups
	// clusters long misses, but within Config.BranchBurstHorizon
	// instructions of the cluster leader: mispredictions that arrive
	// before the previous transient's ramp-up completes share one
	// drain+ramp cost (the paper's equation 3, and its §7 refinement #3
	// "modeling bursts of branch mispredictions").
	MispredictGroups map[int]int

	// ICacheShort / ICacheLong count instruction fetches that miss L1I and
	// hit / miss L2. Fetches are per instruction (the front end is modeled
	// as probing the I-cache once per instruction; with 32 instructions
	// per 128 B line, hits are free and every distinct missing line counts
	// once, which is what the penalty model needs).
	ICacheShort uint64
	ICacheLong  uint64

	// DCacheShort / DCacheLong count data accesses (loads and stores) that
	// miss L1D and hit / miss L2.
	DCacheShort uint64
	DCacheLong  uint64

	// LongMissGroups[i] is the number of *groups* of exactly i long data
	// misses. A long miss joins the current group when it falls within
	// ROBSize dynamic instructions of the group's *first* miss (the
	// leader); otherwise it starts a new group. Leader-based grouping
	// captures the machine behaviour the paper describes: only misses
	// that fit in the same ROB window behind the leader can issue before
	// dispatch stalls, so only those overlap the leader's memory latency.
	// This realizes the paper's f_LDM(i): overlapped misses in a group of
	// size i each cost isolated/i.
	LongMissGroups map[int]int
	// ROBSize is the reorder-buffer size used for grouping.
	ROBSize int

	// ICacheMissGaps records, for every I-cache miss (short or long), the
	// dynamic-instruction distance to the previous I-cache miss (the
	// first miss gets a large sentinel gap). The fetch-buffer model uses
	// the distribution: only misses far enough from their predecessor
	// find a rebuilt buffer, so only those are hidden (paper §7
	// extension #2).
	ICacheMissGaps []int32

	// DTLBMisses counts data-TLB misses and TLBMissGroups clusters them
	// exactly like LongMissGroups (the paper's §7: TLB misses act much
	// like long data cache misses). Both are zero when no TLB is
	// configured.
	DTLBMisses    uint64
	TLBMissGroups map[int]int

	// AvgLatency is the mix-weighted average execution latency with short
	// data-cache misses folded into load latency (the paper's Table 1
	// third column). Long misses are excluded: their cost is the separate
	// CPI_dcache term.
	AvgLatency float64
}

// Config controls the analysis.
type Config struct {
	// Hierarchy is the cache hierarchy to simulate.
	Hierarchy cache.HierarchyConfig
	// PredictorBits is the gshare index width (13 = the paper's 8K).
	PredictorBits uint
	// Predictor, when non-nil, overrides the default gshare with an
	// arbitrary predictor spec (used by the predictor-sensitivity
	// study).
	Predictor *predictor.Spec
	// Latencies is the functional-unit latency table.
	Latencies isa.LatencyTable
	// ROBSize groups long misses for f_LDM (the paper's baseline: 128).
	ROBSize int
	// TLB, when non-nil, simulates a data TLB alongside the caches (the
	// paper's §7 TLB extension).
	TLB *cache.TLBConfig
	// BranchBurstHorizon groups mispredictions into bursts: a
	// misprediction within this many dynamic instructions of its burst
	// leader shares the leader's drain and ramp-up (the paper's eq. 3).
	// Sharing only happens when the second mispredicted branch enters
	// the window before the first transient's ramp completes, i.e. when
	// the branches are nearly back to back; the default (12) reflects
	// that (ablated in BenchmarkAblationBranchBurst).
	BranchBurstHorizon int
	// Warmup, when true, replays the trace's instruction fetches through
	// the hierarchy once before measuring, so I-cache miss rates are
	// steady-state (capacity and conflict) rates without cold-start
	// compulsory misses — code re-executes, so warming it is faithful.
	// Data accesses are NOT warmed: a streaming working set never
	// revisits its lines, so its compulsory misses are real misses and
	// warming them away with an identical replay would be wrong. The
	// predictor is not warmed either; it trains within a few thousand
	// branches.
	Warmup bool
}

// DefaultConfig returns the paper's baseline analysis configuration.
func DefaultConfig() Config {
	return Config{
		Hierarchy:          cache.DefaultHierarchy(),
		PredictorBits:      13,
		Latencies:          isa.DefaultLatencies(),
		ROBSize:            128,
		BranchBurstHorizon: 12,
	}
}

// Analyze runs the functional cache and predictor simulations over t and
// collects the model inputs.
func Analyze(t *trace.Trace, cfg Config) (*Summary, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("stats: empty trace %q", t.Name)
	}
	if cfg.ROBSize <= 0 {
		return nil, fmt.Errorf("stats: ROB size %d must be positive", cfg.ROBSize)
	}
	if err := cfg.Latencies.Validate(); err != nil {
		return nil, err
	}
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	gs, err := newPredictor(cfg.Predictor, cfg.PredictorBits)
	if err != nil {
		return nil, err
	}

	var tlb *cache.TLB
	if cfg.TLB != nil {
		tlb, err = cache.NewTLB(*cfg.TLB)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Warmup {
		WarmHierarchy(h, t)
	}

	s := &Summary{
		Name:             t.Name,
		Instructions:     t.Len(),
		Mix:              t.Mix(),
		ROBSize:          cfg.ROBSize,
		LongMissGroups:   make(map[int]int),
		TLBMissGroups:    make(map[int]int),
		MispredictGroups: make(map[int]int),
	}

	burstHorizon := cfg.BranchBurstHorizon
	if burstHorizon <= 0 {
		burstHorizon = 12
	}
	var latSum float64
	longClusters := newClusterCounter(cfg.ROBSize, s.LongMissGroups)
	tlbClusters := newClusterCounter(cfg.ROBSize, s.TLBMissGroups)
	mispClusters := newClusterCounter(burstHorizon, s.MispredictGroups)
	lastIMiss := -1 << 30

	for i := range t.Instrs {
		in := &t.Instrs[i]
		fr := h.Fetch(in.PC)
		if fr != cache.Hit {
			gap := i - lastIMiss
			if gap > 1<<29 {
				gap = 1 << 29
			}
			s.ICacheMissGaps = append(s.ICacheMissGaps, int32(gap))
			lastIMiss = i
		}
		switch fr {
		case cache.ShortMiss:
			s.ICacheShort++
		case cache.LongMiss:
			s.ICacheLong++
		}

		lat := float64(cfg.Latencies.Latency(in.Class))
		switch in.Class {
		case isa.Branch:
			pred := gs.Predict(in.PC)
			gs.Update(in.PC, in.Taken)
			s.Branches++
			if pred != in.Taken {
				s.Mispredicts++
				mispClusters.note(i)
			}
		case isa.Load, isa.Store:
			if tlb != nil && !tlb.Access(in.Addr) {
				s.DTLBMisses++
				tlbClusters.note(i)
			}
			dr := h.Data(in.Addr)
			switch dr {
			case cache.ShortMiss:
				s.DCacheShort++
				if in.Class == isa.Load {
					// Short misses act like long-latency functional
					// units (paper §4.3), lengthening L.
					lat += float64(cfg.Hierarchy.ShortMissLatency)
				}
			case cache.LongMiss:
				s.DCacheLong++
				longClusters.note(i)
			}
		}
		latSum += lat
	}
	longClusters.finish()
	tlbClusters.finish()
	mispClusters.finish()
	s.AvgLatency = latSum / float64(t.Len())
	return s, nil
}

// clusterCounter implements the leader-based grouping of miss events
// within a ROB window (see Summary.LongMissGroups).
type clusterCounter struct {
	robSize int
	groups  map[int]int
	leader  int
	size    int
}

func newClusterCounter(robSize int, groups map[int]int) *clusterCounter {
	return &clusterCounter{robSize: robSize, groups: groups, leader: -1}
}

// note records a miss event at dynamic instruction index i; indices must
// be non-decreasing.
func (c *clusterCounter) note(i int) {
	if c.leader >= 0 && i-c.leader <= c.robSize {
		c.size++
		return
	}
	if c.size > 0 {
		c.groups[c.size]++
	}
	c.size = 1
	c.leader = i
}

// finish flushes the trailing group.
func (c *clusterCounter) finish() {
	if c.size > 0 {
		c.groups[c.size]++
		c.size = 0
	}
}

// WarmHierarchy replays the trace's instruction fetches through h and then
// clears h's statistics, leaving warmed I-side cache contents (see
// Config.Warmup for why only the instruction side is warmed). Both the
// analyzer and the detailed simulator use this, so model and simulator see
// identical steady-state cache behaviour.
func WarmHierarchy(h *cache.Hierarchy, t *trace.Trace) {
	for i := range t.Instrs {
		h.Fetch(t.Instrs[i].PC)
	}
	h.ResetStats()
}

// MispredictsPerInstr returns branch mispredictions per dynamic instruction.
func (s *Summary) MispredictsPerInstr() float64 {
	return float64(s.Mispredicts) / float64(s.Instructions)
}

// MispredictRate returns mispredictions per branch, or 0 with no branches.
func (s *Summary) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// ICacheShortPerInstr returns L1-I misses that hit L2, per instruction.
func (s *Summary) ICacheShortPerInstr() float64 {
	return float64(s.ICacheShort) / float64(s.Instructions)
}

// ICacheLongPerInstr returns instruction fetches missing L2, per instruction.
func (s *Summary) ICacheLongPerInstr() float64 {
	return float64(s.ICacheLong) / float64(s.Instructions)
}

// DCacheLongPerInstr returns long data misses per instruction.
func (s *Summary) DCacheLongPerInstr() float64 {
	return float64(s.DCacheLong) / float64(s.Instructions)
}

// LongMisses returns the total number of long data misses (N_LDM).
func (s *Summary) LongMisses() uint64 { return s.DCacheLong }

// FLDM returns the paper's f_LDM distribution: FLDM()[i] is the fraction of
// long data misses belonging to groups of exactly i overlapping misses. The
// fractions sum to 1 when any long misses exist.
func (s *Summary) FLDM() map[int]float64 {
	f := make(map[int]float64, len(s.LongMissGroups))
	if s.DCacheLong == 0 {
		return f
	}
	n := float64(s.DCacheLong)
	//folint:allow(detrand) keyed writes into the result map; iteration order cannot reach the output
	for size, groups := range s.LongMissGroups {
		f[size] = float64(size*groups) / n
	}
	return f
}

// OverlapFactor returns Σ_i f_LDM(i)/i — the multiplier of equation (8)
// applied to the isolated long-miss penalty. It is 1 when every miss is
// isolated and approaches 0 for heavily clustered misses. With no long
// misses it returns 1 (the penalty term is multiplied by zero misses
// anyway).
func (s *Summary) OverlapFactor() float64 {
	return overlapFactor(s.LongMissGroups, s.DCacheLong)
}

// BranchBurstFactor is Σ_i f_misp(i)/i over the misprediction burst-size
// distribution — the eq. (3) multiplier applied to the drain+ramp part of
// the branch penalty; 1 when every misprediction is isolated.
func (s *Summary) BranchBurstFactor() float64 {
	return overlapFactor(s.MispredictGroups, s.Mispredicts)
}

// TLBMissesPerInstr returns data-TLB misses per dynamic instruction.
func (s *Summary) TLBMissesPerInstr() float64 {
	return float64(s.DTLBMisses) / float64(s.Instructions)
}

// TLBOverlapFactor is the equation-(8) overlap multiplier applied to TLB
// misses, which the paper's §7 expects to behave like long data misses.
func (s *Summary) TLBOverlapFactor() float64 {
	return overlapFactor(s.TLBMissGroups, s.DTLBMisses)
}

func overlapFactor(groupCounts map[int]int, events uint64) float64 {
	if events == 0 {
		return 1
	}
	var groups int
	//folint:allow(detrand) integer sum over the values; addition order cannot change it
	for _, g := range groupCounts {
		groups += g
	}
	return float64(groups) / float64(events)
}

// IsolatedICacheFrac returns the fraction of I-cache misses whose gap to
// the previous miss is at least minGap dynamic instructions — misses far
// enough from their predecessor that a fetch buffer has had time to
// rebuild. Returns 1 when there are no misses.
func (s *Summary) IsolatedICacheFrac(minGap int) float64 {
	if len(s.ICacheMissGaps) == 0 {
		return 1
	}
	isolated := 0
	for _, g := range s.ICacheMissGaps {
		if int(g) >= minGap {
			isolated++
		}
	}
	return float64(isolated) / float64(len(s.ICacheMissGaps))
}

// newPredictor instantiates the configured predictor: the spec when
// given, otherwise the default gshare with the given index width.
func newPredictor(spec *predictor.Spec, bits uint) (predictor.Predictor, error) {
	if spec != nil {
		return spec.New()
	}
	return predictor.NewGshare(bits)
}
