package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fomodel/internal/experiments"
	"fomodel/internal/optimize"
	"fomodel/internal/server"
)

// testClient wires a client to a handler with an instant sleep hook that
// records the retry schedule.
func testClient(t *testing.T, h http.Handler) (*Client, *[]time.Duration) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	delays := &[]time.Duration{}
	c := New(srv.URL)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
	return c, delays
}

// realServer starts a full fomodeld handler chain for integration tests.
func realServer(t *testing.T, cfg server.Config) *Client {
	t.Helper()
	if cfg.N == 0 {
		cfg.N = 20000
	}
	srv := httptest.NewServer(server.New(cfg, nil).Handler())
	t.Cleanup(srv.Close)
	return New(srv.URL)
}

// TestRetryAfterParsing is the regression test for the HTTP-date form of
// Retry-After being treated as garbage: RFC 7231 allows both delta
// seconds and an HTTP-date, and the date form must be interpreted
// against the server's own Date header, not dropped.
func TestRetryAfterParsing(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	stamp := func(t time.Time) string { return t.UTC().Format(http.TimeFormat) }
	cases := []struct {
		name       string
		retryAfter string
		date       string
		want       time.Duration
	}{
		{"absent", "", "", 0},
		{"delta seconds", "3", "", 3 * time.Second},
		{"delta zero", "0", "", 0},
		{"delta negative", "-2", "", 0},
		// An exact delta is honored as sent, even beyond MaxBackoff.
		{"delta beyond max backoff", "30", "", 30 * time.Second},
		{"http date", stamp(base.Add(4 * time.Second)), stamp(base), 4 * time.Second},
		{"http date in the past", stamp(base.Add(-time.Minute)), stamp(base), 0},
		// The date form is clamped to MaxBackoff: clock skew can inflate
		// it arbitrarily, unlike a delta.
		{"http date clamped", stamp(base.Add(time.Hour)), stamp(base), DefaultMaxBackoff},
		// No Date header: measured against local time, so a far-future
		// date still lands on the clamp.
		{"http date without date header", stamp(time.Now().Add(time.Hour)), "", DefaultMaxBackoff},
		{"garbage", "soon", "", 0},
	}
	c := New("http://unused")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if tc.retryAfter != "" {
				resp.Header.Set("Retry-After", tc.retryAfter)
			}
			if tc.date != "" {
				resp.Header.Set("Date", tc.date)
			}
			if got := c.retryAfter(resp); got != tc.want {
				t.Errorf("retryAfter(%q, Date %q) = %v, want %v", tc.retryAfter, tc.date, got, tc.want)
			}
		})
	}
}

// TestRetryHonorsRetryAfterDate drives the date form through the full
// retry loop: the delay slept between attempts must be the date's offset
// from the response's Date header.
func TestRetryHonorsRetryAfterDate(t *testing.T) {
	var calls atomic.Int32
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			now := time.Now()
			w.Header().Set("Date", now.UTC().Format(http.TimeFormat))
			w.Header().Set("Retry-After", now.Add(2*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	c.jitter = func(d time.Duration) time.Duration {
		t.Error("jitter used despite Retry-After being present")
		return 0
	}
	if _, err := c.do(context.Background(), http.MethodGet, "/v1/workloads", nil, false); err != nil {
		t.Fatal(err)
	}
	if len(*delays) != 1 || (*delays)[0] != 2*time.Second {
		t.Errorf("delays = %v, want [2s]", *delays)
	}
}

// TestRetryHonorsRetryAfter pins the core retry contract: the server's
// Retry-After is used verbatim as the delay — no jitter, no backoff
// growth — across both retryable statuses.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, `{"n":20000,"seed":1,"workloads":[]}`)
		}
	}))
	c.jitter = func(time.Duration) time.Duration {
		t.Error("jitter used despite Retry-After being present")
		return 0
	}

	if _, err := c.Workloads(context.Background()); err != nil {
		t.Fatalf("Workloads after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	want := []time.Duration{2 * time.Second, time.Second}
	if len(*delays) != len(want) {
		t.Fatalf("delays = %v, want %v", *delays, want)
	}
	for i, d := range *delays {
		if d != want[i] {
			t.Errorf("delay %d = %v, want %v", i, d, want[i])
		}
	}
}

// TestBackoffScheduleWithoutRetryAfter pins the fallback schedule: with
// no Retry-After, each delay is a jittered draw from [backoff/2, backoff]
// with backoff doubling from BaseBackoff and capped at MaxBackoff.
func TestBackoffScheduleWithoutRetryAfter(t *testing.T) {
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	}))
	c.MaxRetries = 3
	c.BaseBackoff = 100 * time.Millisecond
	c.MaxBackoff = 300 * time.Millisecond

	_, err := c.Workloads(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("exhausted retries: err = %v, want a 429 APIError", err)
	}
	if !strings.Contains(apiErr.Error(), "saturated") {
		t.Errorf("error %q should carry the server message", apiErr.Error())
	}
	// Ceilings double then cap: 100ms, 200ms, 300ms.
	ceilings := []time.Duration{100, 200, 300}
	if len(*delays) != len(ceilings) {
		t.Fatalf("delays = %v, want %d draws", *delays, len(ceilings))
	}
	for i, d := range *delays {
		lo, hi := ceilings[i]*time.Millisecond/2, ceilings[i]*time.Millisecond
		if d < lo || d > hi {
			t.Errorf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestNoRetryOnBadRequest pins that only 429/503 are retried: a 400 is a
// terminal APIError after one attempt.
func TestNoRetryOnBadRequest(t *testing.T) {
	var calls atomic.Int32
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown profile \"nope\""}`, http.StatusBadRequest)
	}))
	_, err := c.Predict(context.Background(), server.PredictRequest{Bench: "nope"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 APIError", err)
	}
	if calls.Load() != 1 || len(*delays) != 0 {
		t.Errorf("attempts = %d, sleeps = %d; want 1 attempt, 0 sleeps", calls.Load(), len(*delays))
	}
}

// TestRetriesDisabled pins MaxRetries < 0: one attempt, no sleeps.
func TestRetriesDisabled(t *testing.T) {
	var calls atomic.Int32
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	}))
	c.MaxRetries = -1
	if _, err := c.Workloads(context.Background()); err == nil {
		t.Fatal("want an error with retries disabled")
	}
	if calls.Load() != 1 || len(*delays) != 0 {
		t.Errorf("attempts = %d, sleeps = %d; want 1 attempt, 0 sleeps", calls.Load(), len(*delays))
	}
}

// TestPerRequestDeadline pins the per-attempt timeout: a server slower
// than RequestTimeout fails the attempt with a deadline error rather
// than hanging.
func TestPerRequestDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	c.RequestTimeout = 20 * time.Millisecond
	c.MaxRetries = -1
	_, err := c.Workloads(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
}

// TestRetryUnder429Saturation is the end-to-end shedding scenario: the
// daemon sheds with 429 + Retry-After while saturated; the client backs
// off for exactly the advertised delay and succeeds once capacity
// returns (the sleep hook is the moment the saturation lifts).
func TestRetryUnder429Saturation(t *testing.T) {
	saturated := atomic.Bool{}
	saturated.Store(true)
	var calls atomic.Int32
	backend := server.New(server.Config{N: 20000}, nil).Handler()
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if saturated.Load() {
			// What fomodeld's limiter sends when every slot is busy.
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"server saturated"}`, http.StatusTooManyRequests)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	inner := c.sleep
	c.sleep = func(ctx context.Context, d time.Duration) error {
		saturated.Store(false) // capacity returns while the client waits
		return inner(ctx, d)
	}

	rec, err := c.Predict(context.Background(), server.PredictRequest{Bench: "gzip"})
	if err != nil {
		t.Fatalf("Predict under saturation: %v", err)
	}
	if rec.Bench != "gzip" || rec.Estimate.CPI <= 0 {
		t.Errorf("implausible prediction: %+v", rec)
	}
	if calls.Load() != 2 {
		t.Errorf("attempts = %d, want 2 (shed, then served)", calls.Load())
	}
	if len(*delays) != 1 || (*delays)[0] != time.Second {
		t.Errorf("delays = %v, want exactly the advertised 1s", *delays)
	}
}

// TestBatchRoundTrip pins the batch method against the real daemon: item
// bodies decode to predictions and match PredictRaw byte for byte.
func TestBatchRoundTrip(t *testing.T) {
	c := realServer(t, server.Config{})
	ctx := context.Background()
	reqs := []server.PredictRequest{{Bench: "gzip"}, {Bench: "mcf"}}
	items, err := c.Batch(ctx, reqs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d, want 2", len(items))
	}
	for i, item := range items {
		if item.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, item.Status, item.Error)
		}
		raw, err := c.PredictRaw(ctx, reqs[i])
		if err != nil {
			t.Fatalf("PredictRaw %d: %v", i, err)
		}
		if item.Body != string(raw) {
			t.Errorf("item %d body differs from PredictRaw", i)
		}
	}
}

// TestSweepStreamRoundTrip pins streaming consumption against the real
// daemon: every grid cell arrives as a point, the trailer carries the
// sweep-level fields, and both agree with the buffered Sweep result.
func TestSweepStreamRoundTrip(t *testing.T) {
	c := realServer(t, server.Config{})
	ctx := context.Background()
	spec := experiments.SweepSpec{Param: "width", Benches: []string{"gzip"}, Values: []int{2, 4, 6, 8}}

	var points []experiments.SweepPoint
	trailer, err := c.SweepStream(ctx, spec, func(pt experiments.SweepPoint) error {
		points = append(points, pt)
		return nil
	})
	if err != nil {
		t.Fatalf("SweepStream: %v", err)
	}
	buffered, err := c.Sweep(ctx, spec)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(points) != len(buffered.Points) {
		t.Fatalf("streamed %d points, buffered %d", len(points), len(buffered.Points))
	}
	for i := range points {
		if points[i] != buffered.Points[i] {
			t.Errorf("point %d differs: streamed %+v buffered %+v", i, points[i], buffered.Points[i])
		}
	}
	if trailer.Render != buffered.Render || trailer.CSV != buffered.CSV ||
		trailer.MeanAbsErr != buffered.MeanAbsErr || trailer.Title != buffered.Title {
		t.Errorf("trailer differs from buffered sweep:\n%+v\nvs\n%+v", trailer, buffered)
	}
}

// TestSweepStreamServerError pins the mid-protocol error paths: an error
// row becomes an APIError, and a truncated stream (no trailer) is
// reported rather than silently treated as complete.
func TestSweepStreamServerError(t *testing.T) {
	t.Run("error row", func(t *testing.T) {
		c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"bench":"gzip","value":2,"sim_cpi":1,"model_cpi":1,"err":0}`)
			fmt.Fprintln(w, `{"error":"simulator exploded"}`)
		}))
		_, err := c.SweepStream(context.Background(), experiments.SweepSpec{}, nil)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !strings.Contains(apiErr.Message, "simulator exploded") {
			t.Fatalf("err = %v, want an APIError carrying the row's message", err)
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"bench":"gzip","value":2,"sim_cpi":1,"model_cpi":1,"err":0}`)
		}))
		_, err := c.SweepStream(context.Background(), experiments.SweepSpec{}, nil)
		if err == nil || !strings.Contains(err.Error(), "without a trailer") {
			t.Fatalf("err = %v, want a truncated-stream error", err)
		}
	})
}

// TestDoRawRelaysTerminalResponse pins the proxying contract: DoRaw
// retries 429s per schedule, but when the schedule is exhausted the
// final shedding response itself comes back — status, Retry-After, and
// body intact — so a proxy can relay the daemon's authoritative answer
// instead of synthesizing its own.
func TestDoRawRelaysTerminalResponse(t *testing.T) {
	var calls atomic.Int32
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"server saturated"}`, http.StatusTooManyRequests)
	}))
	c.MaxRetries = 2

	resp, err := c.DoRaw(context.Background(), http.MethodGet, "/v1/workloads", nil, nil, false)
	if err != nil {
		t.Fatalf("DoRaw: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("terminal status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("terminal Retry-After = %q, want it preserved", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "server saturated") {
		t.Errorf("terminal body %q lost the server message", body)
	}
	if calls.Load() != 3 || len(*delays) != 2 {
		t.Errorf("attempts = %d, sleeps = %d; want 3 attempts, 2 sleeps", calls.Load(), len(*delays))
	}
}

// TestAttemptObserverFiresPerAttemptBeforeBackoff pins the hedge-feed
// contract: the observer is called once per individual HTTP attempt,
// before that attempt's backoff sleep — so a router histogram fed from
// it measures upstream service time, never the retry schedule.
func TestAttemptObserverFiresPerAttemptBeforeBackoff(t *testing.T) {
	var calls atomic.Int32
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"warming"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	c.MaxRetries = 1
	type obs struct {
		status      int
		err         error
		sleepsSoFar int
	}
	var seen []obs
	c.AttemptObserver = func(d time.Duration, status int, err error) {
		seen = append(seen, obs{status: status, err: err, sleepsSoFar: len(*delays)})
	}

	resp, err := c.DoRaw(context.Background(), http.MethodGet, "/v1/workloads", nil, nil, false)
	if err != nil {
		t.Fatalf("DoRaw: %v", err)
	}
	resp.Body.Close()
	if len(seen) != 2 {
		t.Fatalf("observer fired %d times, want once per attempt (2)", len(seen))
	}
	if seen[0].status != http.StatusServiceUnavailable || seen[0].err != nil {
		t.Errorf("first attempt observed as (%d, %v), want the 503", seen[0].status, seen[0].err)
	}
	if seen[1].status != http.StatusOK || seen[1].err != nil {
		t.Errorf("second attempt observed as (%d, %v), want the 200", seen[1].status, seen[1].err)
	}
	// The first observation happens before the inter-attempt backoff
	// sleep: the sleep is between the attempts, not inside either one.
	if seen[0].sleepsSoFar != 0 || seen[1].sleepsSoFar != 1 {
		t.Errorf("sleeps seen at observation time = %d/%d, want 0/1",
			seen[0].sleepsSoFar, seen[1].sleepsSoFar)
	}
}

// TestDoRawHeadersAndNon200Passthrough pins that extra headers reach the
// wire and that a non-retryable non-200 comes back as a response (for
// relay), not an *APIError.
func TestDoRawHeadersAndNon200Passthrough(t *testing.T) {
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		http.Error(w, `{"error":"unknown profile"}`, http.StatusBadRequest)
	}))
	hdr := http.Header{"X-Request-ID": []string{"abc123"}}
	resp, err := c.DoRaw(context.Background(), http.MethodPost, "/v1/predict", []byte(`{}`), hdr, false)
	if err != nil {
		t.Fatalf("DoRaw: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want the 400 relayed", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "abc123" {
		t.Errorf("echoed request id = %q, want header forwarded", got)
	}
}

// TestDoRawNoTransportRetry pins the failover contract: a transport
// error (dead replica) surfaces immediately with no sleeps, so the
// router can move to the ring successor at once.
func TestDoRawNoTransportRetry(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // nothing listens here anymore
	c := New(srv.URL)
	delays := []time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return nil
	}
	start := time.Now()
	_, err := c.DoRaw(context.Background(), http.MethodGet, "/healthz", nil, nil, false)
	if err == nil {
		t.Fatal("DoRaw against a dead server should fail")
	}
	if len(delays) != 0 {
		t.Errorf("transport error slept %v; want immediate failure for failover", delays)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("failure took %v; want immediate", elapsed)
	}
}

// TestStreamRetryNoDuplicateRows pins the hedge/retry × streaming
// interaction: a replica that sheds the streaming request with 503
// fails over (via the retry loop) to a successful attempt, and every
// NDJSON row is delivered exactly once — the retry happens before any
// row leaves the server, so a consumer can never observe duplicated
// cells.
func TestStreamRetryNoDuplicateRows(t *testing.T) {
	var calls atomic.Int32
	c, delays := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"bench":"gzip","value":2,"sim_cpi":1,"model_cpi":1,"err":0}`)
		fmt.Fprintln(w, `{"bench":"gzip","value":4,"sim_cpi":1,"model_cpi":1,"err":0}`)
		fmt.Fprintln(w, `{"title":"t","param":"width","mean_abs_err":0,"render":"r","csv":"c"}`)
	}))

	seen := map[int]int{}
	trailer, err := c.SweepStream(context.Background(), experiments.SweepSpec{}, func(pt experiments.SweepPoint) error {
		seen[pt.Value]++
		return nil
	})
	if err != nil {
		t.Fatalf("SweepStream across a 503: %v", err)
	}
	if trailer == nil || trailer.Render != "r" {
		t.Fatalf("trailer = %+v, want the second attempt's trailer", trailer)
	}
	if calls.Load() != 2 {
		t.Errorf("attempts = %d, want 2 (shed, then streamed)", calls.Load())
	}
	if len(*delays) != 1 || (*delays)[0] != time.Second {
		t.Errorf("delays = %v, want exactly the advertised 1s", *delays)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("row value %d delivered %d times; rows must never duplicate across the retry", v, n)
		}
	}
	if len(seen) != 2 {
		t.Errorf("saw %d distinct rows, want 2", len(seen))
	}
}

func TestOptimizeStreamRoundTrip(t *testing.T) {
	c := realServer(t, server.Config{})
	ctx := context.Background()
	spec := optimize.Spec{
		Workloads: []optimize.WorkloadWeight{{Bench: "gzip"}},
		Bounds:    map[string]optimize.Bound{"width": {Min: 1, Max: 4}},
		Budget:    6,
	}

	var points []optimize.Point
	trailer, err := c.OptimizeStream(ctx, spec, func(pt optimize.Point) error {
		points = append(points, pt)
		return nil
	})
	if err != nil {
		t.Fatalf("OptimizeStream: %v", err)
	}
	buffered, err := c.Optimize(ctx, spec)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(points) == 0 || len(points) != len(buffered.Points) {
		t.Fatalf("streamed %d points, buffered %d", len(points), len(buffered.Points))
	}
	for i := range points {
		if fmt.Sprint(points[i]) != fmt.Sprint(buffered.Points[i]) {
			t.Errorf("point %d differs: streamed %+v buffered %+v", i, points[i], buffered.Points[i])
		}
	}
	if trailer.Render != buffered.Render || trailer.CSV != buffered.CSV ||
		trailer.Evaluations != buffered.Evaluations || trailer.Converged != buffered.Converged {
		t.Errorf("trailer differs from buffered search:\n%+v\nvs\n%+v", trailer, buffered)
	}
	if len(trailer.Frontier) != len(buffered.Frontier) {
		t.Errorf("trailer frontier %d points, buffered %d", len(trailer.Frontier), len(buffered.Frontier))
	}
}

// TestOptimizeStreamServerError pins the mid-protocol error paths for
// the optimize stream, mirroring the sweep-stream coverage.
func TestOptimizeStreamServerError(t *testing.T) {
	t.Run("error row", func(t *testing.T) {
		c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"eval":1,"config":{"width":4,"depth":5,"window":48,"rob":128,"clusters":1,"fetch_buffer":0},"cpi":1,"objectives":[1]}`)
			fmt.Fprintln(w, `{"error":"search exploded"}`)
		}))
		_, err := c.OptimizeStream(context.Background(), optimize.Spec{}, nil)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !strings.Contains(apiErr.Message, "search exploded") {
			t.Fatalf("err = %v, want an APIError carrying the row's message", err)
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"eval":1,"config":{"width":4,"depth":5,"window":48,"rob":128,"clusters":1,"fetch_buffer":0},"cpi":1,"objectives":[1]}`)
		}))
		_, err := c.OptimizeStream(context.Background(), optimize.Spec{}, nil)
		if err == nil || !strings.Contains(err.Error(), "without a trailer") {
			t.Fatalf("err = %v, want a truncated-stream error", err)
		}
	})
}
