package predictor

import (
	"testing"

	"fomodel/internal/rng"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter %d, want saturated 3", c)
	}
	if !c.taken() {
		t.Fatal("saturated counter predicts not-taken")
	}
}

func TestNewGshareValidation(t *testing.T) {
	if _, err := NewGshare(0); err == nil {
		t.Fatal("0 bits accepted")
	}
	if _, err := NewGshare(40); err == nil {
		t.Fatal("40 bits accepted")
	}
	g, err := NewGshare(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.table) != 8192 {
		t.Fatalf("table size %d, want 8192", len(g.table))
	}
}

func TestGshareLearnsBias(t *testing.T) {
	g := DefaultGshare()
	var stats Stats
	// A single always-taken branch must be predicted nearly perfectly
	// after warmup.
	for i := 0; i < 1000; i++ {
		pred := g.Predict(0x4000)
		g.Update(0x4000, true)
		if i >= 10 {
			stats.Record(pred, true)
		}
	}
	if stats.MispredictRate() > 0.01 {
		t.Fatalf("mispredict rate %v on constant branch", stats.MispredictRate())
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// T,N,T,N... is perfectly predictable with global history.
	g := DefaultGshare()
	var stats Stats
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		pred := g.Predict(0x4000)
		g.Update(0x4000, taken)
		if i >= 200 {
			stats.Record(pred, taken)
		}
	}
	if stats.MispredictRate() > 0.02 {
		t.Fatalf("mispredict rate %v on alternating branch", stats.MispredictRate())
	}
}

func TestGshareRandomBranchNearHalf(t *testing.T) {
	g := DefaultGshare()
	r := rng.New(1)
	var stats Stats
	for i := 0; i < 20000; i++ {
		taken := r.Bool(0.5)
		pred := g.Predict(0x4000)
		g.Update(0x4000, taken)
		stats.Record(pred, taken)
	}
	if rate := stats.MispredictRate(); rate < 0.35 || rate > 0.65 {
		t.Fatalf("random branch mispredict rate %v, want ~0.5", rate)
	}
}

func TestGshareSeparatesBranches(t *testing.T) {
	// Two opposite-biased branches at different PCs with a fixed
	// interleaving must both be learned.
	g := DefaultGshare()
	var stats Stats
	for i := 0; i < 4000; i++ {
		for _, br := range []struct {
			pc    uint64
			taken bool
		}{{0x1000, true}, {0x2000, false}} {
			pred := g.Predict(br.pc)
			g.Update(br.pc, br.taken)
			if i >= 100 {
				stats.Record(pred, br.taken)
			}
		}
	}
	if stats.MispredictRate() > 0.02 {
		t.Fatalf("mispredict rate %v on two biased branches", stats.MispredictRate())
	}
}

func TestBimodal(t *testing.T) {
	b, err := NewBimodal(12)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	for i := 0; i < 1000; i++ {
		pred := b.Predict(0x1234)
		b.Update(0x1234, true)
		if i > 10 {
			stats.Record(pred, true)
		}
	}
	if stats.Mispredicts != 0 {
		t.Fatalf("bimodal mispredicted constant branch %d times", stats.Mispredicts)
	}
	if _, err := NewBimodal(0); err == nil {
		t.Fatal("0 bits accepted")
	}
}

func TestStatic(t *testing.T) {
	s := Static{Taken: true}
	if !s.Predict(0) {
		t.Fatal("always-taken predicted not-taken")
	}
	s.Update(0, false) // no-op
	if !s.Predict(0) {
		t.Fatal("static predictor changed")
	}
	if (Static{Taken: true}).Name() == (Static{}).Name() {
		t.Fatal("static names collide")
	}
}

func TestIdeal(t *testing.T) {
	var p Ideal
	for _, taken := range []bool{true, false, true} {
		p.SetOutcome(taken)
		if p.Predict(0x10) != taken {
			t.Fatal("oracle mispredicted")
		}
		p.Update(0x10, taken)
	}
	if p.Name() != "ideal" {
		t.Fatal("name wrong")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Fatal("empty stats rate non-zero")
	}
	s.Record(true, true)
	s.Record(true, false)
	if s.Branches != 2 || s.Mispredicts != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.MispredictRate() != 0.5 {
		t.Fatalf("rate %v", s.MispredictRate())
	}
}

func TestNames(t *testing.T) {
	if DefaultGshare().Name() != "gshare-8k" {
		t.Fatalf("gshare name %q", DefaultGshare().Name())
	}
	b, err := NewBimodal(13)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "bimodal-8k" {
		t.Fatalf("bimodal name %q", b.Name())
	}
}

// Interface conformance checks.
var (
	_ Predictor = (*Gshare)(nil)
	_ Predictor = (*Bimodal)(nil)
	_ Predictor = Static{}
	_ Predictor = (*Ideal)(nil)
)

func TestSpec(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		name string
	}{
		{Spec{Kind: KindGshare, IndexBits: 13}, "gshare-8k"},
		{Spec{Kind: KindBimodal, IndexBits: 13}, "bimodal-8k"},
		{Spec{Kind: KindAlwaysTaken}, "always-taken"},
		{Spec{Kind: KindAlwaysNotTaken}, "always-not-taken"},
	} {
		p, err := tc.spec.New()
		if err != nil {
			t.Fatalf("%v: %v", tc.spec, err)
		}
		if p.Name() != tc.name {
			t.Errorf("spec %v built %q, want %q", tc.spec, p.Name(), tc.name)
		}
	}
	if _, err := (Spec{Kind: Kind(99)}).New(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (Spec{Kind: KindGshare}).New(); err == nil {
		t.Fatal("gshare with zero bits accepted")
	}
	if DefaultSpec().Kind != KindGshare || DefaultSpec().IndexBits != 13 {
		t.Fatalf("default spec %+v", DefaultSpec())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindGshare: "gshare", KindBimodal: "bimodal",
		KindAlwaysTaken: "always-taken", KindAlwaysNotTaken: "always-not-taken",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind empty string")
	}
}
