package reqkey

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzCanonicalKey hardens the canonicalization contract: for any JSON
// object, Canonical is total (no panics), deterministic, a fixpoint
// (re-canonicalizing its own JSON body yields the same key — which is
// what makes it insensitive to the field order and whitespace of the
// original request spelling), and disjoint from the Raw fallback
// keyspace.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("predict", `{"b":1,"a":"x"}`)
	f.Add("predict", `{"a":"x","b":1}`)
	f.Add("sweep", `{"nested":{"z":true,"y":[1,2,3]},"s":" "}`)
	f.Add("", `{}`)
	f.Add("predict", `not json`)

	f.Fuzz(func(t *testing.T, endpoint, doc string) {
		var v map[string]any
		if err := json.Unmarshal([]byte(doc), &v); err != nil {
			// Unkeyable spellings take the Raw fallback; it must be
			// total and deterministic on its own.
			if Raw(endpoint, []byte(doc)) != Raw(endpoint, []byte(doc)) {
				t.Fatal("Raw is not deterministic")
			}
			return
		}
		k1, err := Canonical(endpoint, v)
		if err != nil {
			t.Fatalf("Canonical failed on decoded JSON: %v", err)
		}
		k2, err := Canonical(endpoint, v)
		if err != nil || k1 != k2 {
			t.Fatalf("Canonical not deterministic: %q vs %q (%v)", k1, k2, err)
		}

		// Fixpoint: decode the key's own JSON body and re-canonicalize.
		// Any two spellings of the same object meet at this fixpoint, so
		// field reordering cannot split the keyspace. encoding/json
		// escapes control characters, so the key's last NUL is the
		// endpoint separator even if the endpoint itself contains NULs.
		body := k1[strings.LastIndexByte(k1, 0)+1:]
		var v2 map[string]any
		if err := json.Unmarshal([]byte(body), &v2); err != nil {
			t.Fatalf("canonical body is not valid JSON: %v", err)
		}
		k3, err := Canonical(endpoint, v2)
		if err != nil || k3 != k1 {
			t.Fatalf("canonicalization is not a fixpoint: %q vs %q (%v)", k1, k3, err)
		}

		// The raw fallback keyspace must stay disjoint from Canonical's.
		if r := Raw(endpoint, []byte(doc)); r == k1 {
			t.Fatalf("Raw and Canonical collided on %q", r)
		}
	})
}
