package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fomodel/internal/experiments"
	"fomodel/internal/optimize"
	"fomodel/internal/reqkey"
	"fomodel/internal/server"
	"fomodel/internal/workload"
)

// testN keeps per-request compute cheap: a 2000-instruction trace
// generates and analyzes in well under a millisecond.
const testN = 2000

func testDefaults() reqkey.Defaults { return reqkey.Defaults{N: testN, Seed: 1} }

// newDaemon boots a real fomodeld handler chain on a test listener.
func newDaemon(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{N: testN, Seed: 1}, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// newProxy builds a router over the given replica URLs and serves it.
func newProxy(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Defaults == (reqkey.Defaults{}) {
		cfg.Defaults = testDefaults()
	}
	rt, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func post(t *testing.T, base, path, body string, hdr http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, base, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRingDistributionAndStability(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(urls, 64)

	owned := make(map[int]int)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.sequence(key)
		if len(seq) != 3 {
			t.Fatalf("sequence(%q) = %v, want all 3 replicas", key, seq)
		}
		seen := map[int]bool{}
		for _, idx := range seq {
			if seen[idx] {
				t.Fatalf("sequence(%q) repeats replica %d", key, idx)
			}
			seen[idx] = true
		}
		owned[seq[0]]++
		// Determinism: the same key maps identically on a fresh ring.
		again := newRing(urls, 64).sequence(key)
		for j := range seq {
			if seq[j] != again[j] {
				t.Fatalf("sequence(%q) not deterministic: %v vs %v", key, seq, again)
			}
		}
	}
	for i := 0; i < 3; i++ {
		if owned[i] == 0 {
			t.Fatalf("replica %d owns no keys out of 300: %v", i, owned)
		}
	}

	// Consistency: removing replica b moves only b's keys; keys owned by
	// a or c keep their owner.
	sub := newRing([]string{urls[0], urls[2]}, 64) // indices: 0→a, 1→c
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := r.sequence(key)[0]
		after := sub.sequence(key)[0]
		if before == 0 && after != 0 {
			t.Fatalf("key %q moved off replica a when b was removed", key)
		}
		if before == 2 && after != 1 {
			t.Fatalf("key %q moved off replica c when b was removed", key)
		}
	}
}

// TestProxyByteEquality pins the tentpole contract: for every endpoint,
// the bytes a client gets through the sharded proxy are exactly the
// bytes a single daemon would have produced.
func TestProxyByteEquality(t *testing.T) {
	_, ref := newDaemon(t)
	_, repA := newDaemon(t)
	_, repB := newDaemon(t)
	rt, proxy := newProxy(t, Config{
		Replicas:     []string{repA.URL, repB.URL},
		DisableHedge: true,
	})

	// Predict: single-shot, repeated for the cache-hit path.
	predictBody := `{"bench": "gzip", "machine": {"rob": 64}}`
	for pass, wantCache := range []string{"miss", "hit"} {
		want := readAll(t, post(t, ref.URL, "/v1/predict", predictBody, nil))
		resp := post(t, proxy.URL, "/v1/predict", predictBody, nil)
		got := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: proxy predict status %d: %s", pass, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: proxy predict body differs from daemon's:\n got %q\nwant %q", pass, got, want)
		}
		if c := resp.Header.Get("X-Cache"); c != wantCache {
			t.Fatalf("pass %d: X-Cache = %q, want %q", pass, c, wantCache)
		}
		if resp.Header.Get("X-Request-ID") == "" {
			t.Fatalf("pass %d: proxy response is missing X-Request-ID", pass)
		}
	}

	// Errors: the daemon's message and status relay verbatim (the body
	// additionally carries the proxy's request ID).
	badBody := `{"bench": "no-such-bench"}`
	wantErr := readAll(t, post(t, ref.URL, "/v1/predict", badBody, nil))
	resp := post(t, proxy.URL, "/v1/predict", badBody, nil)
	gotErr := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad bench: proxy status %d, want 400", resp.StatusCode)
	}
	var wantE, gotE struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(wantErr, &wantE); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotErr, &gotE); err != nil {
		t.Fatal(err)
	}
	if gotE.Error != wantE.Error {
		t.Fatalf("proxied error %q, want %q", gotE.Error, wantE.Error)
	}
	if gotE.RequestID == "" {
		t.Fatalf("proxied error body lacks the request ID: %s", gotErr)
	}

	// Batch: every workload at two ROB sizes — enough keys that the batch
	// splits across both shards in virtually every ring layout.
	var items []server.PredictRequest
	for _, rob := range []int{64, 128} {
		for _, name := range workload.Names() {
			items = append(items, server.PredictRequest{Bench: name, Machine: server.MachineSpec{ROB: rob}})
		}
	}
	owners := map[int]bool{}
	for _, item := range items {
		owners[rt.ring.owner(rt.itemKey(item))] = true
	}
	batchBody, err := json.Marshal(server.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	wantBatch := readAll(t, post(t, ref.URL, "/v1/batch", string(batchBody), nil))
	resp = post(t, proxy.URL, "/v1/batch", string(batchBody), nil)
	gotBatch := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy batch status %d: %s", resp.StatusCode, gotBatch)
	}
	if !bytes.Equal(gotBatch, wantBatch) {
		t.Fatalf("proxy batch body differs from daemon's (%d vs %d bytes, split across %d shards)",
			len(gotBatch), len(wantBatch), len(owners))
	}
	if len(owners) < 2 {
		t.Logf("note: all %d batch keys landed on one shard in this ring layout", len(items))
	}

	// Buffered sweep.
	sweepBody := `{"param": "rob", "benches": ["gzip", "gcc"], "values": [64, 128]}`
	wantSweep := readAll(t, post(t, ref.URL, "/v1/sweep", sweepBody, nil))
	resp = post(t, proxy.URL, "/v1/sweep", sweepBody, nil)
	gotSweep := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy sweep status %d: %s", resp.StatusCode, gotSweep)
	}
	if !bytes.Equal(gotSweep, wantSweep) {
		t.Fatalf("proxy sweep body differs from daemon's")
	}

	// Streamed (NDJSON) sweep: full stream passthrough, row for row.
	ndjson := http.Header{"Accept": []string{"application/x-ndjson"}}
	wantStream := readAll(t, post(t, ref.URL, "/v1/sweep", sweepBody, ndjson))
	resp = post(t, proxy.URL, "/v1/sweep", sweepBody, ndjson)
	gotStream := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy stream status %d: %s", resp.StatusCode, gotStream)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("proxy stream Content-Type = %q", ct)
	}
	if !bytes.Equal(gotStream, wantStream) {
		t.Fatalf("proxy NDJSON stream differs from daemon's:\n got %q\nwant %q", gotStream, wantStream)
	}

	// Workloads listing.
	wantWl := readAll(t, get(t, ref.URL, "/v1/workloads"))
	resp = get(t, proxy.URL, "/v1/workloads")
	gotWl := readAll(t, resp)
	if !bytes.Equal(gotWl, wantWl) {
		t.Fatalf("proxy workloads body differs from daemon's")
	}
}

// TestShardStability pins the cache-aware property itself: each key has
// one home replica, repeats land there every time, and the keyspace
// spreads per the ring's own assignment.
func TestShardStability(t *testing.T) {
	_, repA := newDaemon(t)
	_, repB := newDaemon(t)
	rt, proxy := newProxy(t, Config{
		Replicas:     []string{repA.URL, repB.URL},
		DisableHedge: true,
		LoadFactor:   -1, // no bounded-load diversion: pure ring routing
	})

	bodies := make([]string, 0, 16)
	for _, rob := range []int{48, 96} {
		for _, name := range workload.Names() {
			bodies = append(bodies, fmt.Sprintf(`{"bench": %q, "machine": {"rob": %d}}`, name, rob))
		}
	}
	wantPerReplica := make([]int64, 2)
	const repeats = 3
	for _, body := range bodies {
		owner := rt.ring.owner(rt.predictKey([]byte(body)))
		wantPerReplica[owner] += repeats
	}
	for i := 0; i < repeats; i++ {
		for _, body := range bodies {
			resp := post(t, proxy.URL, "/v1/predict", body, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("predict status %d: %s", resp.StatusCode, readAll(t, resp))
			}
			readAll(t, resp)
		}
	}
	for i, rep := range rt.reps {
		if got := rep.requests.Load(); got != wantPerReplica[i] {
			t.Fatalf("replica %d served %d requests, want %d (routing not key-stable)",
				i, got, wantPerReplica[i])
		}
	}
	if wantPerReplica[0] == 0 || wantPerReplica[1] == 0 {
		t.Logf("note: degenerate ring layout, one replica owns all %d keys", len(bodies))
	}
	// After the first pass every repeat is a hit on its home replica.
	var hits int64
	for _, rep := range rt.reps {
		hits += rep.hits.Load()
	}
	if want := int64(len(bodies) * (repeats - 1)); hits != want {
		t.Fatalf("observed %d relayed cache hits, want %d", hits, want)
	}
}

// fakeReplicas builds n configurable bare upstreams (not real daemons)
// plus a router over them; behavior[i] may be swapped before requests.
func fakeReplicas(t *testing.T, n int, cfg Config) ([]*httptest.Server, []*http.HandlerFunc, *Router) {
	t.Helper()
	handlers := make([]*http.HandlerFunc, n)
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		handlers[i] = &h
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handlers[i])(w, r)
		}))
		t.Cleanup(servers[i].Close)
		urls[i] = servers[i].URL
	}
	cfg.Replicas = urls
	if cfg.Defaults == (reqkey.Defaults{}) {
		cfg.Defaults = testDefaults()
	}
	rt, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return servers, handlers, rt
}

// TestHedgedRequestWinsAndCancelsLoser: the key's owner stalls, the
// hedge timer fires, the ring successor answers, and the stalled
// attempt is canceled — first response wins.
func TestHedgedRequestWinsAndCancelsLoser(t *testing.T) {
	_, handlers, rt := fakeReplicas(t, 2, Config{
		HedgeMax:        20 * time.Millisecond, // pre-sample hedge delay
		HedgeMinSamples: 1 << 30,               // pin delay at HedgeMax
		UpstreamRetries: -1,
	})
	body := []byte(`{"bench": "gzip"}`)
	key := rt.predictKey(body)
	owner := rt.ring.owner(key)

	loserCanceled := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background connection-close
		// watcher is armed; the canceled client aborts the connection,
		// which cancels this request's context.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			loserCanceled <- struct{}{}
		case <-time.After(10 * time.Second):
			w.Write([]byte("too late"))
		}
	})
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"winner": true}`))
	})
	*handlers[owner] = slow
	*handlers[1-owner] = fast

	begin := time.Now()
	resp, rep, err := rt.forward(context.Background(), http.MethodPost, "/v1/predict", body, nil, false, key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != `{"winner": true}` {
		t.Fatalf("winner body = %q", got)
	}
	if rep != rt.reps[1-owner] {
		t.Fatalf("winner replica = %s, want the ring successor", rep.url)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("hedged request took %v; hedge timer did not fire", elapsed)
	}
	if rt.hedgeWins.Load() != 1 {
		t.Fatalf("hedge wins = %d, want 1", rt.hedgeWins.Load())
	}
	if rt.reps[1-owner].hedges.Load() != 1 {
		t.Fatalf("successor hedge count = %d, want 1", rt.reps[1-owner].hedges.Load())
	}
	select {
	case <-loserCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing attempt was never canceled")
	}
}

// TestRetryAfterDoesNotStallHedge: a shedding owner advertising a long
// Retry-After delays only its own attempt; the hedge timer still fires
// and the successor serves the request promptly.
func TestRetryAfterDoesNotStallHedge(t *testing.T) {
	_, handlers, rt := fakeReplicas(t, 2, Config{
		HedgeMax:        20 * time.Millisecond,
		HedgeMinSamples: 1 << 30,
	})
	body := []byte(`{"bench": "gzip"}`)
	key := rt.predictKey(body)
	owner := rt.ring.owner(key)

	shedding := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error": "saturated"}`))
	})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"served": true}`))
	})
	*handlers[owner] = shedding
	*handlers[1-owner] = ok

	begin := time.Now()
	resp, rep, err := rt.forward(context.Background(), http.MethodPost, "/v1/predict", body, nil, false, key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != `{"served": true}` {
		t.Fatalf("status %d body %q, want the successor's 200", resp.StatusCode, got)
	}
	if rep != rt.reps[1-owner] {
		t.Fatalf("winner = %s, want the ring successor", rep.url)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("request took %v; the owner's 30s Retry-After stalled the hedge", elapsed)
	}
}

// TestFailoverEjectAndReadmit kills a real replica process-style (its
// listener closes mid-fleet), verifies requests keyed to it fail over
// with zero client-visible errors, then revives it on the same port and
// verifies a /readyz probe restores its shard.
func TestFailoverEjectAndReadmit(t *testing.T) {
	_, repA := newDaemon(t)

	// Replica B runs on a manually managed listener so it can die and
	// come back on the same address (same ring identity).
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lnB.Addr().String()
	daemonB := server.New(server.Config{N: testN, Seed: 1}, nil)
	srvB := &http.Server{Handler: daemonB.Handler()}
	go srvB.Serve(lnB)

	rt, proxy := newProxy(t, Config{
		Replicas:     []string{repA.URL, "http://" + addrB},
		DisableHedge: true,
		EjectAfter:   1,
	})
	idxB := 1

	// Find a key homed on replica B.
	var bodyB string
	for _, name := range workload.Names() {
		body := fmt.Sprintf(`{"bench": %q}`, name)
		if rt.ring.owner(rt.predictKey([]byte(body))) == idxB {
			bodyB = body
			break
		}
	}
	if bodyB == "" {
		t.Skip("no workload key homed on replica B in this ring layout")
	}

	// Healthy fleet: B serves its shard.
	resp := post(t, proxy.URL, "/v1/predict", bodyB, nil)
	want := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-kill predict status %d: %s", resp.StatusCode, want)
	}
	servedByB := rt.reps[idxB].requests.Load()
	if servedByB == 0 {
		t.Fatal("replica B never saw its own shard's request")
	}

	// Kill B. The next requests for its shard must still all succeed —
	// transport failover re-routes them to the ring successor.
	srvB.Close()
	for i := 0; i < 5; i++ {
		resp := post(t, proxy.URL, "/v1/predict", bodyB, nil)
		got := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill request %d lost: status %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("post-kill request %d: failover body differs from the original", i)
		}
	}
	if rt.reps[idxB].healthy.Load() {
		t.Fatal("replica B still marked healthy after transport failures")
	}
	if rt.reps[idxB].ejects.Load() == 0 {
		t.Fatal("replica B was never counted as ejected")
	}

	// A probe pass against the dead replica must keep it out.
	rt.ProbeOnce(context.Background())
	if rt.reps[idxB].healthy.Load() {
		t.Fatal("probe readmitted a dead replica")
	}

	// Revive B on the same port; a probe pass re-admits it and its shard
	// routes home again.
	var lnB2 net.Listener
	for i := 0; i < 50; i++ {
		lnB2, err = net.Listen("tcp", addrB)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("could not rebind %s: %v", addrB, err)
	}
	daemonB2 := server.New(server.Config{N: testN, Seed: 1}, nil)
	srvB2 := &http.Server{Handler: daemonB2.Handler()}
	go srvB2.Serve(lnB2)
	defer srvB2.Close()

	rt.ProbeOnce(context.Background())
	if !rt.reps[idxB].healthy.Load() {
		t.Fatal("probe did not readmit the revived replica")
	}
	if rt.reps[idxB].readmits.Load() == 0 {
		t.Fatal("readmission was not counted")
	}
	before := rt.reps[idxB].requests.Load()
	resp = post(t, proxy.URL, "/v1/predict", bodyB, nil)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-revive predict status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-revive body differs from the original")
	}
	if rt.reps[idxB].requests.Load() == before {
		t.Fatal("revived replica is not serving its shard again")
	}
}

// TestProbeEjectsWarmingReplica pins the /readyz semantics end to end:
// a live replica that reports "warming" is kept out of rotation, and
// rejoins when it reports ready.
func TestProbeEjectsWarmingReplica(t *testing.T) {
	srvA, repA := newDaemon(t)
	_, repB := newDaemon(t)
	rt, proxy := newProxy(t, Config{
		Replicas:     []string{repA.URL, repB.URL},
		DisableHedge: true,
	})

	srvA.SetReady(false)
	rt.ProbeOnce(context.Background())
	if rt.reps[0].healthy.Load() {
		t.Fatal("warming replica still in rotation after a probe pass")
	}
	if rt.reps[1].healthy.Load() != true {
		t.Fatal("ready replica ejected")
	}

	// All traffic — including keys homed on A — flows to B.
	before := rt.reps[1].requests.Load()
	for _, name := range []string{"gzip", "gcc", "mcf", "vpr"} {
		resp := post(t, proxy.URL, "/v1/predict", fmt.Sprintf(`{"bench": %q}`, name), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s status %d", name, resp.StatusCode)
		}
		readAll(t, resp)
	}
	if rt.reps[0].requests.Load() != 0 {
		t.Fatal("warming replica received traffic")
	}
	if rt.reps[1].requests.Load()-before != 4 {
		t.Fatal("ready replica did not absorb the warming replica's shard")
	}

	srvA.SetReady(true)
	rt.ProbeOnce(context.Background())
	if !rt.reps[0].healthy.Load() {
		t.Fatal("ready replica was not readmitted")
	}
}

// TestProxyOwnEndpoints sanity-checks the proxy's self-describing
// surface: /healthz shape, /readyz transitions, /metrics exposition.
func TestProxyOwnEndpoints(t *testing.T) {
	_, repA := newDaemon(t)
	rt, proxy := newProxy(t, Config{Replicas: []string{repA.URL}, DisableHedge: true})

	resp := get(t, proxy.URL, "/healthz")
	var hz healthzResponse
	if err := json.Unmarshal(readAll(t, resp), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Mode != "hash" || len(hz.Replicas) != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	resp = get(t, proxy.URL, "/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with a healthy replica = %d", resp.StatusCode)
	}
	readAll(t, resp)
	rt.reps[0].healthy.Store(false)
	resp = get(t, proxy.URL, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no healthy replicas = %d, want 503", resp.StatusCode)
	}
	readAll(t, resp)
	rt.reps[0].healthy.Store(true)

	// One real request so the counters are non-trivial.
	readAll(t, post(t, proxy.URL, "/v1/predict", `{"bench": "gzip"}`, nil))
	body := string(readAll(t, get(t, proxy.URL, "/metrics")))
	for _, want := range []string{
		"fomodelproxy_requests_total{path=\"/v1/predict\",code=\"200\"} 1",
		"fomodelproxy_replica_requests_total",
		"fomodelproxy_replica_healthy",
		"fomodelproxy_hedge_delay_seconds",
		"fomodelproxy_upstream_duration_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics is missing %q:\n%s", want, body)
		}
	}
}

// TestRoundRobinSpreads pins the baseline policy: consecutive identical
// requests alternate replicas (which is exactly why it thrashes caches).
func TestRoundRobinSpreads(t *testing.T) {
	_, repA := newDaemon(t)
	_, repB := newDaemon(t)
	rt, proxy := newProxy(t, Config{
		Replicas:     []string{repA.URL, repB.URL},
		RoundRobin:   true,
		DisableHedge: true,
	})
	for i := 0; i < 4; i++ {
		resp := post(t, proxy.URL, "/v1/predict", `{"bench": "gzip"}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d status %d", i, resp.StatusCode)
		}
		readAll(t, resp)
	}
	if a, b := rt.reps[0].requests.Load(), rt.reps[1].requests.Load(); a != 2 || b != 2 {
		t.Fatalf("round-robin split = %d/%d, want 2/2", a, b)
	}
}

// TestRequestIDFlowsThroughFleet: the proxy mints an ID, the daemon
// echoes it, and a client-supplied ID survives untouched.
func TestRequestIDFlowsThroughFleet(t *testing.T) {
	_, repA := newDaemon(t)
	_, proxy := newProxy(t, Config{Replicas: []string{repA.URL}, DisableHedge: true})

	resp := post(t, proxy.URL, "/v1/predict", `{"bench": "gzip"}`, nil)
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("proxy did not mint an X-Request-ID")
	}
	readAll(t, resp)

	hdr := http.Header{"X-Request-ID": []string{"caller-7"}}
	resp = post(t, proxy.URL, "/v1/predict", `{"bench": "gzip"}`, hdr)
	if got := resp.Header.Get("X-Request-ID"); got != "caller-7" {
		t.Fatalf("caller-supplied request ID became %q", got)
	}
	readAll(t, resp)

	// And it reaches the daemon's error bodies through the proxy.
	resp = post(t, proxy.URL, "/v1/predict", `{"bench": "nope"}`, hdr)
	var e struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(readAll(t, resp), &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "caller-7" {
		t.Fatalf("daemon error body request_id = %q, want caller-7", e.RequestID)
	}
}

// TestHedgeFiresAfterFailoverExhaustedCandidates: with two replicas, the
// key's owner dies at the transport (connection refused) before the
// hedge timer fires, so the error branch consumes the last candidate as
// an instant failover; the still-armed hedge timer then fires while that
// attempt is in flight. Regression: launch() used to index past the
// candidate slice and panic, aborting the request.
func TestHedgeFiresAfterFailoverExhaustedCandidates(t *testing.T) {
	// The survivor answers slower than the hedge delay, guaranteeing the
	// timer fires while the failover attempt is still in flight.
	survivor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(100 * time.Millisecond)
		w.Write([]byte(`{"served": true}`))
	}))
	t.Cleanup(survivor.Close)

	// A closed listener's address refuses connections instantly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	rt, err := New(Config{
		Replicas:        []string{dead, survivor.URL},
		Defaults:        testDefaults(),
		HedgeMax:        5 * time.Millisecond,
		HedgeMinSamples: 1 << 30, // pin the hedge delay at HedgeMax
		UpstreamRetries: -1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any key homed on the dead replica exercises the race.
	key := "k"
	for i := 0; rt.ring.owner(key) != 0; i++ {
		key = fmt.Sprintf("k%d", i)
	}
	resp, rep, err := rt.forward(context.Background(), http.MethodPost, "/v1/predict", []byte(`{"bench": "gzip"}`), nil, false, key)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, resp); string(got) != `{"served": true}` || rep != rt.reps[1] {
		t.Fatalf("body %q from %s, want the survivor's response", got, rep.url)
	}
}

// TestProbeDoesNotRetryNotReady: a warming replica's /readyz 503 must
// resolve as one clean not-ready probe per pass — not be retried on the
// request client's 429/503 backoff schedule until the probe deadline
// converts it into a misleading timeout error.
func TestProbeDoesNotRetryNotReady(t *testing.T) {
	var hits atomic.Int32
	warming := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(warming.Close)

	rt, err := New(Config{Replicas: []string{warming.URL}, Defaults: testDefaults()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeOnce(context.Background())
	if got := hits.Load(); got != 1 {
		t.Fatalf("/readyz hit %d times in one probe pass, want exactly 1", got)
	}
	if rt.reps[0].healthy.Load() {
		t.Fatal("warming replica still in rotation after a probe pass")
	}
}

// TestSweepSpecKeySharing guards the shared-key contract for sweeps the
// same way reqkey's tests do for predict.
func TestSweepSpecKeySharing(t *testing.T) {
	spec := experiments.SweepSpec{Param: "rob", Benches: []string{"gzip"}, Values: []int{32}}
	fromServer, err := server.SweepCacheKey(spec, testDefaults())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Replicas: []string{"http://x:1"}, Defaults: testDefaults()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(spec)
	if got := rt.sweepKey(b); got != fromServer {
		t.Fatalf("router sweep key %q != server cache key %q", got, fromServer)
	}
}

// TestOptimizeProxyByteEquality extends the byte-equality contract to
// /v1/optimize: buffered and streamed search responses relay through the
// proxy byte-identical to a lone daemon's, and repeats are cache hits on
// the key's home replica.
func TestOptimizeProxyByteEquality(t *testing.T) {
	_, ref := newDaemon(t)
	_, repA := newDaemon(t)
	_, repB := newDaemon(t)
	_, proxy := newProxy(t, Config{
		Replicas:     []string{repA.URL, repB.URL},
		DisableHedge: true,
	})

	optBody := `{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}},"budget":6}`
	for pass, wantCache := range []string{"miss", "hit"} {
		want := readAll(t, post(t, ref.URL, "/v1/optimize", optBody, nil))
		resp := post(t, proxy.URL, "/v1/optimize", optBody, nil)
		got := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: proxy optimize status %d: %s", pass, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: proxy optimize body differs from daemon's:\n got %q\nwant %q", pass, got, want)
		}
		if c := resp.Header.Get("X-Cache"); c != wantCache {
			t.Fatalf("pass %d: X-Cache = %q, want %q", pass, c, wantCache)
		}
	}

	// Streamed search: full NDJSON passthrough, row for row.
	ndjson := http.Header{"Accept": []string{"application/x-ndjson"}}
	wantStream := readAll(t, post(t, ref.URL, "/v1/optimize", optBody, ndjson))
	resp := post(t, proxy.URL, "/v1/optimize", optBody, ndjson)
	gotStream := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy optimize stream status %d: %s", resp.StatusCode, gotStream)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("proxy optimize stream Content-Type = %q", ct)
	}
	if !bytes.Equal(gotStream, wantStream) {
		t.Fatalf("proxy optimize NDJSON stream differs from daemon's:\n got %q\nwant %q", gotStream, wantStream)
	}

	// An invalid spec still reaches a daemon (routed by raw bytes), whose
	// error response is authoritative.
	resp = post(t, proxy.URL, "/v1/optimize", `{"workloads":[]}`, nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: proxy status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestOptimizeSpecKeySharing guards the shared-key contract for optimize
// specs: the router derives the daemon's own cache key, spelling
// differences included.
func TestOptimizeSpecKeySharing(t *testing.T) {
	spec := optimize.Spec{
		Workloads: []optimize.WorkloadWeight{{Bench: "gzip"}},
		Bounds:    map[string]optimize.Bound{"width": {Min: 1, Max: 4}},
		Budget:    6,
	}
	fromServer, err := server.OptimizeCacheKey(spec, testDefaults())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Replicas: []string{"http://x:1"}, Defaults: testDefaults()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The implicit spelling and one with defaults written out share the key.
	for _, body := range []string{
		`{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}},"budget":6}`,
		`{"workloads":[{"bench":"gzip","weight":1}],"bounds":{"width":{"min":1,"max":4,"step":1}},"objective":"cpi","budget":6,"seed":1,"grid":3,"n":2000,"trace_seed":1}`,
	} {
		if got := rt.optimizeKey([]byte(body)); got != fromServer {
			t.Fatalf("router optimize key %q != server cache key %q for body %s", got, fromServer, body)
		}
	}
}
