package workload

import (
	"sort"
	"testing"

	"fomodel/internal/isa"
)

func TestAllProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("%d profiles, want 12", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNamesSortedAndUnique(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("names not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate profile %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"bzip", "crafty", "eon", "gap", "gcc", "gzip",
		"mcf", "parser", "perl", "twolf", "vortex", "vpr"} {
		if !seen[want] {
			t.Errorf("missing SPECint benchmark %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mcf" {
		t.Fatalf("got %q", p.Name)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfileCharacterDistinctions(t *testing.T) {
	// The paper-facing contrasts that the profiles are built around.
	byName := map[string]Profile{}
	for _, p := range Profiles() {
		byName[p.Name] = p
	}
	vpr, vortex, mcf, gzip, gcc := byName["vpr"], byName["vortex"], byName["mcf"], byName["gzip"], byName["gcc"]

	// vpr: tightest dependences (low beta) and longest latencies.
	if vpr.DepShortFrac <= vortex.DepShortFrac {
		t.Error("vpr should have more short dependences than vortex")
	}
	if vpr.Mix[3]+vpr.Mix[1]+vpr.Mix[2] <= vortex.Mix[3]+vortex.Mix[1]+vortex.Mix[2] {
		t.Error("vpr should have more long-latency arithmetic than vortex")
	}
	// mcf: the most cold (streaming) data.
	mcfCold := 1 - mcf.DataHotFrac - mcf.DataWarmFrac
	gzipCold := 1 - gzip.DataHotFrac - gzip.DataWarmFrac
	if mcfCold <= gzipCold {
		t.Error("mcf should stream more cold data than gzip")
	}
	// gzip: hardest branches; gcc: biggest code.
	if gzip.HardBranchFrac <= vortex.HardBranchFrac {
		t.Error("gzip should have harder branches than vortex")
	}
	if gcc.NumBlocks <= gzip.NumBlocks {
		t.Error("gcc should have a bigger code footprint than gzip")
	}
}

func TestMeasuredCalibrationBands(t *testing.T) {
	// Lock the measured (not just configured) workload character: the
	// Table-1 structure the whole reproduction rests on. Uses the same
	// idealized measurement as internal/iw but inlined here to avoid an
	// import cycle with the analysis packages: a window-16 unit-latency
	// issue-rate ratio between window sizes approximates beta.
	if testing.Short() {
		t.Skip("calibration measurement is slow")
	}
	measure := func(name string) (ilp16, ilp4 float64) {
		tr, err := Generate(name, 60000, 1)
		if err != nil {
			t.Fatal(err)
		}
		sim := func(window int) float64 {
			finish := make([]int64, tr.Len())
			var lastWriter [isa.NumArchRegs]int
			for i := range lastWriter {
				lastWriter[i] = -1
			}
			type slot struct{ idx, s1, s2 int }
			win := make([]slot, 0, window)
			next, issued := 0, 0
			var now int64 = 1
			fill := func() {
				for len(win) < window && next < tr.Len() {
					in := &tr.Instrs[next]
					s := slot{idx: next, s1: -1, s2: -1}
					if in.Src1 >= 0 {
						s.s1 = lastWriter[in.Src1]
					}
					if in.Src2 >= 0 {
						s.s2 = lastWriter[in.Src2]
					}
					if in.Dest >= 0 {
						lastWriter[in.Dest] = next
					}
					win = append(win, s)
					next++
				}
			}
			ready := func(s slot) bool {
				if s.s1 >= 0 && (finish[s.s1] == 0 || finish[s.s1] > now) {
					return false
				}
				if s.s2 >= 0 && (finish[s.s2] == 0 || finish[s.s2] > now) {
					return false
				}
				return true
			}
			fill()
			for issued < tr.Len() {
				kept := win[:0]
				for _, s := range win {
					if ready(s) {
						finish[s.idx] = now + 1
						issued++
						continue
					}
					kept = append(kept, s)
				}
				win = kept
				fill()
				now++
			}
			return float64(tr.Len()) / float64(now-1)
		}
		return sim(16), sim(4)
	}

	type band struct{ i16, i4 float64 }
	got := map[string]band{}
	for _, name := range []string{"gzip", "vortex", "vpr"} {
		i16, i4 := measure(name)
		got[name] = band{i16, i4}
	}
	// Local beta between windows 4 and 16: log(I16/I4)/log(4).
	beta := func(b band) float64 { return (b.i16 / b.i4) }
	// vortex grows fastest with window, vpr slowest — Table 1's spread.
	if !(beta(got["vortex"]) > beta(got["gzip"]) && beta(got["gzip"]) > beta(got["vpr"])) {
		t.Fatalf("measured growth ordering broken: vortex %v, gzip %v, vpr %v",
			beta(got["vortex"]), beta(got["gzip"]), beta(got["vpr"]))
	}
	// Absolute ILP sanity at window 16.
	if got["vortex"].i16 < 7 || got["vpr"].i16 > 4.5 {
		t.Fatalf("measured ILP bands off: vortex %v (want >7), vpr %v (want <4.5)",
			got["vortex"].i16, got["vpr"].i16)
	}
}
