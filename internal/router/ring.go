package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is an immutable consistent-hash ring over N replicas: each
// replica is hashed at vnodes points on a uint64 circle (seeded by its
// URL, so shard assignment is a function of replica identity, not list
// order), and a canonical request key is owned by the first replica
// point clockwise from the key's hash. Virtual nodes smooth the shard
// sizes; ownership of a key moves only when its arc's replica changes,
// so adding or removing one replica disturbs only ~1/N of the keyspace
// — the property that keeps the other replicas' caches hot through
// membership changes.
//
// Health is deliberately not the ring's concern: the ring answers "what
// is the preference order of replicas for this key", and the router
// walks that order skipping unhealthy or overloaded replicas. Keys
// therefore re-route to their ring successors while a replica is out
// and snap back, cache intact, when it returns.
type ring struct {
	points []ringPoint // sorted ascending by hash
	n      int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// newRing hashes each replica URL at vnodes points.
func newRing(replicaURLs []string, vnodes int) *ring {
	r := &ring{
		points: make([]ringPoint, 0, len(replicaURLs)*vnodes),
		n:      len(replicaURLs),
	}
	for i, url := range replicaURLs {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", url, v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (vanishingly rare) break by replica index so the order
		// is total and deterministic.
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// hash64 is the ring's hash: FNV-1a with a 64-bit avalanche finalizer.
// It must be stable across processes and Go versions — proxy restarts
// and replica restarts have to agree on shard ownership, so a
// per-process seeded hash (maphash) is unusable here. Plain FNV-1a is
// stable but mixes its final bytes poorly: vnode strings differing only
// in their "#<i>" suffix produce clustered ring points (observed: a
// 290/10/0 key split across 3 replicas), so the finalizer (the murmur3
// fmix64 constants) is load-bearing, not decoration.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //folint:allow(errdrop) hash.Hash.Write is documented to never return an error
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sequence returns all replica indices in ring order starting at the
// key's owner: element 0 owns the key, element 1 is the first distinct
// successor (where the key re-routes if the owner is out), and so on.
func (r *ring) sequence(key string) []int {
	seq := make([]int, 0, r.n)
	if len(r.points) == 0 {
		return seq
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(seq) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, p.replica)
		}
	}
	return seq
}

// owner returns the key's owning replica index.
func (r *ring) owner(key string) int {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return 0
	}
	return seq[0]
}
