package uarch

import (
	"fmt"
	"sync"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/predictor"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
)

// maxIdleCycles bounds how long the simulator may go without retiring an
// instruction before it reports a deadlock; generous compared to any legal
// stall (memory latency + pipeline depth).
const maxIdleCycles = 1 << 20

// prep holds the precomputed, program-order miss-event classification of
// one instruction (see the package comment for why classification is
// decoupled from timing). run treats preps as read-only, so one slice may
// be shared by many concurrent runs (see PrepCache).
type prep struct {
	ires    cache.Result
	dres    cache.Result
	misp    bool
	tlbMiss bool
}

// Simulate runs the detailed cycle-level simulation of t on the machine
// described by cfg.
func Simulate(t *trace.Trace, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("uarch: empty trace %q", t.Name)
	}
	preps, err := classify(t, cfg)
	if err != nil {
		return nil, err
	}
	return run(t, cfg, preps, trace.ComputeProducers(t))
}

// Event is an externally supplied per-instruction miss-event
// classification, used by SimulateWithEvents. It replaces the functional
// cache/predictor pass for callers that synthesize events statistically
// (statistical simulation, the paper's related work [8-10]).
type Event struct {
	// ICache classifies the instruction's fetch.
	ICache cache.Result
	// DCache classifies the data access (loads/stores only).
	DCache cache.Result
	// Mispredict marks a mispredicted branch (branches only).
	Mispredict bool
	// TLBMiss marks a data-TLB miss (loads/stores only; needs cfg.TLB).
	TLBMiss bool
}

// SimulateWithEvents runs the timing simulation of t with the given
// per-instruction miss events instead of deriving them from the cache and
// predictor models. len(events) must equal t.Len().
func SimulateWithEvents(t *trace.Trace, events []Event, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("uarch: empty trace %q", t.Name)
	}
	if len(events) != t.Len() {
		return nil, fmt.Errorf("uarch: %d events for %d instructions", len(events), t.Len())
	}
	preps := make([]prep, len(events))
	for i, ev := range events {
		if ev.TLBMiss && cfg.TLB == nil {
			return nil, fmt.Errorf("uarch: event %d has a TLB miss but no TLB is configured", i)
		}
		preps[i] = prep{ires: ev.ICache, dres: ev.DCache, misp: ev.Mispredict, tlbMiss: ev.TLBMiss}
	}
	return run(t, cfg, preps, trace.ComputeProducers(t))
}

// classify performs the functional program-order pass: every instruction's
// fetch result, data access result, and (for branches) predictor outcome.
// The access sequence matches stats.Analyze exactly, so miss-event counts
// agree between the model's inputs and the simulator.
func classify(t *trace.Trace, cfg Config) ([]prep, error) {
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	gs, err := newPredictor(cfg.Predictor, cfg.PredictorBits)
	if err != nil {
		return nil, err
	}
	var tlb *cache.TLB
	if cfg.TLB != nil {
		tlb, err = cache.NewTLB(*cfg.TLB)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Warmup {
		stats.WarmHierarchy(h, t)
	}
	preps := make([]prep, t.Len())
	for i := range t.Instrs {
		in := &t.Instrs[i]
		p := &preps[i]
		p.ires = h.Fetch(in.PC)
		switch in.Class {
		case isa.Branch:
			p.misp = gs.Predict(in.PC) != in.Taken
			gs.Update(in.PC, in.Taken)
		case isa.Load, isa.Store:
			if tlb != nil {
				p.tlbMiss = !tlb.Access(in.Addr)
			}
			p.dres = h.Data(in.Addr)
		}
	}
	return preps, nil
}

// winEntry is one issue-window slot: the instruction index, the indices
// of its producers (-1 when an operand is ready at dispatch), the
// instruction's class and steered cluster (both fixed at dispatch, cached
// here so the per-cycle scan avoids a modulo and an instruction load per
// slot), and the memoized earliest issue cycle (0 until every producer
// has issued).
type winEntry struct {
	idx        int32
	src1, src2 int32
	class      uint8
	cluster    uint8
	readyAt    int64
}

// scratch holds the per-run working buffers. Runs borrow one from
// scratchPool and return it on exit, so a sweep of many simulations reuses
// the same arenas instead of reallocating them per config; each pool entry
// is only ever used by one run at a time, so the reuse is race-free.
type scratch struct {
	finish          []int64
	feReady         []int64
	window          []winEntry
	outstanding     []int64
	winCount        []int
	issuedByCluster []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// grownInt64 returns buf resized to n zeroed entries, reallocating only
// when the capacity is insufficient.
func grownInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// grownInts is grownInt64 for []int.
func grownInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// run executes the timing simulation proper. preps and prod are read-only
// and may be shared with concurrent runs.
func run(t *trace.Trace, cfg Config, preps []prep, prod []trace.Producer) (*Result, error) {
	n := t.Len()
	res := &Result{
		Instructions:   n,
		IssueHistogram: make([]int64, cfg.Width+1),
	}

	sc := scratchPool.Get().(*scratch)

	// finish[i] is the cycle instruction i's result becomes available;
	// 0 means not yet issued (cycles start at 1).
	finish := grownInt64(sc.finish, n)

	// Front-end pipeline: instructions [dispatched, fetched) are in
	// flight; feReady is a ring of their dispatch-ready cycles. An
	// optional fetch buffer adds capacity beyond the pipeline stages.
	feCap := cfg.FrontEndDepth*cfg.Width + cfg.FetchBufferSize
	feReady := grownInt64(sc.feReady, feCap)

	window := sc.window[:0]
	if cap(window) < cfg.WindowSize {
		window = make([]winEntry, 0, cfg.WindowSize)
	}

	// Clustering (§7 extension #3): instructions steer round-robin to
	// clusters by dispatch order, so an instruction's cluster is simply
	// its index mod the cluster count.
	clusters := cfg.Clusters
	if clusters < 1 {
		clusters = 1
	}
	clusterWidth := cfg.Width / clusters
	clusterWindow := cfg.WindowSize / clusters
	bypass := int64(cfg.BypassLatency)
	winCount := grownInts(sc.winCount, clusters)
	issuedByCluster := grownInts(sc.issuedByCluster, clusters)

	// outstanding holds the finish cycles of in-flight long data misses,
	// for overlap accounting and the serialize option. Pre-sized so
	// d-miss-heavy benchmarks (mcf) never grow it in the hot loop.
	outstanding := sc.outstanding[:0]
	if cap(outstanding) < 64 {
		outstanding = make([]int64, 0, 64)
	}

	defer func() {
		sc.finish, sc.feReady, sc.window = finish, feReady, window
		sc.outstanding, sc.winCount, sc.issuedByCluster = outstanding, winCount, issuedByCluster
		scratchPool.Put(sc)
	}()

	var (
		cycle      int64 = 1
		fetched    int   // next instruction to fetch
		dispatched int   // next instruction to dispatch
		retired    int   // next instruction to retire
		robCount   int

		// fetchStallUntil blocks fetch for I-cache misses; fetchHalted
		// blocks it for an in-flight mispredicted branch, cleared when
		// branchResume (set at the branch's issue) passes.
		fetchStallUntil int64
		fetchHalted     bool
		branchResume    int64

		// chargedFetch is the highest instruction index whose I-cache
		// miss has already been charged; fetch is in order, so comparing
		// against it charges each miss exactly once without mutating the
		// shared preps.
		chargedFetch = -1

		// dispSlot/fetchSlot are dispatched%feCap and fetched%feCap kept
		// as rolling ring indices so the hot loops avoid the division.
		dispSlot  int
		fetchSlot int

		lastRetireCycle int64 = 1
	)

	latBranch := int64(cfg.Latencies.Latency(isa.Branch))

	for retired < n {
		// --- Retire (in order, up to Width finished instructions).
		for k := 0; k < cfg.Width && retired < dispatched; k++ {
			f := finish[retired]
			if f == 0 || f > cycle {
				break
			}
			retired++
			robCount--
			lastRetireCycle = cycle
		}

		// Prune completed long misses.
		live := outstanding[:0]
		for _, f := range outstanding {
			if f > cycle {
				live = append(live, f)
			}
		}
		outstanding = live

		// --- Issue (oldest first, up to Width ready instructions; at
		// most FUCounts[class] per class where limited, and at most
		// Width/Clusters per cluster when partitioned).
		issuedThisCycle := 0
		// nextReady is the earliest known ready cycle among entries that
		// were blocked purely on operand readiness this cycle; it bounds
		// the next possible issue when the cycle turns out quiescent.
		var nextReady int64
		var issuedByClass [isa.NumClasses]int
		for c := range issuedByCluster {
			issuedByCluster[c] = 0
		}
		if len(window) > 0 {
			kept := window[:0]
			stalled := false
			for wi := range window {
				e := &window[wi]
				class := e.class
				cluster := int(e.cluster)
				ok := !stalled &&
					issuedThisCycle < cfg.Width &&
					(clusters == 1 || issuedByCluster[cluster] < clusterWidth) &&
					(cfg.FUCounts[class] == 0 || issuedByClass[class] < cfg.FUCounts[class])
				if ok {
					// Check the memoized ready cycle inline — most slots
					// hit it every cycle while waiting — and fall back to
					// the producer scan only until it is computed.
					r := e.readyAt
					if r == 0 {
						ok = entryReady(e, finish, cycle, clusters, bypass)
						r = e.readyAt // memoized by the call when computable
					} else {
						ok = r <= cycle
					}
					if !ok && r != 0 && (nextReady == 0 || r < nextReady) {
						nextReady = r
					}
				}
				if !ok {
					// kept is a prefix of window; while no entry has
					// issued the slot is already in place, so extend
					// instead of copying the entry onto itself.
					if len(kept) == wi {
						kept = window[:wi+1]
					} else {
						kept = append(kept, *e)
					}
					// In-order issue stalls at the first instruction
					// that cannot go, whatever the reason.
					stalled = stalled || cfg.InOrder
					continue
				}
				idx := int(e.idx)
				in := &t.Instrs[idx]
				lat := int64(cfg.Latencies.Latency(in.Class))
				if in.IsMem() && preps[idx].tlbMiss {
					lat += int64(cfg.TLB.MissLatency)
					res.TLBMisses++
				}
				if in.IsMem() && !cfg.IdealDCache {
					switch preps[idx].dres {
					case cache.ShortMiss:
						lat += int64(cfg.Hierarchy.ShortMissLatency)
						res.DCacheShort++
					case cache.LongMiss:
						if cfg.SerializeLongMisses && len(outstanding) > 0 {
							// Demoted to a hit for the isolation study.
							break
						}
						lat += int64(cfg.Hierarchy.LongMissLatency)
						res.DCacheLong++
						outstanding = append(outstanding, cycle+lat)
					}
				}
				finish[idx] = cycle + lat
				issuedThisCycle++
				issuedByClass[class]++
				issuedByCluster[cluster]++
				winCount[cluster]--
				if in.Class == isa.Branch && preps[idx].misp && !cfg.IdealPredictor {
					res.Mispredicts++
					if len(outstanding) > 0 {
						res.MispredictsOverlapped++
					}
					branchResume = cycle + latBranch
				}
			}
			window = kept
		}
		res.IssueHistogram[issuedThisCycle]++
		if cfg.RecordIssueTrace && len(res.IssueTrace) < 1<<22 {
			res.IssueTrace = append(res.IssueTrace, uint8(issuedThisCycle))
		}

		// --- Dispatch (in order, up to Width; the steered cluster's
		// window slice, the whole window, and the ROB must have room).
		prevDispatched, prevFetched, prevCharged := dispatched, fetched, chargedFetch
		for k := 0; k < cfg.Width && dispatched < fetched; k++ {
			cl := 0
			if clusters > 1 {
				cl = dispatched % clusters
			}
			if feReady[dispSlot] > cycle ||
				len(window) >= cfg.WindowSize || robCount >= cfg.ROBSize ||
				(clusters > 1 && winCount[cl] >= clusterWindow) {
				break
			}
			e := winEntry{
				idx:     int32(dispatched),
				src1:    prod[dispatched].Src1,
				src2:    prod[dispatched].Src2,
				class:   uint8(t.Instrs[dispatched].Class),
				cluster: uint8(cl),
			}
			if e.src1 < 0 && e.src2 < 0 {
				e.readyAt = 1 // no producers: ready from the first cycle
			}
			window = append(window, e)
			winCount[cl]++
			robCount++
			dispatched++
			if dispSlot++; dispSlot == feCap {
				dispSlot = 0
			}
		}

		// --- Fetch (up to Width, subject to miss-event throttles).
		if fetchHalted && branchResume > 0 && cycle >= branchResume {
			fetchHalted = false
			branchResume = 0
		}
		if !fetchHalted && cycle >= fetchStallUntil {
			for k := 0; k < cfg.Width && fetched < n && fetched-dispatched < feCap; k++ {
				in := &t.Instrs[fetched]
				if !cfg.IdealICache && fetched > chargedFetch && preps[fetched].ires != cache.Hit {
					// The missing instruction (and everything after it)
					// arrives only after the miss delay; charge it once,
					// recording the charge so the retry after the stall
					// proceeds.
					delay := int64(cfg.Hierarchy.Latency(preps[fetched].ires))
					if preps[fetched].ires == cache.ShortMiss {
						res.ICacheShort++
					} else {
						res.ICacheLong++
					}
					if len(outstanding) > 0 {
						res.ICacheOverlapped++
					}
					chargedFetch = fetched
					fetchStallUntil = cycle + delay
					break
				}
				feReady[fetchSlot] = cycle + int64(cfg.FrontEndDepth)
				if fetchSlot++; fetchSlot == feCap {
					fetchSlot = 0
				}
				fetched++
				if in.Class == isa.Branch && preps[fetched-1].misp && !cfg.IdealPredictor {
					// Fetch of useful instructions stops until the
					// branch resolves at issue.
					fetchHalted = true
					branchResume = 0
					break
				}
			}
		}

		res.WindowOccupancySum += uint64(len(window))
		res.ROBOccupancySum += uint64(robCount)
		res.FrontEndOccupancySum += uint64(fetched - dispatched)

		// --- Quiescence fast-forward. If this cycle retired, issued,
		// dispatched, fetched, and charged nothing, the machine state is
		// frozen and the next cycle where anything can change is exactly
		// computable: the oldest instruction's completion (retire), the
		// earliest known operand-ready cycle (issue), the front end's
		// next dispatch-ready slot, and the pending fetch throttles.
		// Every skipped cycle would have been an exact replay of this
		// one, so bulk-accumulate its per-cycle statistics and jump.
		// Producer-blocked window entries (readyAt still 0) need an
		// issue first, so they are covered by the issue candidate chain;
		// window/ROB-full dispatch stalls likewise need an issue or
		// retire first.
		if issuedThisCycle == 0 && lastRetireCycle != cycle &&
			dispatched == prevDispatched && fetched == prevFetched && chargedFetch == prevCharged {
			next := int64(0)
			consider := func(c int64) {
				if c > cycle && (next == 0 || c < next) {
					next = c
				}
			}
			if retired < dispatched {
				consider(finish[retired]) // 0 (unissued) is ignored
			}
			consider(nextReady)
			if dispatched < fetched {
				consider(feReady[dispSlot])
			}
			if fetchHalted {
				consider(branchResume)
			} else {
				consider(fetchStallUntil)
			}
			// Never jump past the deadlock horizon: the idle check below
			// must fire at the same cycle it would without skipping. A
			// cycle with no future event at all is a deadlock; jumping
			// straight to the horizon reports it immediately.
			horizon := lastRetireCycle + maxIdleCycles + 1
			if next == 0 || next > horizon {
				next = horizon
			}
			if skip := next - cycle - 1; skip > 0 {
				res.IssueHistogram[0] += skip
				if cfg.RecordIssueTrace {
					for i := int64(0); i < skip && len(res.IssueTrace) < 1<<22; i++ {
						res.IssueTrace = append(res.IssueTrace, 0)
					}
				}
				res.WindowOccupancySum += uint64(len(window)) * uint64(skip)
				res.ROBOccupancySum += uint64(robCount) * uint64(skip)
				res.FrontEndOccupancySum += uint64(fetched-dispatched) * uint64(skip)
				cycle += skip
			}
		}

		if cycle-lastRetireCycle > maxIdleCycles {
			return nil, fmt.Errorf("uarch: no retirement for %d cycles at cycle %d (retired %d/%d) — machine deadlocked",
				maxIdleCycles, cycle, retired, n)
		}
		cycle++
	}

	res.Cycles = cycle - 1
	return res, nil
}

// entryReady reports whether every producer of e has finished by now.
// Once all producers have issued, the entry's earliest issue cycle is
// memoized in e.readyAt — finish entries are write-once, so the memo can
// never go stale, and later cycles reduce to a single comparison instead
// of re-reading finish[]. With clustering, an operand produced in a
// different cluster arrives bypass cycles later.
func entryReady(e *winEntry, finish []int64, now int64, clusters int, bypass int64) bool {
	if e.readyAt != 0 {
		return e.readyAt <= now
	}
	readyAt := int64(1)
	if e.src1 >= 0 {
		f := finish[e.src1]
		if f == 0 {
			return false
		}
		if clusters > 1 && int(e.src1)%clusters != int(e.cluster) {
			f += bypass
		}
		if f > readyAt {
			readyAt = f
		}
	}
	if e.src2 >= 0 {
		f := finish[e.src2]
		if f == 0 {
			return false
		}
		if clusters > 1 && int(e.src2)%clusters != int(e.cluster) {
			f += bypass
		}
		if f > readyAt {
			readyAt = f
		}
	}
	e.readyAt = readyAt
	return readyAt <= now
}

// newPredictor instantiates the configured predictor: the spec when
// given, otherwise the default gshare with the given index width.
func newPredictor(spec *predictor.Spec, bits uint) (predictor.Predictor, error) {
	if spec != nil {
		return spec.New()
	}
	return predictor.NewGshare(bits)
}
