package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fomodel/internal/isa"
)

func TestRoundTrip(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q, want %q", got.Name, tr.Name)
	}
	if len(got.Instrs) != len(tr.Instrs) {
		t.Fatalf("len %d, want %d", len(got.Instrs), len(tr.Instrs))
	}
	for i := range tr.Instrs {
		if got.Instrs[i] != tr.Instrs[i] {
			t.Fatalf("instr %d: %+v != %+v", i, got.Instrs[i], tr.Instrs[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	tr := &Trace{Name: "empty"}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Name != "empty" {
		t.Fatalf("got %q len %d", got.Name, got.Len())
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 10, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsInvalidDecodedTrace(t *testing.T) {
	tr := validTrace()
	tr.Instrs[0].Class = isa.Class(40) // invalid but encodable
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("invalid decoded trace accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, classes []uint8, taken []bool) bool {
		n := len(pcs)
		if len(classes) < n {
			n = len(classes)
		}
		if len(taken) < n {
			n = len(taken)
		}
		tr := &Trace{Name: "prop"}
		for i := 0; i < n; i++ {
			c := isa.Class(classes[i] % uint8(isa.NumClasses))
			in := Instruction{
				PC:    pcs[i],
				Class: c,
				Dest:  int16(i % isa.NumArchRegs),
				Src1:  isa.RegNone,
				Src2:  isa.RegNone,
			}
			if c == isa.Branch {
				in.Dest = isa.RegNone
				in.Taken = taken[i]
			}
			if c == isa.Load || c == isa.Store {
				in.Addr = pcs[i] ^ 0xffff
			}
			if c == isa.Store {
				in.Dest = isa.RegNone
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Instrs {
			if got.Instrs[i] != tr.Instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProducersRoundTrip(t *testing.T) {
	tr := validTrace()
	prod := ComputeProducers(tr)
	got, err := DecodeProducers(EncodeProducers(prod))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prod) {
		t.Fatalf("len %d, want %d", len(got), len(prod))
	}
	for i := range prod {
		if got[i] != prod[i] {
			t.Fatalf("link %d: %+v != %+v", i, got[i], prod[i])
		}
	}
	// Negative links (no producer) must survive the uint32 round trip.
	neg, err := DecodeProducers(EncodeProducers([]Producer{{Src1: -1, Src2: 41}}))
	if err != nil {
		t.Fatal(err)
	}
	if neg[0].Src1 != -1 || neg[0].Src2 != 41 {
		t.Fatalf("negative link mangled: %+v", neg[0])
	}
}

func TestProducersDecodeRejectsDamage(t *testing.T) {
	enc := EncodeProducers([]Producer{{1, 2}, {3, 4}})
	for _, cut := range []int{0, 3, 11, len(enc) - 1} {
		if _, err := DecodeProducers(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeProducers(bad); err == nil {
		t.Error("bad magic accepted")
	}
}
