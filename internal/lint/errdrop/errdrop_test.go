package errdrop_test

import (
	"testing"

	"fomodel/internal/lint/errdrop"
	"fomodel/internal/lint/linttest"
)

// TestErrdrop pins the golden diagnostics on an error-critical
// package.
func TestErrdrop(t *testing.T) {
	linttest.Run(t, errdrop.Analyzer, "testdata/src/errdrop", "fomodel/internal/server")
}

// TestErrdropScopedToCriticalPackages requires silence outside the
// handler/router/store packages.
func TestErrdropScopedToCriticalPackages(t *testing.T) {
	linttest.Run(t, errdrop.Analyzer, "testdata/src/exempt", "fomodel/internal/experiments")
}
