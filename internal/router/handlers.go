package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"fomodel/internal/server"
)

// Body bounds mirror the daemon's: the proxy must read a body to key it,
// so it enforces the same limits up front rather than shipping an
// oversized body upstream only to have it rejected there.
const (
	maxBodyBytes      = 1 << 16
	maxBatchBodyBytes = 1 << 20
	maxBatchItems     = 256
)

// statusCodeClientGone mirrors the daemon's 499 log convention.
const statusCodeClientGone = 499

// Mode names the active routing policy.
func (rt *Router) Mode() string {
	if rt.cfg.RoundRobin {
		return "roundrobin"
	}
	return "hash"
}

// Handler returns the proxy's routing table: the daemon's /v1 surface
// verbatim, plus the proxy's own health, readiness, and metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", rt.instrument("/v1/predict", rt.handlePredict))
	mux.HandleFunc("POST /v1/batch", rt.instrument("/v1/batch", rt.handleBatch))
	mux.HandleFunc("POST /v1/sweep", rt.instrument("/v1/sweep", rt.handleSweep))
	mux.HandleFunc("POST /v1/optimize", rt.instrument("/v1/optimize", rt.handleOptimize))
	mux.HandleFunc("GET /v1/workloads", rt.instrument("/v1/workloads", rt.handleWorkloads))
	mux.HandleFunc("POST /v1/workloads/{name}", rt.instrument("/v1/workloads/{name}", rt.handleWorkloadRegister))
	mux.HandleFunc("GET /v1/workloads/{name}", rt.instrument("/v1/workloads/{name}", rt.handleWorkloadGet))
	mux.HandleFunc("DELETE /v1/workloads/{name}", rt.instrument("/v1/workloads/{name}", rt.handleWorkloadDelete))
	mux.HandleFunc("GET /healthz", rt.instrument("/healthz", rt.handleHealthz))
	mux.HandleFunc("GET /readyz", rt.instrument("/readyz", rt.handleReadyz))
	mux.HandleFunc("GET /metrics", rt.instrument("/metrics", rt.handleMetrics))
	return mux
}

// statusWriter records what a handler wrote, for the access log and the
// per-path counters, and forwards Flush for streamed relays.
type statusWriter struct {
	http.ResponseWriter
	code    int
	bytes   int
	replica string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request-ID issuance (satellite of the
// routed design: every request entering the fleet carries an ID from
// here on, echoed by whichever replicas serve or lose the race for it),
// the latency histogram, per-path/per-code counters, and one structured
// log line.
func (rt *Router) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = rt.nextRequestID()
			r.Header.Set("X-Request-ID", id)
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		elapsed := time.Since(begin)
		rt.latency.Observe(elapsed.Seconds())
		rt.requestCounter(path, sw.code).Inc()
		attrs := []any{
			"path", path,
			"status", sw.code,
			"dur_ms", elapsed.Milliseconds(),
			"bytes", sw.bytes,
			"request_id", id,
		}
		if sw.replica != "" {
			attrs = append(attrs, "replica", sw.replica)
		}
		rt.log.Info("request", attrs...)
	}
}

// errorResponse is the proxy's own error body — the same shape the
// daemon uses, so clients parse one error format for the whole fleet.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	resp := errorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: r.Header.Get("X-Request-ID"),
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//folint:allow(errdrop) errorResponse is two plain strings; Marshal cannot fail on it
	body, _ := json.Marshal(resp)
	//folint:allow(errdrop) error-response write: the client may already be gone, and there is no fallback channel
	w.Write(append(body, '\n'))
}

// writeForwardError maps a forward failure onto a proxy-originated
// response: 503 (with Retry-After) when no replica could be tried, 502
// when every attempt failed at the transport, 499-for-the-log when the
// client itself vanished.
func (rt *Router) writeForwardError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		if sw, ok := w.(*statusWriter); ok {
			sw.code = statusCodeClientGone
		}
	case errors.Is(err, errNoReplicas):
		w.Header().Set("Retry-After", "1")
		rt.writeError(w, r, http.StatusServiceUnavailable, "no replicas available")
	default:
		rt.writeError(w, r, http.StatusBadGateway, "upstream request failed: %v", err)
	}
}

// readBody reads the (bounded) request body, answering 413/400 itself on
// failure; the limits and messages match the daemon's so the error a
// client sees does not depend on whether a proxy sits in front.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			rt.writeError(w, r, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", limit)
		} else {
			rt.writeError(w, r, http.StatusBadRequest, "invalid request body: %v", err)
		}
		return nil, false
	}
	return raw, true
}

// forwardHeader is the header set shipped with every upstream attempt:
// the request ID minted (or accepted) by instrument, plus the caller's
// tenant so replicated workload writes land under the right owner.
func forwardHeader(r *http.Request) http.Header {
	h := http.Header{}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		h.Set("X-Request-ID", id)
	}
	if t := r.Header.Get("X-Tenant"); t != "" {
		h.Set("X-Tenant", t)
	}
	return h
}

// proxyOne forwards one request by key and relays the winning response.
func (rt *Router) proxyOne(w http.ResponseWriter, r *http.Request, method, path string, body []byte, stream bool, key string) {
	resp, rep, err := rt.forward(r.Context(), method, path, body, forwardHeader(r), stream, key)
	if err != nil {
		rt.writeForwardError(w, r, err)
		return
	}
	if sw, ok := w.(*statusWriter); ok {
		sw.replica = rep.url
	}
	if resp.Header.Get("X-Cache") == "hit" {
		rep.hits.Inc()
	}
	rt.relay(w, r, resp, stream)
}

// relay copies the upstream response to the client verbatim: status,
// the daemon's meaningful headers, and the body byte for byte — which is
// what makes a proxied 200 indistinguishable from the daemon's own.
// Streamed relays flush per read so NDJSON rows keep their per-cell
// arrival; a mid-stream upstream failure with a live client becomes a
// final {"error": ...} row, matching the daemon's own mid-stream
// convention.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, resp *http.Response, stream bool) {
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "X-Cache", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if !stream {
		//folint:allow(errdrop) a short relay copy means the client vanished; the deferred Close cancels the upstream
		io.Copy(w, resp.Body)
		return
	}
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				// Client gone; closing the body (deferred) cancels the
				// upstream attempt through its context.
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			if r.Context().Err() == nil {
				row, _ := json.Marshal(errorResponse{ //folint:allow(errdrop) errorResponse is two plain strings; Marshal cannot fail on it
					Error:     fmt.Sprintf("upstream failed mid-stream: %v", err),
					RequestID: r.Header.Get("X-Request-ID"),
				})
				//folint:allow(errdrop) final error row on a stream whose status line is gone; nothing can be done for a dead client
				w.Write(append(row, '\n'))
			}
			return
		}
	}
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, maxBodyBytes)
	if !ok {
		return
	}
	rt.proxyOne(w, r, http.MethodPost, "/v1/predict", body, false, rt.predictKey(body))
}

func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, maxBodyBytes)
	if !ok {
		return
	}
	stream := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	rt.proxyOne(w, r, http.MethodPost, "/v1/sweep", body, stream, rt.sweepKey(body))
}

func (rt *Router) handleOptimize(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, maxBodyBytes)
	if !ok {
		return
	}
	stream := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	rt.proxyOne(w, r, http.MethodPost, "/v1/optimize", body, stream, rt.optimizeKey(body))
}

func (rt *Router) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	rt.proxyOne(w, r, http.MethodGet, "/v1/workloads", nil, false, server.WorkloadsCacheKey)
}

// batchGroup is the slice of a batch owned by one replica shard.
type batchGroup struct {
	key   string // first member's canonical key; routes the sub-batch
	idxs  []int  // positions in the original request
	items []server.PredictRequest
}

// itemKey derives one batch item's canonical key, falling back to its
// raw bytes for items the daemon will reject anyway.
func (rt *Router) itemKey(item server.PredictRequest) string {
	key, err := server.PredictCacheKey(item, rt.cfg.Defaults)
	if err != nil {
		//folint:allow(errdrop) a failed Marshal leaves b empty; the raw key is still deterministic
		b, _ := json.Marshal(item)
		return rawKey("predict", b)
	}
	return key
}

// handleBatch splits a batch by shard owner, fans the sub-batches to
// their replicas concurrently, and reassembles the per-item results in
// request order, re-encoding with the daemon's own encoder so the
// response is byte-equal to a single daemon's. Requests the proxy cannot
// decode — and whole-batch shape errors (empty, oversized) — are
// forwarded intact so the daemon's error responses stay authoritative.
// In round-robin mode batches are not split: the baseline policy is
// deliberately cache-oblivious.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, maxBatchBodyBytes)
	if !ok {
		return
	}
	var breq server.BatchRequest
	if err := strictDecode(body, &breq); err != nil ||
		len(breq.Items) == 0 || len(breq.Items) > maxBatchItems || rt.cfg.RoundRobin {
		rt.proxyOne(w, r, http.MethodPost, "/v1/batch", body, false, rawKey("batch", body))
		return
	}

	byOwner := make(map[int]*batchGroup)
	var groups []*batchGroup
	for i, item := range breq.Items {
		k := rt.itemKey(item)
		o := rt.ring.owner(k)
		g := byOwner[o]
		if g == nil {
			g = &batchGroup{key: k}
			byOwner[o] = g
			groups = append(groups, g)
		}
		g.idxs = append(g.idxs, i)
		g.items = append(g.items, item)
	}
	if len(groups) == 1 {
		// Single-shard batch: relay the original body untouched.
		rt.proxyOne(w, r, http.MethodPost, "/v1/batch", body, false, groups[0].key)
		return
	}

	out := make([]server.BatchItem, len(breq.Items))
	hdr := forwardHeader(r)
	var (
		mu       sync.Mutex
		failResp *http.Response // first non-200 sub-response, relayed verbatim
		failErr  error
		wg       sync.WaitGroup
	)
	for _, g := range groups {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			payload, err := json.Marshal(server.BatchRequest{Items: g.items})
			if err != nil {
				mu.Lock()
				if failErr == nil {
					failErr = err
				}
				mu.Unlock()
				return
			}
			resp, rep, err := rt.forward(r.Context(), http.MethodPost, "/v1/batch", payload, hdr, false, g.key)
			if err != nil {
				mu.Lock()
				if failErr == nil {
					failErr = err
				}
				mu.Unlock()
				return
			}
			if resp.StatusCode != http.StatusOK {
				mu.Lock()
				if failResp == nil {
					failResp = resp
					mu.Unlock()
					return
				}
				mu.Unlock()
				//folint:allow(errdrop) best-effort drain so the connection can be reused; a failure only costs the keep-alive
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
				resp.Body.Close() //folint:allow(errdrop) read-side close after a drain; there is nothing to act on
				return
			}
			var br server.BatchResponse
			decErr := json.NewDecoder(resp.Body).Decode(&br)
			resp.Body.Close() //folint:allow(errdrop) read-side close; the decode error above is the meaningful one
			if decErr != nil || len(br.Items) != len(g.items) {
				mu.Lock()
				if failErr == nil {
					failErr = fmt.Errorf("replica %s returned a malformed batch response", rep.url)
				}
				mu.Unlock()
				return
			}
			for j, idx := range g.idxs {
				out[idx] = br.Items[j]
			}
		}(g)
	}
	wg.Wait()

	switch {
	case failResp != nil:
		// A daemon answered with a batch-level error; its response is
		// authoritative for the whole request.
		rt.relay(w, r, failResp, false)
	case failErr != nil:
		rt.writeForwardError(w, r, failErr)
	default:
		respBody, err := server.EncodeIndented(server.BatchResponse{Items: out})
		if err != nil {
			rt.writeError(w, r, http.StatusInternalServerError, "%s", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		//folint:allow(errdrop) batch-response write: the client may already be gone, and there is no fallback channel
		w.Write(respBody)
	}
}
