// Package lockheld flags blocking I/O performed while a sync.Mutex
// or sync.RWMutex is held. The serving path's latency tail is set by
// its critical sections: a file read, network call, or channel send
// under a hot lock turns one slow syscall into a convoy of blocked
// request goroutines, and — for locks shared with the request path —
// a deadline-less hang into a whole-process stall.
//
// The analysis is per-function and deliberately conservative: it
// tracks Lock/RLock calls through straight-line code and branches
// (branch-local releases do not leak out), treats `defer Unlock` as
// holding the lock for the remainder of the function, and inside the
// held region flags
//
//   - channel sends (a full channel blocks forever under the lock),
//   - file-system calls (package os, *os.File methods),
//   - network calls (package net dial/listen/lookup and connection
//     types, net/http clients, servers and response writers), and
//   - io.Copy / io.ReadAll, whose endpoints are usually one of the
//     above.
//
// Function literals are analyzed as their own functions: a closure
// does not inherit the creating function's lock state (it usually
// runs elsewhere), and a lock taken inside it is tracked on its own.
// Intentional I/O under a lock — an eviction scan that exists to be
// serialized, say — takes a //folint:allow(lockheld) with the reason.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fomodel/internal/lint/analysis"
)

// Analyzer is the lockheld pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "forbid channel sends and file/network I/O while a sync mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.stmts(fn.Body.List, lockSet{})
				}
			case *ast.FuncLit:
				c.stmts(fn.Body.List, lockSet{})
			}
			return true
		})
	}
	return nil
}

// lockSet maps the printed receiver expression of a held lock
// ("s.mu", "pc.mu") to the position it was taken.
type lockSet map[string]token.Pos

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// names lists the held locks, deterministically.
func (s lockSet) names() string {
	ns := make([]string, 0, len(s))
	for n := range s {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return strings.Join(ns, ", ")
}

type checker struct {
	pass *analysis.Pass
}

// stmts walks a statement list in order, threading lock state through
// it. Nested scopes get a clone: a lock taken or released inside a
// branch is not assumed on the code after it.
func (c *checker) stmts(list []ast.Stmt, held lockSet) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func (c *checker) stmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, kind, ok := c.lockOp(s.X); ok {
			switch kind {
			case opLock:
				held[recv] = s.Pos()
			case opUnlock:
				delete(held, recv)
			}
			return
		}
		c.scan(s.X, held)
	case *ast.DeferStmt:
		if recv, kind, ok := c.lockOp(s.Call); ok && kind == opUnlock {
			// Held until return: everything after this defer runs
			// under the lock.
			_ = recv
			return
		}
		// Other deferred work runs at return, when the lock state is
		// unknowable here; only its argument expressions are checked.
		for _, a := range s.Call.Args {
			c.scan(a, held)
		}
	case *ast.SendStmt:
		c.flagSend(s, held)
		c.scan(s.Chan, held)
		c.scan(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scan(e, held)
		}
		for _, e := range s.Lhs {
			c.scan(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scan(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.scan(s.Cond, held)
		c.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			c.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scan(s.Cond, held)
		}
		body := held.clone()
		c.stmts(s.Body.List, body)
		if s.Post != nil {
			c.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.scan(s.X, held)
		c.stmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scan(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			cl, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cl.Comm.(*ast.SendStmt); ok {
				c.flagSend(send, held)
			}
			c.stmts(cl.Body, held.clone())
		}
	case *ast.BlockStmt:
		c.stmts(s.List, held.clone())
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine does not run under this function's locks;
		// only the argument evaluation does.
		for _, a := range s.Call.Args {
			c.scan(a, held)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// No calls that matter, or handled by scan below where needed.
		if ds, ok := s.(*ast.DeclStmt); ok {
			c.scan(ds, held)
		}
	default:
	}
}

// scan inspects an expression tree (never descending into function
// literals) and flags I/O calls made while locks are held.
func (c *checker) scan(n ast.Node, held lockSet) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if desc, ok := c.ioCall(call); ok {
				c.pass.Reportf(call.Pos(), "%s while %s is held: move the I/O outside the critical section", desc, held.names())
			}
		}
		return true
	})
}

func (c *checker) flagSend(s *ast.SendStmt, held lockSet) {
	if len(held) > 0 {
		c.pass.Reportf(s.Arrow, "channel send while %s is held: a full channel blocks every goroutine waiting on the lock", held.names())
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp recognizes x.Lock/RLock/Unlock/RUnlock on sync.Mutex,
// sync.RWMutex, or sync.Locker, returning the printed receiver.
func (c *checker) lockOp(e ast.Expr) (recv string, kind lockOpKind, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", opNone, false
	}
	f := analysis.Callee(c.pass.TypesInfo, call)
	pkg, typ := analysis.RecvTypeName(f)
	if pkg != "sync" || (typ != "Mutex" && typ != "RWMutex" && typ != "Locker") {
		return "", opNone, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", opNone, false
	}
	switch f.Name() {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone, false
	}
	return types.ExprString(sel.X), kind, true
}

// osFileFuncs are the package-level os functions that touch the file
// system (cheap querying of the process environment is not I/O in
// the sense this analyzer cares about).
var osFileFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "Stat": true, "Lstat": true,
	"Truncate": true, "Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
}

// netRecvTypes are the net types whose methods perform network I/O.
var netRecvTypes = map[string]bool{
	"Conn": true, "TCPConn": true, "UDPConn": true, "UnixConn": true,
	"Listener": true, "TCPListener": true, "UnixListener": true,
	"Dialer": true, "Resolver": true, "PacketConn": true,
}

// httpRecvTypes are the net/http types whose methods reach the wire.
var httpRecvTypes = map[string]bool{
	"Client": true, "Transport": true, "Server": true,
	"ResponseWriter": true, "Flusher": true,
}

// ioCall classifies a call as blocking I/O, returning a description
// for the diagnostic.
func (c *checker) ioCall(call *ast.CallExpr) (string, bool) {
	f := analysis.Callee(c.pass.TypesInfo, call)
	if f == nil {
		return "", false
	}
	if rpkg, rtyp := analysis.RecvTypeName(f); rpkg != "" {
		switch {
		case rpkg == "os" && rtyp == "File":
			return "file I/O ((*os.File)." + f.Name() + ")", true
		case rpkg == "net" && netRecvTypes[rtyp]:
			return "network I/O (net." + rtyp + "." + f.Name() + ")", true
		case rpkg == "net/http" && httpRecvTypes[rtyp]:
			return "network I/O (http." + rtyp + "." + f.Name() + ")", true
		case rpkg == "os/exec" && rtyp == "Cmd":
			switch f.Name() {
			case "Run", "Start", "Wait", "Output", "CombinedOutput":
				return "subprocess I/O (exec.Cmd." + f.Name() + ")", true
			}
		}
		return "", false
	}
	switch analysis.FuncPkgPath(f) {
	case "os":
		if osFileFuncs[f.Name()] {
			return "file I/O (os." + f.Name() + ")", true
		}
	case "net":
		if strings.HasPrefix(f.Name(), "Dial") || strings.HasPrefix(f.Name(), "Listen") || strings.HasPrefix(f.Name(), "Lookup") {
			return "network I/O (net." + f.Name() + ")", true
		}
	case "net/http":
		switch f.Name() {
		case "Get", "Post", "Head", "PostForm", "Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS":
			return "network I/O (http." + f.Name() + ")", true
		}
	case "io":
		switch f.Name() {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll":
			return "potential file/network I/O (io." + f.Name() + ")", true
		}
	}
	return "", false
}
