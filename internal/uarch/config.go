// Package uarch implements a detailed, cycle-level simulator of the paper's
// first-order superscalar machine (Fig. 3): a ΔP-stage front-end pipeline, a
// single homogeneous issue window with oldest-first out-of-order issue whose
// entries are freed at issue, a separate reorder buffer freed in-order at
// retire, equal fetch/dispatch/issue/retire width i, an unbounded number of
// fully pipelined functional units of each class, an 8K gshare predictor,
// and a two-level cache hierarchy. Wrong-path instructions are not
// simulated: with oldest-first issue they never inhibit useful instructions
// (paper §4.1), so miss-events act as throttles on the flow of useful
// instructions — a mispredicted branch stops fetch until it resolves, an
// I-cache miss stalls fetch for the miss delay, and a long data-cache miss
// blocks retirement until its data returns.
//
// Miss-event classification (cache hit/short/long, branch mispredicted or
// not) is precomputed with a single functional pass in program order — the
// same pass the stats package performs — and the timing simulation charges
// the precomputed outcomes. Decoupling classification from timing keeps the
// analytical model and the simulator in exact agreement on miss-event
// *counts*, so evaluation differences isolate the model's *timing*
// approximations, which is what the paper evaluates.
package uarch

import (
	"fmt"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/predictor"
)

// Config parameterizes the simulated machine. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// FrontEndDepth is ΔP: the number of pipeline stages between fetch and
	// dispatch. The paper's baseline is 5; its depth studies also use 9.
	FrontEndDepth int
	// Width is the parameter i: fetch, pipeline, dispatch, issue, and
	// retire width are all equal (paper §2). Baseline: 4.
	Width int
	// WindowSize is the number of issue-window slots. Baseline: 48.
	WindowSize int
	// ROBSize is the number of reorder-buffer slots. Baseline: 128.
	ROBSize int
	// Latencies gives the fully pipelined execution latency per class.
	Latencies isa.LatencyTable
	// Hierarchy configures the caches (ignored when both ideal flags are
	// set). Misses add the hierarchy's short/long latencies.
	Hierarchy cache.HierarchyConfig
	// PredictorBits is the gshare index width; 13 = the paper's 8K table.
	PredictorBits uint
	// Predictor, when non-nil, overrides the default gshare with an
	// arbitrary predictor spec.
	Predictor *predictor.Spec

	// IdealICache disables instruction-cache stalls (simulations 1, 3, 5
	// of the paper's §1.1 experiment).
	IdealICache bool
	// IdealDCache disables all data-cache miss latencies.
	IdealDCache bool
	// IdealPredictor disables branch-misprediction fetch breaks.
	IdealPredictor bool

	// Warmup replays instruction fetches through the hierarchy before the
	// measured functional pass, removing compulsory I-side misses (see
	// stats.Config.Warmup).
	Warmup bool

	// SerializeLongMisses reproduces the paper's §4.3 isolation
	// experiment: while one long data miss is outstanding, subsequent
	// long misses are demoted to hits, so every long miss is observed in
	// isolation.
	SerializeLongMisses bool

	// FUCounts, when any entry is positive, limits how many instructions
	// of that class may issue per cycle (the units remain fully
	// pipelined). Zero entries are unbounded — the paper's baseline has
	// an unbounded number of units of each type; limited units are its
	// §7 extension #1.
	FUCounts [isa.NumClasses]int

	// FetchBufferSize adds entries beyond the front-end pipeline's
	// FrontEndDepth×Width, letting fetch run ahead during dispatch
	// stalls and hide part of subsequent I-cache miss delays (the §7
	// extension #2).
	FetchBufferSize int

	// TLB, when non-nil, adds a data TLB whose misses extend the
	// access's latency by the page-walk time and block retirement like
	// long data misses (the §7 extension #4).
	TLB *cache.TLBConfig

	// InOrder restricts issue to strict program order: the window acts
	// as a FIFO and issue stalls at the first not-ready instruction.
	// This is the classic in-order baseline (Emma & Davidson's regime in
	// the paper's §1.2) — the first-order model explicitly targets
	// out-of-order machines, and this switch quantifies the difference.
	InOrder bool

	// RecordIssueTrace captures the per-cycle issue counts in
	// Result.IssueTrace (capped at 4M cycles) — used to observe
	// transients empirically (the paper's Fig. 7).
	RecordIssueTrace bool

	// Clusters, when > 1, partitions the issue window into that many
	// equal slices with round-robin dispatch steering; each cluster may
	// issue at most Width/Clusters instructions per cycle, and an
	// operand produced in another cluster arrives BypassLatency cycles
	// late (the §7 extension #3: partitioned issue windows and clustered
	// functional units). Width and WindowSize must be divisible by
	// Clusters.
	Clusters int
	// BypassLatency is the extra cross-cluster forwarding delay; only
	// meaningful when Clusters > 1.
	BypassLatency int
}

// DefaultConfig returns the paper's baseline processor: 5 front-end
// stages, width 4, a 48-entry window, a 128-entry ROB, default latencies,
// the baseline hierarchy, and an 8K gshare.
func DefaultConfig() Config {
	return Config{
		FrontEndDepth: 5,
		Width:         4,
		WindowSize:    48,
		ROBSize:       128,
		Latencies:     isa.DefaultLatencies(),
		Hierarchy:     cache.DefaultHierarchy(),
		PredictorBits: 13,
		Warmup:        true,
	}
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.FrontEndDepth < 1:
		return fmt.Errorf("uarch: front-end depth %d < 1", c.FrontEndDepth)
	case c.Width < 1:
		return fmt.Errorf("uarch: width %d < 1", c.Width)
	case c.WindowSize < 1:
		return fmt.Errorf("uarch: window size %d < 1", c.WindowSize)
	case c.ROBSize < c.WindowSize:
		return fmt.Errorf("uarch: ROB size %d smaller than window %d", c.ROBSize, c.WindowSize)
	}
	if err := c.Latencies.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.Validate(); err != nil {
		return err
	}
	if c.PredictorBits == 0 || c.PredictorBits > 28 {
		return fmt.Errorf("uarch: predictor bits %d out of range [1,28]", c.PredictorBits)
	}
	for cl, n := range c.FUCounts {
		if n < 0 {
			return fmt.Errorf("uarch: negative FU count %d for %v", n, isa.Class(cl))
		}
	}
	if c.FetchBufferSize < 0 {
		return fmt.Errorf("uarch: negative fetch buffer size %d", c.FetchBufferSize)
	}
	if c.TLB != nil {
		if err := c.TLB.Validate(); err != nil {
			return err
		}
	}
	if c.Clusters > 1 {
		if c.Width%c.Clusters != 0 {
			return fmt.Errorf("uarch: width %d not divisible by %d clusters", c.Width, c.Clusters)
		}
		if c.WindowSize%c.Clusters != 0 {
			return fmt.Errorf("uarch: window %d not divisible by %d clusters", c.WindowSize, c.Clusters)
		}
		if c.BypassLatency < 0 {
			return fmt.Errorf("uarch: negative bypass latency %d", c.BypassLatency)
		}
	}
	return nil
}

// Result reports a simulation's outcome.
type Result struct {
	// Instructions is the number of useful instructions retired.
	Instructions int
	// Cycles is the total execution time.
	Cycles int64

	// Mispredicts counts mispredicted conditional branches (0 when the
	// predictor is ideal).
	Mispredicts uint64
	// ICacheShort / ICacheLong count fetch stalls charged for L1-I misses
	// that hit / miss in L2 (0 when the I-cache is ideal).
	ICacheShort uint64
	ICacheLong  uint64
	// DCacheShort / DCacheLong count data accesses charged short / long
	// miss latency (0 when the D-cache is ideal).
	DCacheShort uint64
	DCacheLong  uint64
	// TLBMisses counts data-TLB misses charged the page-walk latency
	// (0 without a configured TLB).
	TLBMisses uint64

	// MispredictsOverlapped counts mispredicted branches that resolved
	// while at least one long data miss was outstanding; ICacheOverlapped
	// likewise counts I-cache stalls that began under an outstanding long
	// miss. These feed the paper's Fig. 2 overlap compensation.
	MispredictsOverlapped uint64
	ICacheOverlapped      uint64

	// WindowOccupancySum accumulates window occupancy each cycle;
	// ROBOccupancySum and FrontEndOccupancySum likewise, for
	// average-occupancy diagnostics.
	WindowOccupancySum   uint64
	ROBOccupancySum      uint64
	FrontEndOccupancySum uint64

	// IssueHistogram[k] counts cycles in which exactly k instructions
	// issued (k ranges 0..Width); used by the §6.2 issue-width study.
	IssueHistogram []int64
	// IssueTrace is the per-cycle issue count sequence (only recorded
	// with Config.RecordIssueTrace).
	IssueTrace []uint8
}

// CPI returns cycles per retired instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// AvgWindowOccupancy returns the mean number of valid window entries per
// cycle.
func (r *Result) AvgWindowOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WindowOccupancySum) / float64(r.Cycles)
}

// AvgROBOccupancy returns the mean number of valid ROB entries per cycle.
func (r *Result) AvgROBOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.ROBOccupancySum) / float64(r.Cycles)
}

// AvgFrontEndOccupancy returns the mean number of fetched-but-undispatched
// instructions per cycle (front-end pipeline plus fetch buffer).
func (r *Result) AvgFrontEndOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.FrontEndOccupancySum) / float64(r.Cycles)
}
