package ctxflow_test

import (
	"testing"

	"fomodel/internal/lint/ctxflow"
	"fomodel/internal/lint/linttest"
)

// TestCtxflow pins the golden diagnostics on library code.
func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/ctxflow", "fomodel/internal/client")
}

// TestCtxflowExemptsMain requires silence on package main, where
// minting root contexts is the whole point.
func TestCtxflowExemptsMain(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/cmdmain", "fomodel/cmd/fomodeld")
}
