package rng

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	p := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	// The panic message must name the offending value, so a crash in a
	// deeply nested sampler is diagnosable from the message alone.
	for _, n := range []int{0, -7} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, fmt.Sprintf("%d", n)) {
					t.Fatalf("Intn(%d) panic %q does not carry the value", n, r)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int64{0, -123} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Int63n(%d) did not panic", n)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, fmt.Sprintf("%d", n)) {
					t.Fatalf("Int63n(%d) panic %q does not carry the value", n, r)
				}
			}()
			New(1).Int63n(n)
		}()
	}
}

func TestInt63nBounds(t *testing.T) {
	p := New(5)
	for _, n := range []int64{1, 10, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := p.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	p := New(11)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[p.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(13)
	var sum float64
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	p := New(17)
	const draws = 50000
	hits := 0
	for i := 0; i < draws; i++ {
		if p.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	p := New(19)
	for _, mean := range []float64{1, 2, 5, 20} {
		var sum float64
		const draws = 40000
		for i := 0; i < draws; i++ {
			v := p.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", mean, v)
			}
			sum += float64(v)
		}
		got := sum / draws
		if math.Abs(got-mean) > 0.05*mean+0.01 {
			t.Errorf("Geometric(%v) mean %v", mean, got)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	p := New(23)
	const max = 50
	seenLarge := false
	for i := 0; i < 20000; i++ {
		v := p.Pareto(0.7, max)
		if v < 1 || v > max {
			t.Fatalf("Pareto out of range: %d", v)
		}
		if v > max/2 {
			seenLarge = true
		}
	}
	if !seenLarge {
		t.Fatal("Pareto(0.7) never produced a tail value")
	}
}

func TestParetoHeavierTailForSmallerAlpha(t *testing.T) {
	heavy, light := New(29), New(29)
	var sumHeavy, sumLight float64
	for i := 0; i < 20000; i++ {
		sumHeavy += float64(heavy.Pareto(0.5, 1000))
		sumLight += float64(light.Pareto(2.0, 1000))
	}
	if sumHeavy <= sumLight {
		t.Fatalf("alpha=0.5 mean %v not heavier than alpha=2.0 mean %v", sumHeavy/20000, sumLight/20000)
	}
}

func TestParetoDegenerateMax(t *testing.T) {
	p := New(31)
	if v := p.Pareto(1, 1); v != 1 {
		t.Fatalf("Pareto(max=1) = %d, want 1", v)
	}
}

func TestNormalMoments(t *testing.T) {
	p := New(37)
	const draws = 60000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := p.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	std := math.Sqrt(sumSq/draws - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Errorf("Normal stddev %v, want ~3", std)
	}
}

func TestWeighted(t *testing.T) {
	p := New(41)
	weights := []float64{1, 0, 3}
	var counts [3]int
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[p.Weighted(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestWeightedDegenerate(t *testing.T) {
	p := New(43)
	if got := p.Weighted([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights selected %d, want 0", got)
	}
	if got := p.Weighted([]float64{-1, 5}); got != 1 {
		t.Fatalf("negative weight selected %d, want 1", got)
	}
}

func TestIntnPropertyInRange(t *testing.T) {
	p := New(47)
	f := func(seed uint32, n uint16) bool {
		bound := int(n%1000) + 1
		v := p.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricPropertyAtLeastOne(t *testing.T) {
	p := New(53)
	f := func(m uint8) bool {
		return p.Geometric(float64(m%50)+1) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
