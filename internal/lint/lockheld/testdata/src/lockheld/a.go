// Fixture for the lockheld analyzer.
package store

import (
	"io"
	"net/http"
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (s *store) scanUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.ReadDir("/tmp") // want `file I/O \(os\.ReadDir\) while s\.mu is held`
}

func (s *store) releasedFirst() {
	s.mu.Lock()
	s.mu.Unlock()
	os.Remove("/tmp/x")
}

func (s *store) branchRelease(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		os.Remove("/tmp/x")
		return
	}
	os.Remove("/tmp/y") // want `file I/O \(os\.Remove\) while s\.mu is held`
	s.mu.Unlock()
}

func (s *store) send(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *store) sendAfterUnlock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

func (s *store) selectSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v: // want `channel send while s\.mu is held`
	default:
	}
}

func (s *store) readLockIO(f *os.File) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	f.Sync() // want `file I/O \(\(\*os\.File\)\.Sync\) while s\.rw is held`
}

func (s *store) httpUnderLock(c *http.Client, req *http.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := c.Do(req) // want `network I/O \(http\.Client\.Do\) while s\.mu is held`
	if err == nil {
		resp.Body.Close()
	}
	return err
}

func (s *store) readAllUnderLock(r io.Reader) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return io.ReadAll(r) // want `potential file/network I/O \(io\.ReadAll\) while s\.mu is held`
}

func (s *store) closureHasOwnState(c *http.Client, req *http.Request) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The literal is not executed here; it is analyzed as its own
	// function with its own (empty) lock state.
	return func() {
		resp, err := c.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
}

func (s *store) closureOwnLock(f *os.File) func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		f.Sync() // want `file I/O \(\(\*os\.File\)\.Sync\) while s\.mu is held`
	}
}

func (s *store) goroutineNotUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		os.Remove("/tmp/x")
	}()
}

func noLockNoFindings(f *os.File) {
	f.Sync()
	os.ReadDir("/tmp")
}
