package experiments

import (
	"fomodel/internal/uarch"
)

// Figure2Row is one benchmark of the paper's Fig. 2 (and the §1.1
// methodology behind it): the five-simulation demonstration that
// miss-event penalties add almost independently.
type Figure2Row struct {
	Name string
	// CombinedIPC is simulation 2: real caches and real predictor.
	CombinedIPC float64
	// IndependentIPC adds each miss-event's isolated time penalty
	// (simulations 3, 4, 5 minus simulation 1) to the ideal time.
	IndependentIPC float64
	// CompensatedIPC additionally ignores branch and I-cache penalties
	// that overlapped a long data-cache miss.
	CompensatedIPC float64
	// IndependentErr and CompensatedErr are relative IPC errors against
	// CombinedIPC.
	IndependentErr float64
	CompensatedErr float64
}

// Figure2Result is the full Fig. 2 dataset.
type Figure2Result struct {
	Rows []Figure2Row
	// MeanIndependentErr / MeanCompensatedErr are mean absolute relative
	// errors (the paper reports 5% and 4%).
	MeanIndependentErr float64
	MeanCompensatedErr float64
}

// Figure2 runs the five simulator configurations per benchmark and builds
// the independence demonstration. The benchmarks fan out across the
// suite's worker pool.
func Figure2(s *Suite) (*Figure2Result, error) {
	rows, err := MapWorkloads(s, func(w *Workload) (Figure2Row, error) {
		var zero Figure2Row
		ideal, err := s.Simulate(w, func(c *uarch.Config) {
			c.IdealICache, c.IdealDCache, c.IdealPredictor = true, true, true
		})
		if err != nil {
			return zero, err
		}
		brOnly, err := s.Simulate(w, func(c *uarch.Config) {
			c.IdealICache, c.IdealDCache = true, true
		})
		if err != nil {
			return zero, err
		}
		icOnly, err := s.Simulate(w, func(c *uarch.Config) {
			c.IdealDCache, c.IdealPredictor = true, true
		})
		if err != nil {
			return zero, err
		}
		dOnly, err := s.Simulate(w, func(c *uarch.Config) {
			c.IdealICache, c.IdealPredictor = true, true
		})
		if err != nil {
			return zero, err
		}
		combined, err := s.Simulate(w, nil)
		if err != nil {
			return zero, err
		}

		n := float64(w.Trace.Len())
		brPenalty := float64(brOnly.Cycles - ideal.Cycles)
		icPenalty := float64(icOnly.Cycles - ideal.Cycles)
		dPenalty := float64(dOnly.Cycles - ideal.Cycles)
		indepCycles := float64(ideal.Cycles) + brPenalty + icPenalty + dPenalty

		// Overlap compensation: drop the per-event penalty for the
		// branch mispredictions and I-cache misses that the combined run
		// observed under an outstanding long data miss.
		var perBr, perIC float64
		if brOnly.Mispredicts > 0 {
			perBr = brPenalty / float64(brOnly.Mispredicts)
		}
		if icMisses := icOnly.ICacheShort + icOnly.ICacheLong; icMisses > 0 {
			perIC = icPenalty / float64(icMisses)
		}
		compCycles := indepCycles -
			float64(combined.MispredictsOverlapped)*perBr -
			float64(combined.ICacheOverlapped)*perIC

		row := Figure2Row{
			Name:           w.Name,
			CombinedIPC:    combined.IPC(),
			IndependentIPC: n / indepCycles,
			CompensatedIPC: n / compCycles,
		}
		row.IndependentErr = relErr(row.IndependentIPC, row.CombinedIPC)
		row.CompensatedErr = relErr(row.CompensatedIPC, row.CombinedIPC)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{Rows: rows}
	for _, r := range res.Rows {
		res.MeanIndependentErr += abs(r.IndependentErr)
		res.MeanCompensatedErr += abs(r.CompensatedErr)
	}
	res.MeanIndependentErr /= float64(len(res.Rows))
	res.MeanCompensatedErr /= float64(len(res.Rows))
	return res, nil
}

// tab builds the result table.
func (r *Figure2Result) tab() *table {
	t := &table{
		title:  "Figure 2: independence of miss-event penalties (IPC)",
		header: []string{"bench", "combined", "independent", "err", "compensated", "err"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.CombinedIPC),
			f3(row.IndependentIPC), pct(row.IndependentErr),
			f3(row.CompensatedIPC), pct(row.CompensatedErr))
	}
	t.addNote("mean |err|: independent %s (paper ~5%%), compensated %s (paper ~4%%)",
		pct(r.MeanIndependentErr), pct(r.MeanCompensatedErr))
	return t
}

// Render prints the table as aligned text.
func (r *Figure2Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure2Result) CSV() string { return r.tab().CSV() }

func relErr(est, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return (est - ref) / ref
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
