package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fomodel/internal/server"
	"fomodel/internal/workload"
)

func TestTraceinfo(t *testing.T) {
	var out bytes.Buffer
	if err := Traceinfo([]string{"-n", "20000", "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "gzip") {
		t.Fatalf("traceinfo output incomplete:\n%s", s)
	}
	if strings.Count(s, "\n") != 2 { // header + one workload
		t.Fatalf("unexpected row count:\n%s", s)
	}
}

func TestTraceinfoUnknownWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := Traceinfo([]string{"nonsense"}, &out); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTraceinfoBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := Traceinfo([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestFosim(t *testing.T) {
	var out bytes.Buffer
	if err := Fosim([]string{"-n", "20000", "bzip"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "CPI") || !strings.Contains(s, "bzip") {
		t.Fatalf("fosim output incomplete:\n%s", s)
	}
}

func TestFosimIdealTogglesSpeedUp(t *testing.T) {
	run := func(extra ...string) string {
		var out bytes.Buffer
		args := append([]string{"-n", "20000"}, extra...)
		args = append(args, "gzip")
		if err := Fosim(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	real := run()
	ideal := run("-ideal-icache", "-ideal-dcache", "-ideal-predictor")
	// The ideal run must report zero miss events (columns misp, iShort,
	// iLong, dShort, dLong of the data row).
	lines := strings.Split(strings.TrimSpace(ideal), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	for _, col := range fields[5:10] {
		if col != "0" {
			t.Fatalf("ideal run still reports events:\n%s", ideal)
		}
	}
	if real == ideal {
		t.Fatal("ideal toggles had no effect")
	}
}

func TestFosimDumpAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.bin")
	var out bytes.Buffer
	if err := Fosim([]string{"-n", "5000", "-dump", path, "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("dump did not create the file: %v", err)
	}
	out.Reset()
	if err := Fosim([]string{"-load", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gzip") {
		t.Fatalf("loaded-trace output incomplete:\n%s", out.String())
	}
}

func TestFosimDumpRequiresOneWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := Fosim([]string{"-n", "5000", "-dump", "/tmp/x", "gzip", "bzip"}, &out); err == nil {
		t.Fatal("dump with two workloads accepted")
	}
}

func TestFosimProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = "custom"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteProfile(f, p); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := Fosim([]string{"-n", "10000", "-profile", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "custom") {
		t.Fatalf("profile workload missing:\n%s", out.String())
	}
}

func TestFomodel(t *testing.T) {
	var out bytes.Buffer
	if err := Fomodel(context.Background(), []string{"-n", "20000", "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "modelCPI") {
		t.Fatalf("fomodel output incomplete:\n%s", out.String())
	}
}

func TestFomodelDumpProfile(t *testing.T) {
	var out bytes.Buffer
	if err := Fomodel(context.Background(), []string{"-dump-profile", "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	var got workload.Profile
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("dump is not a profile: %v\n%s", err, out.String())
	}
	want, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("dumped profile does not round-trip:\n got %+v\nwant %+v", got, want)
	}
	if err := Fomodel(context.Background(), []string{"-dump-profile", "nope"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFomodelSim(t *testing.T) {
	var out bytes.Buffer
	if err := Fomodel(context.Background(), []string{"-n", "20000", "-sim", "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "err%") {
		t.Fatalf("fomodel -sim output incomplete:\n%s", out.String())
	}
}

func TestFomodelBranchModes(t *testing.T) {
	for _, mode := range []string{"midpoint", "isolated", "measured"} {
		var out bytes.Buffer
		if err := Fomodel(context.Background(), []string{"-n", "10000", "-branch-mode", mode, "gzip"}, &out); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	var out bytes.Buffer
	if err := Fomodel(context.Background(), []string{"-branch-mode", "nonsense", "gzip"}, &out); err == nil {
		t.Fatal("bad branch mode accepted")
	}
}

func TestExperimentsList(t *testing.T) {
	var out bytes.Buffer
	if err := Experiments(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2", "fig15", "table1", "ext-tlb", "statsim", "refine-branch"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("label %q missing from list:\n%s", want, out.String())
		}
	}
}

func TestExperimentsRun(t *testing.T) {
	var out bytes.Buffer
	if err := Experiments(context.Background(), []string{"-n", "20000", "-quiet", "fig8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "drain") {
		t.Fatalf("fig8 output incomplete:\n%s", out.String())
	}
}

func TestExperimentsCSVAndOut(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := Experiments(context.Background(), []string{"-n", "20000", "-csv", "-out", dir, "-quiet", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "bench,alpha") {
		t.Fatalf("CSV file content: %q", data[:30])
	}
}

func TestExperimentsUnknownLabel(t *testing.T) {
	var out bytes.Buffer
	if err := Experiments(context.Background(), []string{"nonsense"}, &out); err == nil {
		t.Fatal("unknown label accepted")
	}
}

// TestExperimentsParallelDeterminism is the acceptance check for the
// parallel engine: -parallel 1 and -parallel 4 must produce byte-identical
// output. The "methods" experiment is excluded because its table reports
// wall-clock times, which no scheduling discipline can make reproducible.
func TestExperimentsParallelDeterminism(t *testing.T) {
	labels := []string{"fig2", "fig8", "fig15", "table1", "statsim"}
	run := func(parallel string) string {
		var out bytes.Buffer
		args := append([]string{"-n", "20000", "-quiet", "-parallel", parallel}, labels...)
		if err := Experiments(context.Background(), args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	seq := run("1")
	par := run("4")
	if seq != par {
		t.Fatalf("-parallel 1 and -parallel 4 diverge:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

func TestExperimentsTiming(t *testing.T) {
	var out bytes.Buffer
	if err := Experiments(context.Background(), []string{"-n", "20000", "-quiet", "-timing", "fig8", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Timing breakdown", "workload", "experiment", "counters:", "workload analyses", "simulator runs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("timing output missing %q:\n%s", want, s)
		}
	}
}

func TestFosimExtensionFlags(t *testing.T) {
	var base, ext bytes.Buffer
	if err := Fosim([]string{"-n", "15000", "gzip"}, &base); err != nil {
		t.Fatal(err)
	}
	if err := Fosim([]string{"-n", "15000", "-clusters", "2", "-bypass", "1",
		"-tlb", "-fu", "mul=1,load=1", "gzip"}, &ext); err != nil {
		t.Fatal(err)
	}
	if base.String() == ext.String() {
		t.Fatal("extension flags had no effect")
	}
}

func TestFosimBadFUFlag(t *testing.T) {
	var out bytes.Buffer
	if err := Fosim([]string{"-fu", "nonsense=1", "gzip"}, &out); err == nil {
		t.Fatal("unknown FU class accepted")
	}
	if err := Fosim([]string{"-fu", "mul", "gzip"}, &out); err == nil {
		t.Fatal("malformed FU pair accepted")
	}
	if err := Fosim([]string{"-fu", "mul=0", "gzip"}, &out); err == nil {
		t.Fatal("zero FU count accepted")
	}
}

func TestFomodelExtensionFlags(t *testing.T) {
	var out bytes.Buffer
	if err := Fomodel(context.Background(), []string{"-n", "15000", "-clusters", "2", "-tlb",
		"-fetch-buffer", "16", "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "modelCPI") {
		t.Fatalf("output incomplete:\n%s", out.String())
	}
}

func TestParseFUCounts(t *testing.T) {
	fu, err := parseFUCounts("mul=1, load=2")
	if err != nil {
		t.Fatal(err)
	}
	if fu[2] != 0 { // div unset
		t.Fatal("unset class non-zero")
	}
	empty, err := parseFUCounts("")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty spec set limits")
		}
	}
}

// TestFomodelRemoteMatchesLocal pins the -remote contract: routing the
// same invocation through a fomodeld daemon produces byte-identical
// output — table and -json modes both — because the daemon serves the
// exact bytes the local pipeline would print.
func TestFomodelRemoteMatchesLocal(t *testing.T) {
	srv := httptest.NewServer(server.New(server.Config{N: 20000}, nil).Handler())
	defer srv.Close()

	for _, extra := range [][]string{
		{},
		{"-json", "-sim"},
		{"-width", "8", "-branch-mode", "isolated"},
	} {
		args := append([]string{"-n", "15000"}, extra...)
		var local, remote bytes.Buffer
		if err := Fomodel(context.Background(), append(args, "gzip", "mcf"), &local); err != nil {
			t.Fatalf("%v local: %v", extra, err)
		}
		if err := Fomodel(context.Background(), append(append([]string{"-remote", srv.URL}, args...), "gzip", "mcf"), &remote); err != nil {
			t.Fatalf("%v remote: %v", extra, err)
		}
		if local.String() != remote.String() {
			t.Errorf("%v: remote output differs from local\nlocal:\n%s\nremote:\n%s",
				extra, local.String(), remote.String())
		}
	}
}

func TestFomodelRemoteErrors(t *testing.T) {
	srv := httptest.NewServer(server.New(server.Config{N: 20000}, nil).Handler())
	defer srv.Close()

	var out bytes.Buffer
	// -profile workloads only exist locally; the combination is rejected.
	if err := Fomodel(context.Background(), []string{"-remote", srv.URL, "-profile", "x.json"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-profile") {
		t.Errorf("remote+profile: err = %v, want a -profile rejection", err)
	}
	// A per-item failure surfaces as the command's error, named by bench.
	if err := Fomodel(context.Background(), []string{"-remote", srv.URL, "gzip", "nonsense"}, &out); err == nil ||
		!strings.Contains(err.Error(), "nonsense") {
		t.Errorf("remote unknown bench: err = %v, want it named", err)
	}
	// An unreachable daemon is an error, not a hang (retries are bounded).
	c := []string{"-remote", "http://127.0.0.1:1", "gzip"}
	if err := Fomodel(context.Background(), c, &out); err == nil {
		t.Errorf("unreachable daemon: want an error")
	}
}

func TestFomodelJSON(t *testing.T) {
	var out bytes.Buffer
	if err := Fomodel(context.Background(), []string{"-n", "15000", "-json", "-sim", "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	var record struct {
		Bench    string `json:"bench"`
		Estimate struct {
			CPI float64 `json:"CPI"`
		} `json:"estimate"`
		SimCPI *float64 `json:"sim_cpi"`
	}
	if err := json.Unmarshal(out.Bytes(), &record); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if record.Bench != "gzip" || record.Estimate.CPI <= 0 || record.SimCPI == nil || *record.SimCPI <= 0 {
		t.Fatalf("record incomplete: %+v", record)
	}
}

// TestFomodelRemoteHonorsContext pins that cancelling the context (an
// interrupt) aborts an in-flight -remote batch immediately, rather
// than leaving the request to run out its timeout.
func TestFomodelRemoteHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, 1)
	done := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-r.Context().Done():
		case <-done:
		}
	}))
	defer srv.Close()
	defer close(done)
	go func() {
		<-started
		cancel()
	}()
	var out bytes.Buffer
	err := Fomodel(ctx, []string{"-remote", srv.URL, "-remote-timeout", "30s", "gzip"}, &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from a cancelled remote batch, got %v", err)
	}
}

// writeOptimizeSpec drops a small optimize spec into a temp file. The
// explicit n pins the trace length so local (-n flag) and remote (daemon
// default) runs normalize to the same canonical spec.
func writeOptimizeSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFomodelOptimize(t *testing.T) {
	path := writeOptimizeSpec(t,
		`{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":4}},"budget":6,"n":20000}`)
	var out bytes.Buffer
	if err := Fomodel(context.Background(), []string{"-optimize", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"minimize cpi over gzip", "bounds: width 1..4 step 1", "evaluations over a 4-point grid"} {
		if !strings.Contains(text, want) {
			t.Errorf("table output missing %q:\n%s", want, text)
		}
	}
}

// TestFomodelOptimizeRemoteMatchesLocal pins the -optimize byte-equality
// contract: the local in-process search and a fomodeld daemon produce
// identical bytes in both table and -json modes.
func TestFomodelOptimizeRemoteMatchesLocal(t *testing.T) {
	srv := httptest.NewServer(server.New(server.Config{N: 20000}, nil).Handler())
	defer srv.Close()
	path := writeOptimizeSpec(t,
		`{"workloads":[{"bench":"gzip"},{"bench":"mcf","weight":2}],"bounds":{"width":{"min":1,"max":8},"rob":{"min":64,"max":128,"step":64}},"budget":12,"n":20000}`)

	for _, extra := range [][]string{{}, {"-json"}} {
		args := append([]string{"-optimize", path, "-n", "20000"}, extra...)
		var local, remote bytes.Buffer
		if err := Fomodel(context.Background(), args, &local); err != nil {
			t.Fatalf("%v local: %v", extra, err)
		}
		if err := Fomodel(context.Background(), append(args, "-remote", srv.URL), &remote); err != nil {
			t.Fatalf("%v remote: %v", extra, err)
		}
		if local.String() != remote.String() {
			t.Errorf("%v: remote output differs from local\nlocal:\n%s\nremote:\n%s",
				extra, local.String(), remote.String())
		}
	}
}

func TestFomodelOptimizeErrors(t *testing.T) {
	var out bytes.Buffer
	// Missing spec file.
	if err := Fomodel(context.Background(), []string{"-optimize", "/no/such/spec.json"}, &out); err == nil {
		t.Error("missing spec file: want an error")
	}
	// Malformed spec (unknown field, matching the daemon's strictness).
	bad := writeOptimizeSpec(t, `{"workloads":[{"bench":"gzip"}],"bogus":1}`)
	if err := Fomodel(context.Background(), []string{"-optimize", bad}, &out); err == nil ||
		!strings.Contains(err.Error(), "bad optimize spec") {
		t.Errorf("malformed spec: err = %v, want a decode rejection", err)
	}
	// Invalid search space surfaces the package's sorted-param message.
	unknown := writeOptimizeSpec(t, `{"workloads":[{"bench":"gzip"}],"bounds":{"l2":{"min":1,"max":2}},"budget":4,"n":20000}`)
	if err := Fomodel(context.Background(), []string{"-optimize", unknown}, &out); err == nil ||
		!strings.Contains(err.Error(), "known: clusters, depth, fetch_buffer, rob, width, window") {
		t.Errorf("unknown param: err = %v, want the sorted parameter list", err)
	}
}
