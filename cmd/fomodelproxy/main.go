// Command fomodelproxy is the cache-aware routing proxy for a fleet of
// fomodeld replicas: consistent-hash request routing (each canonical
// request key has one home replica, so the fleet's response caches
// partition instead of duplicating), replica health probing with
// ejection and re-admission, transport-failure failover to ring
// successors, and P99-derived request hedging. See internal/router for
// the routing core and internal/cli.Fomodelproxy for the flags.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fomodel/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Fomodelproxy(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fomodelproxy:", err)
		os.Exit(1)
	}
}
