package cache

import "testing"

func TestTLBConfigValidate(t *testing.T) {
	if err := DefaultTLB().Validate(); err != nil {
		t.Fatalf("default TLB invalid: %v", err)
	}
	bad := []TLBConfig{
		{Entries: 0, PageBytes: 4096, MissLatency: 10},
		{Entries: 4, PageBytes: 1000, MissLatency: 10},
		{Entries: 4, PageBytes: 4096, MissLatency: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad TLB config %d accepted", i)
		}
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{Entries: 2, PageBytes: 4096, MissLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !tlb.Access(0x1800) { // same 4 KB page
		t.Fatal("same-page access missed")
	}
	if !tlb.Access(0x1000) {
		t.Fatal("re-access missed")
	}
	if tlb.Accesses != 3 || tlb.Misses != 1 {
		t.Fatalf("counters %d/%d", tlb.Accesses, tlb.Misses)
	}
}

func TestTLBLRU(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{Entries: 2, PageBytes: 4096, MissLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	tlb.Access(0x0000) // page 0
	tlb.Access(0x1000) // page 1
	tlb.Access(0x0000) // page 0 is MRU
	tlb.Access(0x2000) // evicts page 1 (LRU)
	if !tlb.Access(0x0000) {
		t.Fatal("MRU page was evicted")
	}
	if tlb.Access(0x1000) {
		t.Fatal("LRU page survived eviction")
	}
}

func TestTLBDefaultExceedsROBFill(t *testing.T) {
	// The design invariant documented on DefaultTLB: the walk must exceed
	// the baseline ROB fill time (128/4 = 32 cycles) so misses are "long".
	if DefaultTLB().MissLatency <= 32 {
		t.Fatalf("default TLB walk %d does not exceed the ROB fill time", DefaultTLB().MissLatency)
	}
}

func TestTLBMissRateAndReset(t *testing.T) {
	tlb, err := NewTLB(DefaultTLB())
	if err != nil {
		t.Fatal(err)
	}
	if tlb.MissRate() != 0 {
		t.Fatal("untouched TLB has non-zero miss rate")
	}
	tlb.Access(0x1000)
	tlb.Access(0x1000)
	if tlb.MissRate() != 0.5 {
		t.Fatalf("miss rate %v", tlb.MissRate())
	}
	tlb.Reset()
	if tlb.Accesses != 0 || tlb.Access(0x1000) {
		t.Fatal("reset did not clear state")
	}
	if tlb.Config().Entries != DefaultTLB().Entries {
		t.Fatal("config accessor wrong")
	}
}
