package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fomodel/internal/core"
	"fomodel/internal/optimize"
)

// This file is the daemon's half of the /v1/optimize surface: the
// design-space search lives in internal/optimize; the daemon supplies
// the evaluator — the exact /v1/predict compute path, response cache
// included — plus request validation, cache keying, NDJSON streaming,
// and the optimize metrics.

// OptimizeResponse is the buffered /v1/optimize body: the structured
// search result plus the rendered table and CSV, byte-identical to what
// `fomodel -optimize -json` prints for the same spec.
type OptimizeResponse struct {
	*optimize.Result
	Render string `json:"render"`
	CSV    string `json:"csv"`
}

// OptimizeTrailer is the final row of a streamed (NDJSON) optimize:
// everything the buffered OptimizeResponse carries except the points,
// which were already streamed one row per accepted candidate.
// Reassembling the rows into an OptimizeResponse reproduces the buffered
// body byte for byte (pinned by tests).
type OptimizeTrailer struct {
	Spec        optimize.Spec    `json:"spec"`
	Frontier    []optimize.Point `json:"frontier"`
	Evaluations int              `json:"evaluations"`
	Rounds      int              `json:"rounds"`
	GridSize    int              `json:"grid_size"`
	Converged   bool             `json:"converged"`
	Render      string           `json:"render"`
	CSV         string           `json:"csv"`
}

// optimizeMachineSpec projects one candidate onto the predict wire
// shape. Every searched axis is explicit, so all optimize evaluations
// live in one fully-specified predict keyspace — two searches (or a
// search and a later identically-spelled predict) share cache entries.
// Clusters 1 maps to the unset baseline so unclustered candidates key
// identically to default-machine predicts with the same overrides.
func optimizeMachineSpec(cfg optimize.Config, tlb bool) MachineSpec {
	m := MachineSpec{
		Width:       cfg.Width,
		Depth:       cfg.Depth,
		Window:      cfg.Window,
		ROB:         cfg.ROB,
		FetchBuffer: cfg.FetchBuffer,
		TLB:         tlb,
	}
	if cfg.Clusters > 1 {
		m.Clusters = cfg.Clusters
	}
	return m
}

// optimizeEval builds the search's evaluator: one candidate × benchmark
// scored through the daemon's own predict path — response cache,
// analysis cache, artifact store, prep cache and all. The model CPI is
// read back from the cached response bytes, so a cache hit and a fresh
// computation yield the identical float (Go's JSON float round-trip is
// exact).
func (s *Server) optimizeEval(spec optimize.Spec) optimize.EvalFunc {
	return func(ctx context.Context, cfg optimize.Config, bench string) (float64, error) {
		req := PredictRequest{
			Bench:   bench,
			N:       spec.N,
			Seed:    spec.TraceSeed,
			Machine: optimizeMachineSpec(cfg, spec.TLB),
		}
		key, err := PredictCacheKey(req, s.cfg.KeyDefaults())
		if err != nil {
			return 0, err
		}
		machine, err := req.Machine.Machine()
		if err != nil {
			return 0, err
		}
		ucfg, err := req.Machine.SimConfig()
		if err != nil {
			return 0, err
		}
		if err := machine.Validate(); err != nil {
			return 0, err
		}
		if err := ucfg.Validate(); err != nil {
			return 0, err
		}
		_, body, hit, err := s.cache.Do(key, func() (int, []byte, error) {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
			rec, err := s.predictRecord(req, machine, ucfg, core.BranchMidpoint)
			if err != nil {
				return 0, nil, err
			}
			b, err := EncodeIndented(rec)
			if err != nil {
				return 0, nil, err
			}
			return http.StatusOK, b, nil
		})
		if err != nil {
			return 0, err
		}
		s.optEvals.Inc()
		if hit {
			s.optEvalHits.Inc()
		}
		s.noteRegisteredUse(bench, hit)
		var rec PredictRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return 0, fmt.Errorf("malformed cached predict body: %w", err)
		}
		return rec.Estimate.CPI, nil
	}
}

// Optimize runs one design-space search through the daemon's predict
// compute path. It is exported so the CLI's local -optimize mode runs
// the very same code an in-process daemon would, which is what makes
// local and remote outputs byte-identical. emit, when non-nil, receives
// accepted points in discovery order.
func (s *Server) Optimize(ctx context.Context, spec optimize.Spec, emit func(optimize.Point) error) (*optimize.Result, error) {
	if err := spec.NormalizeWith(s.cfg.N, s.cfg.Seed, s.knownWorkload); err != nil {
		return nil, err
	}
	if spec.N < minTraceLen || spec.N > maxTraceLen {
		return nil, fmt.Errorf("n %d outside [%d, %d]", spec.N, minTraceLen, maxTraceLen)
	}
	res, err := optimize.Run(ctx, spec, s.optimizeEval(spec), optimize.Options{
		Workers:       s.cfg.Workers,
		Emit:          emit,
		KnownWorkload: s.knownWorkload,
	})
	if err != nil {
		return nil, err
	}
	s.optRounds.Add(int64(res.Rounds))
	s.optFrontier.Set(int64(len(res.Frontier)))
	return res, nil
}

// optimizeDeadline applies the spec's own deadline on top of the
// request's; the returned cancel must run even when the deadline is
// unset.
func optimizeDeadline(ctx context.Context, spec optimize.Spec) (context.Context, context.CancelFunc) {
	if spec.DeadlineMS <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(spec.DeadlineMS)*time.Millisecond)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	sw := w.(*statusWriter)
	var spec optimize.Spec
	if err := decodeRequest(r, &spec); err != nil {
		s.writeRequestError(w, err)
		return
	}
	if err := spec.NormalizeWith(s.cfg.N, s.cfg.Seed, s.knownWorkload); err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	if spec.N < minTraceLen || spec.N > maxTraceLen {
		s.writeError(w, http.StatusBadRequest, "n %d outside [%d, %d]", spec.N, minTraceLen, maxTraceLen)
		return
	}
	if wantsNDJSON(r) {
		s.streamOptimize(sw, r, spec)
		return
	}
	key, err := OptimizeCacheKey(spec, s.cfg.KeyDefaults())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%s", err)
		return
	}
	ctx, cancel := optimizeDeadline(r.Context(), spec)
	defer cancel()
	status, body, hit, err := s.cache.Do(key, func() (int, []byte, error) {
		if s.panicHook != nil {
			s.panicHook(spec.Title)
		}
		res, err := s.Optimize(ctx, spec, nil)
		if err != nil {
			return 0, nil, err
		}
		body, err := EncodeIndented(OptimizeResponse{Result: res, Render: res.Render(), CSV: res.CSV()})
		if err != nil {
			return 0, nil, err
		}
		return http.StatusOK, body, nil
	})
	// The spec's own deadline expiring is the client's doing, not the
	// server's computation limit: report it precisely.
	if errors.Is(err, context.DeadlineExceeded) && spec.DeadlineMS > 0 && r.Context().Err() == nil {
		s.writeError(sw, http.StatusServiceUnavailable,
			"search exceeded the spec's %dms deadline", spec.DeadlineMS)
		return
	}
	s.finishCompute(sw, status, body, hit, err)
}

// streamOptimize is the NDJSON optimize mode: one compact Point row per
// accepted candidate, flushed as it is discovered, then one
// OptimizeTrailer row with the search-level fields. Like streamed
// sweeps, streamed searches bypass the response cache (rows leave before
// the result exists) but every evaluation underneath still lands in the
// predict response cache. Mid-stream failures follow the established
// convention: a final {"error": ...} row, since the 200 header is
// already on the wire.
func (s *Server) streamOptimize(sw *statusWriter, r *http.Request, spec optimize.Spec) {
	ctx, cancel := optimizeDeadline(r.Context(), spec)
	defer cancel()
	wroteRow := false
	writeRow := func(v any) error {
		row, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !wroteRow {
			sw.Header().Set("Content-Type", ndjsonContentType)
			sw.WriteHeader(http.StatusOK)
			wroteRow = true
		}
		if _, err := sw.Write(append(row, '\n')); err != nil {
			return err
		}
		sw.Flush()
		return nil
	}
	res, err := func() (res *optimize.Result, err error) {
		// Worker panics arrive as PanicError via the engine's guard; this
		// recover catches the handler goroutine itself, turning both into
		// a structured error instead of a severed connection.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("internal panic: %v", r)
			}
		}()
		if s.panicHook != nil {
			s.panicHook(spec.Title)
		}
		return s.Optimize(ctx, spec, func(pt optimize.Point) error {
			return writeRow(pt)
		})
	}()
	if err != nil {
		if !wroteRow {
			if errors.Is(err, context.DeadlineExceeded) && spec.DeadlineMS > 0 && r.Context().Err() == nil {
				s.writeError(sw, http.StatusServiceUnavailable,
					"search exceeded the spec's %dms deadline", spec.DeadlineMS)
				return
			}
			s.finishCompute(sw, 0, nil, false, err)
			return
		}
		if r.Context().Err() == nil {
			//folint:allow(errdrop) final error row on a dying stream; a failed write means the client is gone too
			writeRow(errorResponse{Error: err.Error()})
		}
		return
	}
	writeRow(OptimizeTrailer{ //folint:allow(errdrop) trailer ends the stream; a failed write means the client is gone and there is nothing left to send
		Spec:        res.Spec,
		Frontier:    res.Frontier,
		Evaluations: res.Evaluations,
		Rounds:      res.Rounds,
		GridSize:    res.GridSize,
		Converged:   res.Converged,
		Render:      res.Render(),
		CSV:         res.CSV(),
	})
}
