package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"fomodel/internal/trace"
)

// ContentHash returns a hex digest of every generation-relevant profile
// field. Name is deliberately excluded: the generator's instruction
// stream depends only on the numeric fields and the seed (Name flows
// into trace.Name and error text, never into the rng streams), so two
// tenants registering the same numbers under different names share one
// hash — and therefore one trace, one analysis, one cache entry. Fields
// are written in struct declaration order; adding a field changes every
// hash, which is the correct invalidation.
func (p *Profile) ContentHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "mix=%v\n", p.Mix)
	fmt.Fprintf(h, "block_len_mean=%v\n", p.BlockLenMean)
	fmt.Fprintf(h, "num_blocks=%d\n", p.NumBlocks)
	fmt.Fprintf(h, "hot_blocks=%d\n", p.HotBlocks)
	fmt.Fprintf(h, "hot_jump_frac=%v\n", p.HotJumpFrac)
	fmt.Fprintf(h, "escape_frac=%v\n", p.EscapeFrac)
	fmt.Fprintf(h, "hard_branch_frac=%v\n", p.HardBranchFrac)
	fmt.Fprintf(h, "hard_taken_prob=%v\n", p.HardTakenProb)
	fmt.Fprintf(h, "easy_bias_lo=%v\n", p.EasyBiasLo)
	fmt.Fprintf(h, "easy_bias_hi=%v\n", p.EasyBiasHi)
	fmt.Fprintf(h, "easy_taken_frac=%v\n", p.EasyTakenFrac)
	fmt.Fprintf(h, "no_dep_frac=%v\n", p.NoDepFrac)
	fmt.Fprintf(h, "dep_short_frac=%v\n", p.DepShortFrac)
	fmt.Fprintf(h, "dep_short_mean=%v\n", p.DepShortMean)
	fmt.Fprintf(h, "dep_long_alpha=%v\n", p.DepLongAlpha)
	fmt.Fprintf(h, "dep_long_max=%d\n", p.DepLongMax)
	fmt.Fprintf(h, "two_src_frac=%v\n", p.TwoSrcFrac)
	fmt.Fprintf(h, "data_hot_size=%d\n", p.DataHotSize)
	fmt.Fprintf(h, "data_warm_size=%d\n", p.DataWarmSize)
	fmt.Fprintf(h, "data_cold_size=%d\n", p.DataColdSize)
	fmt.Fprintf(h, "data_hot_frac=%v\n", p.DataHotFrac)
	fmt.Fprintf(h, "data_warm_frac=%v\n", p.DataWarmFrac)
	fmt.Fprintf(h, "cold_burst_mean=%v\n", p.ColdBurstMean)
	fmt.Fprintf(h, "cold_stride=%d\n", p.ColdStride)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// CustomContentID returns the content key of the trace a registered
// profile with the given ContentHash generates at (n, seed). The
// "custom:" prefix keeps the key space disjoint from built-in profile
// names, so a registered workload can never collide with — or poison —
// a built-in's cached trace, and GenVersion invalidates stored traces
// whenever the generator changes, exactly as ContentID does.
func CustomContentID(hash string, n int, seed uint64) string {
	return fmt.Sprintf("custom:%s|n=%d|seed=%d|g%d", hash, n, seed, GenVersion)
}

// GenerateProfile produces a trace of at least n instructions from an
// explicit profile, stamping the trace with the profile's
// CustomContentID. It is the registered-workload analogue of Generate.
func GenerateProfile(prof Profile, n int, seed uint64) (*trace.Trace, error) {
	g, err := NewGenerator(prof, seed)
	if err != nil {
		return nil, err
	}
	t, err := g.Generate(n)
	if err != nil {
		return nil, err
	}
	t.ContentID = CustomContentID(prof.ContentHash(), n, seed)
	return t, nil
}
