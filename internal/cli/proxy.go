package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"fomodel/internal/reqkey"
	"fomodel/internal/router"
)

// Fomodelproxy implements cmd/fomodelproxy: the consistent-hash routing
// proxy over a set of fomodeld replicas. It binds the listen address,
// starts the replica /readyz probe loop, serves until ctx is canceled,
// then shuts down gracefully, draining in-flight requests for up to the
// -drain timeout. Structured JSON logs go to out.
func Fomodelproxy(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fomodelproxy", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8760", "listen address")
	replicas := fs.String("replicas", "", "comma-separated fomodeld base URLs (required)")
	route := fs.String("route", "hash", "routing policy: hash (consistent, cache-aware) or roundrobin (baseline)")
	vnodes := fs.Int("vnodes", 64, "ring points per replica")
	loadFactor := fs.Float64("load-factor", 1.25, "bounded-load factor (≤0 disables the bound)")
	n := fs.Int("n", 500000, "replicas' default dynamic instructions per workload (must match the fleet)")
	seed := fs.Uint64("seed", 1, "replicas' default workload generation seed (must match the fleet)")
	hedge := fs.Bool("hedge", true, "hedge slow requests to the next ring replica")
	hedgeQuantile := fs.Float64("hedge-quantile", 0.99, "upstream latency quantile that arms the hedge timer")
	hedgeMin := fs.Duration("hedge-min", time.Millisecond, "hedge delay floor")
	hedgeMax := fs.Duration("hedge-max", time.Second, "hedge delay ceiling")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "replica /readyz probe period")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "per-probe deadline")
	ejectAfter := fs.Int("eject-after", 3, "consecutive transport failures before passive ejection")
	upstreamTimeout := fs.Duration("upstream-timeout", 150*time.Second, "per-attempt upstream deadline (buffered requests)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fomodelproxy: unexpected argument %q", fs.Arg(0))
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return errors.New("fomodelproxy: -replicas requires at least one fomodeld base URL")
	}
	if *route != "hash" && *route != "roundrobin" {
		return fmt.Errorf("fomodelproxy: unknown -route %q (want hash or roundrobin)", *route)
	}

	logger := slog.New(slog.NewJSONHandler(out, nil))
	rt, err := router.New(router.Config{
		Replicas:        urls,
		Defaults:        reqkey.Defaults{N: *n, Seed: *seed},
		VNodes:          *vnodes,
		RoundRobin:      *route == "roundrobin",
		LoadFactor:      *loadFactor,
		DisableHedge:    !*hedge,
		HedgeQuantile:   *hedgeQuantile,
		HedgeMin:        *hedgeMin,
		HedgeMax:        *hedgeMax,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		EjectAfter:      *ejectAfter,
		UpstreamTimeout: *upstreamTimeout,
	}, logger)
	if err != nil {
		return err
	}
	//folint:allow(ctxflow) probes must outlive ctx: they keep health fresh while in-flight requests drain after shutdown begins
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	rt.Start(probeCtx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("fomodelproxy listening",
		"addr", ln.Addr().String(), "mode", rt.Mode(), "replicas", len(urls))

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "timeout", (*drain).String())
	//folint:allow(ctxflow) the parent ctx is already cancelled here; the drain deadline needs a fresh context
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("fomodelproxy: drain incomplete: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	stopProbes()
	rt.Wait()
	logger.Info("fomodelproxy stopped")
	return nil
}
