package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer builds a small, fast server for handler tests.
func testServer(cfg Config) *Server {
	if cfg.N == 0 {
		cfg.N = 20000
	}
	return New(cfg, nil)
}

// post runs one POST request through the full handler chain.
func post(s *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// get runs one GET request through the full handler chain.
func get(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// errorBody decodes the structured error response and fails the test if
// the body is not one.
func errorBody(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %v\nbody: %s", err, rec.Body.String())
	}
	if e.Error == "" {
		t.Fatalf("error body missing the error field: %s", rec.Body.String())
	}
	return e.Error
}

func TestPredictBadRequests(t *testing.T) {
	s := testServer(Config{})
	cases := []struct {
		name, body, wantSub string
	}{
		{"malformed JSON", `{not json`, "invalid request body"},
		{"unknown field", `{"bench":"gzip","bogus":1}`, "invalid request body"},
		{"trailing data", `{"bench":"gzip"} extra`, "trailing data"},
		{"unknown bench", `{"bench":"nope"}`, "unknown profile"},
		{"n out of range", `{"bench":"gzip","n":10}`, "outside"},
		{"bad branch mode", `{"bench":"gzip","branch_mode":"psychic"}`, "unknown branch mode"},
		{"bad fu spec", `{"bench":"gzip","machine":{"fu":"bogus=1"}}`, "unknown instruction class"},
		{"bad machine", `{"bench":"gzip","machine":{"width":-1}}`, "width"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(s, "/v1/predict", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\nbody: %s", rec.Code, rec.Body.String())
			}
			if msg := errorBody(t, rec); !strings.Contains(msg, tc.wantSub) {
				t.Errorf("error %q does not mention %q", msg, tc.wantSub)
			}
		})
	}
}

func TestSweepBadRequests(t *testing.T) {
	s := testServer(Config{})
	big := make([]string, 0, 300)
	for v := 1; v <= 300; v++ {
		big = append(big, fmt.Sprint(v))
	}
	cases := []struct {
		name, body, wantSub string
	}{
		{"malformed JSON", `[1,2]`, "invalid request body"},
		{"unknown param", `{"param":"voltage","benches":["gzip"],"values":[1]}`, "unknown sweep parameter"},
		{"unknown bench", `{"param":"width","benches":["nope"],"values":[2]}`, "unknown profile"},
		{"no values", `{"param":"width","benches":["gzip"],"values":[]}`, "at least one"},
		{"grid too large", `{"param":"width","benches":["gzip"],"values":[` + strings.Join(big, ",") + `]}`, "256-cell limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(s, "/v1/sweep", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\nbody: %s", rec.Code, rec.Body.String())
			}
			if msg := errorBody(t, rec); !strings.Contains(msg, tc.wantSub) {
				t.Errorf("error %q does not mention %q", msg, tc.wantSub)
			}
		})
	}
}

// TestPredictCache pins the response-cache behaviour: the first request
// computes (miss), the second is served from the cache (hit) with an
// identical body, and the hit/miss counters move accordingly.
func TestPredictCache(t *testing.T) {
	s := testServer(Config{})
	const body = `{"bench":"gzip","sim":true}`

	first := post(s, "/v1/predict", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status = %d\nbody: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	if hits, misses := s.cache.Stats(); hits != 0 || misses != 1 {
		t.Errorf("after first request: hits=%d misses=%d, want 0/1", hits, misses)
	}

	second := post(s, "/v1/predict", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: status = %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
	if hits, misses := s.cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("after second request: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("cached body differs from computed body")
	}

	// A different request must miss, not alias the first entry.
	third := post(s, "/v1/predict", `{"bench":"mcf"}`)
	if third.Code != http.StatusOK {
		t.Fatalf("third request: status = %d\nbody: %s", third.Code, third.Body.String())
	}
	if got := third.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("third request X-Cache = %q, want miss", got)
	}
	if third.Body.String() == first.Body.String() {
		t.Errorf("different benches returned the same body")
	}
}

// TestPredictCacheCanonicalKey pins that two requests spelling the same
// canonical request differently share one cache entry.
func TestPredictCacheCanonicalKey(t *testing.T) {
	s := testServer(Config{})
	first := post(s, "/v1/predict", `{"bench":"gzip"}`)
	// Explicitly spelling out the defaults must hit the same entry.
	second := post(s, "/v1/predict", `{"bench":"gzip","n":20000,"seed":1,"branch_mode":"midpoint"}`)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("statuses = %d, %d", first.Code, second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("canonicalized request X-Cache = %q, want hit", got)
	}
}

// TestLimiterSheds pins the admission control: with one in-flight slot
// occupied, the next request is shed with 429 and a Retry-After header,
// and the shed counter moves.
func TestLimiterSheds(t *testing.T) {
	s := testServer(Config{MaxInflight: 1})
	s.gate = make(chan struct{})

	// Occupy the only slot: this request is admitted, then parks on the
	// gate until we release it.
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- post(s, "/v1/predict", `{"bench":"gzip"}`)
	}()
	// Wait until the request holds the slot (parked on the gate).
	for s.inflight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	rec := get(s, "/v1/workloads")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("429 response missing Retry-After")
	}
	if msg := errorBody(t, rec); !strings.Contains(msg, "saturated") {
		t.Errorf("429 error %q does not mention saturation", msg)
	}
	if got := s.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	// Health and metrics bypass the limiter even while saturated.
	if rec := get(s, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("saturated /healthz: status = %d, want 200", rec.Code)
	}
	if rec := get(s, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("saturated /metrics: status = %d, want 200", rec.Code)
	}

	close(s.gate)
	if rec := <-firstDone; rec.Code != http.StatusOK {
		t.Errorf("parked request: status = %d, want 200\nbody: %s", rec.Code, rec.Body.String())
	}
	if got := s.inflight.Load(); got != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", got)
	}
}

// TestClientDisconnectCancelsSweep pins cancellation: a client that
// disconnects before its sweep starts computing causes the sweep to stop
// (zero simulator runs), and the request is recorded as 499.
func TestClientDisconnectCancelsSweep(t *testing.T) {
	s := testServer(Config{})
	s.gate = make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`{"param":"width","benches":["gzip"],"values":[2,4,6,8]}`)).WithContext(ctx)
	rec := httptest.NewRecorder()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Handler().ServeHTTP(rec, req)
	}()
	// Wait for admission, disconnect the client, then let the handler run.
	for s.inflight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(s.gate)
	wg.Wait()

	if rec.Body.Len() != 0 {
		t.Errorf("disconnected client still received a body: %s", rec.Body.String())
	}
	if got := s.requestCounter("/v1/sweep", statusCodeClientGone).Load(); got != 1 {
		t.Errorf("499 counter = %d, want 1", got)
	}
	if _, sims := s.suite.CounterSources(); sims.Load() != 0 {
		t.Errorf("canceled sweep still ran %d simulations", sims.Load())
	}
	// The canceled computation must not be cached: a live client retrying
	// the same sweep computes it fresh and succeeds.
	retry := post(s, "/v1/sweep", `{"param":"width","benches":["gzip"],"values":[2,4,6,8]}`)
	if retry.Code != http.StatusOK {
		t.Fatalf("retry after cancel: status = %d\nbody: %s", retry.Code, retry.Body.String())
	}
	if got := retry.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("retry X-Cache = %q, want miss (canceled entry must not persist)", got)
	}
}

// TestConcurrentIdenticalPredicts pins the single-flight property under
// real concurrency (run with -race): many identical requests produce one
// computation and identical bodies.
func TestConcurrentIdenticalPredicts(t *testing.T) {
	s := testServer(Config{MaxInflight: 64})
	const clients = 16
	recs := make([]*httptest.ResponseRecorder, clients)
	var wg sync.WaitGroup
	for i := range recs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(s, "/v1/predict", `{"bench":"vortex","sim":true}`)
		}(i)
	}
	wg.Wait()
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("client %d: status = %d\nbody: %s", i, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != recs[0].Body.String() {
			t.Errorf("client %d received a different body", i)
		}
	}
	if hits, misses := s.cache.Stats(); misses != 1 || hits != clients-1 {
		t.Errorf("cache hits=%d misses=%d, want %d/1", hits, misses, clients-1)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	s := testServer(Config{})
	rec := get(s, "/v1/workloads")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	var resp WorkloadsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 20000 || resp.Seed != 1 {
		t.Errorf("defaults = (%d, %d), want (20000, 1)", resp.N, resp.Seed)
	}
	if len(resp.Workloads) != 12 {
		t.Fatalf("workloads = %d, want 12", len(resp.Workloads))
	}
	for _, w := range resp.Workloads {
		if w.Alpha <= 0 || w.Beta <= 0 || w.AvgLatency < 1 {
			t.Errorf("%s: implausible stats alpha=%g beta=%g L=%g", w.Name, w.Alpha, w.Beta, w.AvgLatency)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := testServer(Config{})
	rec := get(s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var h healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}

	// Generate one computed and one cached response, then check the
	// exposition reflects both paths.
	post(s, "/v1/predict", `{"bench":"gzip","sim":true}`)
	post(s, "/v1/predict", `{"bench":"gzip","sim":true}`)
	rec = get(s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`fomodeld_requests_total{path="/v1/predict",code="200"} 2`,
		"fomodeld_response_cache_hits_total 1",
		"fomodeld_response_cache_misses_total 1",
		"fomodeld_prep_cache_passes_total 1",
		"fomodeld_requests_in_flight 0",
		"fomodeld_request_duration_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nexposition:\n%s", want, body)
		}
	}
}

// TestRetryAfterDerived pins the 429 backpressure hint: Retry-After is
// the observed mean request latency rounded up to whole seconds, with a
// floor of one second before any requests (or under fast ones).
func TestRetryAfterDerived(t *testing.T) {
	s := testServer(Config{MaxInflight: 1})
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("retryAfterSeconds with no history = %d, want 1", got)
	}
	s.latency.Observe(0.01)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("retryAfterSeconds under fast requests = %d, want floor of 1", got)
	}

	// Slow history: mean of 2.2s and 3.0s rounds up to 3.
	s2 := testServer(Config{MaxInflight: 1})
	s2.latency.Observe(2.2)
	s2.latency.Observe(3.0)
	if got := s2.retryAfterSeconds(); got != 3 {
		t.Errorf("retryAfterSeconds = %d, want ceil(2.6) = 3", got)
	}

	// And the header carries the derived value when the limiter sheds.
	s2.gate = make(chan struct{})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(s2, "/v1/predict", `{"bench":"gzip"}`) }()
	for s2.inflight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	rec := get(s2, "/v1/workloads")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want %q", got, "3")
	}
	close(s2.gate)
	<-done
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(Config{})
	rec := get(s, "/v1/predict")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict: status = %d, want 405", rec.Code)
	}
}

// TestReadyz pins the readiness surface: the daemon boots ready, a
// warm-up in flight (SetReady(false)) flips /readyz to 503 with a
// "warming" body while /healthz stays 200, and SetReady(true) restores
// 200 — the signal a routing proxy uses to keep cold replicas out of
// its ring.
func TestReadyz(t *testing.T) {
	s := testServer(Config{})
	if rec := get(s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("boot /readyz = %d, want 200\nbody: %s", rec.Code, rec.Body.String())
	}

	s.SetReady(false)
	rec := get(s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("warming /readyz = %d, want 503", rec.Code)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Status != "warming" {
		t.Errorf("warming body = %q (err %v), want status \"warming\"", rec.Body.String(), err)
	}
	if rec := get(s, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz while warming = %d, want 200 (liveness is not readiness)", rec.Code)
	}

	s.SetReady(true)
	rec = get(s, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("ready /readyz = %d, want 200", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Status != "ready" {
		t.Errorf("ready body = %q (err %v), want status \"ready\"", rec.Body.String(), err)
	}
}

// TestRequestIDPropagation pins the X-Request-ID contract: a request
// carrying the header gets it echoed in the response headers, woven into
// the structured request log, and embedded in error bodies; a request
// without the header keeps the historical body and log shapes.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	s := New(Config{N: 20000}, slog.New(slog.NewJSONHandler(&logBuf, nil)))

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(`{"bench":"nope"}`))
	req.Header.Set("X-Request-ID", "trace-me-42")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	if got := rec.Header().Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("response X-Request-ID = %q, want it echoed", got)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body: %v", err)
	}
	if e.RequestID != "trace-me-42" {
		t.Errorf("error body request_id = %q, want \"trace-me-42\"\nbody: %s", e.RequestID, rec.Body.String())
	}
	if !strings.Contains(logBuf.String(), `"request_id":"trace-me-42"`) {
		t.Errorf("request log lacks the request id:\n%s", logBuf.String())
	}

	// Headerless requests keep the historical error-body shape.
	rec = post(s, "/v1/predict", `{"bench":"nope"}`)
	if strings.Contains(rec.Body.String(), "request_id") {
		t.Errorf("headerless error body grew a request_id field: %s", rec.Body.String())
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for capturing slog output
// from concurrent handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
