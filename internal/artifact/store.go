// Package artifact implements the persistent workload-artifact store:
// a directory of checksummed, versioned files holding the expensive
// per-benchmark preparation products (serialized traces, producer links,
// classification preps, IW characteristic fits and miss statistics),
// keyed by *content* — the generation recipe and the configuration
// projection that determines the artifact — never by in-memory identity.
//
// The store is what lets a freshly started fomodeld answer cache-cold
// requests at close to cache-hot speed: artifacts survive restarts and
// are shared across processes, so the daemon re-reads a few hundred
// kilobytes instead of regenerating a trace and re-running functional
// classification passes.
//
// Every artifact file is self-describing and self-verifying:
//
//	magic    [4]byte  "FOAS"
//	version  uint32   store format version (FormatVersion)
//	keyLen   uint32   length of the full content key
//	key      []byte   "<kind>\x00<key>" — verified on read
//	payLen   uint64   payload length
//	payload  []byte
//	crc      uint32   IEEE CRC-32 of the payload
//
// All integers are little-endian. A reader rejects (and deletes) any
// file whose magic, version, embedded key, length, or checksum does not
// match — a corrupted, truncated, stale-version, or hash-colliding file
// is reported as a miss and the artifact is recomputed, never served.
// Writes go to a temporary file in the same directory and are renamed
// into place, so a crash mid-write can never leave a half-written file
// under an artifact's name.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"fomodel/internal/metrics"
)

// FormatVersion is the on-disk format version. Bumping it invalidates
// every existing artifact: readers reject files written under any other
// version, so a format change degrades to recomputation, never to
// misinterpreted bytes.
const FormatVersion = 1

var storeMagic = [4]byte{'F', 'O', 'A', 'S'}

// maxKeyBytes bounds the embedded key; content keys are short
// human-readable strings, so anything larger is corruption.
const maxKeyBytes = 1 << 16

// maxPayloadBytes bounds a single artifact payload (a 5M-instruction
// trace is ~120 MB; this leaves headroom without trusting a forged
// length field to allocate arbitrarily).
const maxPayloadBytes = 1 << 30

// Store is a content-keyed artifact directory. The zero value is not
// usable; call Open. A nil *Store is valid and disables persistence:
// Get always misses and Put discards.
type Store struct {
	dir      string
	maxBytes int64

	// mu serializes eviction scans; reads and writes of individual
	// artifacts need no lock (rename is atomic, partially evicted reads
	// degrade to misses).
	mu sync.Mutex

	hits, misses, corrupt, writes, evictions metrics.Counter
}

// Open prepares the store rooted at dir, creating it when absent.
// maxBytes bounds the store's total size: after each write, the
// least-recently-written artifacts are evicted until the total is under
// the bound again. Zero means unbounded.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory; empty on a nil store.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// fullKey is the namespaced content key embedded in (and verified
// against) every artifact file.
func fullKey(kind, key string) string { return kind + "\x00" + key }

// path maps a (kind, key) pair to its file: the kind plus a SHA-256 of
// the full key, so arbitrary key strings never meet the filesystem and
// two kinds can never collide.
func (s *Store) path(kind, key string) string {
	sum := sha256.Sum256([]byte(fullKey(kind, key)))
	return filepath.Join(s.dir, kind+"-"+hex.EncodeToString(sum[:])+".foa")
}

// Get returns the payload stored under (kind, key), or ok=false when the
// store has no valid artifact for it. Any structurally invalid file —
// truncated, checksum mismatch, wrong format version, or a key collision
// — is deleted and reported as a miss, so a damaged store heals itself
// through recomputation.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.path(kind, key))
	if err != nil {
		s.misses.Inc()
		return nil, false
	}
	payload, err := decodeFile(data, fullKey(kind, key))
	if err != nil {
		// Invalid on disk: delete so the slot is rewritten cleanly.
		s.corrupt.Inc()
		s.misses.Inc()
		//folint:allow(errdrop) best-effort delete of a corrupt artifact; the miss is already being returned
		os.Remove(s.path(kind, key))
		return nil, false
	}
	s.hits.Inc()
	// Eviction is documented as mtime-ordered, which is only true if a
	// verified hit refreshes the file's mtime; without this a hot
	// artifact written early is evicted before a cold one written later
	// (insertion-order FIFO).
	now := time.Now()
	//folint:allow(errdrop) best-effort recency bump; a failed Chtimes only weakens eviction ordering
	os.Chtimes(s.path(kind, key), now, now)
	return payload, true
}

// Put stores payload under (kind, key), atomically replacing any
// previous artifact, then evicts oldest artifacts while the store
// exceeds its size bound. Put failures are returned but are always safe
// to ignore: the store is a cache, and a failed write only costs a
// future recomputation.
func (s *Store) Put(kind, key string, payload []byte) error {
	if s == nil {
		return nil
	}
	data := encodeFile(fullKey(kind, key), payload)
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		//folint:allow(errdrop) cleanup of the temp file after a failed write; the write error is what the caller sees
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("artifact: write %s: %w", kind, werr)
	}
	if err := os.Rename(tmp.Name(), s.path(kind, key)); err != nil {
		//folint:allow(errdrop) cleanup of the temp file after a failed rename; the rename error is what the caller sees
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	s.writes.Inc()
	s.enforceLimit()
	return nil
}

// encodeFile frames key and payload in the on-disk format.
func encodeFile(key string, payload []byte) []byte {
	buf := make([]byte, 0, 4+4+4+len(key)+8+len(payload)+4)
	buf = append(buf, storeMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf
}

// decodeFile validates every field of an artifact file against the
// expected full key and returns the payload.
func decodeFile(data []byte, wantKey string) ([]byte, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("artifact: truncated header")
	}
	if [4]byte(data[:4]) != storeMagic {
		return nil, fmt.Errorf("artifact: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("artifact: format version %d, want %d", v, FormatVersion)
	}
	keyLen := binary.LittleEndian.Uint32(data[8:12])
	if keyLen > maxKeyBytes || len(data) < 12+int(keyLen)+8 {
		return nil, fmt.Errorf("artifact: truncated key")
	}
	if string(data[12:12+keyLen]) != wantKey {
		return nil, fmt.Errorf("artifact: key mismatch")
	}
	rest := data[12+keyLen:]
	payLen := binary.LittleEndian.Uint64(rest[:8])
	if payLen > maxPayloadBytes || uint64(len(rest)) != 8+payLen+4 {
		return nil, fmt.Errorf("artifact: truncated payload")
	}
	payload := rest[8 : 8+payLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[8+payLen:]) {
		return nil, fmt.Errorf("artifact: checksum mismatch")
	}
	return payload, nil
}

// enforceLimit evicts the oldest artifacts (by modification time) until
// the store fits its size bound.
func (s *Store) enforceLimit() {
	if s.maxBytes <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	type file struct {
		path string
		size int64
		mod  int64
	}
	//folint:allow(lockheld) eviction is deliberately serialized under s.mu; Get/Put never take this lock, so no request waits on the scan
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var files []file
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		files = append(files, file{
			path: filepath.Join(s.dir, e.Name()),
			size: info.Size(),
			mod:  info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for _, f := range files {
		if total <= s.maxBytes {
			return
		}
		//folint:allow(lockheld) same deliberate serialization as the ReadDir above; only a concurrent eviction would wait
		if os.Remove(f.path) == nil {
			total -= f.size
			s.evictions.Inc()
		}
	}
}

// SizeBytes reports the store's current on-disk size; zero on a nil
// store.
func (s *Store) SizeBytes() int64 {
	if s == nil {
		return 0
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// Stats reports the store's hit/miss/corrupt/write/eviction counts; all
// zero on a nil store.
func (s *Store) Stats() (hits, misses, corrupt, writes, evictions int64) {
	if s == nil {
		return 0, 0, 0, 0, 0
	}
	return s.hits.Load(), s.misses.Load(), s.corrupt.Load(),
		s.writes.Load(), s.evictions.Load()
}
