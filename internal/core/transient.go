package core

import "math"

// IWCurve is the latency-adjusted, width-limited IW characteristic: the
// average issue rate as a function of window occupancy,
//
//	I(w) = min(Width, Alpha · w^Beta / L)
//
// (§3 of the paper: the unit-latency power law divided by the average
// latency L per Little's law, saturating at the machine issue width). With
// Smooth set, the hard clip is replaced by a harmonic soft-min for the
// saturation ablation.
type IWCurve struct {
	Alpha, Beta float64
	L           float64
	Width       float64
	Smooth      bool
}

// Eval returns the issue rate at window occupancy w (also bounded by w:
// the window cannot issue more instructions than it holds).
func (c IWCurve) Eval(w float64) float64 {
	if w <= 0 {
		return 0
	}
	raw := c.Alpha * math.Pow(w, c.Beta) / c.L
	var i float64
	if c.Smooth {
		// p-norm soft-min: approaches min(raw, Width) away from the
		// knee and rounds the corner near saturation (within 16% at
		// raw = Width for p = 4).
		const p = 4
		i = math.Pow(math.Pow(raw, -p)+math.Pow(c.Width, -p), -1.0/p)
	} else {
		i = math.Min(raw, c.Width)
	}
	return math.Min(i, w)
}

// SteadyOccupancy returns the occupancy at which the curve sustains the
// given issue rate: (rate·L/Alpha)^(1/Beta), clamped to [1, maxW]. This is
// where the drain transient starts — in saturation the window sits at the
// occupancy that just feeds the issue width, and an unsaturated machine
// runs with the window full.
func (c IWCurve) SteadyOccupancy(rate, maxW float64) float64 {
	if rate <= 0 || c.Alpha <= 0 || c.Beta == 0 {
		return 1
	}
	w := math.Pow(rate*c.L/c.Alpha, 1/c.Beta)
	if w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	return w
}

// maxTransientCycles bounds the discrete integrations; transients of any
// realistic machine converge within tens of cycles.
const maxTransientCycles = 100000

// Drain integrates the window-drain transient of §4.1: starting from the
// steady-state occupancy, fetch stops and the window empties following the
// IW characteristic; the mispredicted branch (the oldest instruction) is
// modeled as issuing when one instruction remains. The returned penalty is
// the drain time minus the time the same instructions would have taken at
// the steady rate — the paper's Fig. 8 construction (2.1 cycles for α=1,
// β=0.5, width 4).
func (c IWCurve) Drain(windowSize, steadyRate float64) float64 {
	if steadyRate <= 0 {
		return 0
	}
	w := c.SteadyOccupancy(steadyRate, windowSize)
	start := w
	cycles := 0.0
	for w > 1 && cycles < maxTransientCycles {
		i := c.Eval(w)
		if i <= 0 {
			break
		}
		w -= i
		cycles++
	}
	issued := start - w
	return cycles - issued/steadyRate
}

// RampUp integrates the ramp-up transient of §4.1: the window starts empty,
// the front end dispatches Width instructions per cycle, and issue follows
// the IW characteristic while the window fills like a leaky bucket. The
// integration stops once the issue rate reaches (1−epsilon) of steady; the
// returned penalty is the accumulated issue deficit converted to cycles at
// the steady rate (2.7 cycles for α=1, β=0.5, width 4 with epsilon 0.05 —
// the paper's Fig. 8).
func (c IWCurve) RampUp(steadyRate, epsilon float64) float64 {
	if steadyRate <= 0 {
		return 0
	}
	target := (1 - epsilon) * steadyRate
	w := 0.0
	deficit := 0.0
	for cycles := 0; cycles < maxTransientCycles; cycles++ {
		w += c.Width // dispatch fills the window first
		i := c.Eval(w)
		w -= i
		deficit += steadyRate - i
		if i >= target {
			break
		}
	}
	return deficit / steadyRate
}

// TransientPoint is one cycle of a simulated issue-rate transient.
type TransientPoint struct {
	Cycle int
	// Issue is the number of instructions issued this cycle.
	Issue float64
	// Window is the occupancy at the end of the cycle.
	Window float64
	// Phase labels which regime the cycle belongs to.
	Phase TransientPhase
}

// TransientPhase labels the regimes of a miss-event transient.
type TransientPhase int

const (
	// PhaseSteady is background issue at the steady rate.
	PhaseSteady TransientPhase = iota
	// PhaseDrain is the window emptying after fetch stops.
	PhaseDrain
	// PhaseRefill is the front-end pipeline refill (zero issue).
	PhaseRefill
	// PhaseRamp is the issue ramp-up while the window refills.
	PhaseRamp
)

// String names the phase.
func (p TransientPhase) String() string {
	switch p {
	case PhaseSteady:
		return "steady"
	case PhaseDrain:
		return "drain"
	case PhaseRefill:
		return "refill"
	case PhaseRamp:
		return "ramp"
	default:
		return "unknown"
	}
}

// BranchTransient generates the per-cycle issue trace of an isolated
// branch misprediction (the paper's Fig. 8): steady-state issue for lead
// cycles, window drain after fetch stops, frontEndDepth cycles of pipeline
// refill at zero issue, and ramp-up back to within epsilon of steady.
func (c IWCurve) BranchTransient(windowSize float64, frontEndDepth, lead int, epsilon float64) []TransientPoint {
	steady := c.Eval(windowSize)
	var pts []TransientPoint
	cycle := 0
	add := func(issue, w float64, ph TransientPhase) {
		cycle++
		pts = append(pts, TransientPoint{Cycle: cycle, Issue: issue, Window: w, Phase: ph})
	}
	w := c.SteadyOccupancy(steady, windowSize)
	for k := 0; k < lead; k++ {
		add(steady, w, PhaseSteady)
	}
	// Drain: fetch has stopped; the mispredicted branch issues when one
	// instruction remains.
	for w > 1 && cycle < maxTransientCycles {
		i := c.Eval(w)
		if i <= 0 {
			break
		}
		w -= i
		add(i, w, PhaseDrain)
	}
	// Refill: correct-path instructions traverse the front end.
	for k := 0; k < frontEndDepth; k++ {
		add(0, 0, PhaseRefill)
	}
	// Ramp-up.
	w = 0
	target := (1 - epsilon) * steady
	for cycle < maxTransientCycles {
		w += c.Width
		i := c.Eval(w)
		w -= i
		add(i, w, PhaseRamp)
		if i >= target {
			break
		}
	}
	return pts
}

// ICacheTransient generates the per-cycle issue trace of an isolated
// instruction cache miss (the paper's Fig. 10): steady issue while the
// front-end buffers keep the window fed, window drain once they empty, an
// idle gap until the miss delay elapses, pipeline refill, and ramp-up. The
// buffered phase lasts frontEndDepth cycles (the depth of the front-end
// pipeline at width instructions per stage).
func (c IWCurve) ICacheTransient(windowSize float64, frontEndDepth, missDelay, lead int, epsilon float64) []TransientPoint {
	steady := c.Eval(windowSize)
	var pts []TransientPoint
	cycle := 0
	add := func(issue, w float64, ph TransientPhase) {
		cycle++
		pts = append(pts, TransientPoint{Cycle: cycle, Issue: issue, Window: w, Phase: ph})
	}
	w := c.SteadyOccupancy(steady, windowSize)
	for k := 0; k < lead; k++ {
		add(steady, w, PhaseSteady)
	}
	// Front-end buffers keep dispatching for ~ΔP cycles after the miss.
	elapsed := 0
	for k := 0; k < frontEndDepth && elapsed < missDelay; k++ {
		add(steady, w, PhaseSteady)
		elapsed++
	}
	// Window drains.
	for w > 1 && elapsed < missDelay && cycle < maxTransientCycles {
		i := c.Eval(w)
		if i <= 0 {
			break
		}
		w -= i
		add(i, w, PhaseDrain)
		elapsed++
	}
	// Idle until the line arrives, then refill the front end.
	for ; elapsed < missDelay; elapsed++ {
		add(0, w, PhaseDrain)
	}
	for k := 0; k < frontEndDepth; k++ {
		add(0, w, PhaseRefill)
	}
	// Ramp-up from whatever occupancy survived.
	target := (1 - epsilon) * steady
	for cycle < maxTransientCycles {
		w += c.Width
		i := c.Eval(w)
		w -= i
		add(i, w, PhaseRamp)
		if i >= target {
			break
		}
	}
	return pts
}

// DCacheTransient generates the per-cycle issue trace of an isolated long
// data cache miss (the paper's Fig. 12): steady issue continues while the
// reorder buffer fills behind the blocked load (rob_fill ≈ free slots ÷
// width cycles), then issue stops until the data returns ΔD cycles after
// the miss, retirement drains the ROB, and issue ramps back up. The
// occupancy parameter gives the ROB occupancy when the load misses;
// following §4.3 the load is old, so most of the ROB is free to fill.
func (c IWCurve) DCacheTransient(windowSize float64, robSize, occupancy, missDelay, lead int, epsilon float64) []TransientPoint {
	steady := c.Eval(windowSize)
	var pts []TransientPoint
	cycle := 0
	add := func(issue, w float64, ph TransientPhase) {
		cycle++
		pts = append(pts, TransientPoint{Cycle: cycle, Issue: issue, Window: w, Phase: ph})
	}
	w := c.SteadyOccupancy(steady, windowSize)
	for k := 0; k < lead; k++ {
		add(steady, w, PhaseSteady)
	}
	elapsed := 0
	// ROB fills behind the missing load at the dispatch rate while
	// independent instructions keep issuing.
	robFill := int(float64(robSize-occupancy)/c.Width + 0.5)
	for k := 0; k < robFill && elapsed < missDelay; k++ {
		add(steady, w, PhaseSteady)
		elapsed++
	}
	// Dispatch has stalled; the window drains of independent work.
	for w > 1 && elapsed < missDelay && cycle < maxTransientCycles {
		i := c.Eval(w)
		if i <= 0 {
			break
		}
		w -= i
		add(i, w, PhaseDrain)
		elapsed++
	}
	for ; elapsed < missDelay; elapsed++ {
		add(0, 0, PhaseDrain)
	}
	// Data returns; retirement frees the ROB and issue ramps up.
	target := (1 - epsilon) * steady
	w = 0
	for cycle < maxTransientCycles {
		w += c.Width
		i := c.Eval(w)
		w -= i
		add(i, w, PhaseRamp)
		if i >= target {
			break
		}
	}
	return pts
}

// PairedDCacheTransient generates the per-cycle issue trace of two
// overlapped long data misses (the paper's Fig. 13): ld1 misses, issue
// continues while the ROB fills; ld2 — independent of ld1 and within ROB
// distance y — issues before dispatch stalls, so its miss delay runs
// concurrently. When ld1's data returns, the instructions between the two
// loads retire, dispatch briefly resumes, and everything then waits for
// ld2's data, which arrives y cycles later; the y terms cancel in the
// total (equation 7) and the pair costs about one isolated penalty.
func (c IWCurve) PairedDCacheTransient(windowSize float64, robSize, occupancy, missDelay, y, lead int, epsilon float64) []TransientPoint {
	steady := c.Eval(windowSize)
	var pts []TransientPoint
	cycle := 0
	add := func(issue, w float64, ph TransientPhase) {
		cycle++
		pts = append(pts, TransientPoint{Cycle: cycle, Issue: issue, Window: w, Phase: ph})
	}
	w := c.SteadyOccupancy(steady, windowSize)
	for k := 0; k < lead; k++ {
		add(steady, w, PhaseSteady)
	}
	// ld1 misses at time 0; ld2 issues y cycles later (both counted in
	// the fill phase). The ROB fills behind ld1 while independent work
	// issues, then the window drains and issue idles until ld1's data
	// returns at missDelay.
	elapsed := 0
	robFill := int(float64(robSize-occupancy)/c.Width + 0.5)
	for k := 0; k < robFill && elapsed < missDelay; k++ {
		add(steady, w, PhaseSteady)
		elapsed++
	}
	for w > 1 && elapsed < missDelay && cycle < maxTransientCycles {
		i := c.Eval(w)
		if i <= 0 {
			break
		}
		w -= i
		add(i, w, PhaseDrain)
		elapsed++
	}
	for ; elapsed < missDelay; elapsed++ {
		add(0, 0, PhaseDrain)
	}
	// ld1's data returns: the instructions between ld1 and ld2 retire
	// and an equivalent number dispatch and issue (a brief burst), after
	// which everything waits the remaining y cycles for ld2's data.
	burst := float64(y) * c.Width / c.Width // y dispatch-cycles of work
	for k := 0; k < y && cycle < maxTransientCycles; k++ {
		issue := math.Min(c.Width, burst)
		if issue < 0 {
			issue = 0
		}
		burst -= issue
		add(issue, 0, PhaseDrain)
	}
	// ld2 retires; ramp back to steady.
	w = 0
	target := (1 - epsilon) * steady
	for cycle < maxTransientCycles {
		w += c.Width
		i := c.Eval(w)
		w -= i
		add(i, w, PhaseRamp)
		if i >= target {
			break
		}
	}
	return pts
}

// RampIssueTrace returns the per-cycle issue rates between two branch
// mispredictions that are instrBudget useful instructions apart (the
// paper's Fig. 19): frontEndDepth cycles of refill at zero issue, then
// ramp-up along the IW characteristic until the budget is consumed.
func (c IWCurve) RampIssueTrace(frontEndDepth int, instrBudget float64) []TransientPoint {
	var pts []TransientPoint
	cycle := 0
	for k := 0; k < frontEndDepth; k++ {
		cycle++
		pts = append(pts, TransientPoint{Cycle: cycle, Issue: 0, Window: 0, Phase: PhaseRefill})
	}
	w := 0.0
	remaining := instrBudget
	for remaining > 0 && cycle < maxTransientCycles {
		w += c.Width
		i := c.Eval(w)
		if i > remaining {
			i = remaining
		}
		w -= i
		remaining -= i
		cycle++
		pts = append(pts, TransientPoint{Cycle: cycle, Issue: i, Window: w, Phase: PhaseRamp})
	}
	return pts
}
