// Package optimize searches the modeled machine design space under an
// evaluation budget. The paper's point is that a first-order model is
// cheap enough to *search* with, not just evaluate; this package is that
// search: a deterministic seeded coarse grid over per-parameter bounds,
// followed by local pattern-search refinement around the incumbent (or
// the current Pareto frontier), every candidate scored through an
// evaluator callback the caller supplies. The serving daemon plugs in
// its /v1/predict compute path, so every evaluation shares the response,
// analysis, and prep caches with ordinary predict traffic.
//
// Determinism is a contract, not an accident: for a fixed spec (seed
// included) the search visits the same candidates in the same order and
// produces byte-identical results at any worker count. Candidate
// enumeration iterates the fixed axis order (never a map), the only
// randomness is an explicitly seeded PCG used to subsample an oversized
// coarse grid, and parallel evaluation fans out through
// experiments.RunOrdered, which delivers results strictly in index
// order. The package is covered by fomodelvet's detrand analyzer.
package optimize

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"fomodel/internal/experiments"
	"fomodel/internal/rng"
	"fomodel/internal/workload"
)

// Spec-level caps, keeping one optimize request's cost bounded.
const (
	// maxBudget caps candidate evaluations per search.
	maxBudget = 4096
	// maxMixSize caps the workload mix.
	maxMixSize = 8
	// maxAxisValues caps one axis's lattice cardinality.
	maxAxisValues = 256
	// maxGridSize caps the full lattice cardinality (all axes).
	maxGridSize = 1 << 20
	// maxGridLevels caps the coarse-grid levels per axis.
	maxGridLevels = 16
)

// Config is one fully specified candidate: the searchable projection of
// the machine. Every field is always explicit (no omitempty) so a
// candidate's JSON shape — and therefore every derived cache key and
// streamed row — is fixed.
type Config struct {
	Width       int `json:"width"`
	Depth       int `json:"depth"`
	Window      int `json:"window"`
	ROB         int `json:"rob"`
	Clusters    int `json:"clusters"`
	FetchBuffer int `json:"fetch_buffer"`
}

// Baseline is the paper's default machine projected onto the searchable
// axes; unbounded axes hold these values in every candidate.
func Baseline() Config {
	return Config{Width: 4, Depth: 5, Window: 48, ROB: 128, Clusters: 1, FetchBuffer: 0}
}

// axisNames lists the searchable parameters in canonical search order.
// Every enumeration in this package walks this slice — never the Bounds
// map — so candidate order is deterministic by construction.
var axisNames = []string{"width", "depth", "window", "rob", "clusters", "fetch_buffer"}

// axisFloor is the smallest legal bound minimum per axis.
var axisFloor = map[string]int{
	"width": 1, "depth": 1, "window": 1, "rob": 1, "clusters": 1, "fetch_buffer": 0,
}

// Params returns the supported bound-parameter names, sorted. Error
// messages enumerate exactly this list, so their wording is identical
// across runs.
func Params() []string {
	params := make([]string, len(axisNames))
	copy(params, axisNames)
	sort.Strings(params)
	return params
}

// axis reads one named parameter from the config.
func (c Config) axis(name string) int {
	switch name {
	case "width":
		return c.Width
	case "depth":
		return c.Depth
	case "window":
		return c.Window
	case "rob":
		return c.ROB
	case "clusters":
		return c.Clusters
	case "fetch_buffer":
		return c.FetchBuffer
	}
	panic("optimize: unknown axis " + name)
}

// setAxis writes one named parameter.
func (c *Config) setAxis(name string, v int) {
	switch name {
	case "width":
		c.Width = v
	case "depth":
		c.Depth = v
	case "window":
		c.Window = v
	case "rob":
		c.ROB = v
	case "clusters":
		c.Clusters = v
	case "fetch_buffer":
		c.FetchBuffer = v
	default:
		panic("optimize: unknown axis " + name)
	}
}

// valid reports whether the candidate is structurally evaluable: the
// detailed-simulator configuration requires ROB ≥ window (uarch.Config),
// so lattice points violating it are skipped without consuming budget.
func (c Config) valid() bool { return c.ROB >= c.Window }

// less orders configs by the canonical axis order; used to restore
// deterministic evaluation order after the seeded subsample shuffle.
func (c Config) less(o Config) bool {
	for _, name := range axisNames {
		if a, b := c.axis(name), o.axis(name); a != b {
			return a < b
		}
	}
	return false
}

// Bound is one parameter's inclusive search range: the lattice
// min, min+step, …, max. Max must be reachable from min by whole steps.
type Bound struct {
	Min int `json:"min"`
	Max int `json:"max"`
	// Step is the lattice stride (default 1).
	Step int `json:"step,omitempty"`
}

// count returns the lattice cardinality (normalized bound).
func (b Bound) count() int { return (b.Max-b.Min)/b.Step + 1 }

// value returns the i-th lattice value (normalized bound).
func (b Bound) value(i int) int { return b.Min + i*b.Step }

// indexOf returns the lattice index of v (normalized bound; v on lattice).
func (b Bound) indexOf(v int) int { return (v - b.Min) / b.Step }

// WorkloadWeight is one mix component: a benchmark and its weight in the
// mix-CPI aggregate (default 1).
type WorkloadWeight struct {
	Bench  string  `json:"bench"`
	Weight float64 `json:"weight,omitempty"`
}

// Objective names. A scalar search minimizes cpi or cpi_depth; a pareto
// search traces the trade-off frontier between two of the named
// objectives (area needs no evaluation, so cpi-vs-area is the classic
// performance/cost frontier).
const (
	// ObjectiveCPI is the weighted mix CPI.
	ObjectiveCPI = "cpi"
	// ObjectiveCPIDepth is the power proxy CPI×depth: deeper pipelines
	// clock higher and burn proportionally more power per instruction.
	ObjectiveCPIDepth = "cpi_depth"
	// ObjectiveArea is the hardware cost proxy
	// width·window + rob + width·depth.
	ObjectiveArea = "area"
	// ObjectivePareto selects the 2-D frontier mode; the pair of
	// objectives comes from Spec.Pareto.
	ObjectivePareto = "pareto"
)

// ScalarObjectives returns the scalar objective names, sorted.
func ScalarObjectives() []string { return []string{ObjectiveCPI, ObjectiveCPIDepth} }

// ParetoObjectives returns the names usable as pareto components, sorted.
func ParetoObjectives() []string { return []string{ObjectiveArea, ObjectiveCPI, ObjectiveCPIDepth} }

// objectiveValue maps one evaluated candidate onto the named objective.
func objectiveValue(name string, cfg Config, cpi float64) float64 {
	switch name {
	case ObjectiveCPI:
		return cpi
	case ObjectiveCPIDepth:
		return cpi * float64(cfg.Depth)
	case ObjectiveArea:
		return float64(cfg.Width*cfg.Window + cfg.ROB + cfg.Width*cfg.Depth)
	}
	panic("optimize: unknown objective " + name)
}

// Spec describes one design-space search. It is the /v1/optimize request
// shape; field defaults are filled by Normalize, and the normalized
// spec's JSON is the canonical cache key the daemon and the fomodelproxy
// router share.
type Spec struct {
	// Title heads the rendered report; empty derives one.
	Title string `json:"title,omitempty"`
	// Workloads is the benchmark mix candidates are scored on.
	Workloads []WorkloadWeight `json:"workloads"`
	// Bounds gives each searched parameter's range; unbounded parameters
	// stay at Baseline. See Params for the names.
	Bounds map[string]Bound `json:"bounds"`
	// Objective is cpi, cpi_depth, or pareto (default cpi).
	Objective string `json:"objective,omitempty"`
	// Pareto names the two frontier objectives when Objective is pareto
	// (default [cpi, area]).
	Pareto []string `json:"pareto,omitempty"`
	// Budget caps candidate evaluations (each costs one model run per
	// mix workload).
	Budget int `json:"budget"`
	// DeadlineMS bounds the search wall-clock server-side when positive;
	// it is enforced by the serving layer through the request context,
	// never inside the (clock-free) search itself.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Seed seeds the coarse-grid subsample (default 1). Same spec, same
	// seed ⇒ same frontier, at any worker count.
	Seed uint64 `json:"seed,omitempty"`
	// Grid is the coarse-grid levels per axis (default 3).
	Grid int `json:"grid,omitempty"`
	// N and TraceSeed override the evaluation traces' length and
	// generation seed; zero takes the server defaults.
	N         int    `json:"n,omitempty"`
	TraceSeed uint64 `json:"trace_seed,omitempty"`
	// TLB adds the default data TLB to every candidate machine.
	TLB bool `json:"tlb,omitempty"`
}

// fillSearchDefaults fills every search-side optional field in place.
// N and TraceSeed are serving-layer defaults and are left to Normalize.
func (s *Spec) fillSearchDefaults() {
	for i := range s.Workloads {
		if s.Workloads[i].Weight == 0 {
			s.Workloads[i].Weight = 1
		}
	}
	for _, name := range axisNames {
		b, ok := s.Bounds[name]
		if !ok {
			continue
		}
		if b.Step == 0 {
			b.Step = 1
			s.Bounds[name] = b
		}
	}
	if s.Objective == "" {
		s.Objective = ObjectiveCPI
	}
	if s.Objective == ObjectivePareto && len(s.Pareto) == 0 {
		s.Pareto = []string{ObjectiveCPI, ObjectiveArea}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Grid == 0 {
		s.Grid = 3
	}
	if s.Title == "" {
		s.Title = s.defaultTitle()
	}
}

// defaultTitle derives the report title from the (default-filled)
// objective and mix.
func (s Spec) defaultTitle() string {
	benches := make([]string, len(s.Workloads))
	for i, w := range s.Workloads {
		benches[i] = w.Bench
	}
	over := strings.Join(benches, ", ")
	if s.Objective == ObjectivePareto && len(s.Pareto) == 2 {
		return fmt.Sprintf("pareto %s vs %s over %s", s.Pareto[0], s.Pareto[1], over)
	}
	return fmt.Sprintf("minimize %s over %s", s.Objective, over)
}

// Normalize fills defaults — the search-side ones plus the serving
// defaults for the evaluation traces — and validates, returning an error
// fit for a 400 response. It is idempotent and is the shared
// canonicalization step: the daemon normalizes before keying its
// response cache, and the fomodelproxy router normalizes the same way
// before hashing onto the ring.
func (s *Spec) Normalize(defaultN int, defaultTraceSeed uint64) error {
	return s.NormalizeWith(defaultN, defaultTraceSeed, nil)
}

// NormalizeWith is Normalize with an extra workload universe: known,
// when non-nil, reports additional (registered) workload names the
// serving side can resolve beyond the built-in profiles.
func (s *Spec) NormalizeWith(defaultN int, defaultTraceSeed uint64, known func(string) bool) error {
	s.fillSearchDefaults()
	if s.N == 0 {
		s.N = defaultN
	}
	if s.TraceSeed == 0 {
		s.TraceSeed = defaultTraceSeed
	}
	return s.ValidateWith(known)
}

// Validate reports the first structural problem with the spec,
// accepting only built-in workload names. Every enumeration in an
// error message is sorted, so the wording never depends on map
// iteration order.
func (s Spec) Validate() error { return s.ValidateWith(nil) }

// ValidateWith is Validate with an extra workload universe: a mix
// entry passes when its bench is built-in or when known (non-nil)
// reports it resolvable — the hook servers with a workload registry
// thread through.
func (s Spec) ValidateWith(known func(string) bool) error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("optimize: spec needs at least one workload")
	}
	if len(s.Workloads) > maxMixSize {
		return fmt.Errorf("optimize: workload mix of %d exceeds the %d-workload limit", len(s.Workloads), maxMixSize)
	}
	seen := make(map[string]bool, len(s.Workloads))
	for _, w := range s.Workloads {
		if _, err := workload.ByName(w.Bench); err != nil {
			if known == nil || !known(w.Bench) {
				return err
			}
		}
		if seen[w.Bench] {
			return fmt.Errorf("optimize: workload %q listed twice in the mix", w.Bench)
		}
		seen[w.Bench] = true
		if w.Weight < 0 {
			return fmt.Errorf("optimize: workload %q has negative weight %g", w.Bench, w.Weight)
		}
	}
	if len(s.Bounds) == 0 {
		return fmt.Errorf("optimize: spec needs at least one parameter bound")
	}
	keys := make([]string, 0, len(s.Bounds))
	for k := range s.Bounds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		floor, ok := axisFloor[k]
		if !ok {
			return fmt.Errorf("optimize: unknown parameter %q (known: %s)", k, strings.Join(Params(), ", "))
		}
		b := s.Bounds[k]
		step := b.Step
		if step == 0 {
			step = 1
		}
		if step < 1 {
			return fmt.Errorf("optimize: %s step %d < 1", k, b.Step)
		}
		if b.Min < floor {
			return fmt.Errorf("optimize: %s bound min %d below the parameter minimum %d", k, b.Min, floor)
		}
		if b.Max < b.Min {
			return fmt.Errorf("optimize: %s bound max %d below min %d", k, b.Max, b.Min)
		}
		if (b.Max-b.Min)%step != 0 {
			return fmt.Errorf("optimize: %s bound max %d not reachable from min %d by step %d", k, b.Max, b.Min, step)
		}
		if n := (b.Max-b.Min)/step + 1; n > maxAxisValues {
			return fmt.Errorf("optimize: %s lattice of %d values exceeds the %d-value limit", k, n, maxAxisValues)
		}
	}
	total, valid := s.gridCounts()
	if total > maxGridSize {
		return fmt.Errorf("optimize: full lattice of %d points exceeds the %d-point limit", total, maxGridSize)
	}
	if valid == 0 {
		return fmt.Errorf("optimize: no valid configuration in bounds (every lattice point has rob < window)")
	}
	if s.Budget < 1 {
		return fmt.Errorf("optimize: budget %d < 1", s.Budget)
	}
	if s.Budget > maxBudget {
		return fmt.Errorf("optimize: budget %d exceeds the %d-evaluation limit", s.Budget, maxBudget)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("optimize: deadline_ms %d < 0", s.DeadlineMS)
	}
	if s.Grid != 0 && (s.Grid < 2 || s.Grid > maxGridLevels) {
		return fmt.Errorf("optimize: grid levels %d outside [2, %d]", s.Grid, maxGridLevels)
	}
	switch s.Objective {
	case "", ObjectiveCPI, ObjectiveCPIDepth:
		if len(s.Pareto) > 0 {
			return fmt.Errorf("optimize: pareto objectives given but objective is %q", s.Objective)
		}
	case ObjectivePareto:
		if len(s.Pareto) == 0 {
			break // Normalize fills the default pair.
		}
		if len(s.Pareto) != 2 {
			return fmt.Errorf("optimize: pareto needs exactly two objectives, got %d", len(s.Pareto))
		}
		if s.Pareto[0] == s.Pareto[1] {
			return fmt.Errorf("optimize: pareto objectives must differ, got %q twice", s.Pareto[0])
		}
		for _, name := range s.Pareto {
			if name != ObjectiveArea && name != ObjectiveCPI && name != ObjectiveCPIDepth {
				return fmt.Errorf("optimize: unknown pareto objective %q (known: %s)",
					name, strings.Join(ParetoObjectives(), ", "))
			}
		}
	default:
		return fmt.Errorf("optimize: unknown objective %q (known: %s, %s)",
			s.Objective, strings.Join(ScalarObjectives(), ", "), ObjectivePareto)
	}
	return nil
}

// normalizedBound returns the named axis's bound with the step default
// applied, or a single-point bound at the baseline when unbounded.
func (s Spec) normalizedBound(name string) Bound {
	if b, ok := s.Bounds[name]; ok {
		if b.Step == 0 {
			b.Step = 1
		}
		return b
	}
	v := Baseline().axis(name)
	return Bound{Min: v, Max: v, Step: 1}
}

// gridCounts returns the full lattice cardinality and the number of
// structurally valid points on it (rob ≥ window). The valid count is
// computed analytically per (window, rob) pair, so it stays cheap even
// at the lattice-size cap.
func (s Spec) gridCounts() (total, valid int64) {
	others := int64(1)
	for _, name := range axisNames {
		if name == "window" || name == "rob" {
			continue
		}
		others *= int64(s.normalizedBound(name).count())
		if others > maxGridSize {
			return others * 4, 1 // over the cap either way; short-circuit
		}
	}
	wb, rb := s.normalizedBound("window"), s.normalizedBound("rob")
	var pairs int64
	for i := 0; i < wb.count(); i++ {
		w := wb.value(i)
		for j := 0; j < rb.count(); j++ {
			if rb.value(j) >= w {
				pairs++
			}
		}
	}
	total = others * int64(wb.count()) * int64(rb.count())
	return total, others * pairs
}

// objectiveNames returns the search's objective column names: one for a
// scalar search, two for pareto (normalized spec).
func (s Spec) objectiveNames() []string {
	if s.Objective == ObjectivePareto {
		return s.Pareto
	}
	return []string{s.Objective}
}

// Point is one accepted candidate: an evaluation that improved the
// incumbent (scalar search) or entered the then-current frontier
// (pareto). Points stream as NDJSON rows in discovery order.
type Point struct {
	// Eval is the 1-based evaluation sequence number that produced the
	// point.
	Eval   int     `json:"eval"`
	Config Config  `json:"config"`
	CPI    float64 `json:"cpi"`
	// Objectives holds the objective values, in Spec objective order.
	Objectives []float64 `json:"objectives"`
}

// Result is one completed search: the normalized spec, the improvement
// history, and the final frontier with its cost accounting.
type Result struct {
	Spec Spec `json:"spec"`
	// Points is the improvement history in discovery order — exactly the
	// rows a streamed search emits.
	Points []Point `json:"points"`
	// Frontier is the final non-dominated set, sorted by first objective
	// (a scalar search's frontier is its single best point).
	Frontier []Point `json:"frontier"`
	// Evaluations counts evaluated candidates; never exceeds the budget.
	Evaluations int `json:"evaluations"`
	// Rounds counts refinement batches after the coarse grid.
	Rounds int `json:"rounds"`
	// GridSize is the number of valid points on the full bounds lattice —
	// what exhaustive enumeration would have evaluated.
	GridSize int `json:"grid_size"`
	// Converged reports that refinement ran dry (stride 1, no
	// improvement, no unvisited neighbors) before the budget did.
	Converged bool `json:"converged"`
}

// EvalFunc scores one candidate on one benchmark: the weighted-mix CPI
// aggregation and all objective math live in this package, so an
// evaluator only ever computes a single model CPI.
type EvalFunc func(ctx context.Context, cfg Config, bench string) (float64, error)

// Options tunes one Run call.
type Options struct {
	// Workers bounds the parallel evaluation fan-out
	// (0 = experiments.DefaultWorkers). The result is byte-identical at
	// any worker count.
	Workers int
	// Emit, when non-nil, receives each accepted Point in discovery
	// order, on the calling goroutine; an Emit error aborts the search.
	Emit func(Point) error
	// KnownWorkload, when non-nil, extends the workload universe the
	// internal re-validation accepts beyond the built-in profiles
	// (registered custom workloads). It must match whatever universe
	// the eval function can actually serve.
	KnownWorkload func(string) bool
}

// searcher is one Run invocation's state.
type searcher struct {
	spec    Spec
	eval    EvalFunc
	opts    Options
	res     *Result
	bounds  []searchAxis
	visited map[Config]bool
	// frontier is the live non-dominated set, kept sorted by first
	// objective then config order (scalar searches keep exactly one
	// incumbent).
	frontier  []Point
	weightSum float64
}

// searchAxis is one bounded axis's live search state.
type searchAxis struct {
	name   string
	b      Bound
	coarse []int // coarse-grid lattice indices, ascending
	// stride is the neighborhood radius in lattice steps; 0 for
	// single-value axes (excluded from refinement).
	stride int
}

// Run executes the search: coarse grid, then stride-halving neighborhood
// refinement around the frontier, stopping at convergence, budget
// exhaustion, or ctx cancellation (which aborts with ctx's error).
// The spec's search-side defaults are filled; N and TraceSeed pass
// through to eval as given.
func Run(ctx context.Context, spec Spec, eval EvalFunc, opts Options) (*Result, error) {
	spec.fillSearchDefaults()
	if err := spec.ValidateWith(opts.KnownWorkload); err != nil {
		return nil, err
	}
	_, valid := spec.gridCounts()
	sr := &searcher{
		spec:    spec,
		eval:    eval,
		opts:    opts,
		visited: make(map[Config]bool),
		res: &Result{
			Spec:     spec,
			Points:   []Point{},
			Frontier: []Point{},
			GridSize: int(valid),
		},
	}
	for _, w := range spec.Workloads {
		sr.weightSum += w.Weight
	}
	sr.initAxes()

	if err := sr.coarsePhase(ctx); err != nil {
		return nil, err
	}
	if err := sr.refine(ctx); err != nil {
		return nil, err
	}
	sr.res.Frontier = append(sr.res.Frontier, sr.frontier...)
	return sr.res, nil
}

// initAxes builds the per-axis coarse grids and initial strides.
func (sr *searcher) initAxes() {
	for _, name := range axisNames {
		if _, ok := sr.spec.Bounds[name]; !ok {
			continue
		}
		b := sr.spec.normalizedBound(name)
		ax := searchAxis{name: name, b: b}
		n := b.count()
		levels := sr.spec.Grid
		if n <= levels {
			for i := 0; i < n; i++ {
				ax.coarse = append(ax.coarse, i)
			}
		} else {
			last := -1
			for j := 0; j < levels; j++ {
				idx := j * (n - 1) / (levels - 1)
				if idx != last {
					ax.coarse = append(ax.coarse, idx)
					last = idx
				}
			}
		}
		// The initial refinement radius is half the widest coarse gap:
		// refinement starts where the coarse grid stopped resolving.
		maxGap := 0
		for i := 1; i < len(ax.coarse); i++ {
			if g := ax.coarse[i] - ax.coarse[i-1]; g > maxGap {
				maxGap = g
			}
		}
		if n > 1 {
			ax.stride = maxGap / 2
			if ax.stride < 1 {
				ax.stride = 1
			}
		}
		sr.bounds = append(sr.bounds, ax)
	}
}

// coarsePhase enumerates the coarse grid in canonical order, subsamples
// it with the seeded PCG when it would eat the refinement budget, and
// evaluates the survivors.
func (sr *searcher) coarsePhase(ctx context.Context) error {
	var cands []Config
	idx := make([]int, len(sr.bounds))
	for {
		c := Baseline()
		for i, ax := range sr.bounds {
			c.setAxis(ax.name, ax.b.value(ax.coarse[idx[i]]))
		}
		if !sr.visited[c] {
			sr.visited[c] = true
			if c.valid() {
				cands = append(cands, c)
			}
		}
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sr.bounds[i].coarse) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	// Reserve roughly a third of the budget for refinement; a coarse grid
	// bigger than the remainder is subsampled by the seeded PCG, then
	// restored to canonical order so evaluation order stays fixed.
	coarseCap := sr.spec.Budget - sr.spec.Budget/3
	if coarseCap < 1 {
		coarseCap = 1
	}
	if len(cands) > coarseCap {
		p := rng.New(sr.spec.Seed)
		for i := 0; i < coarseCap; i++ {
			j := i + p.Intn(len(cands)-i)
			cands[i], cands[j] = cands[j], cands[i]
		}
		cands = cands[:coarseCap]
		sort.Slice(cands, func(i, j int) bool { return cands[i].less(cands[j]) })
	}
	_, err := sr.evalBatch(ctx, cands)
	return err
}

// refine runs stride-halving neighborhood rounds around the frontier
// until the budget runs out or the search converges.
func (sr *searcher) refine(ctx context.Context) error {
	for sr.res.Evaluations < sr.spec.Budget {
		cands := sr.neighbors()
		if len(cands) == 0 {
			if !sr.halveStrides() {
				sr.res.Converged = true
				return nil
			}
			continue
		}
		if remaining := sr.spec.Budget - sr.res.Evaluations; len(cands) > remaining {
			cands = cands[:remaining]
		}
		sr.res.Rounds++
		improved, err := sr.evalBatch(ctx, cands)
		if err != nil {
			return err
		}
		if !improved && !sr.halveStrides() {
			sr.res.Converged = true
			return nil
		}
	}
	return nil
}

// neighbors proposes the unvisited valid candidates one stride away from
// each frontier point, in deterministic (frontier, axis, direction)
// order, marking everything proposed or rejected as visited.
func (sr *searcher) neighbors() []Config {
	var out []Config
	for _, pt := range sr.frontier {
		for ai := range sr.bounds {
			ax := &sr.bounds[ai]
			if ax.stride == 0 {
				continue
			}
			for _, dir := range [2]int{-1, 1} {
				i := ax.b.indexOf(pt.Config.axis(ax.name)) + dir*ax.stride
				if i < 0 || i >= ax.b.count() {
					continue
				}
				c := pt.Config
				c.setAxis(ax.name, ax.b.value(i))
				if sr.visited[c] {
					continue
				}
				sr.visited[c] = true
				if c.valid() {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// halveStrides shrinks every refinement radius; it reports false when
// all strides were already at the lattice floor (nothing left to halve).
func (sr *searcher) halveStrides() bool {
	shrunk := false
	for i := range sr.bounds {
		if sr.bounds[i].stride > 1 {
			sr.bounds[i].stride /= 2
			shrunk = true
		}
	}
	return shrunk
}

// evalBatch evaluates cands — already deduped, valid, and within budget —
// fanning (candidate × workload) jobs through experiments.RunOrdered.
// Results are folded strictly in candidate order on the calling
// goroutine, so acceptance decisions (and emitted points) are identical
// at any worker count.
func (sr *searcher) evalBatch(ctx context.Context, cands []Config) (improved bool, err error) {
	if len(cands) == 0 {
		return false, nil
	}
	nb := len(sr.spec.Workloads)
	sums := make([]float64, len(cands))
	err = experiments.RunOrdered(sr.opts.Workers, len(cands)*nb,
		func(i int) (float64, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return sr.eval(ctx, cands[i/nb], sr.spec.Workloads[i%nb].Bench)
		},
		func(i int, cpi float64) error {
			ci, bi := i/nb, i%nb
			sums[ci] += sr.spec.Workloads[bi].Weight * cpi
			if bi < nb-1 {
				return nil
			}
			sr.res.Evaluations++
			accepted, aerr := sr.accept(cands[ci], sums[ci]/sr.weightSum)
			if accepted {
				improved = true
			}
			return aerr
		})
	return improved, err
}

// accept scores one evaluated candidate against the frontier, recording
// and emitting it when it improves the incumbent (scalar) or is
// non-dominated (pareto).
func (sr *searcher) accept(cfg Config, mixCPI float64) (bool, error) {
	names := sr.spec.objectiveNames()
	objs := make([]float64, len(names))
	for i, name := range names {
		objs[i] = objectiveValue(name, cfg, mixCPI)
	}
	pt := Point{Eval: sr.res.Evaluations, Config: cfg, CPI: mixCPI, Objectives: objs}
	if sr.spec.Objective != ObjectivePareto {
		if len(sr.frontier) > 0 && objs[0] >= sr.frontier[0].Objectives[0] {
			return false, nil
		}
		sr.frontier = []Point{pt}
	} else {
		for _, q := range sr.frontier {
			if q.Objectives[0] <= objs[0] && q.Objectives[1] <= objs[1] {
				return false, nil // dominated (or duplicated); first found wins
			}
		}
		kept := sr.frontier[:0]
		for _, q := range sr.frontier {
			if objs[0] <= q.Objectives[0] && objs[1] <= q.Objectives[1] {
				continue // now dominated by the new point
			}
			kept = append(kept, q)
		}
		sr.frontier = append(kept, pt)
		sort.Slice(sr.frontier, func(i, j int) bool {
			a, b := sr.frontier[i], sr.frontier[j]
			if a.Objectives[0] != b.Objectives[0] {
				return a.Objectives[0] < b.Objectives[0]
			}
			if a.Objectives[1] != b.Objectives[1] {
				return a.Objectives[1] < b.Objectives[1]
			}
			return a.Config.less(b.Config)
		})
	}
	sr.res.Points = append(sr.res.Points, pt)
	if sr.opts.Emit != nil {
		if err := sr.opts.Emit(pt); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Render returns the human-readable report: the frontier table plus the
// search accounting, deterministic for a fixed spec.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Spec.Title)
	var bounds []string
	for _, name := range axisNames {
		b, ok := r.Spec.Bounds[name]
		if !ok {
			continue
		}
		bounds = append(bounds, fmt.Sprintf("%s %d..%d step %d", name, b.Min, b.Max, b.Step))
	}
	fmt.Fprintf(&sb, "bounds: %s; budget %d; seed %d\n\n", strings.Join(bounds, ", "), r.Spec.Budget, r.Spec.Seed)
	tw := tabwriter.NewWriter(&sb, 2, 8, 2, ' ', 0)
	fmt.Fprint(tw, "eval\twidth\tdepth\twindow\trob\tclusters\tfbuf\tcpi")
	for _, name := range r.extraObjectives() {
		fmt.Fprintf(tw, "\t%s", name)
	}
	fmt.Fprintln(tw)
	names := r.Spec.objectiveNames()
	for _, pt := range r.Frontier {
		c := pt.Config
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f",
			pt.Eval, c.Width, c.Depth, c.Window, c.ROB, c.Clusters, c.FetchBuffer, pt.CPI)
		for i, name := range names {
			if name == ObjectiveCPI {
				continue
			}
			fmt.Fprintf(tw, "\t%.4f", pt.Objectives[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	pct := 100 * float64(r.Evaluations) / float64(r.GridSize)
	fmt.Fprintf(&sb, "\n%d evaluations over a %d-point grid (%.1f%%), %d refinement rounds, converged=%v\n",
		r.Evaluations, r.GridSize, pct, r.Rounds, r.Converged)
	return sb.String()
}

// extraObjectives returns the objective columns beyond the CPI column
// every row already carries.
func (r *Result) extraObjectives() []string {
	var out []string
	for _, name := range r.Spec.objectiveNames() {
		if name != ObjectiveCPI {
			out = append(out, name)
		}
	}
	return out
}

// CSV returns the machine-readable frontier, full float precision.
func (r *Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("eval,width,depth,window,rob,clusters,fetch_buffer,cpi")
	for _, name := range r.extraObjectives() {
		sb.WriteString("," + name)
	}
	sb.WriteByte('\n')
	names := r.Spec.objectiveNames()
	for _, pt := range r.Frontier {
		c := pt.Config
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%d,%d,%s",
			pt.Eval, c.Width, c.Depth, c.Window, c.ROB, c.Clusters, c.FetchBuffer,
			strconv.FormatFloat(pt.CPI, 'g', -1, 64))
		for i, name := range names {
			if name == ObjectiveCPI {
				continue
			}
			sb.WriteString("," + strconv.FormatFloat(pt.Objectives[i], 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
