package artifact

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// EncodeGob serializes v with encoding/gob. Gob round-trips every
// exported field exactly — float64 bits included — which is what lets a
// store-served analysis produce responses byte-identical to a fresh
// computation.
func EncodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("artifact: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGob deserializes data produced by EncodeGob into v.
func DecodeGob(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("artifact: decode: %w", err)
	}
	return nil
}
