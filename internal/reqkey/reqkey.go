// Package reqkey defines the canonical request key shared by the
// fomodeld daemon and the fomodelproxy router. The daemon's response
// cache and the proxy's consistent-hash ring both key on the exact
// string this package produces, so a request routed by the proxy always
// lands on the replica whose cache the daemon itself would fill for it —
// the property the whole cache-aware serving topology depends on. The
// key derivation lives here, in one package with no serving
// dependencies, so the two sides can never drift apart.
package reqkey

import "encoding/json"

// Resolver maps a registered workload name to its current profile
// content hash. The daemon's registry implements it directly and the
// proxy implements it with a replicated name→hash mirror, so both
// sides embed the same content hash in the canonical key: a name whose
// registered content changed yields a new key (no stale results),
// while the same content under any name shares one key.
type Resolver interface {
	// WorkloadContent returns the content hash registered under name,
	// or ok=false when the name is not registered.
	WorkloadContent(name string) (hash string, ok bool)
}

// Defaults are the server-side request defaults that participate in
// canonicalization: a request that omits n or seed and a request that
// spells them out explicitly must map to one key, so both the daemon and
// the proxy normalize against the same defaults before keying. The
// values mirror fomodeld's -n and -seed flags.
type Defaults struct {
	// N is the default dynamic instruction count per workload.
	N int
	// Seed is the default workload generation seed.
	Seed uint64
	// Resolver resolves registered workload names during
	// normalization; nil means only built-in names resolve.
	Resolver Resolver
}

// StandardDefaults are the daemon's flag defaults (-n 500000 -seed 1);
// a proxy configured with matching flags shares the daemon's keyspace.
func StandardDefaults() Defaults {
	return Defaults{N: 500000, Seed: 1}
}

// WithFallback fills zero fields from StandardDefaults.
func (d Defaults) WithFallback() Defaults {
	std := StandardDefaults()
	if d.N == 0 {
		d.N = std.N
	}
	if d.Seed == 0 {
		d.Seed = std.Seed
	}
	return d
}

// Canonical derives the canonical request key for one endpoint and its
// normalized, typed request value: requests that normalize to the same
// typed value share one key regardless of their original JSON spelling.
// The encoding is the endpoint name, a NUL separator (which cannot occur
// in JSON output), and the compact JSON encoding of v — deterministic
// because encoding/json emits struct fields in declaration order.
func Canonical(endpoint string, v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return endpoint + "\x00" + string(b), nil
}

// Raw keys a request body that cannot be canonicalized — one the daemon
// will reject, or one whose typed decoding failed — by its exact bytes.
// It is deterministic (the same malformed body always maps to the same
// key) without the proxy having to replicate the daemon's validation,
// and the "raw:" prefix keeps the fallback keyspace disjoint from
// Canonical's, whose endpoint names never contain a colon.
func Raw(endpoint string, body []byte) string {
	return "raw:" + endpoint + "\x00" + string(body)
}
