package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"fomodel/internal/server"
)

// This file is the proxy's half of the named-workload surface. Unlike
// every other /v1 route, a registration is *state*, and the daemon's
// registries are per-replica — so POST and DELETE /v1/workloads/{name}
// are not routed to one replica but replicated to all of them, and the
// proxy keeps a name → content-hash mirror so registered names
// canonicalize (and therefore shard) exactly as they do on the daemons.

// workloadMirror is the proxy's view of the fleet's registrations. It
// implements reqkey.Resolver; Router.New installs it as the key
// defaults' resolver, so predict/sweep/optimize keys naming registered
// workloads carry the same content hashes on the proxy as on every
// replica. A proxy restart empties the mirror: affected names fall back
// to raw-byte routing keys until re-registered, which costs locality,
// never correctness — the daemons resolve names themselves.
type workloadMirror struct {
	mu      sync.RWMutex
	entries map[string]string // name → profile content hash
}

func newWorkloadMirror() *workloadMirror {
	return &workloadMirror{entries: make(map[string]string)}
}

// WorkloadContent implements reqkey.Resolver.
func (m *workloadMirror) WorkloadContent(name string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hash, ok := m.entries[name]
	return hash, ok
}

func (m *workloadMirror) set(name, hash string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[name] = hash
}

func (m *workloadMirror) remove(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, name)
}

func (m *workloadMirror) size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// maxWorkloadRelayBytes bounds one replica's buffered registration
// response; registration bodies echo the profile, which is tiny.
const maxWorkloadRelayBytes = 1 << 20

// fanoutResult is one replica's buffered answer to a replicated write.
type fanoutResult struct {
	status      int
	contentType string
	body        []byte
	err         error
}

// fanout ships one write to every replica concurrently — healthy or
// not: a registration missing from an ejected replica would surface as
// unknown-workload errors after re-admission — and buffers each answer.
func (rt *Router) fanout(r *http.Request, method, path string, body []byte) []fanoutResult {
	hdr := forwardHeader(r)
	out := make([]fanoutResult, len(rt.reps))
	var wg sync.WaitGroup
	for i, rep := range rt.reps {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			rep.requests.Inc()
			rep.inflight.Add(1)
			defer rep.inflight.Add(-1)
			resp, err := rep.cl.DoRaw(r.Context(), method, path, body, hdr, false)
			if err != nil {
				rt.noteFailure(rep, err)
				out[i] = fanoutResult{err: fmt.Errorf("replica %s: %w", rep.url, err)}
				return
			}
			rt.noteSuccess(rep)
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxWorkloadRelayBytes))
			resp.Body.Close() //folint:allow(errdrop) read-side close after a full read; there is nothing to act on
			if err != nil {
				out[i] = fanoutResult{err: fmt.Errorf("replica %s: %w", rep.url, err)}
				return
			}
			out[i] = fanoutResult{
				status:      resp.StatusCode,
				contentType: resp.Header.Get("Content-Type"),
				body:        b,
			}
		}(i, rep)
	}
	wg.Wait()
	return out
}

// relayBuffered writes one buffered fanout answer to the client.
func relayBuffered(w http.ResponseWriter, res fanoutResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	w.WriteHeader(res.status)
	//folint:allow(errdrop) response write: the client may already be gone, and there is no fallback channel
	w.Write(res.body)
}

// pickFanoutAnswer chooses which replica's answer speaks for the fleet:
// the lowest-index non-200 if any replica refused (the fleet is only
// registered when every replica is), else the lowest-index success.
// A transport error with no refusal anywhere is the proxy's own 502 —
// the registration is now partial, and the client must retry (POST is
// idempotent for identical content) or delete.
func pickFanoutAnswer(results []fanoutResult) (fanoutResult, error) {
	var firstOK *fanoutResult
	for i := range results {
		res := &results[i]
		if res.err != nil {
			continue
		}
		if res.status != http.StatusOK {
			return *res, nil
		}
		if firstOK == nil {
			firstOK = res
		}
	}
	if firstOK != nil {
		for _, res := range results {
			if res.err != nil {
				return fanoutResult{}, res.err
			}
		}
		return *firstOK, nil
	}
	for _, res := range results {
		if res.err != nil {
			return fanoutResult{}, res.err
		}
	}
	return fanoutResult{}, errNoReplicas
}

// workloadPath rebuilds the upstream path for one workload name.
func workloadPath(name string) string {
	return "/v1/workloads/" + url.PathEscape(name)
}

func (rt *Router) handleWorkloadRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := rt.readBody(w, r, maxBodyBytes)
	if !ok {
		return
	}
	results := rt.fanout(r, http.MethodPost, workloadPath(name), body)
	answer, err := pickFanoutAnswer(results)
	if err != nil {
		rt.writeForwardError(w, r, err)
		return
	}
	if answer.status == http.StatusOK {
		var reg server.WorkloadRegistration
		if json.Unmarshal(answer.body, &reg) == nil && reg.ContentHash != "" {
			rt.mirror.set(name, reg.ContentHash)
		}
	}
	relayBuffered(w, answer)
}

func (rt *Router) handleWorkloadDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	results := rt.fanout(r, http.MethodDelete, workloadPath(name), nil)
	// Whatever the replicas said, the proxy must stop resolving the name:
	// a surviving mirror entry after a partial delete would keep stamping
	// keys with a hash some replicas no longer serve.
	rt.mirror.remove(name)
	answer, err := pickFanoutAnswer(results)
	if err != nil {
		rt.writeForwardError(w, r, err)
		return
	}
	relayBuffered(w, answer)
}

func (rt *Router) handleWorkloadGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	key, err := server.WorkloadItemKey(name)
	if err != nil {
		key = rawKey("workload", []byte(name))
	}
	rt.proxyOne(w, r, http.MethodGet, workloadPath(name), nil, false, key)
}
