package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderedEmitsInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var got []int
		err := RunOrdered(workers, 20, func(i int) (int, error) {
			return i * i, nil
		}, func(i, v int) error {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d carries %d", workers, i, v)
			}
			got = append(got, i)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: emit order %v", workers, got)
			}
		}
		if len(got) != 20 {
			t.Fatalf("workers=%d: emitted %d of 20", workers, len(got))
		}
	}
}

func TestRunOrderedBoundsConcurrency(t *testing.T) {
	const workers = 3
	var running, peak atomic.Int32
	err := RunOrdered(workers, 24, func(i int) (struct{}, error) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		running.Add(-1)
		return struct{}{}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs with a %d-worker pool", p, workers)
	}
}

func TestRunOrderedFirstErrorByIndex(t *testing.T) {
	// Index 3 fails fast, index 7 fails slow: the returned error must be
	// index 3's regardless of which worker finishes first, and emit must
	// stop before slot 3.
	errFast := errors.New("fast")
	errSlow := errors.New("slow")
	for _, workers := range []int{1, 4} {
		var emitted []int
		err := RunOrdered(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errFast
			case 7:
				time.Sleep(5 * time.Millisecond)
				return 0, errSlow
			}
			return i, nil
		}, func(i, _ int) error {
			emitted = append(emitted, i)
			return nil
		})
		if !errors.Is(err, errFast) {
			t.Fatalf("workers=%d: got %v, want the index-3 error", workers, err)
		}
		for _, i := range emitted {
			if i >= 3 {
				t.Fatalf("workers=%d: emitted slot %d past the failure", workers, i)
			}
		}
	}
}

func TestRunOrderedEmitErrorStops(t *testing.T) {
	errStop := errors.New("stop")
	count := 0
	err := RunOrdered(4, 50, func(i int) (int, error) { return i, nil },
		func(i, _ int) error {
			count++
			if i == 5 {
				return errStop
			}
			return nil
		})
	if !errors.Is(err, errStop) {
		t.Fatalf("got %v", err)
	}
	if count != 6 {
		t.Fatalf("emit ran %d times, want 6", count)
	}
}

// TestRunOrderedRecoversPanics pins the pooled panic contract: a panic
// in a compute callback — sequential or pooled — surfaces as a
// *PanicError carrying the panic value and a stack, instead of killing
// the worker goroutine (which would deadlock the emit loop) or the
// process.
func TestRunOrderedRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var emitted []int
		err := RunOrdered(workers, 10, func(i int) (int, error) {
			if i == 3 {
				panic(fmt.Sprintf("boom at %d", i))
			}
			return i, nil
		}, func(i, _ int) error {
			emitted = append(emitted, i)
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v (%T), want *PanicError", workers, err, err)
		}
		if got := fmt.Sprint(pe.Value); got != "boom at 3" {
			t.Errorf("workers=%d: panic value = %q", workers, got)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError carries no stack", workers)
		}
		if !strings.Contains(pe.Error(), "worker panic") || !strings.Contains(pe.Error(), "boom at 3") {
			t.Errorf("workers=%d: error text %q should name the panic", workers, pe.Error())
		}
		for _, i := range emitted {
			if i >= 3 {
				t.Errorf("workers=%d: emitted slot %d past the panic", workers, i)
			}
		}
	}
}

// TestEngineDoRecoversPanics pins the same contract for the job-list
// engine: a panicking job surfaces as the *PanicError result while the
// sibling jobs still run to completion.
func TestEngineDoRecoversPanics(t *testing.T) {
	var ran atomic.Int32
	eng := NewEngine(4)
	err := eng.Do(
		Job{Name: "ok-1", Run: func() error { ran.Add(1); return nil }},
		Job{Name: "bad", Run: func() error { panic("job boom") }},
		Job{Name: "ok-2", Run: func() error { ran.Add(1); return nil }},
	)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v (%T), want *PanicError", err, err)
	}
	if got := fmt.Sprint(pe.Value); got != "job boom" {
		t.Errorf("panic value = %q", got)
	}
	if ran.Load() != 2 {
		t.Errorf("sibling jobs ran %d times, want 2", ran.Load())
	}
}

func TestRunOrderedZeroJobs(t *testing.T) {
	if err := RunOrdered(4, 0, func(int) (int, error) {
		t.Fatal("compute called with no jobs")
		return 0, nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadSingleFlight is the regression test for the duplicate-compute
// race: many goroutines released together against the same names must share
// one computation per name and see identical pointers.
func TestWorkloadSingleFlight(t *testing.T) {
	s := smallSuite()
	const goroutinesPerName = 8
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		seen  = map[string]map[*Workload]bool{}
	)
	gate := make(chan struct{})
	for _, name := range s.Names {
		seen[name] = map[*Workload]bool{}
		for g := 0; g < goroutinesPerName; g++ {
			start.Add(1)
			done.Add(1)
			go func(name string) {
				defer done.Done()
				start.Done()
				<-gate // all goroutines hit the cache at once
				w, err := s.Workload(name)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				mu.Lock()
				seen[name][w] = true
				mu.Unlock()
			}(name)
		}
	}
	start.Wait()
	close(gate)
	done.Wait()
	for name, ptrs := range seen {
		if len(ptrs) != 1 {
			t.Errorf("%s: %d distinct workload pointers, want 1", name, len(ptrs))
		}
	}
	if computes, _ := s.Counters(); computes != int64(len(s.Names)) {
		t.Errorf("%d workload computations for %d names", computes, len(s.Names))
	}
}

func TestWorkloadCachesErrors(t *testing.T) {
	s := smallSuite()
	_, err1 := s.Workload("nope")
	_, err2 := s.Workload("nope")
	if err1 == nil || err2 == nil {
		t.Fatal("unknown workload accepted")
	}
	if computes, _ := s.Counters(); computes != 1 {
		t.Fatalf("failed computation ran %d times, want 1 (errors are cached)", computes)
	}
}

func TestEachWorkloadWrapsBothErrorPaths(t *testing.T) {
	// Workload-computation errors carry the benchmark name…
	s := smallSuite()
	s.Names = []string{"gzip", "nope"}
	err := s.EachWorkload(func(*Workload) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "experiments: nope:") {
		t.Fatalf("compute error not wrapped with the name: %v", err)
	}
	// …and so do errors returned by fn itself.
	s = smallSuite()
	errFn := errors.New("fn failed")
	err = s.EachWorkload(func(w *Workload) error {
		if w.Name == "mcf" {
			return errFn
		}
		return nil
	})
	if !errors.Is(err, errFn) || !strings.Contains(err.Error(), "experiments: mcf:") {
		t.Fatalf("fn error not wrapped with the name: %v", err)
	}
}

func TestMapWorkloadsKeepsReportOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		s := smallSuite()
		s.Workers = workers
		names, err := MapWorkloads(s, func(w *Workload) (string, error) {
			return w.Name, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(names) != fmt.Sprint(s.Names) {
			t.Fatalf("workers=%d: order %v, want %v", workers, names, s.Names)
		}
	}
}

// TestParallelMatchesSequential is the engine's determinism contract:
// rendering an experiment with one worker and with many must produce
// byte-identical output on fresh suites.
func TestParallelMatchesSequential(t *testing.T) {
	render := func(workers int) (string, string) {
		s := smallSuite()
		s.Workers = workers
		f15, err := Figure15(s)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := Table1(s)
		if err != nil {
			t.Fatal(err)
		}
		return f15.Render(), t1.Render()
	}
	seqF15, seqT1 := render(1)
	parF15, parT1 := render(8)
	if seqF15 != parF15 {
		t.Errorf("Figure15 differs between 1 and 8 workers:\n--- sequential ---\n%s--- parallel ---\n%s", seqF15, parF15)
	}
	if seqT1 != parT1 {
		t.Errorf("Table1 differs between 1 and 8 workers:\n--- sequential ---\n%s--- parallel ---\n%s", seqT1, parT1)
	}
}

func TestEngineDoEarliestErrorWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	eng := NewEngine(4)
	err := eng.Do(
		Job{Name: "ok", Run: func() error { return nil }},
		Job{Name: "slow-fail", Run: func() error { time.Sleep(5 * time.Millisecond); return errA }},
		Job{Name: "fast-fail", Run: func() error { return errB }},
	)
	// errA comes first in argument order even though errB fails first in
	// wall time.
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want the earliest job's error", err)
	}
}

func TestEngineDoRunsEverything(t *testing.T) {
	var ran atomic.Int32
	eng := NewEngine(2)
	jobs := make([]Job, 9)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("job%d", i), Run: func() error {
			ran.Add(1)
			return nil
		}}
	}
	if err := eng.Do(jobs...); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 9 {
		t.Fatalf("ran %d of 9 jobs", ran.Load())
	}
}

func TestTimingsNilSafe(t *testing.T) {
	var tm *Timings
	tm.Record("workload", "gzip", time.Second) // must not panic
	if tm.Samples() != nil {
		t.Fatal("nil Timings produced samples")
	}
	if tm.Render() != "" {
		t.Fatal("nil Timings rendered output")
	}
}

func TestTimingsSortAndRender(t *testing.T) {
	tm := &Timings{}
	tm.Record("workload", "gzip", 2*time.Second)
	tm.Record("experiment", "fig15", 3*time.Second)
	tm.Record("workload", "mcf", 5*time.Second)
	samples := tm.Samples()
	want := []string{"fig15", "mcf", "gzip"} // phase asc, elapsed desc
	for i, s := range samples {
		if s.Name != want[i] {
			t.Fatalf("sample order %v", samples)
		}
	}
	out := tm.Render()
	for _, needle := range []string{"gzip", "mcf", "fig15", "totals:"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("render missing %q:\n%s", needle, out)
		}
	}
}

func TestSuiteWarmPrefetches(t *testing.T) {
	s := smallSuite()
	s.Workers = 4
	s.Warm()
	if computes, _ := s.Counters(); computes != int64(len(s.Names)) {
		t.Fatalf("Warm computed %d workloads, want %d", computes, len(s.Names))
	}
	s.Warm() // second warm is a no-op against a full cache
	if computes, _ := s.Counters(); computes != int64(len(s.Names)) {
		t.Fatalf("second Warm recomputed: %d", computes)
	}
}
