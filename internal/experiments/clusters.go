package experiments

import (
	"fmt"

	"fomodel/internal/uarch"
)

// ClusterPoint is one (cluster count → CPI) sample of the §7 extension #3
// study on one benchmark.
type ClusterPoint struct {
	Bench    string
	Clusters int
	SimCPI   float64
	ModelCPI float64
	Err      float64
}

// ClusterResult sweeps cluster counts across representative benchmarks:
// partitioning costs cross-cluster bypass latency on most dependence
// edges, which the model folds into L.
type ClusterResult struct {
	Points        []ClusterPoint
	BypassLatency int
}

// ExtensionClusters validates the partitioned-window model against the
// simulator for 1, 2, and 4 clusters on three contrasting benchmarks.
func ExtensionClusters(s *Suite) (*ClusterResult, error) {
	const bypass = 1
	res := &ClusterResult{BypassLatency: bypass}
	jobs := sweepGrid([]string{"gzip", "vortex", "vpr"}, []int{1, 2, 4})
	err := RunOrdered(s.workers(), len(jobs), func(i int) (ClusterPoint, error) {
		var zero ClusterPoint
		w, err := s.Workload(jobs[i].bench)
		if err != nil {
			return zero, err
		}
		k := jobs[i].value
		sim, err := s.Simulate(w, func(c *uarch.Config) {
			c.Clusters = k
			c.BypassLatency = bypass
		})
		if err != nil {
			return zero, err
		}
		m := s.Machine
		m.Clusters = k
		m.BypassLatency = bypass
		est, err := m.Estimate(w.Inputs, modelOptions())
		if err != nil {
			return zero, err
		}
		return ClusterPoint{
			Bench:    w.Name,
			Clusters: k,
			SimCPI:   sim.CPI(),
			ModelCPI: est.CPI,
			Err:      relErr(est.CPI, sim.CPI()),
		}, nil
	}, func(_ int, pt ClusterPoint) error {
		res.Points = append(res.Points, pt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// tab builds the result table.
func (r *ClusterResult) tab() *table {
	t := &table{
		title:  fmt.Sprintf("Extension: partitioned issue windows (bypass %d cycle)", r.BypassLatency),
		header: []string{"bench", "clusters", "model CPI", "sim CPI", "err"},
	}
	for _, p := range r.Points {
		t.addRow(p.Bench, fmt.Sprintf("%d", p.Clusters), f3(p.ModelCPI), f3(p.SimCPI), pct(p.Err))
	}
	t.addNote("partitioning trades window unification for bypass latency; the model folds the")
	t.addNote("expected (K-1)/K cross-cluster penalty into the average latency L")
	return t
}

// Render prints the table as aligned text.
func (r *ClusterResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *ClusterResult) CSV() string { return r.tab().CSV() }
