// Command fosim runs the detailed cycle-level superscalar simulator on a
// synthetic workload (or a binary trace file) and prints timing and
// miss-event statistics. It exposes the paper's machine knobs and the
// ideal/real toggles used throughout the evaluation.
//
// Usage:
//
//	fosim [-n instructions] [-seed seed] [-width 4] [-depth 5]
//	      [-window 48] [-rob 128]
//	      [-ideal-icache] [-ideal-dcache] [-ideal-predictor]
//	      [-profile file.json] [-dump file | -load file] [workload ...]
//
// With -dump the generated trace is written to the file (one workload
// only) instead of simulated; with -load a previously dumped trace is
// simulated instead of generating one.
package main

import (
	"fmt"
	"os"

	"fomodel/internal/cli"
)

func main() {
	if err := cli.Fosim(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fosim: %v\n", err)
		os.Exit(1)
	}
}
