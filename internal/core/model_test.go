package core

import (
	"math"
	"testing"
	"testing/quick"
)

func squareLawInputs() Inputs {
	return Inputs{
		Name:                "square",
		Alpha:               1,
		Beta:                0.5,
		AvgLatency:          1,
		MispredictsPerInstr: 0.01,
		ICacheShortPerInstr: 0.001,
		ICacheLongPerInstr:  0,
		DCacheLongPerInstr:  0.002,
		OverlapFactor:       0.8,
	}
}

func TestMachineValidate(t *testing.T) {
	if err := DefaultMachine().Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
	cases := []func(*Machine){
		func(m *Machine) { m.Width = 0 },
		func(m *Machine) { m.FrontEndDepth = 0 },
		func(m *Machine) { m.WindowSize = 0 },
		func(m *Machine) { m.ROBSize = 0 },
		func(m *Machine) { m.LongMissLatency = -1 },
	}
	for i, mutate := range cases {
		m := DefaultMachine()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid machine accepted", i)
		}
	}
}

func TestInputsValidate(t *testing.T) {
	if err := squareLawInputs().Validate(); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
	cases := []func(*Inputs){
		func(in *Inputs) { in.Alpha = 0 },
		func(in *Inputs) { in.Beta = 0 },
		func(in *Inputs) { in.Beta = 2 },
		func(in *Inputs) { in.AvgLatency = 0.5 },
		func(in *Inputs) { in.MispredictsPerInstr = -1 },
		func(in *Inputs) { in.ICacheShortPerInstr = -1 },
		func(in *Inputs) { in.DCacheLongPerInstr = -1 },
		func(in *Inputs) { in.OverlapFactor = 1.5 },
		func(in *Inputs) { in.MeasuredSteadyIPC = -1 },
	}
	for i, mutate := range cases {
		in := squareLawInputs()
		mutate(&in)
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: invalid inputs accepted", i)
		}
	}
}

func TestSteadyStateSaturates(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	// sqrt(48) ≈ 6.9 > 4 → clipped at the width.
	if got := m.SteadyStateIPC(in, Options{}); got != 4 {
		t.Fatalf("steady IPC %v, want 4 (saturated)", got)
	}
	// A tiny window stays on the power law: sqrt(4) = 2.
	m.WindowSize = 4
	if got := m.SteadyStateIPC(in, Options{}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("steady IPC %v, want 2", got)
	}
}

func TestSteadyStateLittleLaw(t *testing.T) {
	m := DefaultMachine()
	m.WindowSize = 16
	in := squareLawInputs()
	in.AvgLatency = 2
	// sqrt(16)/2 = 2.
	if got := m.SteadyStateIPC(in, Options{}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("steady IPC %v, want 2", got)
	}
}

func TestMeasuredSteadyOverridesFit(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	in.MeasuredSteadyIPC = 1.7
	if got := m.SteadyStateIPC(in, Options{}); got != 1.7 {
		t.Fatalf("steady IPC %v, want measured 1.7", got)
	}
	in.MeasuredSteadyIPC = 9 // still clipped at the width
	if got := m.SteadyStateIPC(in, Options{}); got != 4 {
		t.Fatalf("steady IPC %v, want clipped 4", got)
	}
}

func TestFig8Numbers(t *testing.T) {
	// The paper's Fig. 8: drain 2.1, ramp-up 2.7, total 9.7 at ΔP=5.
	c := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	drain := c.Drain(48, 4)
	ramp := c.RampUp(4, 0.05)
	if math.Abs(drain-2.1) > 0.2 {
		t.Fatalf("drain %v, want ≈2.1", drain)
	}
	if math.Abs(ramp-2.7) > 0.2 {
		t.Fatalf("ramp-up %v, want ≈2.7", ramp)
	}
	if total := drain + 5 + ramp; math.Abs(total-9.7) > 0.4 {
		t.Fatalf("total %v, want ≈9.7", total)
	}
}

func TestEstimateComposition(t *testing.T) {
	m := DefaultMachine()
	est, err := m.Estimate(squareLawInputs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := est.SteadyCPI + est.BranchCPI + est.ICacheShortCPI + est.ICacheLongCPI + est.DCacheCPI
	if math.Abs(sum-est.CPI) > 1e-12 {
		t.Fatalf("CPI %v is not the sum of components %v", est.CPI, sum)
	}
	if math.Abs(est.IPC()*est.CPI-1) > 1e-12 {
		t.Fatal("IPC and CPI not reciprocal")
	}
	if est.SteadyCPI != 0.25 {
		t.Fatalf("steady CPI %v, want 0.25", est.SteadyCPI)
	}
}

func TestEstimateValidatesInputs(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	in.Alpha = -1
	if _, err := m.Estimate(in, Options{}); err == nil {
		t.Fatal("invalid inputs accepted")
	}
	m.Width = 0
	if _, err := m.Estimate(squareLawInputs(), Options{}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestBranchPenaltyModes(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	iso, err := m.Estimate(in, Options{BranchMode: BranchIsolated})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := m.Estimate(in, Options{BranchMode: BranchMidpoint})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := m.Estimate(in, Options{BranchMode: BranchBurst, BurstLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(burst.BranchPenalty < mid.BranchPenalty && mid.BranchPenalty < iso.BranchPenalty) {
		t.Fatalf("penalty ordering wrong: burst %v, mid %v, iso %v",
			burst.BranchPenalty, mid.BranchPenalty, iso.BranchPenalty)
	}
	// Isolated = drain + ΔP + ramp; midpoint = (isolated + ΔP)/2.
	wantMid := (iso.BranchPenalty + float64(m.FrontEndDepth)) / 2
	if math.Abs(mid.BranchPenalty-wantMid) > 1e-9 {
		t.Fatalf("midpoint %v, want %v", mid.BranchPenalty, wantMid)
	}
	// Burst n → ΔP + (drain+ramp)/n.
	wantBurst := float64(m.FrontEndDepth) + (iso.Drain+iso.RampUp)/4
	if math.Abs(burst.BranchPenalty-wantBurst) > 1e-9 {
		t.Fatalf("burst %v, want %v", burst.BranchPenalty, wantBurst)
	}
}

func TestICachePenaltyNearMissDelay(t *testing.T) {
	m := DefaultMachine()
	est, err := m.Estimate(squareLawInputs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Equation (4): drain and ramp-up offset → penalty ≈ ΔI.
	if math.Abs(est.ICacheShortPenalty-float64(m.ShortMissLatency)) > 1.5 {
		t.Fatalf("I-cache penalty %v, want ≈%d", est.ICacheShortPenalty, m.ShortMissLatency)
	}
	if math.Abs(est.ICacheLongPenalty-float64(m.LongMissLatency)) > 1.5 {
		t.Fatalf("L2 I-cache penalty %v, want ≈%d", est.ICacheLongPenalty, m.LongMissLatency)
	}
}

func TestICachePenaltyIndependentOfDepth(t *testing.T) {
	shallow := DefaultMachine()
	deep := DefaultMachine()
	deep.FrontEndDepth = 20
	a, err := shallow.Estimate(squareLawInputs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := deep.Estimate(squareLawInputs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.ICacheShortPenalty != b.ICacheShortPenalty {
		t.Fatalf("I-cache penalty depends on depth: %v vs %v", a.ICacheShortPenalty, b.ICacheShortPenalty)
	}
	// While the branch penalty must grow with depth.
	if b.BranchPenalty <= a.BranchPenalty {
		t.Fatalf("branch penalty did not grow with depth: %v vs %v", a.BranchPenalty, b.BranchPenalty)
	}
}

func TestDCachePenaltyScalesWithOverlap(t *testing.T) {
	m := DefaultMachine()
	in := squareLawInputs()
	in.OverlapFactor = 1
	iso, err := m.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if iso.DCachePenalty != float64(m.LongMissLatency) {
		t.Fatalf("isolated penalty %v, want ΔD", iso.DCachePenalty)
	}
	in.OverlapFactor = 0.5
	half, err := m.Estimate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if half.DCachePenalty != float64(m.LongMissLatency)/2 {
		t.Fatalf("half-overlap penalty %v", half.DCachePenalty)
	}
}

func TestCurveEval(t *testing.T) {
	c := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	if got := c.Eval(16); got != 4 {
		t.Fatalf("Eval(16) = %v, want 4 (saturated)", got)
	}
	if got := c.Eval(4); got != 2 {
		t.Fatalf("Eval(4) = %v, want 2", got)
	}
	if got := c.Eval(0.25); got != 0.25 {
		t.Fatalf("Eval(0.25) = %v, want w-bounded 0.25", got)
	}
	if got := c.Eval(0); got != 0 {
		t.Fatalf("Eval(0) = %v", got)
	}
}

func TestCurveSmoothSaturation(t *testing.T) {
	hard := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	soft := hard
	soft.Smooth = true
	// Far below saturation the two agree closely.
	if math.Abs(hard.Eval(2)-soft.Eval(2)) > 0.15 {
		t.Fatalf("smooth diverges below saturation: %v vs %v", hard.Eval(2), soft.Eval(2))
	}
	// At the knee the soft-min is below the hard clip.
	if soft.Eval(16) >= hard.Eval(16) {
		t.Fatalf("soft-min %v not below hard clip %v at the knee", soft.Eval(16), hard.Eval(16))
	}
}

func TestSteadyOccupancy(t *testing.T) {
	c := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	if got := c.SteadyOccupancy(4, 48); math.Abs(got-16) > 1e-9 {
		t.Fatalf("occupancy %v, want 16", got)
	}
	if got := c.SteadyOccupancy(10, 48); got != 48 {
		t.Fatalf("occupancy %v, want clamped 48", got)
	}
	if got := c.SteadyOccupancy(0, 48); got != 1 {
		t.Fatalf("occupancy %v, want 1", got)
	}
}

func TestBranchTransientPhases(t *testing.T) {
	c := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	pts := c.BranchTransient(48, 5, 3, 0.05)
	var phases []TransientPhase
	for _, p := range pts {
		if len(phases) == 0 || phases[len(phases)-1] != p.Phase {
			phases = append(phases, p.Phase)
		}
	}
	want := []TransientPhase{PhaseSteady, PhaseDrain, PhaseRefill, PhaseRamp}
	if len(phases) != len(want) {
		t.Fatalf("phases %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases %v, want %v", phases, want)
		}
	}
	refill := 0
	for _, p := range pts {
		if p.Phase == PhaseRefill {
			refill++
			if p.Issue != 0 {
				t.Fatal("refill cycle with non-zero issue")
			}
		}
	}
	if refill != 5 {
		t.Fatalf("refill %d cycles, want ΔP=5", refill)
	}
}

func TestICacheTransientShape(t *testing.T) {
	c := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	pts := c.ICacheTransient(48, 5, 32, 2, 0.05)
	// The front-end buffer keeps issue at steady for ΔP cycles after the
	// miss (lead 2 + 5 buffered = first 7 cycles at steady).
	for i := 0; i < 7; i++ {
		if pts[i].Issue != 4 {
			t.Fatalf("cycle %d issue %v, want buffered steady 4", i+1, pts[i].Issue)
		}
	}
	// Eventually issue hits zero (idle on miss) and recovers.
	sawZero, recovered := false, false
	for _, p := range pts {
		if p.Issue == 0 {
			sawZero = true
		}
		if sawZero && p.Issue > 3.5 {
			recovered = true
		}
	}
	if !sawZero || !recovered {
		t.Fatalf("transient shape wrong: zero=%v recovered=%v", sawZero, recovered)
	}
}

func TestDCacheTransientShape(t *testing.T) {
	c := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	pts := c.DCacheTransient(48, 128, 24, 200, 2, 0.05)
	// Issue continues at steady while the ROB fills: (128−24)/4 = 26
	// cycles after the 2 lead cycles.
	for i := 0; i < 2+26; i++ {
		if pts[i].Issue != 4 {
			t.Fatalf("cycle %d issue %v, want steady during rob-fill", i+1, pts[i].Issue)
		}
	}
	// A long idle stretch follows, then ramp-up.
	zeros := 0
	for _, p := range pts {
		if p.Issue == 0 {
			zeros++
		}
	}
	if zeros < 100 {
		t.Fatalf("idle stretch %d cycles, want most of ΔD", zeros)
	}
	if last := pts[len(pts)-1]; last.Issue < 3.5 {
		t.Fatalf("ramp did not recover: %v", last.Issue)
	}
}

func TestRampIssueTraceBudget(t *testing.T) {
	c := IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	pts := c.RampIssueTrace(5, 100)
	var issued float64
	for _, p := range pts {
		issued += p.Issue
	}
	if math.Abs(issued-100) > 1e-9 {
		t.Fatalf("issued %v, want the 100-instruction budget", issued)
	}
	for i := 0; i < 5; i++ {
		if pts[i].Issue != 0 {
			t.Fatal("refill cycles must not issue")
		}
	}
}

func TestTransientPhaseStrings(t *testing.T) {
	for p, want := range map[TransientPhase]string{
		PhaseSteady: "steady", PhaseDrain: "drain", PhaseRefill: "refill",
		PhaseRamp: "ramp", TransientPhase(9): "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestPropertyCPINonNegativeAndMonotoneInMissRates(t *testing.T) {
	m := DefaultMachine()
	f := func(misp, dmiss uint8) bool {
		in := squareLawInputs()
		in.MispredictsPerInstr = float64(misp) / 1000
		in.DCacheLongPerInstr = float64(dmiss) / 1000
		a, err := m.Estimate(in, Options{})
		if err != nil {
			return false
		}
		in.MispredictsPerInstr += 0.001
		b, err := m.Estimate(in, Options{})
		if err != nil {
			return false
		}
		return a.CPI > 0 && b.CPI > a.CPI
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDrainRampNonNegative(t *testing.T) {
	f := func(a8, b8, l8, w8 uint8) bool {
		alpha := 0.5 + float64(a8%20)/10 // 0.5..2.4
		beta := 0.2 + float64(b8%12)/20  // 0.2..0.75
		l := 1 + float64(l8%30)/10       // 1..3.9
		width := 1 + int(w8%8)           // 1..8
		c := IWCurve{Alpha: alpha, Beta: beta, L: l, Width: float64(width)}
		steady := c.Eval(48)
		return c.Drain(48, steady) >= -1e-9 && c.RampUp(steady, 0.05) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
