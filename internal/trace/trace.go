// Package trace defines the dynamic instruction trace representation shared
// by the workload generators, the functional analyzers, the idealized IW
// simulations, and the detailed cycle-level simulator.
//
// A trace is the sequence of *committed* (useful) dynamic instructions of a
// program run. Wrong-path instructions are not recorded: in the paper's
// machine, oldest-first issue means mis-speculated instructions never
// inhibit useful ones, so miss-events act purely as throttles on the flow of
// useful instructions (Fig. 3 of the paper).
package trace

import (
	"fmt"

	"fomodel/internal/isa"
)

// Instruction is one dynamic instruction in a trace.
//
// Register dependences are expressed with architectural register numbers;
// Src1/Src2 are isa.RegNone when absent. PC and Addr are byte addresses used
// by the instruction and data caches; Taken records the branch outcome used
// by predictor simulation.
type Instruction struct {
	// PC is the instruction's byte address (used by the I-cache and the
	// branch predictor index).
	PC uint64
	// Addr is the effective memory address for loads and stores.
	Addr uint64
	// Class is the operation class.
	Class isa.Class
	// Dest is the destination architectural register, or isa.RegNone.
	Dest int16
	// Src1 and Src2 are source registers, or isa.RegNone.
	Src1 int16
	Src2 int16
	// Taken is the branch outcome (branches only).
	Taken bool
}

// HasDest reports whether the instruction writes a register.
func (in *Instruction) HasDest() bool { return in.Dest >= 0 }

// IsMem reports whether the instruction accesses data memory.
func (in *Instruction) IsMem() bool {
	return in.Class == isa.Load || in.Class == isa.Store
}

// Trace is an in-memory dynamic instruction trace.
type Trace struct {
	// Name identifies the workload that produced the trace (e.g. "gzip").
	Name string
	// ContentID, when non-empty, identifies the trace's *content*: the
	// deterministic generation recipe (workload name, instruction count,
	// seed, generator version) that fully determines every instruction.
	// Two traces with equal ContentIDs are bit-identical even across
	// processes and restarts, so caches and the artifact store may key
	// derived products (producer links, classification preps, IW fits)
	// by it instead of by pointer identity. Traces of unknown provenance
	// (hand-built, or read from an external file) leave it empty and are
	// keyed by identity instead.
	ContentID string
	// Instrs is the committed dynamic instruction sequence.
	Instrs []Instruction
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Instrs) }

// Validate checks structural invariants: classes are defined, register
// numbers are within the architectural namespace, memory instructions carry
// addresses, and only branches are marked taken.
//
// The loop is a branch-free-as-possible fast path (Validate runs over
// every instruction of every decoded trace); the error construction
// lives in validateInstr so the per-instruction check stays inlinable.
func (t *Trace) Validate() error {
	for i := range t.Instrs {
		in := &t.Instrs[i]
		if !in.Class.Valid() || !regOK(in.Dest) || !regOK(in.Src1) || !regOK(in.Src2) ||
			(in.Taken && in.Class != isa.Branch) {
			return t.validateInstr(i)
		}
	}
	return nil
}

// validateInstr reports which invariant instruction i violates.
func (t *Trace) validateInstr(i int) error {
	in := &t.Instrs[i]
	if !in.Class.Valid() {
		return fmt.Errorf("trace %q: instr %d has invalid class %d", t.Name, i, in.Class)
	}
	if err := checkReg(in.Dest); err != nil {
		return fmt.Errorf("trace %q: instr %d dest: %v", t.Name, i, err)
	}
	if err := checkReg(in.Src1); err != nil {
		return fmt.Errorf("trace %q: instr %d src1: %v", t.Name, i, err)
	}
	if err := checkReg(in.Src2); err != nil {
		return fmt.Errorf("trace %q: instr %d src2: %v", t.Name, i, err)
	}
	return fmt.Errorf("trace %q: instr %d is taken but not a branch", t.Name, i)
}

func regOK(r int16) bool {
	return r == isa.RegNone || (r >= 0 && int(r) < isa.NumArchRegs)
}

func checkReg(r int16) error {
	if r == isa.RegNone {
		return nil
	}
	if r < 0 || int(r) >= isa.NumArchRegs {
		return fmt.Errorf("register %d out of range", r)
	}
	return nil
}

// Mix summarizes the instruction class composition of the trace as
// fractions that sum to 1 (for a non-empty trace).
func (t *Trace) Mix() [isa.NumClasses]float64 {
	var counts [isa.NumClasses]int
	for i := range t.Instrs {
		counts[t.Instrs[i].Class]++
	}
	var mix [isa.NumClasses]float64
	if len(t.Instrs) == 0 {
		return mix
	}
	n := float64(len(t.Instrs))
	for c := range counts {
		mix[c] = float64(counts[c]) / n
	}
	return mix
}

// AverageLatency returns the mean execution latency of the trace under the
// given latency table. This is the parameter L of the paper's Little's-law
// adjustment (Table 1, last column) when load latency reflects the average
// observed load time; callers that want short-miss effects folded in (as the
// paper does) should use stats.EffectiveAverageLatency instead.
func (t *Trace) AverageLatency(lat isa.LatencyTable) float64 {
	if len(t.Instrs) == 0 {
		return 0
	}
	var sum int64
	for i := range t.Instrs {
		sum += int64(lat.Latency(t.Instrs[i].Class))
	}
	return float64(sum) / float64(len(t.Instrs))
}
