#!/usr/bin/env bash
# optimize_smoke.sh — CI smoke test for the /v1/optimize surface.
#
# Boots a fomodeld daemon and asserts the optimize contract end to end
# over real sockets: a small-budget search answers with a non-empty
# frontier while evaluating only a fraction of the grid, the NDJSON
# stream carries point rows plus a trailer, the optimize metrics move,
# and `fomodel -optimize -json` run locally is byte-equal to the same
# spec served by the daemon (fetched both via -remote and via curl).
#
# Uses a small -n so the whole run stays in CI-seconds territory; byte
# equivalence does not depend on trace length.
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-20000}
bin=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

echo "== build" >&2
go build -o "$bin/fomodeld" ./cmd/fomodeld
go build -o "$bin/fomodel" ./cmd/fomodel

wait_ready() {
    for _ in $(seq 1 200); do
        if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "endpoint never became ready: $1" >&2
    return 1
}

echo "== boot daemon" >&2
"$bin/fomodeld" -addr 127.0.0.1:8795 -n "$N" -warm=false >"$bin/daemon.log" 2>&1 &
pids+=($!)
daemon=http://127.0.0.1:8795
wait_ready "$daemon"

# The spec pins n explicitly so the local CLI run and the daemon
# normalize to the same canonical search.
cat >"$bin/spec.json" <<EOF
{"workloads":[{"bench":"gzip"},{"bench":"mcf","weight":2}],"bounds":{"width":{"min":1,"max":8},"rob":{"min":64,"max":128,"step":64}},"budget":12,"n":$N}
EOF

echo "== buffered search: frontier non-empty, budget respected" >&2
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d @"$bin/spec.json" "$daemon/v1/optimize" >"$bin/daemon.json"
grep -A3 '"frontier"' "$bin/daemon.json" | grep -q '"eval"' \
    || { echo "frontier is empty" >&2; cat "$bin/daemon.json" >&2; exit 1; }
evals=$(sed -n 's/^  "evaluations": \([0-9]*\),*$/\1/p' "$bin/daemon.json")
grid=$(sed -n 's/^  "grid_size": \([0-9]*\),*$/\1/p' "$bin/daemon.json")
if [ -z "$evals" ] || [ "$evals" -gt 12 ]; then
    echo "evaluations '$evals' missing or over the 12-candidate budget" >&2
    exit 1
fi
echo "ok: $evals evaluations over a $grid-point grid, frontier non-empty" >&2

echo "== local/remote byte-equality" >&2
"$bin/fomodel" -optimize "$bin/spec.json" -json -n "$N" >"$bin/local.json"
"$bin/fomodel" -optimize "$bin/spec.json" -json -n "$N" -remote "$daemon" >"$bin/remote.json"
cmp -s "$bin/local.json" "$bin/remote.json" \
    || { echo "BYTE MISMATCH: local vs -remote optimize output" >&2; diff "$bin/local.json" "$bin/remote.json" >&2 || true; exit 1; }
cmp -s "$bin/local.json" "$bin/daemon.json" \
    || { echo "BYTE MISMATCH: local CLI output vs raw daemon response" >&2; diff "$bin/local.json" "$bin/daemon.json" >&2 || true; exit 1; }
echo "ok: local CLI, -remote CLI, and raw daemon responses byte-equal" >&2

echo "== NDJSON stream: point rows plus a trailer" >&2
curl -fsS -X POST -H 'Content-Type: application/json' \
    -H 'Accept: application/x-ndjson' \
    -d @"$bin/spec.json" "$daemon/v1/optimize" >"$bin/stream.ndjson"
rows=$(wc -l <"$bin/stream.ndjson")
if [ "$rows" -lt 2 ]; then
    echo "stream has $rows rows, want points plus a trailer" >&2
    exit 1
fi
tail -n 1 "$bin/stream.ndjson" | grep -q '"render"' \
    || { echo "stream's final row is not a trailer" >&2; exit 1; }
echo "ok: $rows stream rows, trailer last" >&2

curl -fsS "$daemon/metrics" | grep -q '^fomodeld_optimize_evaluations_total [1-9]' \
    || { echo "optimize metrics missing or zero" >&2; exit 1; }
echo "optimize smoke passed" >&2
