package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// ok200 is a compute that returns a distinct 200 body.
func ok200(body string) func() (int, []byte, error) {
	return func() (int, []byte, error) { return 200, []byte(body), nil }
}

// TestRespCacheErrorJoinNotAHit is the regression test for the
// accounting bug where a request joining an in-flight computation that
// finished in an error was counted as a cache hit.
func TestRespCacheErrorJoinNotAHit(t *testing.T) {
	c := newRespCache(8)
	entered := make(chan struct{})
	release := make(chan struct{})
	failure := errors.New("compute failed")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, hit, err := c.Do("k", func() (int, []byte, error) {
			close(entered)
			<-release
			return 0, nil, failure
		})
		if hit {
			t.Error("computing request reported hit")
		}
		if !errors.Is(err, failure) {
			t.Errorf("computing request err = %v, want %v", err, failure)
		}
	}()
	<-entered

	// Join the in-flight computation, then let it fail.
	joined := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(joined)
		_, _, hit, err := c.Do("k", func() (int, []byte, error) {
			t.Error("joiner ran its own compute")
			return 0, nil, nil
		})
		if hit {
			t.Error("error-outcome join counted as a hit")
		}
		if !errors.Is(err, failure) {
			t.Errorf("joiner err = %v, want shared %v", err, failure)
		}
	}()
	<-joined
	close(release)
	wg.Wait()

	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Errorf("hits=%d misses=%d after shared failure, want 0/1", hits, misses)
	}
	if c.Len() != 0 {
		t.Errorf("failed entry still cached: len=%d", c.Len())
	}

	// A later request must recompute (the failure was forgotten) and a
	// successful join must still count as a hit.
	if _, _, hit, err := c.Do("k", ok200("fresh")); hit || err != nil {
		t.Errorf("recompute after failure: hit=%v err=%v", hit, err)
	}
	if _, body, hit, err := c.Do("k", nil); !hit || err != nil || string(body) != "fresh" {
		t.Errorf("retained success: hit=%v err=%v body=%q", hit, err, body)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", hits, misses)
	}
}

// TestRespCacheNon200NotRetained pins that non-200 computed statuses are
// delivered but never retained or counted as hits on join.
func TestRespCacheNon200NotRetained(t *testing.T) {
	c := newRespCache(8)
	status, body, hit, err := c.Do("k", func() (int, []byte, error) {
		return 404, []byte("nope"), nil
	})
	if status != 404 || string(body) != "nope" || hit || err != nil {
		t.Fatalf("first = (%d, %q, %v, %v)", status, body, hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("non-200 entry retained: len=%d", c.Len())
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Fatalf("hits=%d, want 0", hits)
	}
}

// TestRespCacheEvictionSkipsInflight is the regression test for the
// eviction bug: trimming the LRU must never drop an entry whose
// computation is still in flight, because requests may be blocked on it.
func TestRespCacheEvictionSkipsInflight(t *testing.T) {
	c := newRespCache(2)
	entered := make(chan struct{})
	release := make(chan struct{})

	// Key A computes slowly; one waiter blocks on it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, body, _, err := c.Do("a", func() (int, []byte, error) {
			close(entered)
			<-release
			return 200, []byte("a-body"), nil
		})
		if err != nil || string(body) != "a-body" {
			t.Errorf("computing request: body=%q err=%v", body, err)
		}
	}()
	<-entered
	waiterJoined := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(waiterJoined)
		_, body, _, err := c.Do("a", nil) // must join, never compute (nil would panic)
		if err != nil || string(body) != "a-body" {
			t.Errorf("blocked waiter: body=%q err=%v", body, err)
		}
	}()
	<-waiterJoined

	// Fill past capacity while A is in flight and oldest in LRU order:
	// the finished entries must be evicted around it.
	c.Do("b", ok200("b"))
	c.Do("c", ok200("c"))
	c.Do("d", ok200("d"))
	if got := c.Len(); got > 3 {
		t.Errorf("len=%d after overfill, want ≤ 3 (cap 2 + 1 in-flight)", got)
	}

	// A must still be reachable and its waiters must complete correctly.
	close(release)
	wg.Wait()
	if _, body, hit, err := c.Do("a", nil); !hit || err != nil || string(body) != "a-body" {
		t.Errorf("in-flight entry was dropped by eviction: hit=%v err=%v body=%q", hit, err, body)
	}
	// The oldest *finished* entry (b) must have been evicted.
	recomputed := false
	c.Do("b", func() (int, []byte, error) {
		recomputed = true
		return 200, []byte("b"), nil
	})
	if !recomputed {
		t.Error("finished LRU entry b was not evicted")
	}
}

// TestRespCacheEvictsLRUOrder pins plain LRU behaviour for finished
// entries: touching an entry protects it, the least-recently-used one
// goes first.
func TestRespCacheEvictsLRUOrder(t *testing.T) {
	c := newRespCache(2)
	c.Do("a", ok200("a"))
	c.Do("b", ok200("b"))
	c.Do("a", nil) // touch a, making b least recent
	c.Do("c", ok200("c"))
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	if _, _, hit, _ := c.Do("a", ok200("a2")); !hit {
		t.Error("recently used entry a was evicted")
	}
	if _, _, hit, _ := c.Do("c", ok200("c2")); !hit {
		t.Error("newest entry c was evicted")
	}
}

// TestRespCachePanicReleasesWaiters pins that a panicking compute is
// turned into an error, waiters are released (rather than blocking on a
// done channel nobody will close), and the entry is forgotten.
func TestRespCachePanicReleasesWaiters(t *testing.T) {
	c := newRespCache(8)
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, err := c.Do("k", func() (int, []byte, error) {
			close(entered)
			<-release
			panic("kaboom")
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("panic not converted to error: %v", err)
		}
	}()
	<-entered
	joined := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(joined)
		_, _, hit, err := c.Do("k", nil)
		if hit || err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("waiter after panic: hit=%v err=%v", hit, err)
		}
	}()
	<-joined
	close(release)
	wg.Wait()
	if c.Len() != 0 {
		t.Errorf("panicked entry still cached: len=%d", c.Len())
	}
}

// TestRespCacheConcurrentChurn exercises mixed hits, misses, failures,
// and eviction under -race.
func TestRespCacheConcurrentChurn(t *testing.T) {
	c := newRespCache(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%10)
				fail := i%7 == 0
				status, body, _, err := c.Do(key, func() (int, []byte, error) {
					if fail {
						return 0, nil, errors.New("transient")
					}
					return 200, []byte(key), nil
				})
				if err == nil && (status != 200 || string(body) != key) {
					t.Errorf("key %s: got (%d, %q)", key, status, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 4 {
		t.Errorf("len=%d after churn, want ≤ cap 4", got)
	}
}
