package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fomodel/internal/experiments"
)

// Experiments implements cmd/experiments: regenerate paper tables and
// figures by label. Independent experiments fan out across a bounded
// worker pool (-parallel), but their outputs are always written in label
// order, so any -parallel value produces byte-identical output (modulo
// the wall-time annotations suppressed by -quiet).
func Experiments(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	n := fs.Int("n", 500000, "dynamic instructions per workload")
	seed := fs.Uint64("seed", 1, "workload generation seed")
	list := fs.Bool("list", false, "list experiment labels and exit")
	csv := fs.Bool("csv", false, "emit CSV for tabular experiments")
	outDir := fs.String("out", "", "write outputs to this directory instead of stdout")
	quiet := fs.Bool("quiet", false, "suppress timing lines")
	parallel := fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	timing := fs.Bool("timing", false, "print a per-workload/per-experiment timing breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := experiments.DefaultRegistry()
	if *list {
		for _, l := range reg.Labels() {
			fmt.Fprintln(out, l)
		}
		return nil
	}

	labels := fs.Args()
	if len(labels) == 0 {
		labels = reg.Labels()
	}
	for _, label := range labels {
		if _, ok := reg[label]; !ok {
			return fmt.Errorf("experiments: unknown experiment %q (try -list)", label)
		}
	}

	suite := experiments.NewSuite(*n, *seed)
	suite.Workers = *parallel
	var timings *experiments.Timings
	if *timing {
		timings = &experiments.Timings{}
		suite.Timings = timings
	}

	// Each experiment renders on its worker; the emit callback writes the
	// finished bodies in label order on this goroutine.
	type rendered struct {
		body, ext string
		elapsed   time.Duration
	}
	err := experiments.RunOrdered(*parallel, len(labels), func(i int) (rendered, error) {
		label := labels[i]
		start := time.Now()
		res, err := reg[label](ctx, suite)
		if err != nil {
			return rendered{}, fmt.Errorf("experiments: %s: %w", label, err)
		}
		r := rendered{body: res.Render(), ext: "txt", elapsed: time.Since(start)}
		if *csv {
			if c, ok := res.(interface{ CSV() string }); ok {
				r.body, r.ext = c.CSV(), "csv"
			}
		}
		timings.Record("experiment", label, r.elapsed)
		return r, nil
	}, func(i int, r rendered) error {
		label := labels[i]
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, label+"."+r.ext)
			if err := os.WriteFile(path, []byte(r.body), 0o644); err != nil {
				return err
			}
			if !*quiet {
				fmt.Fprintf(out, "== %s (%.1fs) → %s\n", label, r.elapsed.Seconds(), path)
			}
			return nil
		}
		if *quiet {
			fmt.Fprintf(out, "== %s ==\n%s\n", label, r.body)
		} else {
			fmt.Fprintf(out, "== %s (%.1fs) ==\n%s\n", label, r.elapsed.Seconds(), r.body)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if *timing {
		if body := timings.Render(); body != "" {
			fmt.Fprint(out, body)
		}
		workloads, sims := suite.Counters()
		fmt.Fprintf(out, "counters: %d workload analyses, %d simulator runs\n", workloads, sims)
		hits, misses := suite.PrepCounters()
		fmt.Fprintf(out, "prep cache: %d classification passes, %d reused\n", misses, hits)
	}
	return nil
}
