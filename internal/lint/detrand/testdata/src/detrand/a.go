// Fixture for the detrand analyzer, type-checked under a pure-model
// import path.
package uarch

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read \(time\.Now\)`
	return time.Since(start) // want `wall-clock read \(time\.Since\)`
}

func seededIsFine() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func floatAccumulation(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order`
		total += v
	}
	return total
}

func renderedOrder(m map[string]int) {
	for k, v := range m { // want `map iteration order`
		fmt.Println(k, v)
	}
}

func arraysAreFine(xs [4]int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
