package uarch

import (
	"reflect"
	"sync"
	"testing"

	"fomodel/internal/artifact"
	"fomodel/internal/cache"
	"fomodel/internal/predictor"
	"fomodel/internal/rng"
	"fomodel/internal/trace"
	"fomodel/internal/workload"
)

// randomConfig draws a structurally valid configuration spanning both
// classification-relevant fields (hierarchy geometry, predictor, TLB,
// warmup) and timing-only fields (widths, sizes, latencies, toggles).
func randomConfig(r *rng.PCG) Config {
	cfg := DefaultConfig()
	cfg.Width = []int{1, 2, 4, 8}[r.Intn(4)]
	cfg.WindowSize = []int{4, 16, 48}[r.Intn(3)]
	cfg.ROBSize = cfg.WindowSize + []int{0, 16, 80}[r.Intn(3)]
	cfg.FrontEndDepth = []int{1, 5, 9}[r.Intn(3)]
	cfg.IdealICache = r.Bool(0.5)
	cfg.IdealDCache = r.Bool(0.5)
	cfg.IdealPredictor = r.Bool(0.5)
	cfg.Warmup = r.Bool(0.5)
	cfg.SerializeLongMisses = r.Bool(0.3)
	cfg.InOrder = r.Bool(0.2)
	if r.Bool(0.3) {
		cfg.PredictorBits = uint(8 + r.Intn(8))
	}
	if r.Bool(0.3) {
		spec := predictor.Spec{Kind: predictor.KindBimodal, IndexBits: 10}
		cfg.Predictor = &spec
	}
	if r.Bool(0.3) {
		tlb := cache.DefaultTLB()
		tlb.Entries = []int{16, 64}[r.Intn(2)]
		cfg.TLB = &tlb
	}
	if r.Bool(0.3) {
		cfg.FUCounts[0] = 1 + r.Intn(2)
	}
	if r.Bool(0.3) {
		cfg.FetchBufferSize = r.Intn(16)
	}
	if r.Bool(0.2) && cfg.Width%2 == 0 && cfg.WindowSize%2 == 0 {
		cfg.Clusters = 2
		cfg.BypassLatency = 1 + r.Intn(2)
	}
	if r.Bool(0.3) {
		cfg.Hierarchy.ShortMissLatency = 4 + r.Intn(12)
		cfg.Hierarchy.LongMissLatency = 100 + r.Intn(200)
	}
	if r.Bool(0.3) {
		cfg.Hierarchy.L1I.SizeBytes = []uint64{2 << 10, 4 << 10, 8 << 10}[r.Intn(3)]
	}
	return cfg
}

// TestPropertyPrepCacheMatchesUncached is the cache-correctness property:
// Simulate through a shared PrepCache returns results identical to the
// uncached Simulate across randomized traces and configs. The cached runs
// execute concurrently on one cache, so -race also checks the
// single-flight sharing.
func TestPropertyPrepCacheMatchesUncached(t *testing.T) {
	pc := NewPrepCache()
	r := rng.New(42)
	type job struct {
		tr  *trace.Trace
		cfg Config
	}
	var jobs []job
	for seed := uint64(1); seed <= 4; seed++ {
		tr := randomTrace(seed, 3000)
		for k := 0; k < 6; k++ {
			jobs = append(jobs, job{tr: tr, cfg: randomConfig(r)})
		}
	}

	// Uncached references, sequentially.
	refs := make([]*Result, len(jobs))
	for i, j := range jobs {
		ref, err := Simulate(j.tr, j.cfg)
		if err != nil {
			t.Fatalf("job %d: uncached: %v", i, err)
		}
		refs[i] = ref
	}

	// Cached runs, concurrently on the shared cache.
	got := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = pc.Simulate(jobs[i].tr, jobs[i].cfg)
		}(i)
	}
	wg.Wait()

	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: cached: %v", i, errs[i])
		}
		if !reflect.DeepEqual(refs[i], got[i]) {
			t.Errorf("job %d: cached result differs from uncached\ncfg: %+v\ncached: %+v\nuncached: %+v",
				i, jobs[i].cfg, got[i], refs[i])
		}
	}

	hits, misses := pc.Stats()
	if hits+misses != int64(len(jobs)) {
		t.Errorf("stats account for %d requests, want %d", hits+misses, len(jobs))
	}
	if misses == 0 || misses == int64(len(jobs)) {
		t.Errorf("degenerate cache behavior: %d hits, %d misses", hits, misses)
	}
}

// TestPrepCacheNilDisablesCaching checks the nil receiver falls back to
// the plain simulator.
func TestPrepCacheNilDisablesCaching(t *testing.T) {
	tr := randomTrace(7, 2000)
	cfg := DefaultConfig()
	ref, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (*PrepCache)(nil).Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Error("nil-cache result differs from plain Simulate")
	}
}

// TestPrepCacheKeySensitivity pins down the classification key: mutating
// any timing-only field must re-use the cached classification (no new
// miss), and mutating any classification-relevant field must always miss.
func TestPrepCacheKeySensitivity(t *testing.T) {
	tr := randomTrace(9, 2000)
	base := DefaultConfig()
	tlb := cache.DefaultTLB()
	base.TLB = &tlb

	pc := NewPrepCache()
	if _, err := pc.Simulate(tr, base); err != nil {
		t.Fatal(err)
	}
	if _, misses := pc.Stats(); misses != 1 {
		t.Fatalf("priming run: %d misses, want 1", misses)
	}

	outside := map[string]func(*Config){
		"Width":               func(c *Config) { c.Width = 8 },
		"FrontEndDepth":       func(c *Config) { c.FrontEndDepth = 9 },
		"WindowSize":          func(c *Config) { c.WindowSize = 16 },
		"ROBSize":             func(c *Config) { c.ROBSize = 256 },
		"Latencies":           func(c *Config) { c.Latencies[1] = 7 },
		"FUCounts":            func(c *Config) { c.FUCounts[0] = 2 },
		"FetchBufferSize":     func(c *Config) { c.FetchBufferSize = 8 },
		"InOrder":             func(c *Config) { c.InOrder = true },
		"RecordIssueTrace":    func(c *Config) { c.RecordIssueTrace = true },
		"Clusters":            func(c *Config) { c.Clusters = 2; c.BypassLatency = 1 },
		"SerializeLongMisses": func(c *Config) { c.SerializeLongMisses = true },
		"IdealICache":         func(c *Config) { c.IdealICache = true },
		"IdealDCache":         func(c *Config) { c.IdealDCache = true },
		"IdealPredictor":      func(c *Config) { c.IdealPredictor = true },
		"ShortMissLatency":    func(c *Config) { c.Hierarchy.ShortMissLatency = 12 },
		"LongMissLatency":     func(c *Config) { c.Hierarchy.LongMissLatency = 300 },
		"TLB.MissLatency":     func(c *Config) { t := *c.TLB; t.MissLatency = 120; c.TLB = &t },
	}
	for name, mutate := range outside {
		cfg := base
		mutate(&cfg)
		_, missesBefore := pc.Stats()
		if _, err := pc.Simulate(tr, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, missesAfter := pc.Stats(); missesAfter != missesBefore {
			t.Errorf("timing-only field %s caused a classification cache miss", name)
		}
	}

	inside := map[string]func(*Config){
		"L1I.SizeBytes": func(c *Config) { c.Hierarchy.L1I.SizeBytes = 8 << 10 },
		"L1D.Assoc":     func(c *Config) { c.Hierarchy.L1D.Assoc = 2 },
		"L2.SizeBytes":  func(c *Config) { c.Hierarchy.L2.SizeBytes = 256 << 10 },
		"PredictorBits": func(c *Config) { c.PredictorBits = 10 },
		"Predictor":     func(c *Config) { c.Predictor = &predictor.Spec{Kind: predictor.KindBimodal, IndexBits: 13} },
		"Warmup":        func(c *Config) { c.Warmup = !c.Warmup },
		"TLB.Entries":   func(c *Config) { t := *c.TLB; t.Entries = 16; c.TLB = &t },
		"TLB removed":   func(c *Config) { c.TLB = nil },
	}
	for name, mutate := range inside {
		cfg := base
		mutate(&cfg)
		_, missesBefore := pc.Stats()
		if _, err := pc.Simulate(tr, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, missesAfter := pc.Stats(); missesAfter != missesBefore+1 {
			t.Errorf("classification field %s did not cause a cache miss (misses %d -> %d)",
				name, missesBefore, missesAfter)
		}
	}
}

// TestPrepCachePredictorBitsIrrelevantUnderSpec checks the key
// normalization: when an explicit predictor spec overrides the gshare
// default, PredictorBits is dead configuration and must not fragment the
// cache.
func TestPrepCachePredictorBitsIrrelevantUnderSpec(t *testing.T) {
	tr := randomTrace(11, 2000)
	spec := predictor.Spec{Kind: predictor.KindAlwaysTaken}
	cfg := DefaultConfig()
	cfg.Predictor = &spec

	pc := NewPrepCache()
	if _, err := pc.Simulate(tr, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.PredictorBits = 20
	if _, err := pc.Simulate(tr, cfg); err != nil {
		t.Fatal(err)
	}
	if _, misses := pc.Stats(); misses != 1 {
		t.Errorf("PredictorBits fragmented the key under an explicit spec: %d misses, want 1", misses)
	}
}

// TestPrepCacheSingleFlight hammers one (trace, key) slot from many
// goroutines: exactly one classification may happen, and every caller
// must observe the same result.
func TestPrepCacheSingleFlight(t *testing.T) {
	tr := randomTrace(13, 4000)
	pc := NewPrepCache()
	const callers = 16
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := DefaultConfig()
			// Different timing parameters, same classification key.
			cfg.Width = 1 + i%4
			cfg.IdealDCache = i%2 == 0
			results[i], errs[i] = pc.Simulate(tr, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	if _, misses := pc.Stats(); misses != 1 {
		t.Errorf("single-flight violated: %d classifications for one key", misses)
	}
}

// TestPrepCacheContentKeySharing checks content keying: two separately
// generated traces with the same recipe carry equal ContentIDs and share
// one classification entry, even though they are distinct allocations.
func TestPrepCacheContentKeySharing(t *testing.T) {
	t1, err := workload.Generate("gzip", 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := workload.Generate("gzip", 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if t1 == t2 {
		t.Fatal("expected distinct trace allocations")
	}
	if t1.ContentID == "" || t1.ContentID != t2.ContentID {
		t.Fatalf("content IDs %q vs %q, want equal and non-empty", t1.ContentID, t2.ContentID)
	}
	pc := NewPrepCache()
	cfg := DefaultConfig()
	r1, err := pc.Simulate(t1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pc.Simulate(t2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("same-content traces produced different results")
	}
	hits, misses := pc.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("got %d hits, %d misses; want 1 hit, 1 miss (shared content entry)", hits, misses)
	}
	if preps, prods := pc.Len(); preps != 1 || prods != 1 {
		t.Errorf("cache holds %d preps, %d prods entries; want 1 and 1", preps, prods)
	}
}

// TestPrepCacheBounded sweeps many distinct contents through a small
// cache and checks both maps respect their LRU bounds.
func TestPrepCacheBounded(t *testing.T) {
	pc := NewPrepCache()
	pc.SetLimits(4, 3)
	cfg := DefaultConfig()
	for seed := uint64(1); seed <= 12; seed++ {
		tr, err := workload.Generate("gzip", 1500, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pc.Simulate(tr, cfg); err != nil {
			t.Fatal(err)
		}
		preps, prods := pc.Len()
		if preps > 4 || prods > 3 {
			t.Fatalf("seed %d: cache grew past its bounds (%d preps, %d prods)", seed, preps, prods)
		}
	}
	if pc.Evictions().Load() == 0 {
		t.Error("sweep over 12 contents evicted nothing")
	}
	// Shrinking the limits evicts immediately.
	pc.SetLimits(1, 1)
	if preps, prods := pc.Len(); preps != 1 || prods != 1 {
		t.Errorf("after shrink: %d preps, %d prods entries; want 1 and 1", preps, prods)
	}
}

// TestPrepCacheForget checks Forget releases every entry derived from a
// trace — producer links and classifications under every config — while
// leaving other traces' entries alone.
func TestPrepCacheForget(t *testing.T) {
	tr1, err := workload.Generate("gzip", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := workload.Generate("gcc", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPrepCache()
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.Warmup = !cfgB.Warmup
	for _, tr := range []*trace.Trace{tr1, tr2} {
		for _, cfg := range []Config{cfgA, cfgB} {
			if _, err := pc.Simulate(tr, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	if preps, prods := pc.Len(); preps != 4 || prods != 2 {
		t.Fatalf("setup: %d preps, %d prods entries; want 4 and 2", preps, prods)
	}
	pc.Forget(tr1)
	if preps, prods := pc.Len(); preps != 2 || prods != 1 {
		t.Errorf("after Forget: %d preps, %d prods entries; want 2 and 1", preps, prods)
	}
	// The surviving trace still hits.
	_, missesBefore := pc.Stats()
	if _, err := pc.Simulate(tr2, cfgA); err != nil {
		t.Fatal(err)
	}
	if _, missesAfter := pc.Stats(); missesAfter != missesBefore {
		t.Error("Forget of one trace invalidated another trace's entries")
	}
}

// TestPrepCacheStoreRoundTrip checks that a second cache attached to the
// same artifact store serves classifications and producer links from
// disk with results identical to the fresh computation.
func TestPrepCacheStoreRoundTrip(t *testing.T) {
	st, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate("mcf", 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	tlb := cache.DefaultTLB()
	cfg.TLB = &tlb

	pc1 := NewPrepCache()
	pc1.SetStore(st)
	ref, err := pc1.Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, writes, _ := st.Stats(); writes < 2 {
		t.Fatalf("expected preps and prods artifacts written, got %d writes", writes)
	}

	// A fresh cache (a new process, in effect) with the same store and a
	// freshly generated trace of the same content.
	tr2, err := workload.Generate("mcf", 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	pc2 := NewPrepCache()
	pc2.SetStore(st)
	hitsBefore, _, _, _, _ := st.Stats()
	got, err := pc2.Simulate(tr2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Error("store-served simulation differs from fresh computation")
	}
	hitsAfter, _, _, _, _ := st.Stats()
	if hitsAfter < hitsBefore+2 {
		t.Errorf("expected preps and prods store hits, got %d new hits", hitsAfter-hitsBefore)
	}
}

// TestPrepsCodecRoundTrip exercises the packed preps encoding across all
// flag combinations, plus its rejection of damaged payloads.
func TestPrepsCodecRoundTrip(t *testing.T) {
	var preps []prep
	for ires := cache.Hit; ires <= cache.LongMiss; ires++ {
		for dres := cache.Hit; dres <= cache.LongMiss; dres++ {
			for _, misp := range []bool{false, true} {
				for _, tlbMiss := range []bool{false, true} {
					preps = append(preps, prep{ires: ires, dres: dres, misp: misp, tlbMiss: tlbMiss})
				}
			}
		}
	}
	enc := encodePreps(preps)
	dec, err := decodePreps(enc, len(preps))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(preps, dec) {
		t.Error("packed preps did not round-trip")
	}
	if _, err := decodePreps(enc, len(preps)+1); err == nil {
		t.Error("wrong expected length not rejected")
	}
	if _, err := decodePreps(enc[:len(enc)-1], len(preps)); err == nil {
		t.Error("truncated payload not rejected")
	}
	bad := append([]byte(nil), enc...)
	bad[12] = 0xff
	if _, err := decodePreps(bad, len(preps)); err == nil {
		t.Error("invalid record byte not rejected")
	}
}
