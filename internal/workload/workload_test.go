package workload

import (
	"testing"

	"fomodel/internal/isa"
)

func testProfile() Profile {
	p := baseProfile("test")
	return p
}

func mustGen(t *testing.T, p Profile, seed uint64) *Generator {
	t.Helper()
	g, err := NewGenerator(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateValidTrace(t *testing.T) {
	g := mustGen(t, testProfile(), 1)
	tr, err := g.Generate(20000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 20000 {
		t.Fatalf("trace too short: %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if tr.Name != "test" {
		t.Fatalf("trace name %q", tr.Name)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("gzip", 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("gzip", 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate("gzip", 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("gzip", 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	same := 0
	for i := 0; i < n; i++ {
		if a.Instrs[i] == b.Instrs[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestBlocksEndWithBranch(t *testing.T) {
	g := mustGen(t, testProfile(), 3)
	tr, err := g.Generate(5000)
	if err != nil {
		t.Fatal(err)
	}
	// The last instruction of the trace must be a branch (generation
	// stops at a block boundary).
	if last := tr.Instrs[tr.Len()-1]; last.Class != isa.Branch {
		t.Fatalf("trace ends with %v, want branch", last.Class)
	}
	// PCs within a block advance by 4; after a not-taken branch the next
	// PC is the branch PC + 4.
	for i := 1; i < tr.Len(); i++ {
		prev, cur := &tr.Instrs[i-1], &tr.Instrs[i]
		if prev.Class != isa.Branch && cur.PC != prev.PC+4 {
			t.Fatalf("instr %d: PC %#x does not follow %#x within a block", i, cur.PC, prev.PC)
		}
		if prev.Class == isa.Branch && !prev.Taken && cur.PC != prev.PC+4 {
			t.Fatalf("instr %d: fall-through PC %#x does not follow branch at %#x", i, cur.PC, prev.PC)
		}
	}
}

func TestDependencesAreRecent(t *testing.T) {
	g := mustGen(t, testProfile(), 5)
	tr, err := g.Generate(20000)
	if err != nil {
		t.Fatal(err)
	}
	// Every source register must refer to a producer within the last
	// NumArchRegs destination writes (the round-robin guarantee), and
	// that producer must be the most recent writer of the register.
	last := make(map[int16]int)
	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		for _, src := range []int16{in.Src1, in.Src2} {
			if src < 0 {
				continue
			}
			if _, ok := last[src]; !ok {
				t.Fatalf("instr %d reads register %d before any write", i, src)
			}
		}
		if in.Dest >= 0 {
			last[in.Dest] = i
		}
	}
}

func TestMemoryRegions(t *testing.T) {
	g := mustGen(t, testProfile(), 9)
	tr, err := g.Generate(50000)
	if err != nil {
		t.Fatal(err)
	}
	prof := testProfile()
	var hot, warm, cold int
	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		if !in.IsMem() {
			continue
		}
		switch {
		case in.Addr >= coldBase:
			cold++
			if in.Addr >= coldBase+prof.DataColdSize {
				t.Fatalf("cold address %#x beyond region", in.Addr)
			}
		case in.Addr >= warmBase:
			warm++
			if in.Addr >= warmBase+prof.DataWarmSize {
				t.Fatalf("warm address %#x beyond region", in.Addr)
			}
		case in.Addr >= hotBase:
			hot++
			if in.Addr >= hotBase+prof.DataHotSize {
				t.Fatalf("hot address %#x beyond region", in.Addr)
			}
		default:
			t.Fatalf("data address %#x below hot base", in.Addr)
		}
	}
	total := hot + warm + cold
	if total == 0 {
		t.Fatal("no memory accesses generated")
	}
	hotFrac := float64(hot) / float64(total)
	if hotFrac < prof.DataHotFrac-0.05 {
		t.Fatalf("hot fraction %.3f, profile wants %.3f", hotFrac, prof.DataHotFrac)
	}
}

func TestBranchFractionTracksBlockLength(t *testing.T) {
	p := testProfile()
	p.BlockLenMean = 5
	g := mustGen(t, p, 11)
	tr, err := g.Generate(50000)
	if err != nil {
		t.Fatal(err)
	}
	mix := tr.Mix()
	want := 1.0 / (p.BlockLenMean + 1)
	if mix[isa.Branch] < want*0.7 || mix[isa.Branch] > want*1.4 {
		t.Fatalf("branch fraction %.3f, want ~%.3f", mix[isa.Branch], want)
	}
}

func TestCodeFootprint(t *testing.T) {
	g := mustGen(t, testProfile(), 13)
	fp := g.CodeFootprint()
	p := testProfile()
	// Roughly NumBlocks × (BlockLenMean+1) × 4 bytes.
	want := float64(p.NumBlocks) * (p.BlockLenMean + 1) * 4
	if float64(fp) < want*0.7 || float64(fp) > want*1.4 {
		t.Fatalf("footprint %d, want ~%.0f", fp, want)
	}
}

func TestGenerateRejectsBadLength(t *testing.T) {
	g := mustGen(t, testProfile(), 1)
	if _, err := g.Generate(0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := g.Generate(-5); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.BlockLenMean = 0 },
		func(p *Profile) { p.NumBlocks = 1 },
		func(p *Profile) { p.HotBlocks = 0 },
		func(p *Profile) { p.HotBlocks = p.NumBlocks + 1 },
		func(p *Profile) { p.HotJumpFrac = 1.5 },
		func(p *Profile) { p.EscapeFrac = -0.1 },
		func(p *Profile) { p.HardBranchFrac = 2 },
		func(p *Profile) { p.HardTakenProb = -1 },
		func(p *Profile) { p.EasyBiasLo = 0.2 },
		func(p *Profile) { p.EasyBiasLo, p.EasyBiasHi = 0.99, 0.95 },
		func(p *Profile) { p.EasyTakenFrac = 1.2 },
		func(p *Profile) { p.NoDepFrac = -0.5 },
		func(p *Profile) { p.DepShortFrac = 1.01 },
		func(p *Profile) { p.DepShortMean = 0.5 },
		func(p *Profile) { p.DepLongAlpha = 0 },
		func(p *Profile) { p.DepLongMax = 0 },
		func(p *Profile) { p.TwoSrcFrac = -0.2 },
		func(p *Profile) { p.DataHotFrac = 0.8; p.DataWarmFrac = 0.3 },
		func(p *Profile) { p.DataHotSize = 0 },
		func(p *Profile) { p.ColdBurstMean = 0 },
		func(p *Profile) { p.ColdStride = 0 },
		func(p *Profile) { p.Mix = [isa.NumClasses]float64{} },
	}
	for i, mutate := range cases {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestNewGeneratorRejectsInvalidProfile(t *testing.T) {
	p := testProfile()
	p.Name = ""
	if _, err := NewGenerator(p, 1); err == nil {
		t.Fatal("invalid profile accepted by NewGenerator")
	}
}

func TestMultipleGenerateCallsContinue(t *testing.T) {
	g := mustGen(t, testProfile(), 17)
	a, err := g.Generate(3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(3000)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// The second segment must continue the walk, not restart it.
	identical := a.Len() == b.Len()
	if identical {
		for i := range a.Instrs {
			if a.Instrs[i] != b.Instrs[i] {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Fatal("second Generate call replayed the first segment")
	}
}

func TestHardBranchSpacing(t *testing.T) {
	p := testProfile()
	p.HardBranchFrac = 0.25
	g := mustGen(t, p, 19)
	hard := 0
	for i := range g.blocks {
		if g.blocks[i].hard {
			hard++
			if g.blocks[i].takenProb != p.HardTakenProb {
				t.Fatal("hard block has wrong taken probability")
			}
		}
	}
	frac := float64(hard) / float64(len(g.blocks))
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("hard fraction %.3f, want ~0.25", frac)
	}
}

func TestNoSelfLoops(t *testing.T) {
	g := mustGen(t, testProfile(), 23)
	for i := range g.blocks {
		if g.blocks[i].takenTarget == i {
			t.Fatalf("block %d targets itself", i)
		}
	}
}
