package optimize

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// convexEval is a synthetic separable convex objective with its optimum
// at width 11, window 88: the kind of bowl the paper's CPI surfaces form
// around a balanced configuration.
func convexEval(_ context.Context, cfg Config, _ string) (float64, error) {
	dw := float64(cfg.Width - 11)
	dn := float64(cfg.Window - 88)
	return 1 + 0.01*dw*dw + 0.0004*dn*dn, nil
}

// convexSpec bounds a 16×16 grid (rob pinned) around convexEval's bowl.
func convexSpec() Spec {
	return Spec{
		Workloads: []WorkloadWeight{{Bench: "gzip"}},
		Bounds: map[string]Bound{
			"width":  {Min: 1, Max: 16},
			"window": {Min: 8, Max: 128, Step: 8},
			"rob":    {Min: 256, Max: 256},
		},
		Budget: 256,
	}
}

// TestConvexFindsOptimumUnderBudget pins the acceptance criterion: the
// search finds the known optimum of a convex synthetic objective while
// evaluating well under 40% of the full grid.
func TestConvexFindsOptimumUnderBudget(t *testing.T) {
	res, err := Run(context.Background(), convexSpec(), convexEval, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GridSize != 256 {
		t.Fatalf("GridSize = %d, want 256", res.GridSize)
	}
	if len(res.Frontier) != 1 {
		t.Fatalf("frontier has %d points, want 1", len(res.Frontier))
	}
	best := res.Frontier[0].Config
	if best.Width != 11 || best.Window != 88 {
		t.Errorf("best config = width %d window %d, want 11/88", best.Width, best.Window)
	}
	if limit := res.GridSize * 40 / 100; res.Evaluations >= limit {
		t.Errorf("evaluations = %d, want < %d (40%% of grid)", res.Evaluations, limit)
	}
	if !res.Converged {
		t.Errorf("search did not converge within budget %d (evals %d)", 256, res.Evaluations)
	}
	t.Logf("optimum found in %d/%d evaluations (%.1f%%), %d rounds",
		res.Evaluations, res.GridSize, 100*float64(res.Evaluations)/float64(res.GridSize), res.Rounds)
}

// TestDeterministicAcrossWorkersAndRuns pins the determinism contract:
// same spec + seed ⇒ byte-identical result JSON at any worker count,
// including when the seeded coarse-grid subsample is active.
func TestDeterministicAcrossWorkersAndRuns(t *testing.T) {
	spec := Spec{
		Workloads: []WorkloadWeight{{Bench: "gzip", Weight: 2}, {Bench: "mcf", Weight: 1}},
		Bounds: map[string]Bound{
			"width":  {Min: 1, Max: 8},
			"window": {Min: 8, Max: 64, Step: 8},
			"rob":    {Min: 16, Max: 256, Step: 16},
		},
		Budget: 30, // forces the seeded subsample: 3×3×3 coarse > 20
		Seed:   7,
	}
	eval := func(_ context.Context, cfg Config, bench string) (float64, error) {
		v := 1 + 0.02*float64(cfg.Width) + 0.001*float64(cfg.Window) + 0.0005*float64(cfg.ROB)
		if bench == "mcf" {
			v *= 1.5
		}
		return v, nil
	}
	var want []byte
	for _, workers := range []int{1, 2, 7} {
		for run := 0; run < 3; run++ {
			res, err := Run(context.Background(), spec, eval, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("workers=%d run=%d produced a different result\n got: %s\nwant: %s",
					workers, run, got, want)
			}
		}
	}
}

// TestBudgetNeverExceeded pins the budget contract across budgets,
// including budgets smaller than the coarse grid.
func TestBudgetNeverExceeded(t *testing.T) {
	for _, budget := range []int{1, 2, 5, 9, 17} {
		spec := convexSpec()
		spec.Budget = budget
		var calls atomic.Int64
		eval := func(ctx context.Context, cfg Config, bench string) (float64, error) {
			calls.Add(1)
			return convexEval(ctx, cfg, bench)
		}
		res, err := Run(context.Background(), spec, eval, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluations > budget {
			t.Errorf("budget %d: %d evaluations", budget, res.Evaluations)
		}
		if got := calls.Load(); got != int64(res.Evaluations) {
			t.Errorf("budget %d: %d eval calls for %d evaluations (1 bench per mix)", budget, got, res.Evaluations)
		}
		if len(res.Frontier) == 0 || len(res.Points) == 0 {
			t.Errorf("budget %d: empty frontier or history", budget)
		}
	}
}

// TestContextCancelStopsSearch pins mid-search cancellation: once ctx is
// canceled, Run aborts with the context error instead of running the
// budget out.
func TestContextCancelStopsSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	eval := func(ctx context.Context, cfg Config, bench string) (float64, error) {
		if calls.Add(1) == 3 {
			cancel()
		}
		return convexEval(ctx, cfg, bench)
	}
	res, err := Run(ctx, convexSpec(), eval, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %+v), want context.Canceled", err, res)
	}
	if calls.Load() > 50 {
		t.Errorf("search kept evaluating after cancel: %d calls", calls.Load())
	}
}

// TestEmitMatchesPoints pins the streaming contract: emitted points are
// exactly the result's history, in order.
func TestEmitMatchesPoints(t *testing.T) {
	var emitted []Point
	res, err := Run(context.Background(), convexSpec(), convexEval, Options{
		Workers: 3,
		Emit:    func(pt Point) error { emitted = append(emitted, pt); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(res.Points) {
		t.Fatalf("emitted %d points, history has %d", len(emitted), len(res.Points))
	}
	for i := range emitted {
		a, _ := json.Marshal(emitted[i])
		b, _ := json.Marshal(res.Points[i])
		if string(a) != string(b) {
			t.Fatalf("point %d: emitted %s, history %s", i, a, b)
		}
	}
}

// TestEmitErrorAborts pins that an emit failure stops the search.
func TestEmitErrorAborts(t *testing.T) {
	boom := errors.New("sink full")
	_, err := Run(context.Background(), convexSpec(), convexEval, Options{
		Emit: func(Point) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
}

// TestParetoFrontier pins the 2-D mode: a monotone trade-off (CPI falls
// as width grows, area rises) yields the whole lattice as its frontier,
// sorted by the first objective and mutually non-dominated.
func TestParetoFrontier(t *testing.T) {
	spec := Spec{
		Workloads: []WorkloadWeight{{Bench: "gzip"}},
		Bounds:    map[string]Bound{"width": {Min: 1, Max: 8}},
		Objective: ObjectivePareto,
		Budget:    20,
	}
	eval := func(_ context.Context, cfg Config, _ string) (float64, error) {
		return 2 - 0.1*float64(cfg.Width), nil
	}
	res, err := Run(context.Background(), spec, eval, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Spec.Pareto; len(got) != 2 || got[0] != ObjectiveCPI || got[1] != ObjectiveArea {
		t.Fatalf("default pareto pair = %v", got)
	}
	if len(res.Frontier) != 8 {
		t.Fatalf("frontier has %d points, want all 8 lattice points\n%+v", len(res.Frontier), res.Frontier)
	}
	for i, pt := range res.Frontier {
		if i == 0 {
			continue
		}
		prev := res.Frontier[i-1]
		if pt.Objectives[0] < prev.Objectives[0] {
			t.Errorf("frontier not sorted by first objective at %d", i)
		}
		if pt.Objectives[0] >= prev.Objectives[0] && pt.Objectives[1] >= prev.Objectives[1] {
			t.Errorf("frontier points %d and %d not mutually non-dominated", i-1, i)
		}
	}
	if !res.Converged {
		t.Errorf("pareto search should converge after exhausting the 8-point lattice (evals %d)", res.Evaluations)
	}
}

// TestValidateMessagesDeterministic pins the sorted-enumeration
// discipline: repeated validations of the same bad spec produce the same
// message, with parameter names in sorted order.
func TestValidateMessagesDeterministic(t *testing.T) {
	spec := Spec{
		Workloads: []WorkloadWeight{{Bench: "gzip"}},
		Bounds:    map[string]Bound{"l2_size": {Min: 1, Max: 2}},
		Budget:    4,
	}
	want := `optimize: unknown parameter "l2_size" (known: clusters, depth, fetch_buffer, rob, width, window)`
	for i := 0; i < 20; i++ {
		err := spec.Validate()
		if err == nil || err.Error() != want {
			t.Fatalf("iteration %d: err = %v, want %q", i, err, want)
		}
	}
}

// TestValidateRejects spot-checks the 400-shaped errors.
func TestValidateRejects(t *testing.T) {
	base := func() Spec {
		return Spec{
			Workloads: []WorkloadWeight{{Bench: "gzip"}},
			Bounds:    map[string]Bound{"width": {Min: 1, Max: 8}},
			Budget:    16,
		}
	}
	cases := []struct {
		name string
		mod  func(*Spec)
		frag string
	}{
		{"no workloads", func(s *Spec) { s.Workloads = nil }, "at least one workload"},
		{"dup workload", func(s *Spec) { s.Workloads = append(s.Workloads, WorkloadWeight{Bench: "gzip"}) }, "listed twice"},
		{"bad bench", func(s *Spec) { s.Workloads[0].Bench = "nope" }, "unknown profile"},
		{"no bounds", func(s *Spec) { s.Bounds = nil }, "at least one parameter bound"},
		{"bad step", func(s *Spec) { s.Bounds["width"] = Bound{Min: 1, Max: 8, Step: 3} }, "not reachable"},
		{"below floor", func(s *Spec) { s.Bounds["width"] = Bound{Min: 0, Max: 8} }, "below the parameter minimum"},
		{"no budget", func(s *Spec) { s.Budget = 0 }, "budget 0 < 1"},
		{"huge budget", func(s *Spec) { s.Budget = 1 << 20 }, "exceeds the 4096-evaluation limit"},
		{"bad objective", func(s *Spec) { s.Objective = "ipc" }, "unknown objective"},
		{"pareto without mode", func(s *Spec) { s.Pareto = []string{"cpi", "area"} }, "objective is"},
		{"pareto dup", func(s *Spec) {
			s.Objective = ObjectivePareto
			s.Pareto = []string{"cpi", "cpi"}
		}, "must differ"},
		{"no valid configs", func(s *Spec) {
			s.Bounds = map[string]Bound{"window": {Min: 200, Max: 200}, "rob": {Min: 100, Max: 100}}
		}, "no valid configuration"},
	}
	for _, tc := range cases {
		spec := base()
		tc.mod(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.frag)
		}
	}
}

// TestInvalidLatticePointsSkipped pins that rob < window lattice points
// are excluded without consuming budget: the grid size counts only valid
// points, and every evaluated candidate satisfies the constraint.
func TestInvalidLatticePointsSkipped(t *testing.T) {
	spec := Spec{
		Workloads: []WorkloadWeight{{Bench: "gzip"}},
		Bounds: map[string]Bound{
			"window": {Min: 32, Max: 64, Step: 32},
			"rob":    {Min: 32, Max: 64, Step: 32},
		},
		Budget: 16,
	}
	var bad atomic.Int64
	eval := func(_ context.Context, cfg Config, _ string) (float64, error) {
		if cfg.ROB < cfg.Window {
			bad.Add(1)
		}
		return 1, nil
	}
	res, err := Run(context.Background(), spec, eval, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GridSize != 3 {
		t.Errorf("GridSize = %d, want 3 (2×2 lattice minus rob<window)", res.GridSize)
	}
	if bad.Load() != 0 {
		t.Errorf("%d invalid candidates were evaluated", bad.Load())
	}
}

// TestRenderAndCSV sanity-checks the rendered surfaces.
func TestRenderAndCSV(t *testing.T) {
	res, err := Run(context.Background(), convexSpec(), convexEval, Options{})
	if err != nil {
		t.Fatal(err)
	}
	render := res.Render()
	if !strings.Contains(render, "minimize cpi over gzip") ||
		!strings.Contains(render, "refinement rounds") {
		t.Errorf("render missing expected lines:\n%s", render)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "eval,width,depth,window,rob,clusters,fetch_buffer,cpi\n") {
		t.Errorf("csv header unexpected:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 1+len(res.Frontier) {
		t.Errorf("csv has %d lines, want %d", lines, 1+len(res.Frontier))
	}
}
