package stats

import (
	"math"
	"testing"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/trace"
)

// loadAt returns a load instruction at a fixed hot PC.
func loadAt(addr uint64) trace.Instruction {
	return trace.Instruction{PC: 0x1000, Class: isa.Load, Addr: addr, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone}
}

func alu() trace.Instruction {
	return trace.Instruction{PC: 0x1004, Class: isa.ALU, Dest: 2, Src1: isa.RegNone, Src2: isa.RegNone}
}

func branch(taken bool) trace.Instruction {
	return trace.Instruction{PC: 0x1008, Class: isa.Branch, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Taken: taken}
}

func TestAnalyzeErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Analyze(&trace.Trace{Name: "empty"}, cfg); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr := &trace.Trace{Name: "x", Instrs: []trace.Instruction{alu()}}
	bad := cfg
	bad.ROBSize = 0
	if _, err := Analyze(tr, bad); err == nil {
		t.Fatal("zero ROB accepted")
	}
	bad = cfg
	bad.Latencies[isa.ALU] = 0
	if _, err := Analyze(tr, bad); err == nil {
		t.Fatal("invalid latencies accepted")
	}
	bad = cfg
	bad.Hierarchy.L1I.Assoc = 0
	if _, err := Analyze(tr, bad); err == nil {
		t.Fatal("invalid hierarchy accepted")
	}
	bad = cfg
	bad.PredictorBits = 0
	if _, err := Analyze(tr, bad); err == nil {
		t.Fatal("invalid predictor accepted")
	}
}

func TestBranchCounting(t *testing.T) {
	// A constantly taken branch: gshare starts weakly-taken, so it never
	// mispredicts here.
	tr := &trace.Trace{Name: "b"}
	for i := 0; i < 100; i++ {
		tr.Instrs = append(tr.Instrs, branch(true))
	}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Branches != 100 {
		t.Fatalf("branches %d", sum.Branches)
	}
	if sum.Mispredicts != 0 {
		t.Fatalf("mispredicts %d on constant branch", sum.Mispredicts)
	}
	if sum.MispredictRate() != 0 || sum.MispredictsPerInstr() != 0 {
		t.Fatal("rates non-zero")
	}
}

func TestDCacheClassification(t *testing.T) {
	tr := &trace.Trace{Name: "d"}
	// Two accesses to the same cold line: first is a long miss, second a
	// hit.
	tr.Instrs = append(tr.Instrs, loadAt(0x4000_0000), loadAt(0x4000_0008))
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.DCacheLong != 1 || sum.DCacheShort != 0 {
		t.Fatalf("long=%d short=%d, want 1/0", sum.DCacheLong, sum.DCacheShort)
	}
}

func TestFLDMGroupingLeaderRule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 10
	tr := &trace.Trace{Name: "g"}
	// Long misses at instruction indices 0, 5, 9 (one group of 3: all
	// within 10 of the leader), then at 30 and 38 (group of 2), then 60
	// (isolated). Distinct cold lines 128 B apart.
	missIdx := map[int]bool{0: true, 5: true, 9: true, 30: true, 38: true, 60: true}
	line := uint64(0)
	for i := 0; i < 70; i++ {
		if missIdx[i] {
			tr.Instrs = append(tr.Instrs, loadAt(0x4000_0000+line*128))
			line++
		} else {
			tr.Instrs = append(tr.Instrs, alu())
		}
	}
	sum, err := Analyze(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DCacheLong != 6 {
		t.Fatalf("long misses %d, want 6", sum.DCacheLong)
	}
	if sum.LongMissGroups[3] != 1 || sum.LongMissGroups[2] != 1 || sum.LongMissGroups[1] != 1 {
		t.Fatalf("groups %v, want one each of sizes 3, 2, 1", sum.LongMissGroups)
	}
	// f(3) = 3/6, f(2) = 2/6, f(1) = 1/6; Σ f(i)/i = 3/6 → 0.5.
	f := sum.FLDM()
	if math.Abs(f[3]-0.5) > 1e-12 || math.Abs(f[2]-1.0/3) > 1e-12 || math.Abs(f[1]-1.0/6) > 1e-12 {
		t.Fatalf("fLDM %v", f)
	}
	if math.Abs(sum.OverlapFactor()-0.5) > 1e-12 {
		t.Fatalf("overlap factor %v, want 0.5", sum.OverlapFactor())
	}
}

func TestFLDMLeaderNotChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 10
	tr := &trace.Trace{Name: "chainvsleader"}
	// Misses at 0, 8, 16: 8 and 16 are 8 apart (within ROB of each
	// other) but 16 is beyond the leader (0) by more than 10 → the
	// leader rule yields groups {0,8} and {16}.
	missIdx := map[int]bool{0: true, 8: true, 16: true}
	line := uint64(0)
	for i := 0; i < 30; i++ {
		if missIdx[i] {
			tr.Instrs = append(tr.Instrs, loadAt(0x4000_0000+line*128))
			line++
		} else {
			tr.Instrs = append(tr.Instrs, alu())
		}
	}
	sum, err := Analyze(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.LongMissGroups[2] != 1 || sum.LongMissGroups[1] != 1 {
		t.Fatalf("groups %v, want {2:1, 1:1}", sum.LongMissGroups)
	}
}

func TestOverlapFactorNoMisses(t *testing.T) {
	tr := &trace.Trace{Name: "nomiss", Instrs: []trace.Instruction{alu(), alu()}}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.OverlapFactor() != 1 {
		t.Fatalf("overlap factor %v with no misses, want 1", sum.OverlapFactor())
	}
	if len(sum.FLDM()) != 0 {
		t.Fatal("fLDM non-empty with no misses")
	}
}

func TestAvgLatencyFoldsShortMisses(t *testing.T) {
	cfg := DefaultConfig()
	// Trace of one load that will short-miss: first warm the L2 with the
	// line, then evict it from L1 by conflicting lines.
	tr := &trace.Trace{Name: "lat"}
	addr := uint64(0x3_0000)
	tr.Instrs = append(tr.Instrs, loadAt(addr)) // long miss
	for i := uint64(1); i <= 4; i++ {
		tr.Instrs = append(tr.Instrs, loadAt(addr+i*1024)) // evict from L1 set
	}
	tr.Instrs = append(tr.Instrs, loadAt(addr)) // short miss now
	sum, err := Analyze(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DCacheShort != 1 {
		t.Fatalf("short misses %d, want 1", sum.DCacheShort)
	}
	// 6 loads: 5 at latency 1 (long misses don't inflate L), 1 at 1+8.
	want := (5.0*1 + 9) / 6
	if math.Abs(sum.AvgLatency-want) > 1e-12 {
		t.Fatalf("avg latency %v, want %v", sum.AvgLatency, want)
	}
}

func TestWarmupRemovesICacheColdMisses(t *testing.T) {
	// A code footprint bigger than L1I but within L2: without warmup the
	// L2 cold misses are counted; with warmup only L1 capacity misses
	// remain.
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "warm"}
		for rep := 0; rep < 4; rep++ {
			for pc := uint64(0); pc < 8192; pc += 4 {
				tr.Instrs = append(tr.Instrs, trace.Instruction{
					PC: 0x40_0000 + pc, Class: isa.ALU, Dest: 1,
					Src1: isa.RegNone, Src2: isa.RegNone,
				})
			}
		}
		return tr
	}
	cold, err := Analyze(mk(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Warmup = true
	warm, err := Analyze(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.ICacheLong == 0 {
		t.Fatal("expected cold-start L2 instruction misses without warmup")
	}
	if warm.ICacheLong != 0 {
		t.Fatalf("warmup left %d L2 instruction misses", warm.ICacheLong)
	}
	if warm.ICacheShort == 0 {
		t.Fatal("expected L1 capacity misses to survive warmup")
	}
}

func TestSummaryRates(t *testing.T) {
	tr := &trace.Trace{Name: "r"}
	for i := 0; i < 10; i++ {
		tr.Instrs = append(tr.Instrs, alu())
	}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Instructions != 10 {
		t.Fatalf("instructions %d", sum.Instructions)
	}
	if sum.ICacheShortPerInstr() != 0 || sum.DCacheLongPerInstr() != 0 {
		t.Fatal("rates should be zero")
	}
	if sum.LongMisses() != 0 {
		t.Fatal("long misses should be zero")
	}
	if sum.Mix[isa.ALU] != 1 {
		t.Fatalf("mix %v", sum.Mix)
	}
}

func TestICacheLongPerInstr(t *testing.T) {
	tr := &trace.Trace{Name: "il"}
	// 256 instructions spread across 256 distinct L2-missing lines.
	for i := 0; i < 256; i++ {
		tr.Instrs = append(tr.Instrs, trace.Instruction{
			PC: 0x40_0000 + uint64(i)*128, Class: isa.ALU, Dest: 1,
			Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.ICacheLong != 256 {
		t.Fatalf("ICacheLong %d, want 256", sum.ICacheLong)
	}
	if got := sum.ICacheLongPerInstr(); got != 1 {
		t.Fatalf("rate %v, want 1", got)
	}
}

func TestICacheMissGaps(t *testing.T) {
	tr := &trace.Trace{Name: "gaps"}
	// Misses at instruction 0 (cold line), 64 (new line), 65..95 same
	// line (hits): two misses, second at gap 64.
	for i := 0; i < 100; i++ {
		pc := uint64(0x40_0000)
		if i >= 64 {
			pc = 0x40_0000 + 128
		}
		tr.Instrs = append(tr.Instrs, trace.Instruction{
			PC: pc, Class: isa.ALU, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.ICacheMissGaps) != 2 {
		t.Fatalf("recorded %d gaps, want 2", len(sum.ICacheMissGaps))
	}
	if sum.ICacheMissGaps[1] != 64 {
		t.Fatalf("second gap %d, want 64", sum.ICacheMissGaps[1])
	}
	if got := sum.IsolatedICacheFrac(32); got != 1 {
		t.Fatalf("isolated frac at 32: %v, want 1", got)
	}
	if got := sum.IsolatedICacheFrac(65); got != 0.5 {
		t.Fatalf("isolated frac at 65: %v, want 0.5 (sentinel first gap)", got)
	}
}

func TestIsolatedICacheFracNoMisses(t *testing.T) {
	tr := &trace.Trace{Name: "nomiss", Instrs: []trace.Instruction{alu()}}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One compulsory miss is recorded (the first fetch); drop it by
	// checking the no-miss API contract directly.
	sum.ICacheMissGaps = nil
	if got := sum.IsolatedICacheFrac(100); got != 1 {
		t.Fatalf("no-miss isolated frac %v, want 1", got)
	}
}

func TestTLBStats(t *testing.T) {
	cfg := DefaultConfig()
	tlbCfg := cache.TLBConfig{Entries: 2, PageBytes: 4096, MissLatency: 50}
	cfg.TLB = &tlbCfg
	cfg.ROBSize = 10
	tr := &trace.Trace{Name: "tlb"}
	// Loads at pages 0,1,2,... each a TLB miss (2-entry TLB, no reuse):
	// misses at instruction indices 0,1,2 (one group of 3), then 50
	// (isolated).
	for i := 0; i < 60; i++ {
		switch {
		case i < 3:
			tr.Instrs = append(tr.Instrs, loadAt(uint64(i)*4096))
		case i == 50:
			tr.Instrs = append(tr.Instrs, loadAt(uint64(i)*4096))
		default:
			tr.Instrs = append(tr.Instrs, alu())
		}
	}
	sum, err := Analyze(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DTLBMisses != 4 {
		t.Fatalf("TLB misses %d, want 4", sum.DTLBMisses)
	}
	if sum.TLBMissGroups[3] != 1 || sum.TLBMissGroups[1] != 1 {
		t.Fatalf("TLB groups %v, want {3:1, 1:1}", sum.TLBMissGroups)
	}
	// Σ f(i)/i = groups/misses = 2/4.
	if got := sum.TLBOverlapFactor(); got != 0.5 {
		t.Fatalf("TLB overlap %v, want 0.5", got)
	}
	if got := sum.TLBMissesPerInstr(); got != 4.0/60 {
		t.Fatalf("TLB rate %v", got)
	}
}

func TestTLBStatsDisabled(t *testing.T) {
	tr := &trace.Trace{Name: "notlb", Instrs: []trace.Instruction{loadAt(0x1000)}}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.DTLBMisses != 0 || sum.TLBOverlapFactor() != 1 {
		t.Fatal("TLB stats non-trivial without a TLB")
	}
}

func TestAnalyzeRejectsBadTLB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLB = &cache.TLBConfig{}
	tr := &trace.Trace{Name: "x", Instrs: []trace.Instruction{alu()}}
	if _, err := Analyze(tr, cfg); err == nil {
		t.Fatal("invalid TLB config accepted")
	}
}

func TestBranchBurstFactor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BranchBurstHorizon = 10
	// Mispredicted branches: gshare counters start weakly-taken, so a
	// never-taken branch at a fresh PC mispredicts exactly once (its
	// first execution). Place four distinct such branches: two back to
	// back (a burst), two far apart (isolated).
	tr := &trace.Trace{Name: "bursts"}
	brAt := map[int]uint64{0: 0x9000, 4: 0x9100, 50: 0x9200, 90: 0x9300}
	for i := 0; i < 100; i++ {
		if pc, ok := brAt[i]; ok {
			tr.Instrs = append(tr.Instrs, trace.Instruction{
				PC: pc, Class: isa.Branch, Dest: isa.RegNone,
				Src1: isa.RegNone, Src2: isa.RegNone, Taken: false,
			})
		} else {
			tr.Instrs = append(tr.Instrs, alu())
		}
	}
	sum, err := Analyze(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mispredicts != 4 {
		t.Fatalf("mispredicts %d, want 4", sum.Mispredicts)
	}
	if sum.MispredictGroups[2] != 1 || sum.MispredictGroups[1] != 2 {
		t.Fatalf("misprediction groups %v, want {2:1, 1:2}", sum.MispredictGroups)
	}
	// Σ f(i)/i = groups/mispredicts = 3/4.
	if got := sum.BranchBurstFactor(); got != 0.75 {
		t.Fatalf("burst factor %v, want 0.75", got)
	}
}

func TestBranchBurstFactorNoMispredicts(t *testing.T) {
	tr := &trace.Trace{Name: "none", Instrs: []trace.Instruction{alu(), alu()}}
	sum, err := Analyze(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.BranchBurstFactor() != 1 {
		t.Fatalf("burst factor %v with no mispredicts, want 1", sum.BranchBurstFactor())
	}
}
