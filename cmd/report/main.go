// Command report runs the reproduction battery and writes a markdown
// report with paper-vs-measured verdicts for every checked artifact.
//
// Usage:
//
//	report [-n instructions] [-seed seed] [-o REPORT.md]
//
// With -o "" (default) the report goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"fomodel/internal/experiments"
	"fomodel/internal/report"
)

func main() {
	n := flag.Int("n", 500000, "dynamic instructions per workload")
	seed := flag.Uint64("seed", 1, "workload generation seed")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	suite := experiments.NewSuite(*n, *seed)
	r, err := report.Generate(suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := r.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "report: %d/%d checks passed\n", r.Passed, r.Total)
	if r.Passed < r.Total {
		os.Exit(2)
	}
}
