// Package main is where roots are minted: context.Background is legal
// here and only here.
package main

import "context"

func main() {
	ctx := context.Background()
	<-ctx.Done()
}
