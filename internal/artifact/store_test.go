package artifact

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func open(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, 0)
	payload := []byte("the artifact payload \x00 with binary bytes \xff")
	if err := s.Put("trace", "gzip|n=1000|seed=7", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("trace", "gzip|n=1000|seed=7")
	if !ok {
		t.Fatal("Get missed a just-written artifact")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	hits, misses, corrupt, writes, _ := s.Stats()
	if hits != 1 || misses != 0 || corrupt != 0 || writes != 1 {
		t.Errorf("stats = (hits %d, misses %d, corrupt %d, writes %d)", hits, misses, corrupt, writes)
	}
}

func TestMissOnAbsentAndWrongKind(t *testing.T) {
	s := open(t, 0)
	if _, ok := s.Get("trace", "nope"); ok {
		t.Error("Get hit on an empty store")
	}
	s.Put("trace", "k", []byte("x"))
	if _, ok := s.Get("preps", "k"); ok {
		t.Error("kinds share a namespace")
	}
}

// artifactFile returns the single artifact file in the store directory.
func artifactFile(t *testing.T, s *Store) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "*.foa"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one artifact file, have %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestCorruptedPayloadDetected(t *testing.T) {
	s := open(t, 0)
	s.Put("preps", "key", []byte("some payload bytes"))
	path := artifactFile(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff // flip a payload byte under the checksum
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("preps", "key"); ok {
		t.Fatal("corrupted artifact served")
	}
	if _, _, corrupt, _, _ := s.Stats(); corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted artifact not deleted")
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	s := open(t, 0)
	s.Put("preps", "key", []byte("some payload bytes"))
	path := artifactFile(t, s)
	data, _ := os.ReadFile(path)
	for _, cut := range []int{0, 3, 11, len(data) / 2, len(data) - 1} {
		os.WriteFile(path, data[:cut], 0o644)
		if _, ok := s.Get("preps", "key"); ok {
			t.Fatalf("truncated artifact (%d bytes) served", cut)
		}
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	s := open(t, 0)
	s.Put("iw", "key", []byte("fitted curve"))
	path := artifactFile(t, s)
	data, _ := os.ReadFile(path)
	// Rewrite the version field: a file written by any other format
	// version must read as a miss, not as a payload.
	binary.LittleEndian.PutUint32(data[4:8], FormatVersion+1)
	os.WriteFile(path, data, 0o644)
	if _, ok := s.Get("iw", "key"); ok {
		t.Fatal("artifact from a different format version served")
	}
	// The stale file is deleted, so a re-Put re-establishes the entry.
	s.Put("iw", "key", []byte("fitted curve v2"))
	got, ok := s.Get("iw", "key")
	if !ok || string(got) != "fitted curve v2" {
		t.Fatalf("re-put after invalidation failed: %q %v", got, ok)
	}
}

func TestKeyMismatchDetected(t *testing.T) {
	s := open(t, 0)
	s.Put("trace", "key-a", []byte("payload"))
	src := artifactFile(t, s)
	// Simulate a filename collision: key-b's slot holds key-a's file.
	data, _ := os.ReadFile(src)
	os.WriteFile(s.path("trace", "key-b"), data, 0o644)
	if _, ok := s.Get("trace", "key-b"); ok {
		t.Fatal("artifact with a mismatched embedded key served")
	}
}

func TestSizeBoundEvictsOldest(t *testing.T) {
	s := open(t, 600)
	payload := make([]byte, 100)
	s.Put("trace", "oldest", payload)
	// Backdate the first artifact so eviction order is unambiguous even
	// on coarse-mtime filesystems.
	old := artifactFile(t, s)
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(old, past, past); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put("trace", string(rune('a'+i)), payload)
	}
	if size := s.SizeBytes(); size > 600 {
		t.Errorf("store size %d exceeds the 600-byte bound", size)
	}
	_, _, _, _, evictions := s.Stats()
	if evictions == 0 {
		t.Error("no evictions recorded despite exceeding the bound")
	}
	if _, ok := s.Get("trace", "oldest"); ok {
		t.Error("oldest artifact survived eviction")
	}
}

// TestGetRefreshesEvictionRecency is the regression test for eviction
// being insertion-order FIFO instead of the documented mtime order: a
// hot artifact written early must outlive a cold one written later.
func TestGetRefreshesEvictionRecency(t *testing.T) {
	s := open(t, 600)
	s.Put("trace", "hot", make([]byte, 100))
	hot := artifactFile(t, s)
	s.Put("trace", "cold", make([]byte, 300))
	// Backdate both entries, "hot" strictly oldest, so without the hit's
	// mtime bump it is unambiguously the eviction victim — and the bump
	// itself is visible even on coarse-mtime filesystems.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(hot, past.Add(-time.Minute), past.Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(s.Dir(), "*.foa"))
	if len(matches) != 2 {
		t.Fatalf("want two artifact files, have %v", matches)
	}
	for _, m := range matches {
		if m == hot {
			continue
		}
		if err := os.Chtimes(m, past, past); err != nil {
			t.Fatal(err)
		}
	}
	// The verified hit must refresh "hot" to now; the next Put overflows
	// the bound by one file's worth, so exactly the stalest entry goes.
	if _, ok := s.Get("trace", "hot"); !ok {
		t.Fatal("hot artifact missing before eviction")
	}
	s.Put("trace", "filler", make([]byte, 100))
	if _, ok := s.Get("trace", "hot"); !ok {
		t.Error("recently-read artifact evicted before an untouched newer one")
	}
	if _, ok := s.Get("trace", "cold"); ok {
		t.Error("untouched artifact survived eviction ahead of a recently-read one")
	}
	if _, ok := s.Get("trace", "filler"); !ok {
		t.Error("just-written artifact evicted")
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if err := s.Put("trace", "k", []byte("x")); err != nil {
		t.Errorf("nil Put errored: %v", err)
	}
	if _, ok := s.Get("trace", "k"); ok {
		t.Error("nil Get hit")
	}
	if s.SizeBytes() != 0 || s.Dir() != "" {
		t.Error("nil accessors not zero")
	}
}

func TestGobRoundTrip(t *testing.T) {
	type payload struct {
		F float64
		M map[int]int
		S []int32
	}
	in := payload{F: 0.1 + 0.2, M: map[int]int{3: 4}, S: []int32{1, -1}}
	b, err := EncodeGob(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := DecodeGob(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.F != in.F || out.M[3] != 4 || len(out.S) != 2 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}
