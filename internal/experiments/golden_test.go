package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// compareGolden checks got against the named golden file, rewriting it
// under -update.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output changed; rerun with -update if intentional.\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The purely analytic experiments (no workload generation involved) must
// render byte-identically forever; golden files lock them down. Regenerate
// deliberately with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGoldenAnalyticFigures(t *testing.T) {
	s := smallSuite() // analytic figures ignore the workloads
	cases := []struct {
		name string
		run  func(*Suite) (Renderable, error)
	}{
		{"fig8", func(s *Suite) (Renderable, error) { return Figure8(s) }},
		{"fig10", func(s *Suite) (Renderable, error) { return Figure10(s) }},
		{"fig12", func(s *Suite) (Renderable, error) { return Figure12(s) }},
		{"fig13", func(s *Suite) (Renderable, error) { return Figure13(s) }},
		{"fig17", func(s *Suite) (Renderable, error) { return Figure17(s) }},
		{"fig18", func(s *Suite) (Renderable, error) { return Figure18(s) }},
		{"fig19", func(s *Suite) (Renderable, error) { return Figure19(s) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run(s)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, tc.name, res.Render())
		})
	}
}

// TestGoldenSweeps locks down both renderings (aligned table and CSV) of
// the two simulator-validated sweep experiments at a fixed small trace
// length, pinning the exact bytes /v1/sweep and cmd/experiments emit.
func TestGoldenSweeps(t *testing.T) {
	s := NewSuite(60000, 1)
	cases := []struct {
		name string
		run  func(context.Context, *Suite) (*SweepResult, error)
	}{
		{"sweep-window", WindowSweep},
		{"sweep-rob", ROBSweep},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, tc.name, res.Render())
			compareGolden(t, tc.name+".csv", res.CSV())
		})
	}
}
