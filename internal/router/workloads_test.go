package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fomodel/internal/server"
	"fomodel/internal/workload"
)

// profileBody renders a registerable profile derived from a built-in,
// renamed to name.
func profileBody(t *testing.T, builtin, name string) string {
	t.Helper()
	p, err := workload.ByName(builtin)
	if err != nil {
		t.Fatal(err)
	}
	p.Name = name
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func del(t *testing.T, base, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWorkloadReplicationFanout pins the replicated-write contract: one
// POST through the proxy registers the workload on EVERY replica, the
// mirror resolves the name, and a predict by that name through the
// proxy is byte-equal to the daemons' own.
func TestWorkloadReplicationFanout(t *testing.T) {
	_, tsA := newDaemon(t)
	_, tsB := newDaemon(t)
	rt, proxy := newProxy(t, Config{Replicas: []string{tsA.URL, tsB.URL}})

	resp := post(t, proxy.URL, "/v1/workloads/wl", profileBody(t, "gzip", "wl"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register via proxy: %d\n%s", resp.StatusCode, readAll(t, resp))
	}
	var reg server.WorkloadRegistration
	if err := json.Unmarshal(readAll(t, resp), &reg); err != nil {
		t.Fatal(err)
	}
	if hash, ok := rt.mirror.WorkloadContent("wl"); !ok || hash != reg.ContentHash {
		t.Errorf("mirror = (%q, %v), want the registered hash %q", hash, ok, reg.ContentHash)
	}

	// Every replica holds the registration, not just the routed one.
	for _, base := range []string{tsA.URL, tsB.URL} {
		r := get(t, base, "/v1/workloads/wl")
		if r.StatusCode != http.StatusOK {
			t.Fatalf("replica %s missing the registration: %d", base, r.StatusCode)
		}
		var got server.WorkloadRegistration
		if err := json.Unmarshal(readAll(t, r), &got); err != nil {
			t.Fatal(err)
		}
		if got.ContentHash != reg.ContentHash {
			t.Errorf("replica %s hash %q, want %q", base, got.ContentHash, reg.ContentHash)
		}
	}

	// Predict by the registered name: proxy bytes == daemon bytes.
	viaProxy := post(t, proxy.URL, "/v1/predict", `{"bench":"wl"}`, nil)
	if viaProxy.StatusCode != http.StatusOK {
		t.Fatalf("predict via proxy: %d\n%s", viaProxy.StatusCode, readAll(t, viaProxy))
	}
	proxyBytes := readAll(t, viaProxy)
	direct := post(t, tsA.URL, "/v1/predict", `{"bench":"wl"}`, nil)
	if directBytes := readAll(t, direct); string(proxyBytes) != string(directBytes) {
		t.Error("proxied registered-name predict differs from the daemon's own bytes")
	}

	// The mirror size is visible on the proxy's metrics surface.
	if m := string(readAll(t, get(t, proxy.URL, "/metrics"))); !strings.Contains(m, "fomodelproxy_workload_mirror_size 1") {
		t.Error("metrics missing fomodelproxy_workload_mirror_size 1 after register")
	}

	// GET by name routes through the proxy too.
	if r := get(t, proxy.URL, "/v1/workloads/wl"); r.StatusCode != http.StatusOK {
		t.Errorf("get via proxy: %d", r.StatusCode)
	} else {
		readAll(t, r)
	}

	// DELETE fans out and clears the mirror.
	if r := del(t, proxy.URL, "/v1/workloads/wl"); r.StatusCode != http.StatusOK {
		t.Fatalf("delete via proxy: %d", r.StatusCode)
	} else {
		readAll(t, r)
	}
	if _, ok := rt.mirror.WorkloadContent("wl"); ok {
		t.Error("mirror entry survived deletion")
	}
	for _, base := range []string{tsA.URL, tsB.URL} {
		if r := get(t, base, "/v1/workloads/wl"); r.StatusCode != http.StatusNotFound {
			t.Errorf("replica %s still serves the deleted name: %d", base, r.StatusCode)
		} else {
			readAll(t, r)
		}
	}
	if r := get(t, proxy.URL, "/v1/workloads/wl"); r.StatusCode != http.StatusNotFound {
		t.Errorf("get via proxy after delete: %d, want 404", r.StatusCode)
	} else {
		readAll(t, r)
	}
}

// TestWorkloadRegisterRefusalWins pins the all-or-nothing answer rule: a
// replica refusing the registration speaks for the fleet, and the
// mirror is not updated.
func TestWorkloadRegisterRefusalWins(t *testing.T) {
	refusing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		w.Write([]byte(`{"error":"registry: tenant quota exceeded"}`))
	}))
	t.Cleanup(refusing.Close)
	_, accepting := newDaemon(t)
	rt, proxy := newProxy(t, Config{Replicas: []string{refusing.URL, accepting.URL}})

	resp := post(t, proxy.URL, "/v1/workloads/wl", profileBody(t, "gzip", "wl"), nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status %d, want the refusing replica's 403\n%s", resp.StatusCode, body)
	}
	if _, ok := rt.mirror.WorkloadContent("wl"); ok {
		t.Error("mirror updated despite a replica refusing")
	}
}

// TestWorkloadRegisterTransportErrorIs502 pins the partial-write answer:
// a replica that cannot be reached at all turns the write into a 502 so
// the client knows the fleet state is not uniform.
func TestWorkloadRegisterTransportErrorIs502(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // refuse all connections
	_, alive := newDaemon(t)
	rt, proxy := newProxy(t, Config{Replicas: []string{alive.URL, dead.URL}})

	resp := post(t, proxy.URL, "/v1/workloads/wl", profileBody(t, "gzip", "wl"), nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502\n%s", resp.StatusCode, body)
	}
	if _, ok := rt.mirror.WorkloadContent("wl"); ok {
		t.Error("mirror updated despite a partial write")
	}
}

// TestReregisterThroughProxyNeverServesStaleBytes is the proxy half of
// the stale-bytes property: register, predict, delete, re-register the
// same name with different content — all through the proxy, across two
// replicas — and the new prediction must reflect the new content.
func TestReregisterThroughProxyNeverServesStaleBytes(t *testing.T) {
	_, tsA := newDaemon(t)
	_, tsB := newDaemon(t)
	_, proxy := newProxy(t, Config{Replicas: []string{tsA.URL, tsB.URL}})

	if r := post(t, proxy.URL, "/v1/workloads/wl", profileBody(t, "gzip", "wl"), nil); r.StatusCode != http.StatusOK {
		t.Fatalf("register: %d\n%s", r.StatusCode, readAll(t, r))
	} else {
		readAll(t, r)
	}
	first := post(t, proxy.URL, "/v1/predict", `{"bench":"wl"}`, nil)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first predict: %d", first.StatusCode)
	}
	firstBytes := readAll(t, first)

	if r := del(t, proxy.URL, "/v1/workloads/wl"); r.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", r.StatusCode)
	} else {
		readAll(t, r)
	}
	if r := post(t, proxy.URL, "/v1/workloads/wl", profileBody(t, "mcf", "wl"), nil); r.StatusCode != http.StatusOK {
		t.Fatalf("re-register: %d\n%s", r.StatusCode, readAll(t, r))
	} else {
		readAll(t, r)
	}

	second := post(t, proxy.URL, "/v1/predict", `{"bench":"wl"}`, nil)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second predict: %d\n%s", second.StatusCode, readAll(t, second))
	}
	secondBytes := readAll(t, second)
	if string(secondBytes) == string(firstBytes) {
		t.Fatal("re-registered workload served the previous profile's bytes through the proxy")
	}
	// And every replica agrees with the proxy's answer.
	for _, base := range []string{tsA.URL, tsB.URL} {
		r := post(t, base, "/v1/predict", `{"bench":"wl"}`, nil)
		if got := readAll(t, r); string(got) != string(secondBytes) {
			t.Errorf("replica %s disagrees with the proxied post-re-register bytes", base)
		}
	}
}
