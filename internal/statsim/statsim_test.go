package statsim

import (
	"math"
	"testing"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/trace"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

func TestMeasureErrors(t *testing.T) {
	cfg := uarch.DefaultConfig()
	if _, err := Measure(&trace.Trace{Name: "empty"}, cfg); err == nil {
		t.Fatal("empty trace accepted")
	}
	cfg.Width = 0
	tr, err := workload.Generate("gzip", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(tr, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMeasureChainDependences(t *testing.T) {
	// A pure dependence chain: every instruction has src1 at distance 1.
	tr := &trace.Trace{Name: "chain"}
	for i := 0; i < 1000; i++ {
		in := trace.Instruction{
			PC: 0x40_0000, Class: isa.ALU,
			Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone,
		}
		if i > 0 {
			in.Src1 = int16((i - 1) % isa.NumArchRegs)
		}
		tr.Instrs = append(tr.Instrs, in)
	}
	p, err := Measure(tr, uarch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Src1Frac < 0.99 {
		t.Fatalf("src1 fraction %v, want ~1", p.Src1Frac)
	}
	if p.Src2Frac != 0 {
		t.Fatalf("src2 fraction %v, want 0", p.Src2Frac)
	}
	if p.DistHist[0] < 0.99 {
		t.Fatalf("distance-1 probability %v, want ~1", p.DistHist[0])
	}
}

func TestSynthesizePreservesStatistics(t *testing.T) {
	tr, err := workload.Generate("gzip", 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	p, err := Measure(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	synth, events, err := p.Synthesize(40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatalf("synthetic trace invalid: %v", err)
	}
	if len(events) != synth.Len() {
		t.Fatal("event/instruction length mismatch")
	}
	// Class mix within 2 percentage points.
	mix := synth.Mix()
	for c := range mix {
		if math.Abs(mix[c]-p.Mix[c]) > 0.02 {
			t.Errorf("class %v mix %v, measured %v", isa.Class(c), mix[c], p.Mix[c])
		}
	}
	// Misprediction and long-miss rates within 20% relative.
	var branches, misp, mem, long int
	for i := range synth.Instrs {
		switch synth.Instrs[i].Class {
		case isa.Branch:
			branches++
			if events[i].Mispredict {
				misp++
			}
		case isa.Load, isa.Store:
			mem++
			if events[i].DCache == cache.LongMiss {
				long++
			}
		}
	}
	gotMisp := float64(misp) / float64(branches)
	if math.Abs(gotMisp-p.MispredictPerBranch) > 0.2*p.MispredictPerBranch+0.005 {
		t.Errorf("synthetic misprediction rate %v, measured %v", gotMisp, p.MispredictPerBranch)
	}
	// Stationary long rate of the two-state chain.
	wantLong := p.PLongAfterOther / (1 - p.PLongAfterLong + p.PLongAfterOther)
	gotLong := float64(long) / float64(mem)
	if math.Abs(gotLong-wantLong) > 0.3*wantLong+0.002 {
		t.Errorf("synthetic long-miss rate %v, stationary %v", gotLong, wantLong)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	p := &Profile{Name: "x"}
	if _, _, err := p.Synthesize(100, 1); err == nil {
		t.Fatal("profile without histogram accepted")
	}
	p.DistHist = []float64{1}
	if _, _, err := p.Synthesize(0, 1); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	tr, err := workload.Generate("bzip", 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Measure(tr, uarch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, ae, err := p.Synthesize(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, be, err := p.Synthesize(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] || ae[i] != be[i] {
			t.Fatalf("synthesis not deterministic at %d", i)
		}
	}
}

func TestStatisticalSimulationAccuracy(t *testing.T) {
	// The headline claim: statistical simulation approximates the real
	// trace's detailed simulation. 25% is a loose bound for a 40k run on
	// one benchmark.
	tr, err := workload.Generate("gzip", 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	ref, err := uarch.Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss, p, err := Simulate(tr, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "gzip" {
		t.Fatalf("profile name %q", p.Name)
	}
	errFrac := math.Abs(ss.CPI()-ref.CPI()) / ref.CPI()
	if errFrac > 0.25 {
		t.Fatalf("statistical simulation CPI %v vs reference %v (err %v)", ss.CPI(), ref.CPI(), errFrac)
	}
}

func TestSimulateWithEventsValidation(t *testing.T) {
	tr := &trace.Trace{Name: "t", Instrs: []trace.Instruction{
		{PC: 1, Class: isa.ALU, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
	}}
	cfg := uarch.DefaultConfig()
	if _, err := uarch.SimulateWithEvents(tr, nil, cfg); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := uarch.SimulateWithEvents(tr, []uarch.Event{{TLBMiss: true}}, cfg); err == nil {
		t.Fatal("TLB-miss event without TLB accepted")
	}
	r, err := uarch.SimulateWithEvents(tr, []uarch.Event{{}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 1 {
		t.Fatalf("instructions %d", r.Instructions)
	}
}
