package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestNilReceivers(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter non-zero")
	}
	var g *Gauge
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge non-zero")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 || len(s.Bounds) != 0 {
		t.Fatal("nil histogram non-empty")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	g.Set(7)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge after Set = %d, want 7", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	if got := nilG.Load(); got != 0 {
		t.Fatalf("nil gauge after Set = %d, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := []int64{1, 3, 4} // ≤0.01, ≤0.1, ≤1; the 5.0 lands in +Inf
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	if s.Sum < 5.6 || s.Sum > 5.62 {
		t.Fatalf("sum = %v, want ≈5.61", s.Sum)
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(1) // exactly on the bound counts in that bucket
	if s := h.Snapshot(); s.Cumulative[0] != 1 {
		t.Fatalf("boundary observation not ≤ bound: %v", s.Cumulative)
	}
}

// TestQuantile pins the bucket-quantile contract: the estimate is the
// smallest bound covering the requested fraction, empty histograms give
// 0, and overflow observations give +Inf.
func TestQuantile(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	for i := 0; i < 98; i++ {
		h.Observe(0.0005) // ≤ 0.001
	}
	h.Observe(0.05) // ≤ 0.1
	h.Observe(0.05)
	if got := h.Quantile(0.5); got != 0.001 {
		t.Errorf("P50 = %v, want 0.001", got)
	}
	if got := h.Quantile(0.99); got != 0.1 {
		t.Errorf("P99 = %v, want 0.1 (the bucket holding the 99th observation)", got)
	}
	h.Observe(5) // overflow bucket
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("P100 with an overflow observation = %v, want +Inf", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Errorf("nil Quantile = %v, want 0", got)
	}
}
