package cli

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's log while the serve
// goroutine writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenAddrRE = regexp.MustCompile(`"msg":"fomodeld listening","addr":"([^"]+)"`)

// TestFomodeldLifecycle boots the daemon on an ephemeral port, serves a
// request, and shuts it down gracefully via context cancellation — the
// same path a SIGINT takes through cmd/fomodeld.
func TestFomodeldLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- Fomodeld(ctx, []string{"-addr", "127.0.0.1:0", "-n", "20000"}, &out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its listen address; log:\n%s", out.String())
		}
		if m := listenAddrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d, body: %s", resp.StatusCode, body)
	}
	var h struct {
		Status string `json:"status"`
		N      int    `json:"n"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.N != 20000 {
		t.Errorf("healthz = %+v, want status ok with n=20000", h)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s of cancellation")
	}
	if !strings.Contains(out.String(), "fomodeld stopped") {
		t.Errorf("log missing the clean-shutdown line:\n%s", out.String())
	}
}

// TestFomodeldRejectsArgs pins the flag surface: positional arguments
// are a usage error, not silently ignored.
func TestFomodeldRejectsArgs(t *testing.T) {
	err := Fomodeld(context.Background(), []string{"gzip"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unexpected argument") {
		t.Fatalf("err = %v, want unexpected-argument error", err)
	}
}
