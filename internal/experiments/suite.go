// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each experiment is a
// function returning a typed result with a Render method that prints the
// same rows or series the paper reports; cmd/experiments exposes them on
// the command line and bench_test.go exposes them as benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"fomodel/internal/core"
	"fomodel/internal/iw"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

// Suite owns the shared experiment inputs: the benchmark list, trace
// length, seed, and the baseline machine. Workload analyses are computed
// once and cached; the cache is safe for concurrent use.
type Suite struct {
	// N is the dynamic instruction count per workload.
	N int
	// Seed feeds the workload generators.
	Seed uint64
	// Names lists the benchmarks, in report order.
	Names []string
	// Machine is the modeled baseline machine.
	Machine core.Machine
	// Sim is the baseline simulator configuration; its parameters mirror
	// Machine.
	Sim uarch.Config

	mu    sync.Mutex
	cache map[string]*Workload
}

// Workload bundles one benchmark's trace and every derived analysis the
// experiments consume.
type Workload struct {
	Name    string
	Trace   *trace.Trace
	Points  []iw.Point
	Law     iw.PowerLaw
	Summary *stats.Summary
	Inputs  core.Inputs
}

// NewSuite returns a Suite over all twelve benchmarks with the paper's
// baseline machine. n is the per-benchmark dynamic instruction count
// (500k gives stable statistics; the unit tests use less).
func NewSuite(n int, seed uint64) *Suite {
	m := core.DefaultMachine()
	sim := uarch.DefaultConfig()
	return &Suite{
		N:       n,
		Seed:    seed,
		Names:   workload.Names(),
		Machine: m,
		Sim:     sim,
		cache:   make(map[string]*Workload),
	}
}

// Workload returns the cached analysis bundle for name, computing it on
// first use.
func (s *Suite) Workload(name string) (*Workload, error) {
	s.mu.Lock()
	if w, ok := s.cache[name]; ok {
		s.mu.Unlock()
		return w, nil
	}
	s.mu.Unlock()

	t, err := workload.Generate(name, s.N, s.Seed)
	if err != nil {
		return nil, err
	}
	points, err := iw.Characteristic(t, iw.DefaultWindows(), iw.Options{})
	if err != nil {
		return nil, err
	}
	law, err := iw.Fit(points)
	if err != nil {
		return nil, err
	}
	scfg := stats.DefaultConfig()
	scfg.Hierarchy = s.Sim.Hierarchy
	scfg.PredictorBits = s.Sim.PredictorBits
	scfg.Latencies = s.Sim.Latencies
	scfg.ROBSize = s.Machine.ROBSize
	scfg.Warmup = s.Sim.Warmup
	sum, err := stats.Analyze(t, scfg)
	if err != nil {
		return nil, err
	}
	inputs, err := core.InputsFromCurve(law, points, s.Machine.WindowSize, sum)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name:    name,
		Trace:   t,
		Points:  points,
		Law:     law,
		Summary: sum,
		Inputs:  inputs,
	}
	s.mu.Lock()
	s.cache[name] = w
	s.mu.Unlock()
	return w, nil
}

// EachWorkload runs fn for every benchmark, in order, stopping at the
// first error.
func (s *Suite) EachWorkload(fn func(*Workload) error) error {
	for _, name := range s.Names {
		w, err := s.Workload(name)
		if err != nil {
			return err
		}
		if err := fn(w); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
	}
	return nil
}

// Simulate runs the detailed simulator on w with the given ideal toggles,
// starting from the suite's baseline configuration.
func (s *Suite) Simulate(w *Workload, mutate func(*uarch.Config)) (*uarch.Result, error) {
	cfg := s.Sim
	if mutate != nil {
		mutate(&cfg)
	}
	return uarch.Simulate(w.Trace, cfg)
}

// Estimate runs the analytical model on w with the paper's default
// options.
func (s *Suite) Estimate(w *Workload) (core.Estimate, error) {
	return s.Machine.Estimate(w.Inputs, core.Options{})
}

// Registry maps experiment names ("fig2", "table1", …) to runners that
// produce renderable results.
type Registry map[string]func(*Suite) (Renderable, error)

// Renderable is a computed experiment result that can print itself as the
// paper-style table or series.
type Renderable interface {
	Render() string
}

// DefaultRegistry returns every experiment keyed by its paper label.
func DefaultRegistry() Registry {
	return Registry{
		"fig2":          func(s *Suite) (Renderable, error) { return Figure2(s) },
		"fig4":          func(s *Suite) (Renderable, error) { return Figure4(s) },
		"table1":        func(s *Suite) (Renderable, error) { return Table1(s) },
		"fig5":          func(s *Suite) (Renderable, error) { return Figure5(s) },
		"fig6":          func(s *Suite) (Renderable, error) { return Figure6(s) },
		"fig7":          func(s *Suite) (Renderable, error) { return Figure7(s) },
		"fig8":          func(s *Suite) (Renderable, error) { return Figure8(s) },
		"fig9":          func(s *Suite) (Renderable, error) { return Figure9(s) },
		"fig10":         func(s *Suite) (Renderable, error) { return Figure10(s) },
		"fig11":         func(s *Suite) (Renderable, error) { return Figure11(s) },
		"fig12":         func(s *Suite) (Renderable, error) { return Figure12(s) },
		"fig13":         func(s *Suite) (Renderable, error) { return Figure13(s) },
		"fig14":         func(s *Suite) (Renderable, error) { return Figure14(s) },
		"fig15":         func(s *Suite) (Renderable, error) { return Figure15(s) },
		"fig16":         func(s *Suite) (Renderable, error) { return Figure16(s) },
		"fig17":         func(s *Suite) (Renderable, error) { return Figure17(s) },
		"fig18":         func(s *Suite) (Renderable, error) { return Figure18(s) },
		"fig19":         func(s *Suite) (Renderable, error) { return Figure19(s) },
		"ext-fu":        func(s *Suite) (Renderable, error) { return ExtensionFU(s) },
		"ext-fetchbuf":  func(s *Suite) (Renderable, error) { return ExtensionFetchBuffer(s) },
		"ext-tlb":       func(s *Suite) (Renderable, error) { return ExtensionTLB(s) },
		"ext-cluster":   func(s *Suite) (Renderable, error) { return ExtensionClusters(s) },
		"predictors":    func(s *Suite) (Renderable, error) { return PredictorStudy(s) },
		"sweep-window":  func(s *Suite) (Renderable, error) { return WindowSweep(s) },
		"sweep-rob":     func(s *Suite) (Renderable, error) { return ROBSweep(s) },
		"statsim":       func(s *Suite) (Renderable, error) { return StatSimStudy(s) },
		"refine-branch": func(s *Suite) (Renderable, error) { return BranchBurstRefinement(s) },
		"methods":       func(s *Suite) (Renderable, error) { return MethodologyComparison(s) },
		"seeds":         func(s *Suite) (Renderable, error) { return SeedRobustness(s) },
		"inorder":       func(s *Suite) (Renderable, error) { return InOrderBaseline(s) },
		"littleslaw":    func(s *Suite) (Renderable, error) { return LittlesLaw(s) },
	}
}

// Labels returns the registry's experiment names, sorted.
func (r Registry) Labels() []string {
	labels := make([]string, 0, len(r))
	for l := range r {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}
