// Command fomodel runs the first-order analytical model on one or more
// synthetic workloads and prints the CPI stack; with -sim it also runs the
// detailed cycle-level simulator and reports the model's error, i.e. the
// paper's Fig. 15/16 for arbitrary configurations.
//
// Usage:
//
//	fomodel [-n instructions] [-seed seed] [-sim] [-json] [-width 4]
//	        [-depth 5] [-window 48] [-rob 128] [-clusters K] [-tlb]
//	        [-fetch-buffer N] [-fu mul=1,load=2]
//	        [-branch-mode midpoint|isolated|measured]
//	        [-profile file.json] [workload ...]
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fomodel/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Fomodel(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fomodel: %v\n", err)
		os.Exit(1)
	}
}
