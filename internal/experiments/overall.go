package experiments

import (
	"fomodel/internal/core"
)

// modelOptions returns the paper's §5 model choices.
func modelOptions() core.Options { return core.Options{} }

// Figure15Row is one benchmark of the paper's Fig. 15: overall CPI from
// the first-order model versus detailed simulation.
type Figure15Row struct {
	Name     string
	ModelCPI float64
	SimCPI   float64
	// Err is the relative CPI error (model vs simulation).
	Err float64
	// Estimate carries the model's full decomposition for Fig. 16.
	Estimate core.Estimate
}

// Figure15Result is the full Fig. 15 dataset.
type Figure15Result struct {
	Rows []Figure15Row
	// MeanAbsErr is the average |error| (the paper reports 5.8%); MaxAbs
	// the worst benchmark (13% in the paper).
	MeanAbsErr float64
	MaxAbsErr  float64
	WorstBench string
}

// Figure15 evaluates the complete model against the detailed simulator
// following the paper's §5 procedure. The benchmarks fan out across the
// suite's worker pool.
func Figure15(s *Suite) (*Figure15Result, error) {
	rows, err := MapWorkloads(s, func(w *Workload) (Figure15Row, error) {
		var zero Figure15Row
		est, err := s.Machine.Estimate(w.Inputs, modelOptions())
		if err != nil {
			return zero, err
		}
		sim, err := s.Simulate(w, nil)
		if err != nil {
			return zero, err
		}
		return Figure15Row{
			Name:     w.Name,
			ModelCPI: est.CPI,
			SimCPI:   sim.CPI(),
			Err:      relErr(est.CPI, sim.CPI()),
			Estimate: est,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure15Result{Rows: rows}
	for _, r := range res.Rows {
		e := abs(r.Err)
		res.MeanAbsErr += e
		if e > res.MaxAbsErr {
			res.MaxAbsErr = e
			res.WorstBench = r.Name
		}
	}
	res.MeanAbsErr /= float64(len(res.Rows))
	return res, nil
}

// tab builds the result table.
func (r *Figure15Result) tab() *table {
	t := &table{
		title:  "Figure 15: first-order model vs detailed simulation (CPI)",
		header: []string{"bench", "model", "simulation", "err"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.ModelCPI), f3(row.SimCPI), pct(row.Err))
	}
	t.addNote("mean |err| %s (paper 5.8%%), worst %s on %s (paper 13%% on mcf)",
		pct(r.MeanAbsErr), pct(r.MaxAbsErr), r.WorstBench)
	return t
}

// Render prints the table as aligned text.
func (r *Figure15Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure15Result) CSV() string { return r.tab().CSV() }

// Figure16Result is the paper's Fig. 16 "stack model": the CPI
// contribution of each miss-event category per benchmark. It reuses the
// Fig. 15 model estimates.
type Figure16Result struct {
	Rows []Figure15Row
}

// Figure16 builds the CPI stacks.
func Figure16(s *Suite) (*Figure16Result, error) {
	f15, err := Figure15(s)
	if err != nil {
		return nil, err
	}
	return &Figure16Result{Rows: f15.Rows}, nil
}

// tab builds the result table.
func (r *Figure16Result) tab() *table {
	t := &table{
		title:  "Figure 16: CPI stack (model components)",
		header: []string{"bench", "ideal", "L1 I$", "L2 I$", "L2 D$", "branch", "total", "D$ share"},
	}
	for _, row := range r.Rows {
		e := row.Estimate
		share := 0.0
		if e.CPI > 0 {
			share = e.DCacheCPI / e.CPI
		}
		t.addRow(row.Name, f3(e.SteadyCPI), f3(e.ICacheShortCPI), f3(e.ICacheLongCPI),
			f3(e.DCacheCPI), f3(e.BranchCPI), f3(e.CPI), pct(share))
	}
	t.addNote("paper: long data misses are ~70%% of mcf's CPI and ~60%% of twolf's")
	return t
}

// Render prints the table as aligned text.
func (r *Figure16Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure16Result) CSV() string { return r.tab().CSV() }
