package uarch

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"

	"fomodel/internal/artifact"
	"fomodel/internal/cache"
	"fomodel/internal/metrics"
	"fomodel/internal/predictor"
	"fomodel/internal/trace"
)

// classKey is the classification-relevant subset of Config. Two configs
// with equal keys produce bit-identical classify results on the same
// trace, so the prep cache may share one classification between them.
//
// Deliberately excluded — they affect only the timing pass, never the
// functional classification: Width, FrontEndDepth, WindowSize, ROBSize,
// Latencies, FUCounts, FetchBufferSize, InOrder, RecordIssueTrace,
// Clusters, BypassLatency, SerializeLongMisses, the three Ideal* toggles
// (classify always runs the full functional pass; run decides whether to
// charge the events), the hierarchy's Short/LongMissLatency, and the
// TLB's MissLatency. The Ideal-toggle exclusion is what lets the paper's
// five-simulation experiments (Fig. 2, Fig. 9, …) share one prep.
type classKey struct {
	l1i, l1d, l2 cache.Config
	predBits     uint
	hasSpec      bool
	spec         predictor.Spec
	hasTLB       bool
	tlbEntries   int
	tlbPageBytes uint64
	warmup       bool
}

// classFormatVersion is the serialization version of classification
// preps. It is part of every preps artifact key, so a change to the
// classification semantics or the packed encoding invalidates stored
// artifacts instead of reinterpreting them.
const classFormatVersion = 1

// artifactKey renders the key as the canonical content string used by
// the artifact store. Every field is a scalar or a plain struct of
// scalars, so %+v is a stable, collision-free rendering.
func (k classKey) artifactKey() string {
	return fmt.Sprintf("c%d|%+v", classFormatVersion, k)
}

// classificationKey projects cfg onto its classification-relevant subset.
func classificationKey(cfg Config) classKey {
	k := classKey{
		l1i:    cfg.Hierarchy.L1I,
		l1d:    cfg.Hierarchy.L1D,
		l2:     cfg.Hierarchy.L2,
		warmup: cfg.Warmup,
	}
	if cfg.Predictor != nil {
		// The spec overrides the gshare default, so PredictorBits is
		// irrelevant and must not fragment the key.
		k.hasSpec, k.spec = true, *cfg.Predictor
	} else {
		k.predBits = cfg.PredictorBits
	}
	if cfg.TLB != nil {
		k.hasTLB = true
		k.tlbEntries = cfg.TLB.Entries
		k.tlbPageBytes = cfg.TLB.PageBytes
	}
	return k
}

// traceID identifies a trace by content when possible and by pointer
// identity otherwise. Content-identified traces (from the deterministic
// workload generators) share cache entries across distinct in-memory
// copies, across processes, and across restarts; anonymous traces fall
// back to identity, exactly as safe as the old pointer keying.
type traceID struct {
	content string
	ptr     *trace.Trace
}

func idOf(t *trace.Trace) traceID {
	if t.ContentID != "" {
		return traceID{content: t.ContentID}
	}
	return traceID{ptr: t}
}

// prepsKey identifies one cached classification: the trace's content (or
// identity) and the classification-relevant config subset.
type prepsKey struct {
	id  traceID
	key classKey
}

// prepsEntry is one single-flight cache slot: the first caller classifies
// inside once, every later or concurrent caller blocks on it and shares
// the outcome. Errors are cached too — classification is deterministic,
// so retrying cannot change the result.
type prepsEntry struct {
	key  prepsKey
	elem *list.Element
	once sync.Once
	// finished is set under the cache mutex after once completed;
	// eviction only considers finished entries, so a caller blocked on
	// the computation can never be detached from it.
	finished bool
	preps    []prep
	err      error
}

// prodEntry single-flights the per-trace producer-link computation.
type prodEntry struct {
	id       traceID
	elem     *list.Element
	once     sync.Once
	finished bool
	prod     []trace.Producer
}

// Default entry bounds. Entries are large — a preps slice holds one
// record per dynamic instruction — so the bounds are what keep a client
// sweeping seeds (each sweep step a fresh content key) from growing the
// cache without limit. At the daemon's default 500k instructions, 64
// preps entries cap that cache's footprint at roughly half a gigabyte.
const (
	defaultMaxPreps = 64
	defaultMaxProds = 32
)

// PrepCache memoizes the expensive one-time preparation work of Simulate
// across configs and runs: the functional classification pass (caches,
// predictor, TLB, warmup) keyed on the classification-relevant subset of
// Config, and the per-trace producer dependence links keyed on the trace
// alone. Multi-config studies — the paper's five-simulation independence
// experiments, predictor studies, ROB/window sweeps — vary only
// timing-side parameters, so with the cache they classify each trace once
// instead of once per config.
//
// Entries are keyed by trace *content* (trace.Trace.ContentID) when the
// trace carries it, falling back to pointer identity for anonymous
// traces, and both maps are bounded LRUs: a workload population of
// unbounded size (seed sweeps, per-user workloads) recycles slots
// instead of growing without bound. With a Store attached, evicted or
// never-computed classifications are served from disk when a valid
// artifact exists, and fresh computations are written back — that is
// what carries prep work across daemon restarts.
//
// The cache is safe for concurrent use and single-flight: concurrent
// requests for the same key block on one computation and share its
// result, so a parallel sweep performs exactly the same number of
// classifications as a sequential one. run never mutates preps or
// producer links, so sharing one slice across concurrent simulations is
// race-free.
//
// A nil *PrepCache is valid and simply disables caching.
type PrepCache struct {
	mu        sync.Mutex
	preps     map[prepsKey]*prepsEntry
	prods     map[traceID]*prodEntry
	prepOrder *list.List // front = most recently used
	prodOrder *list.List
	maxPreps  int
	maxProds  int
	store     *artifact.Store

	// hits and misses use the shared metrics counter type so the CLI's
	// -timing report and the daemon's /metrics endpoint read the same
	// source (see Counters). A request served from the artifact store
	// counts as a miss for these (no in-memory entry existed) and as a
	// hit in the store's own counters.
	hits, misses metrics.Counter
	evictions    metrics.Counter
}

// NewPrepCache returns an empty cache with the default entry bounds.
func NewPrepCache() *PrepCache {
	return &PrepCache{
		preps:     make(map[prepsKey]*prepsEntry),
		prods:     make(map[traceID]*prodEntry),
		prepOrder: list.New(),
		prodOrder: list.New(),
		maxPreps:  defaultMaxPreps,
		maxProds:  defaultMaxProds,
	}
}

// SetLimits bounds the two entry maps (preps, producer links).
// Non-positive values keep the current bound. Safe to call at any time;
// shrinking evicts immediately.
func (pc *PrepCache) SetLimits(maxPreps, maxProds int) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if maxPreps > 0 {
		pc.maxPreps = maxPreps
	}
	if maxProds > 0 {
		pc.maxProds = maxProds
	}
	pc.evictLocked()
}

// SetStore attaches the persistent artifact store: classifications and
// producer links of content-identified traces are read from it before
// being computed, and written back after a computation. A nil store
// detaches.
func (pc *PrepCache) SetStore(s *artifact.Store) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	pc.store = s
	pc.mu.Unlock()
}

// Simulate is Simulate with the preparation work served from the cache.
// It returns results identical to the package-level Simulate for every
// (trace, config) pair.
func (pc *PrepCache) Simulate(t *trace.Trace, cfg Config) (*Result, error) {
	if pc == nil {
		return Simulate(t, cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("uarch: empty trace %q", t.Name)
	}
	preps, err := pc.classified(t, cfg)
	if err != nil {
		return nil, err
	}
	return run(t, cfg, preps, pc.producers(t))
}

// classified returns the cached classification of (t, cfg), computing it
// (or loading it from the artifact store) on first use.
func (pc *PrepCache) classified(t *trace.Trace, cfg Config) ([]prep, error) {
	k := prepsKey{id: idOf(t), key: classificationKey(cfg)}
	pc.mu.Lock()
	e, ok := pc.preps[k]
	if ok {
		pc.prepOrder.MoveToFront(e.elem)
	} else {
		e = &prepsEntry{key: k}
		e.elem = pc.prepOrder.PushFront(e)
		pc.preps[k] = e
		pc.evictLocked()
	}
	store := pc.store
	pc.mu.Unlock()
	if ok {
		pc.hits.Inc()
	} else {
		pc.misses.Inc()
	}
	e.once.Do(func() {
		e.preps, e.err = loadOrClassify(store, t, cfg, k.key)
		pc.mu.Lock()
		e.finished = true
		pc.mu.Unlock()
	})
	return e.preps, e.err
}

// loadOrClassify serves the classification from the artifact store when
// the trace is content-identified and a valid artifact exists, and
// computes (and stores) it otherwise.
func loadOrClassify(store *artifact.Store, t *trace.Trace, cfg Config, k classKey) ([]prep, error) {
	akey := ""
	if store != nil && t.ContentID != "" {
		akey = t.ContentID + "|" + k.artifactKey()
		if b, ok := store.Get("preps", akey); ok {
			if preps, err := decodePreps(b, t.Len()); err == nil {
				return preps, nil
			}
			// Structurally valid file, stale content (e.g. written for a
			// different trace length): recompute and overwrite below.
		}
	}
	preps, err := classify(t, cfg)
	if err == nil && akey != "" {
		store.Put("preps", akey, encodePreps(preps))
	}
	return preps, err
}

// producers returns the cached producer links of t, computing them on
// first use.
func (pc *PrepCache) producers(t *trace.Trace) []trace.Producer {
	id := idOf(t)
	pc.mu.Lock()
	e, ok := pc.prods[id]
	if ok {
		pc.prodOrder.MoveToFront(e.elem)
	} else {
		e = &prodEntry{id: id}
		e.elem = pc.prodOrder.PushFront(e)
		pc.prods[id] = e
		pc.evictLocked()
	}
	store := pc.store
	pc.mu.Unlock()
	e.once.Do(func() {
		e.prod = loadOrComputeProducers(store, t)
		pc.mu.Lock()
		e.finished = true
		pc.mu.Unlock()
	})
	return e.prod
}

func loadOrComputeProducers(store *artifact.Store, t *trace.Trace) []trace.Producer {
	if store != nil && t.ContentID != "" {
		if b, ok := store.Get("prods", t.ContentID); ok {
			if prod, err := trace.DecodeProducers(b); err == nil && len(prod) == t.Len() {
				return prod
			}
		}
	}
	prod := trace.ComputeProducers(t)
	if store != nil && t.ContentID != "" {
		store.Put("prods", t.ContentID, trace.EncodeProducers(prod))
	}
	return prod
}

// evictLocked trims both maps toward their bounds, least-recently-used
// first, skipping entries whose computation is still in flight: those
// may have callers blocked on them, and every entry must stay reachable
// until its fate is decided. An in-flight overshoot is bounded by the
// number of concurrent computations.
func (pc *PrepCache) evictLocked() {
	for elem := pc.prepOrder.Back(); elem != nil && len(pc.preps) > pc.maxPreps; {
		prev := elem.Prev()
		e := elem.Value.(*prepsEntry)
		if e.finished {
			pc.prepOrder.Remove(elem)
			delete(pc.preps, e.key)
			pc.evictions.Inc()
		}
		elem = prev
	}
	for elem := pc.prodOrder.Back(); elem != nil && len(pc.prods) > pc.maxProds; {
		prev := elem.Prev()
		e := elem.Value.(*prodEntry)
		if e.finished {
			pc.prodOrder.Remove(elem)
			delete(pc.prods, e.id)
			pc.evictions.Inc()
		}
		elem = prev
	}
}

// Forget drops every cached entry derived from t — its producer links
// and all classifications, for any config. Callers that evict a trace
// from their own cache (the daemon's bounded trace cache) use it to
// release the prep entries that trace populated; with a store attached,
// the artifacts remain on disk, so a later request for the same content
// re-warms cheaply instead of recomputing.
func (pc *PrepCache) Forget(t *trace.Trace) {
	if pc == nil || t == nil {
		return
	}
	id := idOf(t)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.prods[id]; ok && e.finished {
		pc.prodOrder.Remove(e.elem)
		delete(pc.prods, id)
	}
	//folint:allow(detrand) conditional delete of matching entries; which order they go in is unobservable
	for k, e := range pc.preps {
		if k.id == id && e.finished {
			pc.prepOrder.Remove(e.elem)
			delete(pc.preps, k)
		}
	}
}

// Len reports the current entry counts of the two maps (including
// in-flight entries). Zero on a nil cache.
func (pc *PrepCache) Len() (preps, prods int) {
	if pc == nil {
		return 0, 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.preps), len(pc.prods)
}

// Stats reports how many classification requests were served from the
// cache (hits) versus computed or loaded from the store (misses). A
// request that joins an in-flight computation counts as a hit: it
// performed no work of its own. Safe for concurrent use; zero on a nil
// cache.
func (pc *PrepCache) Stats() (hits, misses int64) {
	if pc == nil {
		return 0, 0
	}
	return pc.hits.Load(), pc.misses.Load()
}

// Counters exposes the live hit/miss counters themselves (not copies),
// so a metrics exporter can register them once and always report the
// same values Stats prints. Nil on a nil cache.
func (pc *PrepCache) Counters() (hits, misses *metrics.Counter) {
	if pc == nil {
		return nil, nil
	}
	return &pc.hits, &pc.misses
}

// Evictions exposes the live eviction counter; nil on a nil cache.
func (pc *PrepCache) Evictions() *metrics.Counter {
	if pc == nil {
		return nil
	}
	return &pc.evictions
}

// Packed preps format (artifact payloads): magic, count, then one byte
// per instruction — bits 0-1 the I-side cache.Result, bits 2-3 the
// D-side result, bit 4 the mispredict flag, bit 5 the TLB-miss flag.
var prepsMagic = [4]byte{'F', 'O', 'C', '1'}

func encodePreps(preps []prep) []byte {
	buf := make([]byte, 0, 4+8+len(preps))
	buf = append(buf, prepsMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(preps)))
	for i := range preps {
		p := &preps[i]
		b := uint8(p.ires)&3 | (uint8(p.dres)&3)<<2
		if p.misp {
			b |= 1 << 4
		}
		if p.tlbMiss {
			b |= 1 << 5
		}
		buf = append(buf, b)
	}
	return buf
}

func decodePreps(data []byte, wantLen int) ([]prep, error) {
	if len(data) < 12 || [4]byte(data[:4]) != prepsMagic {
		return nil, fmt.Errorf("uarch: bad preps header")
	}
	count := binary.LittleEndian.Uint64(data[4:12])
	if count != uint64(wantLen) || uint64(len(data)) != 12+count {
		return nil, fmt.Errorf("uarch: preps length mismatch (count %d, want %d, %d bytes)",
			count, wantLen, len(data))
	}
	preps := make([]prep, count)
	for i := range preps {
		b := data[12+i]
		ires := cache.Result(b & 3)
		dres := cache.Result(b >> 2 & 3)
		if ires > cache.LongMiss || dres > cache.LongMiss || b>>6 != 0 {
			return nil, fmt.Errorf("uarch: invalid preps record %d (0x%02x)", i, b)
		}
		preps[i] = prep{
			ires:    ires,
			dres:    dres,
			misp:    b&(1<<4) != 0,
			tlbMiss: b&(1<<5) != 0,
		}
	}
	return preps, nil
}
