package uarch

import (
	"testing"
	"testing/quick"

	"fomodel/internal/isa"
	"fomodel/internal/rng"
	"fomodel/internal/trace"
)

// randomTrace builds a structurally valid random trace: arbitrary classes,
// dependences on recent round-robin producers, addresses and PCs spread
// over a few regions, and branch outcomes drawn at random.
func randomTrace(seed uint64, n int) *trace.Trace {
	r := rng.New(seed)
	t := &trace.Trace{Name: "prop"}
	var producers [isa.NumArchRegs]bool
	nextDest := int16(0)
	pc := uint64(0x40_0000)
	for i := 0; i < n; i++ {
		c := isa.Class(r.Intn(int(isa.NumClasses)))
		in := trace.Instruction{PC: pc, Class: c, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
		pick := func() int16 {
			reg := int16(r.Intn(isa.NumArchRegs))
			if producers[reg] {
				return reg
			}
			return isa.RegNone
		}
		if r.Bool(0.7) {
			in.Src1 = pick()
		}
		if r.Bool(0.3) {
			in.Src2 = pick()
		}
		switch c {
		case isa.Branch:
			in.Taken = r.Bool(0.5)
			if in.Taken {
				pc = 0x40_0000 + uint64(r.Intn(1<<14))*4
			} else {
				pc += 4
			}
		case isa.Load, isa.Store:
			in.Addr = uint64(r.Intn(1 << 22))
			pc += 4
		default:
			pc += 4
		}
		if c != isa.Store && c != isa.Branch {
			in.Dest = nextDest
			producers[nextDest] = true
			nextDest = (nextDest + 1) % isa.NumArchRegs
		}
		t.Instrs = append(t.Instrs, in)
	}
	return t
}

func TestPropertySimulatorInvariants(t *testing.T) {
	f := func(seed uint64, widthSel, depthSel uint8) bool {
		n := 2000
		tr := randomTrace(seed, n)
		if err := tr.Validate(); err != nil {
			t.Logf("generated invalid trace: %v", err)
			return false
		}
		cfg := DefaultConfig()
		cfg.Width = []int{1, 2, 4, 8}[widthSel%4]
		cfg.FrontEndDepth = 1 + int(depthSel%12)
		r, err := Simulate(tr, cfg)
		if err != nil {
			t.Logf("simulate: %v", err)
			return false
		}
		// All instructions retire.
		if r.Instructions != n {
			return false
		}
		// Cycles at least the width bound and at least the count of any
		// single-cycle resource.
		if r.Cycles < int64(n/cfg.Width) {
			t.Logf("cycles %d below the width bound %d", r.Cycles, n/cfg.Width)
			return false
		}
		// Histogram accounts for every cycle and every instruction.
		var cycles, instrs int64
		for k, c := range r.IssueHistogram {
			if c < 0 {
				return false
			}
			cycles += c
			instrs += int64(k) * c
		}
		if cycles != r.Cycles || instrs != int64(n) {
			t.Logf("histogram mismatch: %d/%d cycles, %d/%d instrs", cycles, r.Cycles, instrs, n)
			return false
		}
		// Occupancies bounded by capacities.
		if r.AvgWindowOccupancy() > float64(cfg.WindowSize) ||
			r.AvgROBOccupancy() > float64(cfg.ROBSize) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIdealNoSlowerThanReal(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 2000)
		real, err := Simulate(tr, DefaultConfig())
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.IdealICache, cfg.IdealDCache, cfg.IdealPredictor = true, true, true
		ideal, err := Simulate(tr, cfg)
		if err != nil {
			return false
		}
		return ideal.Cycles <= real.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWiderNeverSlower(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 2000)
		cfg := DefaultConfig()
		cfg.IdealICache, cfg.IdealDCache, cfg.IdealPredictor = true, true, true
		cfg.Width = 2
		narrow, err := Simulate(tr, cfg)
		if err != nil {
			return false
		}
		cfg.Width = 4
		wide, err := Simulate(tr, cfg)
		if err != nil {
			return false
		}
		return wide.Cycles <= narrow.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClassificationInvariantUnderTiming(t *testing.T) {
	// Machine parameters must not change miss-event counts — the
	// decoupling invariant.
	f := func(seed uint64, depthSel uint8) bool {
		tr := randomTrace(seed, 2000)
		a, err := Simulate(tr, DefaultConfig())
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.FrontEndDepth = 1 + int(depthSel%16)
		cfg.WindowSize = 16
		cfg.ROBSize = 64
		b, err := Simulate(tr, cfg)
		if err != nil {
			return false
		}
		return a.Mispredicts == b.Mispredicts &&
			a.DCacheLong == b.DCacheLong &&
			a.DCacheShort == b.DCacheShort &&
			a.ICacheShort+a.ICacheLong == b.ICacheShort+b.ICacheLong
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
