package iw

import (
	"math"
	"testing"

	"fomodel/internal/isa"
	"fomodel/internal/trace"
)

// chainTrace builds n instructions where each depends on its predecessor:
// ILP is exactly 1 at any window size.
func chainTrace(n int) *trace.Trace {
	t := &trace.Trace{Name: "chain"}
	for i := 0; i < n; i++ {
		reg := int16(i % isa.NumArchRegs)
		prev := int16((i - 1) % isa.NumArchRegs)
		in := trace.Instruction{PC: uint64(i * 4), Class: isa.ALU, Dest: reg, Src1: prev, Src2: isa.RegNone}
		if i == 0 {
			in.Src1 = isa.RegNone
		}
		t.Instrs = append(t.Instrs, in)
	}
	return t
}

// independentTrace builds n instructions with no dependences at all.
func independentTrace(n int) *trace.Trace {
	t := &trace.Trace{Name: "indep"}
	for i := 0; i < n; i++ {
		t.Instrs = append(t.Instrs, trace.Instruction{
			PC: uint64(i * 4), Class: isa.ALU,
			Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	return t
}

func TestChainHasUnitILP(t *testing.T) {
	pts, err := Characteristic(chainTrace(2000), []int{2, 8, 32}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p.I-1) > 0.01 {
			t.Fatalf("chain ILP at W=%d is %v, want 1", p.W, p.I)
		}
	}
}

func TestIndependentSaturatesAtWindow(t *testing.T) {
	pts, err := Characteristic(independentTrace(4000), []int{2, 8, 32}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p.I-float64(p.W)) > 0.05*float64(p.W) {
			t.Fatalf("independent ILP at W=%d is %v, want ~W", p.W, p.I)
		}
	}
}

func TestIssueWidthCap(t *testing.T) {
	pts, err := Characteristic(independentTrace(4000), []int{32}, Options{IssueWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].I-4) > 0.05 {
		t.Fatalf("capped ILP %v, want ~4", pts[0].I)
	}
}

func TestLatencyScalesChain(t *testing.T) {
	lat := isa.DefaultLatencies()
	lat[isa.ALU] = 3
	pts, err := Characteristic(chainTrace(2000), []int{16}, Options{Latencies: &lat})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].I-1.0/3) > 0.01 {
		t.Fatalf("3-cycle chain ILP %v, want ~1/3", pts[0].I)
	}
}

func TestCharacteristicErrors(t *testing.T) {
	if _, err := Characteristic(&trace.Trace{Name: "empty"}, []int{4}, Options{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Characteristic(chainTrace(10), nil, Options{}); err == nil {
		t.Fatal("no windows accepted")
	}
	if _, err := Characteristic(chainTrace(10), []int{0}, Options{}); err == nil {
		t.Fatal("zero window accepted")
	}
	bad := isa.LatencyTable{}
	if _, err := Characteristic(chainTrace(10), []int{4}, Options{Latencies: &bad}); err == nil {
		t.Fatal("invalid latency table accepted")
	}
}

func TestFitRecoversSyntheticPowerLaw(t *testing.T) {
	pts := []Point{}
	for _, w := range []int{2, 4, 8, 16, 32} {
		pts = append(pts, Point{W: w, I: 1.4 * math.Pow(float64(w), 0.45)})
	}
	law, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(law.Alpha-1.4) > 0.01 || math.Abs(law.Beta-0.45) > 0.01 {
		t.Fatalf("fit %+v, want alpha=1.4 beta=0.45", law)
	}
	if law.R2 < 0.999 {
		t.Fatalf("R2 %v on exact power law", law.R2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]Point{{W: 2, I: 1}}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Fit([]Point{{W: 2, I: 1}, {W: 4, I: -1}}); err == nil {
		t.Fatal("negative issue rate accepted")
	}
}

func TestPowerLawEvalWindow(t *testing.T) {
	law := PowerLaw{Alpha: 1.5, Beta: 0.5}
	if got := law.Eval(16); math.Abs(got-6) > 1e-12 {
		t.Fatalf("Eval(16) = %v, want 6", got)
	}
	if got := law.Window(6); math.Abs(got-16) > 1e-9 {
		t.Fatalf("Window(6) = %v, want 16", got)
	}
	if law.Eval(0) != 0 || law.Window(0) != 0 {
		t.Fatal("degenerate inputs not zero")
	}
}

func TestInterpolateAt(t *testing.T) {
	pts := []Point{{W: 2, I: 2}, {W: 8, I: 4}, {W: 32, I: 8}}
	// Exact at measured points.
	for _, p := range pts {
		got, err := InterpolateAt(pts, float64(p.W))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p.I) > 1e-9 {
			t.Fatalf("InterpolateAt(%d) = %v, want %v", p.W, got, p.I)
		}
	}
	// Geometric midpoint between (2,2) and (8,4): W=4 → I = 2·(4/2)^0.5 = 2.83.
	got, err := InterpolateAt(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2*math.Sqrt2) > 1e-9 {
		t.Fatalf("InterpolateAt(4) = %v, want %v", got, 2*math.Sqrt2)
	}
	// Between the last two points the local slope is 0.5 as well.
	got, err = InterpolateAt(pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4*math.Sqrt2) > 1e-9 {
		t.Fatalf("InterpolateAt(16) = %v", got)
	}
}

func TestInterpolateAtErrors(t *testing.T) {
	if _, err := InterpolateAt([]Point{{W: 2, I: 1}}, 4); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := InterpolateAt([]Point{{W: 2, I: 1}, {W: 4, I: 2}}, -1); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := InterpolateAt([]Point{{W: 2, I: 1}, {W: 2, I: 2}}, 3); err == nil {
		t.Fatal("degenerate points accepted")
	}
}

func TestWindowSlotFreedAtIssue(t *testing.T) {
	// With a window of 2 and pairs (producer, consumer), the consumer
	// occupies a slot while waiting but the producer's slot frees at
	// issue, so the steady rate stays at ~1 rather than collapsing.
	tr := &trace.Trace{Name: "pairs"}
	for i := 0; i < 1000; i++ {
		prod := trace.Instruction{PC: uint64(i * 8), Class: isa.ALU,
			Dest: int16((2 * i) % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone}
		cons := trace.Instruction{PC: uint64(i*8 + 4), Class: isa.ALU,
			Dest: int16((2*i + 1) % isa.NumArchRegs), Src1: prod.Dest, Src2: isa.RegNone}
		tr.Instrs = append(tr.Instrs, prod, cons)
	}
	pts, err := Characteristic(tr, []int{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].I < 0.95 {
		t.Fatalf("pair trace ILP %v at W=2, want ~1", pts[0].I)
	}
}

func TestDefaultWindows(t *testing.T) {
	ws := DefaultWindows()
	if len(ws) != 6 || ws[0] != 2 || ws[len(ws)-1] != 64 {
		t.Fatalf("default windows %v", ws)
	}
}

func TestWidthCapWithLatencies(t *testing.T) {
	// Independent 3-cycle multiplies, width cap 4: throughput is still 4
	// per cycle (fully pipelined units), demonstrating that the cap and
	// latency interact only through the window.
	tr := &trace.Trace{Name: "mulwide"}
	for i := 0; i < 4000; i++ {
		tr.Instrs = append(tr.Instrs, trace.Instruction{
			PC: uint64(i * 4), Class: isa.Mul,
			Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	lat := isa.DefaultLatencies()
	pts, err := Characteristic(tr, []int{32}, Options{IssueWidth: 4, Latencies: &lat})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].I-4) > 0.1 {
		t.Fatalf("pipelined mul throughput %v, want ~4", pts[0].I)
	}
}
