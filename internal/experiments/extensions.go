package experiments

import (
	"fmt"

	"fomodel/internal/cache"
	"fomodel/internal/core"
	"fomodel/internal/isa"
	"fomodel/internal/stats"
	"fomodel/internal/uarch"
)

// This file validates the paper's §7 "new features" — limited functional
// units, instruction fetch buffers, and TLB misses — which we implement in
// both the simulator and the model (DESIGN.md §5). Each experiment runs
// model vs simulator with the feature enabled and reports the same
// CPI-error metric as Fig. 15.

// ExtensionRow is one benchmark of an extension validation.
type ExtensionRow struct {
	Name     string
	ModelCPI float64
	SimCPI   float64
	Err      float64
}

// ExtensionResult is a model-vs-simulator validation of one extension.
type ExtensionResult struct {
	Title      string
	Rows       []ExtensionRow
	MeanAbsErr float64
	Notes      []string
}

// tab builds the result table.
func (r *ExtensionResult) tab() *table {
	t := &table{
		title:  r.Title,
		header: []string{"bench", "model", "simulation", "err"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.ModelCPI), f3(row.SimCPI), pct(row.Err))
	}
	t.addNote("mean |err| %s", pct(r.MeanAbsErr))
	t.notes = append(t.notes, r.Notes...)
	return t
}

// Render prints the table as aligned text.
func (r *ExtensionResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *ExtensionResult) CSV() string { return r.tab().CSV() }

func (r *ExtensionResult) finish() {
	for _, row := range r.Rows {
		r.MeanAbsErr += abs(row.Err)
	}
	if len(r.Rows) > 0 {
		r.MeanAbsErr /= float64(len(r.Rows))
	}
}

// DefaultFUCounts returns the limited functional-unit configuration of
// the extension study: one multiplier, one divider, one FP unit, a single
// load port and a single store port, and unbounded simple ALUs
// and branches.
func DefaultFUCounts() [isa.NumClasses]int {
	var fu [isa.NumClasses]int
	fu[isa.Mul] = 1
	fu[isa.Div] = 1
	fu[isa.FPU] = 1
	fu[isa.Load] = 1
	fu[isa.Store] = 1
	return fu
}

// ExtensionFU validates the limited-functional-unit model (§7 #1): the
// saturation level drops to min(width, count/mix) per limited class.
func ExtensionFU(s *Suite) (*ExtensionResult, error) {
	fu := DefaultFUCounts()
	res := &ExtensionResult{
		Title: "Extension: limited functional units (1 mul, 1 div, 1 FP, 1 load, 1 store)",
	}
	type fuRow struct {
		row  ExtensionRow
		note string
	}
	rows, err := MapWorkloads(s, func(w *Workload) (fuRow, error) {
		var zero fuRow
		sim, err := s.Simulate(w, func(c *uarch.Config) { c.FUCounts = fu })
		if err != nil {
			return zero, err
		}
		m := s.Machine
		m.FUCounts = fu
		est, err := m.Estimate(w.Inputs, modelOptions())
		if err != nil {
			return zero, err
		}
		return fuRow{
			row: ExtensionRow{
				Name:     w.Name,
				ModelCPI: est.CPI,
				SimCPI:   sim.CPI(),
				Err:      relErr(est.CPI, sim.CPI()),
			},
			note: fmt.Sprintf("effective width for %s: %.2f of %d", w.Name, est.EffectiveWidth, m.Width),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		res.Rows = append(res.Rows, r.row)
		if i == 0 {
			res.Notes = append(res.Notes, r.note)
		}
	}
	res.finish()
	return res, nil
}

// FetchBufferPoint is one (buffer size → CPI) sample of the fetch-buffer
// study.
type FetchBufferPoint struct {
	Buffer   int
	SimCPI   float64
	ModelCPI float64
}

// FetchBufferResult sweeps fetch-buffer sizes on an I-cache-bound
// benchmark (§7 #2): the buffer hides part of the I-cache miss delay.
type FetchBufferResult struct {
	Bench  string
	Points []FetchBufferPoint
}

// ExtensionFetchBuffer runs the sweep on vortex, the I-cache-heaviest
// benchmark.
func ExtensionFetchBuffer(s *Suite) (*FetchBufferResult, error) {
	const bench = "vortex"
	w, err := s.Workload(bench)
	if err != nil {
		return nil, err
	}
	res := &FetchBufferResult{Bench: bench}
	for _, buf := range []int{0, 8, 16, 32, 64} {
		sim, err := s.Simulate(w, func(c *uarch.Config) { c.FetchBufferSize = buf })
		if err != nil {
			return nil, err
		}
		m := s.Machine
		m.FetchBuffer = buf
		opts := modelOptions()
		if buf > 0 {
			// Only misses whose gap lets fetch rebuild the buffer are
			// hidden; rebuilding B entries at (width − IPC) slack per
			// cycle takes roughly 4·B instructions of quiet fetch.
			opts.FetchBufferCoverage = w.Summary.IsolatedICacheFrac(4 * buf)
		}
		est, err := m.Estimate(w.Inputs, opts)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, FetchBufferPoint{Buffer: buf, SimCPI: sim.CPI(), ModelCPI: est.CPI})
	}
	return res, nil
}

// tab builds the result table.
func (r *FetchBufferResult) tab() *table {
	t := &table{
		title:  fmt.Sprintf("Extension: instruction fetch buffer sweep (%s)", r.Bench),
		header: []string{"buffer", "model CPI", "sim CPI"},
	}
	for _, p := range r.Points {
		t.addRow(fmt.Sprintf("%d", p.Buffer), f3(p.ModelCPI), f3(p.SimCPI))
	}
	t.addNote("gains are modest in both model and machine: vortex's misses cluster in cold-code")
	t.addNote("excursions where fetch supply is the bottleneck, so only isolated misses get hidden")
	return t
}

// Render prints the table as aligned text.
func (r *FetchBufferResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *FetchBufferResult) CSV() string { return r.tab().CSV() }

// ExtensionTLB validates the TLB-miss model (§7 #4): misses behave like
// long data misses with the page-walk latency and equation-(8) overlap.
func ExtensionTLB(s *Suite) (*ExtensionResult, error) {
	tlbCfg := cache.DefaultTLB()
	res := &ExtensionResult{
		Title: fmt.Sprintf("Extension: data TLB (%d entries, %d B pages, %d-cycle walk)",
			tlbCfg.Entries, tlbCfg.PageBytes, tlbCfg.MissLatency),
	}
	rows, err := MapWorkloads(s, func(w *Workload) (ExtensionRow, error) {
		var zero ExtensionRow
		sim, err := s.Simulate(w, func(c *uarch.Config) { c.TLB = &tlbCfg })
		if err != nil {
			return zero, err
		}
		// Re-analyze with the TLB so the model sees miss rates and
		// clustering.
		scfg := stats.DefaultConfig()
		scfg.Hierarchy = s.Sim.Hierarchy
		scfg.PredictorBits = s.Sim.PredictorBits
		scfg.Latencies = s.Sim.Latencies
		scfg.ROBSize = s.Machine.ROBSize
		scfg.Warmup = s.Sim.Warmup
		scfg.TLB = &tlbCfg
		sum, err := stats.Analyze(w.Trace, scfg)
		if err != nil {
			return zero, err
		}
		in, err := core.InputsFromCurve(w.Law, w.Points, s.Machine.WindowSize, sum)
		if err != nil {
			return zero, err
		}
		m := s.Machine
		m.TLBMissLatency = tlbCfg.MissLatency
		est, err := m.Estimate(in, modelOptions())
		if err != nil {
			return zero, err
		}
		return ExtensionRow{
			Name:     w.Name,
			ModelCPI: est.CPI,
			SimCPI:   sim.CPI(),
			Err:      relErr(est.CPI, sim.CPI()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.finish()
	return res, nil
}
