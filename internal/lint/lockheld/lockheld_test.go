package lockheld_test

import (
	"testing"

	"fomodel/internal/lint/linttest"
	"fomodel/internal/lint/lockheld"
)

// TestLockheld pins the golden diagnostics: I/O and sends under held
// mutexes fire, released and closure-deferred work does not.
func TestLockheld(t *testing.T) {
	linttest.Run(t, lockheld.Analyzer, "testdata/src/lockheld", "fomodel/internal/artifact")
}
