// Command fomodel runs the first-order analytical model on one or more
// synthetic workloads and prints the CPI stack; with -sim it also runs the
// detailed cycle-level simulator and reports the model's error, i.e. the
// paper's Fig. 15/16 for arbitrary configurations.
//
// Usage:
//
//	fomodel [-n instructions] [-seed seed] [-sim] [-json] [-width 4]
//	        [-depth 5] [-window 48] [-rob 128] [-clusters K] [-tlb]
//	        [-fetch-buffer N] [-fu mul=1,load=2]
//	        [-branch-mode midpoint|isolated|measured]
//	        [-profile file.json] [workload ...]
//
// With -optimize spec.json it instead searches the machine design space
// described by the spec (bounds over width/depth/window/rob/clusters/
// fetch_buffer, a workload mix, a budget, and a scalar or Pareto
// objective), printing the incumbent/frontier table — or, with -json,
// the exact /v1/optimize response body. Both modes work locally or, with
// -remote, against a fomodeld daemon, byte-identically.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fomodel/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Fomodel(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fomodel: %v\n", err)
		os.Exit(1)
	}
}
