package experiments

import (
	"strings"
	"testing"

	"fomodel/internal/uarch"
)

func TestExtensionFU(t *testing.T) {
	res, err := ExtensionFU(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The model should stay in the same accuracy band as the baseline
	// Fig. 15 on this suite.
	if res.MeanAbsErr > 0.20 {
		t.Fatalf("FU-limited model error %v", res.MeanAbsErr)
	}
	if !strings.Contains(res.Render(), "functional units") {
		t.Fatal("render incomplete")
	}
}

func TestExtensionFULimitsRaiseSimCPI(t *testing.T) {
	s := smallSuite()
	w, err := s.Workload("mcf") // load-heavy: the single load port binds
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Simulate(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	fu := DefaultFUCounts()
	limited, err := s.Simulate(w, func(c *uarch.Config) { c.FUCounts = fu })
	if err != nil {
		t.Fatal(err)
	}
	if limited.CPI() <= base.CPI() {
		t.Fatalf("FU limits did not raise CPI: %v vs %v", limited.CPI(), base.CPI())
	}
}

func TestExtensionFetchBuffer(t *testing.T) {
	res, err := ExtensionFetchBuffer(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d sweep points", len(res.Points))
	}
	// Simulated CPI must be non-increasing in buffer size.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].SimCPI > res.Points[i-1].SimCPI+1e-9 {
			t.Fatalf("sim CPI rose with buffer: %+v", res.Points)
		}
		if res.Points[i].ModelCPI > res.Points[i-1].ModelCPI+1e-9 {
			t.Fatalf("model CPI rose with buffer: %+v", res.Points)
		}
	}
	if !strings.Contains(res.Render(), "fetch buffer") {
		t.Fatal("render incomplete")
	}
}

func TestExtensionTLB(t *testing.T) {
	res, err := ExtensionTLB(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.MeanAbsErr > 0.20 {
		t.Fatalf("TLB model error %v", res.MeanAbsErr)
	}
	// The TLB must raise mcf's CPI versus the baseline Fig. 15 value
	// (huge pointer-chased working set → TLB misses).
	f15, err := Figure15(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	var baseMcf, tlbMcf float64
	for _, r := range f15.Rows {
		if r.Name == "mcf" {
			baseMcf = r.SimCPI
		}
	}
	for _, r := range res.Rows {
		if r.Name == "mcf" {
			tlbMcf = r.SimCPI
		}
	}
	if tlbMcf <= baseMcf {
		t.Fatalf("TLB did not cost mcf anything: %v vs %v", tlbMcf, baseMcf)
	}
	if !strings.Contains(res.Render(), "TLB") {
		t.Fatal("render incomplete")
	}
}
