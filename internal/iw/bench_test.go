package iw_test

import (
	"sync"
	"testing"

	"fomodel/internal/iw"
	"fomodel/internal/trace"
	"fomodel/internal/workload"
)

var (
	benchTraceOnce sync.Once
	benchTraceVal  *trace.Trace
)

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	benchTraceOnce.Do(func() {
		t, err := workload.Generate("gzip", 50000, 1)
		if err != nil {
			panic(err)
		}
		benchTraceVal = t
	})
	return benchTraceVal
}

// BenchmarkCharacteristic times the full six-window IW sweep, including
// the one-shot producer-link derivation.
func BenchmarkCharacteristic(b *testing.B) {
	t := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iw.Characteristic(t, iw.DefaultWindows(), iw.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacteristicSharedProducers times the sweep when the caller
// supplies precomputed dependence links (the suite's configuration).
func BenchmarkCharacteristicSharedProducers(b *testing.B) {
	t := benchTrace(b)
	prod := trace.ComputeProducers(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iw.Characteristic(t, iw.DefaultWindows(), iw.Options{Producers: prod}); err != nil {
			b.Fatal(err)
		}
	}
}
