// Package iw extracts the IW characteristic — the relationship between
// issue-window size W and average issue rate I — from an instruction trace,
// and fits it to the paper's power law I = alpha * W^beta.
//
// Following §3 of the paper, the characteristic is measured with an
// idealized trace-driven simulation: no miss-events, an unbounded number of
// functional units, unbounded issue and dispatch width, and unit latencies;
// the only limited resource is the issue window. The resulting curve is
// implementation independent — it reflects only the register dependence
// structure of the benchmark. Non-unit latencies are handled afterwards via
// Little's law (I_L = I_1/L), and a finite machine issue width clips the
// curve at saturation (Fig. 6 / Jouppi's observation).
package iw

import (
	"fmt"

	"fomodel/internal/isa"
	"fomodel/internal/trace"
)

// Point is one measured point of the IW characteristic.
type Point struct {
	// W is the issue window size in entries.
	W int
	// I is the measured average issue rate (useful instructions per cycle).
	I float64
}

// Options control the idealized simulation.
type Options struct {
	// Latencies, when non-nil, replaces unit latencies with the given
	// table. The paper's Table 1 parameters use unit latencies and fold
	// real latencies in through Little's law; the table is exposed for
	// ablation.
	Latencies *isa.LatencyTable
	// IssueWidth, when positive, caps instructions issued per cycle
	// (oldest first). Zero means unbounded (the paper's ideal case).
	IssueWidth int
}

// DefaultWindows is the window-size sweep of the paper's Fig. 4:
// log2(W) from 1 to 6.
func DefaultWindows() []int { return []int{2, 4, 8, 16, 32, 64} }

// Characteristic measures the IW curve of t at each window size.
func Characteristic(t *trace.Trace, windows []int, opts Options) ([]Point, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("iw: empty trace %q", t.Name)
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("iw: no window sizes given")
	}
	points := make([]Point, 0, len(windows))
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("iw: window size %d must be positive", w)
		}
		ipc, err := simulate(t, w, opts)
		if err != nil {
			return nil, err
		}
		points = append(points, Point{W: w, I: ipc})
	}
	return points, nil
}

// simulate runs the idealized window-limited simulation and returns the
// average issue rate.
func simulate(t *trace.Trace, window int, opts Options) (float64, error) {
	unit := isa.LatencyTable{}
	for c := range unit {
		unit[c] = 1
	}
	lat := unit
	if opts.Latencies != nil {
		lat = *opts.Latencies
		if err := lat.Validate(); err != nil {
			return 0, err
		}
	}

	n := t.Len()
	// finish[j] is the cycle instruction j's result is available; 0 means
	// not yet issued (cycle numbering starts at 1 to keep 0 free).
	finish := make([]int64, n)
	// lastWriter[r] is the index of the last instruction writing r, in
	// program order up to the fill frontier.
	var lastWriter [isa.NumArchRegs]int
	for i := range lastWriter {
		lastWriter[i] = -1
	}

	type slot struct {
		idx        int
		src1, src2 int // producer indices, -1 if none/ready
	}
	win := make([]slot, 0, window)
	next := 0 // fill frontier
	issued := 0
	var now int64 = 1

	fill := func() {
		for len(win) < window && next < n {
			in := &t.Instrs[next]
			s := slot{idx: next, src1: -1, src2: -1}
			if in.Src1 >= 0 {
				s.src1 = lastWriter[in.Src1]
			}
			if in.Src2 >= 0 {
				s.src2 = lastWriter[in.Src2]
			}
			if in.Dest >= 0 {
				lastWriter[in.Dest] = next
			}
			win = append(win, s)
			next++
		}
	}

	ready := func(s slot) bool {
		if s.src1 >= 0 && (finish[s.src1] == 0 || finish[s.src1] > now) {
			return false
		}
		if s.src2 >= 0 && (finish[s.src2] == 0 || finish[s.src2] > now) {
			return false
		}
		return true
	}

	fill()
	for issued < n {
		// Issue every ready instruction this cycle (oldest first), up to
		// the optional width cap.
		kept := win[:0]
		issuedThisCycle := 0
		for _, s := range win {
			if (opts.IssueWidth <= 0 || issuedThisCycle < opts.IssueWidth) && ready(s) {
				finish[s.idx] = now + int64(lat.Latency(t.Instrs[s.idx].Class))
				issuedThisCycle++
				issued++
				continue
			}
			kept = append(kept, s)
		}
		win = kept
		fill()
		now++
	}
	cycles := now - 1
	if cycles <= 0 {
		return 0, fmt.Errorf("iw: degenerate simulation of %q", t.Name)
	}
	return float64(n) / float64(cycles), nil
}
