// Package statsim implements statistical simulation — the alternative
// methodology the paper positions itself against (related work [8-11]:
// Carl & Smith, Nussbaum & Smith, Eeckhout et al., Noonburg & Shen).
//
// Statistical simulation collects the same program statistics the
// first-order model consumes — instruction mix, dependence-distance
// distribution, miss-event rates and their clustering — but instead of
// evaluating closed-form penalty equations, it synthesizes a short random
// trace exhibiting those statistics and runs it through a (simple) timing
// simulator. The paper's claim is that its model "performs statistical
// simulation, without the simulation, and overall accuracy is similar";
// this package exists so the repository can test that claim head-to-head
// (experiments.StatSimStudy).
//
// The profile is measured entirely from a trace (Measure), and synthesis
// (Profile.Synthesize) produces both a register-accurate instruction
// stream and the per-instruction miss events for uarch.SimulateWithEvents:
//
//   - classes i.i.d. from the measured mix;
//   - source operands present with the measured per-slot frequencies, at
//     dependence distances drawn from the measured histogram (realized
//     exactly via round-robin destination allocation);
//   - branch mispredictions Bernoulli at the measured per-branch rate;
//   - I-cache misses Bernoulli per instruction at the measured rates;
//   - data-cache outcomes from a two-state Markov chain over memory
//     accesses fitted to the measured long-miss run structure, preserving
//     the burstiness that drives the overlap behaviour of §4.3.
package statsim

import (
	"fmt"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/predictor"
	"fomodel/internal/rng"
	"fomodel/internal/trace"
	"fomodel/internal/uarch"
)

// maxDepDistance caps the measured dependence-distance histogram; longer
// dependences are ready by the time the consumer dispatches on any
// realistic window, so they are recorded as absent.
const maxDepDistance = 256

// Profile holds the statistics measured from a trace — deliberately the
// same information base as the first-order model's inputs.
type Profile struct {
	// Name identifies the source workload.
	Name string
	// Mix is the instruction-class composition.
	Mix [isa.NumClasses]float64

	// Src1Frac and Src2Frac are the fractions of instructions with a
	// first and second register source within the distance cap.
	Src1Frac, Src2Frac float64
	// DistHist[d-1] is the probability that a present source's producer
	// is d dynamic instructions back (d in [1, maxDepDistance]).
	DistHist []float64

	// MispredictPerBranch is the misprediction probability per branch.
	MispredictPerBranch float64
	// ICacheShortPerInstr / ICacheLongPerInstr are fetch miss
	// probabilities per instruction.
	ICacheShortPerInstr float64
	ICacheLongPerInstr  float64

	// Data-cache outcome chain over memory accesses: PLongAfterLong and
	// PLongAfterOther give the probability the next access is a long
	// miss conditioned on the previous access's outcome (captures
	// burstiness); PShort is the unconditional short-miss probability
	// among non-long accesses.
	PLongAfterLong  float64
	PLongAfterOther float64
	PShort          float64
}

// Measure extracts a statistical profile from t using the same cache
// hierarchy, predictor, and warmup convention as the reference analyses.
func Measure(t *trace.Trace, cfg uarch.Config) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("statsim: empty trace %q", t.Name)
	}
	p := &Profile{
		Name:     t.Name,
		Mix:      t.Mix(),
		DistHist: make([]float64, maxDepDistance),
	}

	// Dependence structure: distance from each source to the most recent
	// writer of that register.
	var lastWriter [isa.NumArchRegs]int
	for i := range lastWriter {
		lastWriter[i] = -1 << 40
	}
	var src1, src2, distTotal int
	for i := range t.Instrs {
		in := &t.Instrs[i]
		for slot, src := range [2]int16{in.Src1, in.Src2} {
			if src < 0 {
				continue
			}
			d := i - lastWriter[src]
			if d >= 1 && d <= maxDepDistance {
				p.DistHist[d-1]++
				distTotal++
				if slot == 0 {
					src1++
				} else {
					src2++
				}
			}
		}
		if in.Dest >= 0 {
			lastWriter[in.Dest] = i
		}
	}
	n := float64(t.Len())
	p.Src1Frac = float64(src1) / n
	p.Src2Frac = float64(src2) / n
	if distTotal > 0 {
		for d := range p.DistHist {
			p.DistHist[d] /= float64(distTotal)
		}
	}

	// Miss events via the same functional pass as the reference: reuse
	// the simulator's classifier through a zero-cost full run? The
	// classifier is unexported; replicate its sequence with the shared
	// building blocks.
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	gs, err := predictorFor(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Warmup {
		for i := range t.Instrs {
			h.Fetch(t.Instrs[i].PC)
		}
		h.ResetStats()
	}
	var branches, misp, iShort, iLong uint64
	var memAccesses, shortMisses uint64
	var longAfterLong, longAfterOther, afterLong, afterOther uint64
	prevLong := false
	for i := range t.Instrs {
		in := &t.Instrs[i]
		switch h.Fetch(in.PC) {
		case cache.ShortMiss:
			iShort++
		case cache.LongMiss:
			iLong++
		}
		switch in.Class {
		case isa.Branch:
			branches++
			if gs.Predict(in.PC) != in.Taken {
				misp++
			}
			gs.Update(in.PC, in.Taken)
		case isa.Load, isa.Store:
			memAccesses++
			res := h.Data(in.Addr)
			long := res == cache.LongMiss
			if prevLong {
				afterLong++
				if long {
					longAfterLong++
				}
			} else {
				afterOther++
				if long {
					longAfterOther++
				}
			}
			if res == cache.ShortMiss {
				shortMisses++
			}
			prevLong = long
		}
	}
	if branches > 0 {
		p.MispredictPerBranch = float64(misp) / float64(branches)
	}
	p.ICacheShortPerInstr = float64(iShort) / n
	p.ICacheLongPerInstr = float64(iLong) / n
	if afterLong > 0 {
		p.PLongAfterLong = float64(longAfterLong) / float64(afterLong)
	}
	if afterOther > 0 {
		p.PLongAfterOther = float64(longAfterOther) / float64(afterOther)
	}
	if memAccesses > 0 {
		p.PShort = float64(shortMisses) / float64(memAccesses)
	}
	return p, nil
}

// Synthesize generates a random trace of n instructions exhibiting the
// profile's statistics, together with the per-instruction miss events for
// uarch.SimulateWithEvents.
func (p *Profile) Synthesize(n int, seed uint64) (*trace.Trace, []uarch.Event, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("statsim: length %d must be positive", n)
	}
	if len(p.DistHist) == 0 {
		return nil, nil, fmt.Errorf("statsim: profile %q has no dependence histogram", p.Name)
	}
	classRNG := rng.NewStream(seed, 0x11)
	depRNG := rng.NewStream(seed, 0x12)
	evRNG := rng.NewStream(seed, 0x13)

	mixWeights := make([]float64, isa.NumClasses)
	for c := range p.Mix {
		mixWeights[c] = p.Mix[c]
	}

	t := &trace.Trace{Name: p.Name + "-synth", Instrs: make([]trace.Instruction, 0, n)}
	events := make([]uarch.Event, 0, n)

	var producers [isa.NumArchRegs]int
	for i := range producers {
		producers[i] = -1
	}
	nextDest := int16(0)
	prevLong := false

	for i := 0; i < n; i++ {
		c := isa.Class(classRNG.Weighted(mixWeights))
		in := trace.Instruction{
			PC:    0x40_0000,
			Class: c,
			Dest:  isa.RegNone,
			Src1:  isa.RegNone,
			Src2:  isa.RegNone,
		}
		if depRNG.Bool(p.Src1Frac) {
			in.Src1 = p.sampleSource(depRNG, &producers, nextDest, i)
		}
		if depRNG.Bool(p.Src2Frac) {
			in.Src2 = p.sampleSource(depRNG, &producers, nextDest, i)
		}
		if c != isa.Store && c != isa.Branch {
			in.Dest = nextDest
			producers[nextDest] = i
			nextDest++
			if nextDest >= isa.NumArchRegs {
				nextDest = 0
			}
		}

		var ev uarch.Event
		switch {
		case evRNG.Bool(p.ICacheShortPerInstr):
			ev.ICache = cache.ShortMiss
		case evRNG.Bool(p.ICacheLongPerInstr):
			ev.ICache = cache.LongMiss
		}
		switch c {
		case isa.Branch:
			in.Taken = evRNG.Bool(0.5)
			ev.Mispredict = evRNG.Bool(p.MispredictPerBranch)
		case isa.Load, isa.Store:
			pl := p.PLongAfterOther
			if prevLong {
				pl = p.PLongAfterLong
			}
			if evRNG.Bool(pl) {
				ev.DCache = cache.LongMiss
				prevLong = true
			} else {
				prevLong = false
				if evRNG.Bool(p.PShort) {
					ev.DCache = cache.ShortMiss
				}
			}
		}
		t.Instrs = append(t.Instrs, in)
		events = append(events, ev)
	}
	return t, events, nil
}

// sampleSource draws a register realizing a dependence at a distance from
// the measured histogram, using the round-robin producer ring: the
// producer k destination-writes back holds register (nextDest-1-k) mod
// NumArchRegs, so the most recent producer at distance >= d is found by
// scanning backward.
func (p *Profile) sampleSource(r *rng.PCG, producers *[isa.NumArchRegs]int, nextDest int16, idx int) int16 {
	d := 1 + r.Weighted(p.DistHist)
	want := idx - d
	reg := int(nextDest) - 1
	for k := 0; k < isa.NumArchRegs; k++ {
		if reg < 0 {
			reg += isa.NumArchRegs
		}
		pi := producers[reg]
		if pi < 0 {
			return isa.RegNone
		}
		if pi <= want {
			return int16(reg)
		}
		reg--
	}
	return isa.RegNone
}

// Simulate measures t's profile, synthesizes a same-length statistical
// trace, and times it on the machine described by cfg — the full
// statistical-simulation methodology in one call.
func Simulate(t *trace.Trace, cfg uarch.Config, seed uint64) (*uarch.Result, *Profile, error) {
	p, err := Measure(t, cfg)
	if err != nil {
		return nil, nil, err
	}
	synth, events, err := p.Synthesize(t.Len(), seed)
	if err != nil {
		return nil, nil, err
	}
	// The synthetic trace's events are forced, so the simulator's own
	// cache/predictor state is irrelevant; disable warmup to skip the
	// pointless replay.
	cfg.Warmup = false
	r, err := uarch.SimulateWithEvents(synth, events, cfg)
	if err != nil {
		return nil, nil, err
	}
	return r, p, nil
}

// predictorFor instantiates the predictor cfg describes.
func predictorFor(cfg uarch.Config) (predictor.Predictor, error) {
	if cfg.Predictor != nil {
		return cfg.Predictor.New()
	}
	return predictor.NewGshare(cfg.PredictorBits)
}
