package experiments

import (
	"fmt"
	"strings"

	"fomodel/internal/core"
)

// transientEpsilon is the ramp-up convergence threshold used for the
// transient figures (matches the model default).
const transientEpsilon = 0.05

// squareLawCurve returns the paper's generic transient curve: α=1, β=0.5,
// unit latency — "the average for SpecINT2000 benchmarks once non-unit
// latencies are accounted for" — at the given width.
func squareLawCurve(width int) core.IWCurve {
	return core.IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: float64(width)}
}

// Figure8Result is the paper's Fig. 8: the per-cycle transient of an
// isolated branch misprediction for the square-law curve, with the three
// penalty components.
type Figure8Result struct {
	Points  []core.TransientPoint
	Drain   float64
	RampUp  float64
	Fill    float64
	Total   float64
	Machine core.Machine
}

// Figure8 computes the canonical branch-misprediction transient (α=1,
// β=0.5, five front-end stages, width 4).
func Figure8(s *Suite) (*Figure8Result, error) {
	m := s.Machine
	curve := squareLawCurve(m.Width)
	steady := curve.Eval(float64(m.WindowSize))
	res := &Figure8Result{
		Points:  curve.BranchTransient(float64(m.WindowSize), m.FrontEndDepth, 3, transientEpsilon),
		Drain:   curve.Drain(float64(m.WindowSize), steady),
		RampUp:  curve.RampUp(steady, transientEpsilon),
		Fill:    float64(m.FrontEndDepth),
		Machine: m,
	}
	res.Total = res.Drain + res.Fill + res.RampUp
	return res, nil
}

// Render prints the penalty components and the per-cycle curve.
func (r *Figure8Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8: isolated branch misprediction transient (alpha=1, beta=0.5, dP=%d, width=%d)\n",
		r.Machine.FrontEndDepth, r.Machine.Width)
	fmt.Fprintf(&sb, "drain: %.1f cycles (paper 2.1)  ramp-up: %.1f (paper 2.7)  front-end: %.1f (paper 4.9)  total: %.1f (paper 9.7)\n",
		r.Drain, r.RampUp, r.Fill, r.Total)
	sb.WriteString(renderTransient(r.Points))
	return sb.String()
}

// Figure10Result is the instruction-cache miss transient of the paper's
// Fig. 10.
type Figure10Result struct {
	Points    []core.TransientPoint
	MissDelay int
	Machine   core.Machine
}

// Figure10 computes the canonical I-cache miss transient for the baseline
// machine and an L2-hit miss delay.
func Figure10(s *Suite) (*Figure10Result, error) {
	m := s.Machine
	curve := squareLawCurve(m.Width)
	// Use a memory-scale delay so the drain and idle phases are visible,
	// as drawn in the paper's schematic.
	delay := 4 * m.ShortMissLatency
	return &Figure10Result{
		Points:    curve.ICacheTransient(float64(m.WindowSize), m.FrontEndDepth, delay, 3, transientEpsilon),
		MissDelay: delay,
		Machine:   m,
	}, nil
}

// Render prints the transient curve.
func (r *Figure10Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10: instruction cache miss transient (miss delay %d cycles)\n", r.MissDelay)
	sb.WriteString(renderTransient(r.Points))
	return sb.String()
}

// Figure12Result is the isolated long data-cache miss transient of the
// paper's Fig. 12.
type Figure12Result struct {
	Points    []core.TransientPoint
	MissDelay int
	Machine   core.Machine
}

// Figure12 computes the canonical long data miss transient: the ROB fills
// behind the blocked load, dispatch stalls, and issue resumes when the
// data returns.
func Figure12(s *Suite) (*Figure12Result, error) {
	m := s.Machine
	curve := squareLawCurve(m.Width)
	// §4.3: when a load misses there are ~9 instructions ahead of it; the
	// ROB is otherwise at its steady occupancy.
	occupancy := m.WindowSize / 2
	return &Figure12Result{
		Points: curve.DCacheTransient(float64(m.WindowSize), m.ROBSize, occupancy,
			m.LongMissLatency, 3, transientEpsilon),
		MissDelay: m.LongMissLatency,
		Machine:   m,
	}, nil
}

// Render prints the transient curve.
func (r *Figure12Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 12: isolated long data cache miss transient (dD=%d, rob=%d)\n",
		r.MissDelay, r.Machine.ROBSize)
	sb.WriteString(renderTransient(r.Points))
	return sb.String()
}

// renderTransient prints a compact per-cycle issue trace, eliding long
// constant stretches.
func renderTransient(pts []core.TransientPoint) string {
	var sb strings.Builder
	var lastIssue float64 = -1
	elided := 0
	flush := func() {
		if elided > 0 {
			fmt.Fprintf(&sb, "  ... %d more cycles at issue=%.2f\n", elided, lastIssue)
			elided = 0
		}
	}
	for _, p := range pts {
		if p.Issue == lastIssue {
			elided++
			continue
		}
		flush()
		fmt.Fprintf(&sb, "  cycle %3d  %-7s issue=%.2f window=%.1f\n", p.Cycle, p.Phase, p.Issue, p.Window)
		lastIssue = p.Issue
	}
	flush()
	return sb.String()
}
