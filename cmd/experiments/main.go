// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments [-n instructions] [-seed seed] [-list] [-csv] [-out dir]
//	            [-parallel workers] [-timing] [-quiet] [experiment ...]
//
// With no arguments it runs every experiment in label order. -csv prints
// comma-separated values for tabular experiments (non-tabular ones fall
// back to text); -out writes each experiment's output to <dir>/<label>.txt
// (or .csv) instead of stdout. -parallel sizes the worker pool that
// workload analyses and experiments fan out across (0 = GOMAXPROCS, 1 =
// sequential); outputs are always emitted in label order, so any setting
// produces identical results. -timing prints a per-workload and
// per-experiment wall-time breakdown after the run, plus counters of
// workload analyses, simulator runs, and classification-cache reuse
// (multi-config experiments share one functional cache/predictor pass
// per benchmark through the suite's prep cache).
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fomodel/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Experiments(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
