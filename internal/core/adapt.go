package core

import (
	"fomodel/internal/iw"
	"fomodel/internal/stats"
)

// InputsFromCurve assembles model Inputs like InputsFromAnalysis and
// additionally sets MeasuredSteadyIPC from the measured IW points: the
// unit-latency curve interpolated at the machine's window size, divided by
// the average latency per Little's law. Experiments use this form; it only
// differs from the pure fit for workloads whose curve is visibly concave
// (the paper's vpr outlier).
func InputsFromCurve(law iw.PowerLaw, points []iw.Point, windowSize int, sum *stats.Summary) (Inputs, error) {
	in := InputsFromAnalysis(law, sum)
	i1, err := iw.InterpolateAt(points, float64(windowSize))
	if err != nil {
		return Inputs{}, err
	}
	if sum.AvgLatency > 0 {
		in.MeasuredSteadyIPC = i1 / sum.AvgLatency
	}
	return in, nil
}

// InputsFromAnalysis assembles model Inputs from the two functional
// analyses the paper prescribes: the fitted IW power law (§3) and the
// trace statistics of §5 step 5.
func InputsFromAnalysis(law iw.PowerLaw, sum *stats.Summary) Inputs {
	return Inputs{
		Name:                sum.Name,
		Alpha:               law.Alpha,
		Beta:                law.Beta,
		AvgLatency:          sum.AvgLatency,
		MispredictsPerInstr: sum.MispredictsPerInstr(),
		ICacheShortPerInstr: sum.ICacheShortPerInstr(),
		ICacheLongPerInstr:  sum.ICacheLongPerInstr(),
		DCacheLongPerInstr:  sum.DCacheLongPerInstr(),
		OverlapFactor:       sum.OverlapFactor(),
		Mix:                 sum.Mix,
		BranchBurstFactor:   sum.BranchBurstFactor(),
		TLBMissesPerInstr:   sum.TLBMissesPerInstr(),
		TLBOverlapFactor:    sum.TLBOverlapFactor(),
	}
}
