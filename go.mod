module fomodel

go 1.22
