// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each experiment is a
// function returning a typed result with a Render method that prints the
// same rows or series the paper reports; cmd/experiments exposes them on
// the command line and bench_test.go exposes them as benchmarks.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fomodel/internal/artifact"
	"fomodel/internal/core"
	"fomodel/internal/iw"
	"fomodel/internal/metrics"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

// Suite owns the shared experiment inputs: the benchmark list, trace
// length, seed, and the baseline machine. Workload analyses are computed
// once and cached; the cache is safe for concurrent use and single-flight
// — concurrent requests for the same benchmark block on one computation
// and share its result.
type Suite struct {
	// N is the dynamic instruction count per workload.
	N int
	// Seed feeds the workload generators.
	Seed uint64
	// Names lists the benchmarks, in report order.
	Names []string
	// Machine is the modeled baseline machine.
	Machine core.Machine
	// Sim is the baseline simulator configuration; its parameters mirror
	// Machine.
	Sim uarch.Config
	// Workers bounds the concurrency of the suite's parallel helpers
	// (MapWorkloads and EachWorkload's cache warm-up). Zero means
	// DefaultWorkers; one forces sequential execution. Results are
	// deterministic at any setting.
	Workers int
	// Store, when non-nil, persists the expensive per-benchmark prep
	// products (traces, analyses, classification preps, producer links)
	// across processes; see internal/artifact. Set it before the first
	// Workload call — it is read without synchronization.
	Store *artifact.Store
	// Timings, when non-nil, receives one "workload" sample per computed
	// analysis bundle.
	Timings *Timings
	// Lookup, when non-nil, resolves names that are not built-in
	// profiles to registered custom profiles plus their content hash
	// (typically registry.Snapshot). Set it before the first Workload
	// call — it is read without synchronization.
	Lookup func(name string) (workload.Profile, string, bool)

	mu    sync.Mutex
	cache map[string]*workloadEntry
	// preps memoizes the simulator's classification pass and producer
	// links across configs (see uarch.PrepCache); multi-config studies
	// share one functional pass per distinct classification key.
	preps *uarch.PrepCache
	// workloadComputes and simRuns count the suite's two expensive
	// operations (see Counters). They use the shared metrics counter type
	// so the CLI's -timing report and the daemon's /metrics endpoint read
	// the same source.
	workloadComputes metrics.Counter
	simRuns          metrics.Counter
}

// workloadEntry is one single-flight cache slot: the first caller runs
// the computation inside once, every later or concurrent caller blocks on
// it and shares the outcome. Errors are cached too — the computation is
// deterministic, so retrying cannot change the result.
type workloadEntry struct {
	once sync.Once
	w    *Workload
	err  error
}

// Workload bundles one benchmark's trace and every derived analysis the
// experiments consume.
type Workload struct {
	Name    string
	Trace   *trace.Trace
	Points  []iw.Point
	Law     iw.PowerLaw
	Summary *stats.Summary
	Inputs  core.Inputs
}

// NewSuite returns a Suite over all twelve benchmarks with the paper's
// baseline machine. n is the per-benchmark dynamic instruction count
// (500k gives stable statistics; the unit tests use less).
func NewSuite(n int, seed uint64) *Suite {
	m := core.DefaultMachine()
	sim := uarch.DefaultConfig()
	return &Suite{
		N:       n,
		Seed:    seed,
		Names:   workload.Names(),
		Machine: m,
		Sim:     sim,
		cache:   make(map[string]*workloadEntry),
		preps:   uarch.NewPrepCache(),
	}
}

// workers resolves the suite's effective pool size.
func (s *Suite) workers() int { return normalizeWorkers(s.Workers) }

// Counters reports how many workload analyses and detailed-simulator runs
// the suite has performed — the two expensive operations worth watching
// when tuning a parallel run. Safe for concurrent use.
func (s *Suite) Counters() (workloads, simulations int64) {
	return s.workloadComputes.Load(), s.simRuns.Load()
}

// PrepCounters reports the classification cache's hit/miss counts: how
// many simulator runs reused a cached functional pass versus paying for
// one. Safe for concurrent use; zero when the suite was built without
// NewSuite (caching disabled).
func (s *Suite) PrepCounters() (hits, misses int64) {
	return s.preps.Stats()
}

// Preps exposes the suite's classification cache so callers that run the
// simulator outside Suite.Simulate (the serving daemon's predict path)
// can share its memoized functional passes and its hit/miss counters.
// Nil when the suite was built without NewSuite.
func (s *Suite) Preps() *uarch.PrepCache { return s.preps }

// SetStore points both the suite's workload pipeline and its
// classification cache at the persistent artifact store. Call before the
// first Workload or Simulate call.
func (s *Suite) SetStore(st *artifact.Store) {
	s.Store = st
	s.preps.SetStore(st)
}

// CounterSources exposes the live workload-analysis and simulator-run
// counters for metrics exporters; the values always match Counters.
func (s *Suite) CounterSources() (workloads, simulations *metrics.Counter) {
	return &s.workloadComputes, &s.simRuns
}

// Workload returns the cached analysis bundle for name, computing it on
// first use. Concurrent callers for the same name block on a single
// computation and share its result. Names that are not built-in
// profiles resolve through Lookup (registered custom workloads); their
// cache slots are keyed by name plus content hash, so re-registering a
// name with different content computes fresh instead of serving the
// old definition.
func (s *Suite) Workload(name string) (*Workload, error) {
	key := name
	var custom *workload.Profile
	if _, err := workload.ByName(name); err != nil && s.Lookup != nil {
		if prof, hash, ok := s.Lookup(name); ok {
			custom = &prof
			// NUL cannot occur in a valid profile name, so custom slots
			// can never collide with built-in ones.
			key = name + "\x00" + hash
		}
	}
	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &workloadEntry{}
		s.cache[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		s.workloadComputes.Inc()
		start := time.Now()
		if custom != nil {
			e.w, e.err = s.computeCustomWorkload(*custom)
		} else {
			e.w, e.err = s.computeWorkload(name)
		}
		s.Timings.Record("workload", name, time.Since(start))
	})
	return e.w, e.err
}

// Forget drops name's cached analysis bundles — both the built-in slot
// and any content-hashed custom slots — so a deleted or re-registered
// workload cannot be served from the suite cache. In-flight
// computations complete on their orphaned entries and are discarded.
func (s *Suite) Forget(name string) {
	prefix := name + "\x00"
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.cache {
		if key == name || strings.HasPrefix(key, prefix) {
			delete(s.cache, key)
		}
	}
}

// KnowsWorkload reports whether name resolves to a built-in profile or
// a registered custom workload — the validation predicate for requests
// that reference workloads by name.
func (s *Suite) KnowsWorkload(name string) bool {
	if _, err := workload.ByName(name); err == nil {
		return true
	}
	if s != nil && s.Lookup != nil {
		if _, _, ok := s.Lookup(name); ok {
			return true
		}
	}
	return false
}

// computeWorkload builds the full analysis bundle for one benchmark,
// serving the trace and the analysis pass from the artifact store when
// one is configured and warm.
func (s *Suite) computeWorkload(name string) (*Workload, error) {
	t, err := LoadOrGenerateTrace(s.Store, name, s.N, s.Seed)
	if err != nil {
		return nil, err
	}
	return s.analyzeTrace(name, t)
}

// computeCustomWorkload is computeWorkload for a registered profile:
// the trace comes from the profile's content-keyed artifact slot, and
// everything downstream is identical to a built-in.
func (s *Suite) computeCustomWorkload(prof workload.Profile) (*Workload, error) {
	t, err := LoadOrGenerateProfileTrace(s.Store, prof, s.N, s.Seed)
	if err != nil {
		return nil, err
	}
	return s.analyzeTrace(prof.Name, t)
}

// analyzeTrace runs the shared analysis tail: IW characteristic,
// power-law fit, miss statistics, and model inputs.
func (s *Suite) analyzeTrace(name string, t *trace.Trace) (*Workload, error) {
	scfg := stats.DefaultConfig()
	scfg.Hierarchy = s.Sim.Hierarchy
	scfg.PredictorBits = s.Sim.PredictorBits
	scfg.Latencies = s.Sim.Latencies
	scfg.ROBSize = s.Machine.ROBSize
	scfg.Warmup = s.Sim.Warmup
	an, err := ComputeAnalysis(s.Store, t, iw.DefaultWindows(), scfg)
	if err != nil {
		return nil, err
	}
	inputs, err := core.InputsFromCurve(an.Law, an.Points, s.Machine.WindowSize, an.Summary)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:    name,
		Trace:   t,
		Points:  an.Points,
		Law:     an.Law,
		Summary: an.Summary,
		Inputs:  inputs,
	}, nil
}

// Warm computes any uncached workload analyses concurrently, bounded by
// Workers. Computation errors stay in the cache and resurface, in report
// order, when the failing workload is next requested — so Warm itself
// never fails and is safe to use as a pure prefetch.
func (s *Suite) Warm() {
	workers := s.workers()
	if workers <= 1 || len(s.Names) <= 1 {
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, name := range s.Names {
		wg.Add(1)
		sem <- struct{}{}
		go func(name string) {
			defer wg.Done()
			defer func() { <-sem }()
			_, _ = s.Workload(name)
		}(name)
	}
	wg.Wait()
}

// EachWorkload runs fn for every benchmark, in report order, stopping at
// the first error. The workload analyses are warmed concurrently (bounded
// by Workers), but fn always runs sequentially on the calling goroutine,
// so its side effects need no synchronization and keep report order.
// Experiments whose per-benchmark work is itself expensive should use
// MapWorkloads instead, which also fans fn out.
func (s *Suite) EachWorkload(fn func(*Workload) error) error {
	s.Warm()
	for _, name := range s.Names {
		w, err := s.Workload(name)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		if err := fn(w); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
	}
	return nil
}

// Simulate runs the detailed simulator on w with the given ideal toggles,
// starting from the suite's baseline configuration. Runs go through the
// suite's classification cache: configs that differ only in timing-side
// parameters (widths, depths, window/ROB sizes, latencies, the Ideal*
// toggles) share one functional classification pass per benchmark.
func (s *Suite) Simulate(w *Workload, mutate func(*uarch.Config)) (*uarch.Result, error) {
	cfg := s.Sim
	if mutate != nil {
		mutate(&cfg)
	}
	s.simRuns.Inc()
	return s.preps.Simulate(w.Trace, cfg)
}

// Estimate runs the analytical model on w with the paper's default
// options.
func (s *Suite) Estimate(w *Workload) (core.Estimate, error) {
	return s.Machine.Estimate(w.Inputs, core.Options{})
}

// Registry maps experiment names ("fig2", "table1", …) to runners that
// produce renderable results.
type Registry map[string]func(context.Context, *Suite) (Renderable, error)

// Renderable is a computed experiment result that can print itself as the
// paper-style table or series.
type Renderable interface {
	Render() string
}

// DefaultRegistry returns every experiment keyed by its paper label.
func DefaultRegistry() Registry {
	return Registry{
		"fig2":          func(_ context.Context, s *Suite) (Renderable, error) { return Figure2(s) },
		"fig4":          func(_ context.Context, s *Suite) (Renderable, error) { return Figure4(s) },
		"table1":        func(_ context.Context, s *Suite) (Renderable, error) { return Table1(s) },
		"fig5":          func(_ context.Context, s *Suite) (Renderable, error) { return Figure5(s) },
		"fig6":          func(_ context.Context, s *Suite) (Renderable, error) { return Figure6(s) },
		"fig7":          func(_ context.Context, s *Suite) (Renderable, error) { return Figure7(s) },
		"fig8":          func(_ context.Context, s *Suite) (Renderable, error) { return Figure8(s) },
		"fig9":          func(_ context.Context, s *Suite) (Renderable, error) { return Figure9(s) },
		"fig10":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure10(s) },
		"fig11":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure11(s) },
		"fig12":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure12(s) },
		"fig13":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure13(s) },
		"fig14":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure14(s) },
		"fig15":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure15(s) },
		"fig16":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure16(s) },
		"fig17":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure17(s) },
		"fig18":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure18(s) },
		"fig19":         func(_ context.Context, s *Suite) (Renderable, error) { return Figure19(s) },
		"ext-fu":        func(_ context.Context, s *Suite) (Renderable, error) { return ExtensionFU(s) },
		"ext-fetchbuf":  func(_ context.Context, s *Suite) (Renderable, error) { return ExtensionFetchBuffer(s) },
		"ext-tlb":       func(_ context.Context, s *Suite) (Renderable, error) { return ExtensionTLB(s) },
		"ext-cluster":   func(_ context.Context, s *Suite) (Renderable, error) { return ExtensionClusters(s) },
		"predictors":    func(_ context.Context, s *Suite) (Renderable, error) { return PredictorStudy(s) },
		"sweep-window":  func(ctx context.Context, s *Suite) (Renderable, error) { return WindowSweep(ctx, s) },
		"sweep-rob":     func(ctx context.Context, s *Suite) (Renderable, error) { return ROBSweep(ctx, s) },
		"statsim":       func(_ context.Context, s *Suite) (Renderable, error) { return StatSimStudy(s) },
		"refine-branch": func(_ context.Context, s *Suite) (Renderable, error) { return BranchBurstRefinement(s) },
		"methods":       func(_ context.Context, s *Suite) (Renderable, error) { return MethodologyComparison(s) },
		"seeds":         func(_ context.Context, s *Suite) (Renderable, error) { return SeedRobustness(s) },
		"inorder":       func(_ context.Context, s *Suite) (Renderable, error) { return InOrderBaseline(s) },
		"littleslaw":    func(_ context.Context, s *Suite) (Renderable, error) { return LittlesLaw(s) },
	}
}

// Labels returns the registry's experiment names, sorted.
func (r Registry) Labels() []string {
	labels := make([]string, 0, len(r))
	for l := range r {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}
