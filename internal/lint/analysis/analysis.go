// Package analysis is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass,
// Diagnostic — sized for this repository's own invariant checkers.
//
// The upstream module is deliberately not vendored: the checkers in
// internal/lint need exactly the surface below (a named analyzer run
// over one type-checked package at a time, reporting positioned
// diagnostics), and keeping the framework in-tree means fomodelvet
// builds from a clean module cache with no network access. The shapes
// mirror go/analysis closely enough that porting an analyzer to the
// upstream framework is a mechanical rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name diagnostics are
// attributed to (and that //folint:allow comments reference), one-line
// documentation, and the per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments. It must be a valid identifier.
	Name string

	// Doc is a short description of the invariant the analyzer
	// enforces, shown by fomodelvet's usage text.
	Doc string

	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the returned error aborts the whole run and is
	// reserved for analyzer malfunctions, not findings.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the analyzer this pass executes.
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet

	// Files are the package's parsed source files, with comments.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's expression and identifier
	// resolutions for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns suppression
	// filtering and ordering; analyzers just report everything they
	// find.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos is the primary position of the finding.
	Pos token.Pos

	// Analyzer names the analyzer that produced the finding; the Pass
	// fills it in.
	Analyzer string

	// Message is the human-readable finding.
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Callee resolves the statically-known callee of call: a package-level
// function, a method (value or pointer receiver, concrete or
// interface), or a conversion/builtin, in which case it returns nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			obj = sel.Obj()
		} else {
			// Qualified identifier: pkg.Func.
			obj = info.Uses[fn.Sel]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// IsPkgFunc reports whether call statically invokes one of the named
// package-level functions of the package with the given import path.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := Callee(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// FuncPkgPath returns the import path of the package declaring f, or
// "" when unknown (builtins).
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// RecvTypeName returns the package path and type name of f's receiver
// base type ("", "" for non-methods and unnamed receivers). Interface
// methods report the interface's defining package and name.
func RecvTypeName(f *types.Func) (pkgPath, typeName string) {
	if f == nil {
		return "", ""
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// IsErrorType reports whether t is the built-in error interface type.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
