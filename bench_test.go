// Package fomodel's root benchmark harness regenerates every table and
// figure of the paper (one benchmark per experiment — see DESIGN.md §4)
// and runs the ablation studies of DESIGN.md §5. Paper-facing quality
// metrics are attached to each benchmark with b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the harness and reports the reproduced numbers (e.g.
// cpi_err_pct for Fig. 15 should sit near the paper's 5.8).
package fomodel_test

import (
	"context"
	"sync"
	"testing"

	"fomodel/internal/core"
	"fomodel/internal/experiments"
	"fomodel/internal/iw"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

// benchSuite is shared across benchmarks: trace generation and the
// functional analyses are paid once, so each benchmark times its own
// experiment. 120k instructions keeps one full sweep under a minute.
var (
	benchSuiteOnce sync.Once
	benchSuiteVal  *experiments.Suite
)

func benchSuite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuiteVal = experiments.NewSuite(120000, 1)
	})
	return benchSuiteVal
}

// run invokes an experiment b.N times and returns the last result for
// metric reporting.
func run[T any](b *testing.B, fn func(*experiments.Suite) (T, error)) T {
	b.Helper()
	s := benchSuite()
	var res T
	var err error
	for i := 0; i < b.N; i++ {
		res, err = fn(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFigure2(b *testing.B) {
	res := run(b, experiments.Figure2)
	b.ReportMetric(100*res.MeanIndependentErr, "indep_err_pct")
	b.ReportMetric(100*res.MeanCompensatedErr, "comp_err_pct")
}

func BenchmarkFigure4(b *testing.B) {
	res := run(b, experiments.Figure4)
	b.ReportMetric(float64(len(res.Curves)), "curves")
}

func BenchmarkTable1(b *testing.B) {
	res := run(b, experiments.Table1)
	if vpr, ok := res.Row("vpr"); ok {
		b.ReportMetric(vpr.Beta, "vpr_beta")
	}
	if vortex, ok := res.Row("vortex"); ok {
		b.ReportMetric(vortex.Beta, "vortex_beta")
	}
}

func BenchmarkFigure5(b *testing.B) {
	res := run(b, experiments.Figure5)
	b.ReportMetric(float64(len(res.Rows)), "points")
}

func BenchmarkFigure6(b *testing.B) {
	res := run(b, experiments.Figure6)
	b.ReportMetric(float64(len(res.Widths)), "widths")
}

func BenchmarkFigure7(b *testing.B) {
	res := run(b, experiments.Figure7)
	b.ReportMetric(float64(res.PenaltyCycles), "penalty_cycles")
	b.ReportMetric(float64(res.ZeroCycles), "refill_gap_cycles")
}

func BenchmarkFigure8(b *testing.B) {
	res := run(b, experiments.Figure8)
	b.ReportMetric(res.Drain, "drain_cycles")
	b.ReportMetric(res.RampUp, "ramp_cycles")
	b.ReportMetric(res.Total, "total_cycles")
}

func BenchmarkFigure9(b *testing.B) {
	res := run(b, experiments.Figure9)
	var mean float64
	for _, r := range res.Rows {
		mean += r.SimPenalty5
	}
	b.ReportMetric(mean/float64(len(res.Rows)), "penalty5_cycles")
}

func BenchmarkFigure10(b *testing.B) {
	res := run(b, experiments.Figure10)
	b.ReportMetric(float64(len(res.Points)), "cycles")
}

func BenchmarkFigure11(b *testing.B) {
	res := run(b, experiments.Figure11)
	// Report the miss-weighted mean penalty (the low-miss benchmarks are
	// noise, as in the paper).
	var num, den float64
	for _, r := range res.Rows {
		num += r.SimPenalty5 * float64(r.Misses5)
		den += float64(r.Misses5)
	}
	if den > 0 {
		b.ReportMetric(num/den, "penalty_cycles")
	}
}

func BenchmarkFigure12(b *testing.B) {
	res := run(b, experiments.Figure12)
	b.ReportMetric(float64(len(res.Points)), "cycles")
}

func BenchmarkFigure14(b *testing.B) {
	res := run(b, experiments.Figure14)
	var num, den float64
	for _, r := range res.Rows {
		num += abs(r.ModelPenalty-r.SimPenalty) / r.SimPenalty
		den++
	}
	b.ReportMetric(100*num/den, "penalty_err_pct")
}

func BenchmarkFigure15(b *testing.B) {
	res := run(b, experiments.Figure15)
	b.ReportMetric(100*res.MeanAbsErr, "cpi_err_pct")
	b.ReportMetric(100*res.MaxAbsErr, "worst_err_pct")
}

func BenchmarkFigure16(b *testing.B) {
	res := run(b, experiments.Figure16)
	for _, r := range res.Rows {
		if r.Name == "mcf" {
			b.ReportMetric(100*r.Estimate.DCacheCPI/r.Estimate.CPI, "mcf_dshare_pct")
		}
	}
}

func BenchmarkFigure17(b *testing.B) {
	res := run(b, experiments.Figure17)
	b.ReportMetric(float64(res.Optimal[3].Depth), "opt_depth_w3")
	b.ReportMetric(float64(res.Optimal[8].Depth), "opt_depth_w8")
}

func BenchmarkFigure18(b *testing.B) {
	res := run(b, experiments.Figure18)
	mid := len(res.Fractions) / 2
	b.ReportMetric(res.Required[8][mid].InstrBetweenMispredicts/
		res.Required[4][mid].InstrBetweenMispredicts, "double_width_ratio")
}

func BenchmarkFigure19(b *testing.B) {
	res := run(b, experiments.Figure19)
	peak := 0.0
	for _, p := range res.Traces[8] {
		if p.Issue > peak {
			peak = p.Issue
		}
	}
	b.ReportMetric(peak, "peak_issue_w8")
}

// --- Ablation benches (DESIGN.md §5) -----------------------------------

// figure15Error recomputes the Fig. 15 mean CPI error with per-workload
// input/option mutations, against cached simulator runs.
func figure15Error(b *testing.B, s *experiments.Suite,
	mutate func(*core.Inputs, *core.Options)) float64 {
	b.Helper()
	var sumErr, n float64
	for _, name := range s.Names {
		w, err := s.Workload(name)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := s.Simulate(w, nil)
		if err != nil {
			b.Fatal(err)
		}
		in := w.Inputs
		opts := core.Options{}
		mutate(&in, &opts)
		est, err := s.Machine.Estimate(in, opts)
		if err != nil {
			b.Fatal(err)
		}
		sumErr += abs(est.CPI-sim.CPI()) / sim.CPI()
		n++
	}
	return sumErr / n
}

// BenchmarkAblationTransientEpsilon sweeps the ramp-up convergence
// threshold: too tight overestimates the branch penalty, too loose
// underestimates it.
func BenchmarkAblationTransientEpsilon(b *testing.B) {
	s := benchSuite()
	var errs [3]float64
	for i := 0; i < b.N; i++ {
		for j, eps := range []float64{0.02, 0.05, 0.20} {
			errs[j] = figure15Error(b, s, func(in *core.Inputs, o *core.Options) {
				o.RampEpsilon = eps
			})
		}
	}
	b.ReportMetric(100*errs[0], "err_eps02_pct")
	b.ReportMetric(100*errs[1], "err_eps05_pct")
	b.ReportMetric(100*errs[2], "err_eps20_pct")
}

// BenchmarkAblationBranchBurst compares the paper's midpoint heuristic
// against the isolated upper bound and a burst-of-4 assumption. (A
// burst of 2 is algebraically identical to the midpoint: (ΔP+iso)/2 =
// ΔP + (drain+ramp)/2.)
func BenchmarkAblationBranchBurst(b *testing.B) {
	s := benchSuite()
	var errs [3]float64
	for i := 0; i < b.N; i++ {
		for j, mode := range []core.BranchPenaltyMode{
			core.BranchMidpoint, core.BranchIsolated, core.BranchBurst,
		} {
			errs[j] = figure15Error(b, s, func(in *core.Inputs, o *core.Options) {
				o.BranchMode = mode
				o.BurstLength = 4
			})
		}
	}
	b.ReportMetric(100*errs[0], "err_midpoint_pct")
	b.ReportMetric(100*errs[1], "err_isolated_pct")
	b.ReportMetric(100*errs[2], "err_burst4_pct")
}

// BenchmarkAblationDMissOverlap disables equation (8)'s overlap factor
// (treating every long miss as isolated), which overcharges clustered
// workloads like mcf.
func BenchmarkAblationDMissOverlap(b *testing.B) {
	s := benchSuite()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = figure15Error(b, s, func(in *core.Inputs, o *core.Options) {})
		without = figure15Error(b, s, func(in *core.Inputs, o *core.Options) {
			in.OverlapFactor = 1
		})
	}
	b.ReportMetric(100*with, "err_eq8_pct")
	b.ReportMetric(100*without, "err_isolated_only_pct")
}

// BenchmarkAblationSaturation compares the hard clip min(width, curve)
// against the smooth soft-min approximation.
func BenchmarkAblationSaturation(b *testing.B) {
	s := benchSuite()
	var hard, smooth float64
	for i := 0; i < b.N; i++ {
		hard = figure15Error(b, s, func(in *core.Inputs, o *core.Options) {})
		smooth = figure15Error(b, s, func(in *core.Inputs, o *core.Options) {
			o.SmoothSaturation = true
			in.MeasuredSteadyIPC = 0 // let the curve shape matter
		})
	}
	b.ReportMetric(100*hard, "err_hardclip_pct")
	b.ReportMetric(100*smooth, "err_smooth_pct")
}

// --- Extension benches (paper §7 future-work features) ------------------

func BenchmarkExtensionFU(b *testing.B) {
	res := run(b, experiments.ExtensionFU)
	b.ReportMetric(100*res.MeanAbsErr, "cpi_err_pct")
}

func BenchmarkExtensionFetchBuffer(b *testing.B) {
	res := run(b, experiments.ExtensionFetchBuffer)
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	b.ReportMetric(first.SimCPI-last.SimCPI, "sim_cpi_saved")
	b.ReportMetric(first.ModelCPI-last.ModelCPI, "model_cpi_saved")
}

func BenchmarkExtensionTLB(b *testing.B) {
	res := run(b, experiments.ExtensionTLB)
	b.ReportMetric(100*res.MeanAbsErr, "cpi_err_pct")
}

func BenchmarkExtensionClusters(b *testing.B) {
	res := run(b, experiments.ExtensionClusters)
	// Report the mean clustering slowdown the machine observed from 1→4
	// clusters across the swept benchmarks.
	byBench := map[string][]float64{}
	for _, p := range res.Points {
		byBench[p.Bench] = append(byBench[p.Bench], p.SimCPI)
	}
	var slow float64
	for _, cpis := range byBench {
		slow += cpis[len(cpis)-1] - cpis[0]
	}
	b.ReportMetric(slow/float64(len(byBench)), "cluster_cpi_cost")
}

func BenchmarkPredictorStudy(b *testing.B) {
	res := run(b, experiments.PredictorStudy)
	for name, e := range res.MeanAbsErrByPredictor {
		b.ReportMetric(100*e, "err_"+name+"_pct")
	}
}

func BenchmarkWindowSweep(b *testing.B) {
	res := run(b, func(s *experiments.Suite) (*experiments.SweepResult, error) {
		return experiments.WindowSweep(context.Background(), s)
	})
	b.ReportMetric(100*res.MeanAbsErr, "cpi_err_pct")
}

func BenchmarkROBSweep(b *testing.B) {
	res := run(b, func(s *experiments.Suite) (*experiments.SweepResult, error) {
		return experiments.ROBSweep(context.Background(), s)
	})
	b.ReportMetric(100*res.MeanAbsErr, "cpi_err_pct")
}

func BenchmarkStatSimStudy(b *testing.B) {
	res := run(b, experiments.StatSimStudy)
	b.ReportMetric(100*res.MeanModelErr, "model_err_pct")
	b.ReportMetric(100*res.MeanStatSimErr, "statsim_err_pct")
}

func BenchmarkMethodologyComparison(b *testing.B) {
	res := run(b, experiments.MethodologyComparison)
	b.ReportMetric(100*res.MeanModelErr, "model_err_pct")
	b.ReportMetric(100*res.MeanStatSimErr, "statsim_err_pct")
	b.ReportMetric(100*res.MeanSampledErr, "sampled_err_pct")
}

func BenchmarkInOrderBaseline(b *testing.B) {
	res := run(b, experiments.InOrderBaseline)
	var slow float64
	for _, r := range res.Rows {
		slow += r.Slowdown
	}
	b.ReportMetric(slow/float64(len(res.Rows)), "inorder_slowdown")
}

func BenchmarkLittlesLaw(b *testing.B) {
	res := run(b, experiments.LittlesLaw)
	b.ReportMetric(100*res.MeanAbsErr, "approx_err_pct")
}

// --- Engine parallelism benches -----------------------------------------

// fullSuiteWorkloads measures the engine's headline win: computing every
// workload analysis on a fresh suite, sequentially vs. on a
// GOMAXPROCS-sized pool. The analyses are embarrassingly parallel, so on a
// machine with ≥4 cores BenchmarkSuiteWarmParallel should run ≥2x faster
// than BenchmarkSuiteWarmSequential; on a single-core runner the two
// necessarily tie.
func fullSuiteWorkloads(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(60000, 1)
		s.Workers = workers
		if workers > 1 {
			s.Warm()
		}
		for _, name := range s.Names {
			if _, err := s.Workload(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSuiteWarmSequential(b *testing.B) { fullSuiteWorkloads(b, 1) }

func BenchmarkSuiteWarmParallel(b *testing.B) {
	fullSuiteWorkloads(b, experiments.DefaultWorkers())
}

// fullExperimentRun times a representative experiment battery on a fresh
// suite at the given pool size; the workload analyses dominate, with the
// per-benchmark simulator runs of fig15/fig9 close behind — both fan out.
func fullExperimentRun(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(60000, 1)
		s.Names = []string{"gzip", "mcf", "vortex", "vpr", "twolf", "gap"}
		s.Workers = workers
		if _, err := experiments.Figure15(s); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure9(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentsSequential(b *testing.B) { fullExperimentRun(b, 1) }

func BenchmarkExperimentsParallel(b *testing.B) {
	fullExperimentRun(b, experiments.DefaultWorkers())
}

// --- Component micro-benchmarks ----------------------------------------

func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate("gcc", 100000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetailedSimulator(b *testing.B) {
	t, err := workload.Generate("gzip", 100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Simulate(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(t.Len()))
}

func BenchmarkIWCharacteristic(b *testing.B) {
	t, err := workload.Generate("gzip", 100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iw.Characteristic(t, iw.DefaultWindows(), iw.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyticalModel(b *testing.B) {
	s := benchSuite()
	w, err := s.Workload("gzip")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Machine.Estimate(w.Inputs, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
