package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range Profiles() {
		var buf bytes.Buffer
		if err := WriteProfile(&buf, p); err != nil {
			t.Fatalf("%s: encode: %v", p.Name, err)
		}
		got, err := ReadProfile(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if got != p {
			t.Fatalf("%s: round trip changed the profile:\n got %+v\nwant %+v", p.Name, got, p)
		}
	}
}

func TestReadProfileRejectsInvalid(t *testing.T) {
	// Valid JSON, invalid profile (NumBlocks too small).
	var buf bytes.Buffer
	p := baseProfile("bad")
	p.NumBlocks = 1
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`{"name":"x","unknown_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`{"name":"x","mix":{"nonsense":1}}`)); err == nil {
		t.Fatal("unknown mix class accepted")
	}
}

func TestReadProfileGeneratesUsableTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, baseProfile("custom")); err != nil {
		t.Fatal(err)
	}
	p, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownMixClassErrorIsDeterministic pins that a profile with
// several unknown mix classes always reports the same (first in sorted
// order) class name, regardless of map iteration order.
func TestUnknownMixClassErrorIsDeterministic(t *testing.T) {
	raw := []byte(`{"name":"x","mix":{"zzz":0.5,"aaa":0.3,"mmm":0.2}}`)
	want := `unknown instruction class "aaa"`
	for i := 0; i < 20; i++ {
		var p Profile
		err := p.UnmarshalJSON(raw)
		if err == nil {
			t.Fatal("unknown mix classes accepted")
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("iteration %d: error %q does not name the sorted-first class", i, err)
		}
	}
}
