// Package sampling implements sampled simulation — the third methodology
// in the accuracy/cost trade-off the paper motivates. Where the
// first-order model replaces timing simulation with closed forms and
// statistical simulation replaces the real trace with a synthetic one,
// sampled simulation times only periodically selected windows of the real
// trace and extrapolates.
//
// The implementation reuses the repository's decoupled design: one
// functional pass over the whole trace classifies every miss event (so
// cache and predictor state is exact at every window boundary — "functional
// warming" in the sampling literature), and the cycle-level simulator then
// times only the sampled windows via uarch.SimulateWithEvents. The
// estimate is the instruction-weighted mean CPI of the sampled windows.
//
// Three standard sampling biases remain, by design: register dependences
// that cross a window's starting boundary are treated as ready (slightly
// optimistic); each window pays its own pipeline-fill start-up; and each
// window drains its in-flight long misses before finishing, charging their
// full latency without the overlap the surrounding trace would provide
// (pessimistic, and the dominant term for short windows — it shrinks as
// 1/WindowLen). The methods experiment quantifies the net effect against
// full simulation.
package sampling

import (
	"fmt"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/predictor"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/uarch"
)

// Config controls the sampling regime.
type Config struct {
	// WindowLen is the length of each timed window in instructions.
	WindowLen int
	// Period is the distance between window starts; Period == WindowLen
	// times everything (no speedup), Period = 10×WindowLen times 10%.
	Period int
}

// DefaultConfig samples 10k-instruction windows every 100k instructions
// (10% of the trace timed).
func DefaultConfig() Config {
	return Config{WindowLen: 10000, Period: 100000}
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.WindowLen <= 0:
		return fmt.Errorf("sampling: window length %d must be positive", c.WindowLen)
	case c.Period < c.WindowLen:
		return fmt.Errorf("sampling: period %d below window length %d", c.Period, c.WindowLen)
	}
	return nil
}

// Result reports a sampled estimate.
type Result struct {
	// CPI is the instruction-weighted mean CPI over the sampled windows.
	CPI float64
	// Windows is the number of windows timed and SampledInstructions
	// their total length.
	Windows             int
	SampledInstructions int
	// TotalInstructions is the full trace length.
	TotalInstructions int
}

// SampledFraction returns the fraction of the trace that was timed.
func (r *Result) SampledFraction() float64 {
	if r.TotalInstructions == 0 {
		return 0
	}
	return float64(r.SampledInstructions) / float64(r.TotalInstructions)
}

// Estimate runs sampled simulation of t on the machine described by cfg.
func Estimate(t *trace.Trace, cfg uarch.Config, sc Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("sampling: empty trace %q", t.Name)
	}

	// Functional warming: classify every instruction of the full trace,
	// exactly as the reference simulator's own functional pass does.
	events, err := classifyAll(t, cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{TotalInstructions: t.Len()}
	var weightedCycles float64
	for start := 0; start < t.Len(); start += sc.Period {
		end := start + sc.WindowLen
		if end > t.Len() {
			end = t.Len()
		}
		window := &trace.Trace{Name: t.Name, Instrs: t.Instrs[start:end]}
		r, err := uarch.SimulateWithEvents(window, events[start:end], cfg)
		if err != nil {
			return nil, err
		}
		weightedCycles += float64(r.Cycles)
		res.Windows++
		res.SampledInstructions += window.Len()
	}
	if res.SampledInstructions == 0 {
		return nil, fmt.Errorf("sampling: no windows sampled")
	}
	res.CPI = weightedCycles / float64(res.SampledInstructions)
	return res, nil
}

// classifyAll performs the program-order functional pass over the whole
// trace and returns per-instruction events.
func classifyAll(t *trace.Trace, cfg uarch.Config) ([]uarch.Event, error) {
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	var gs predictor.Predictor
	if cfg.Predictor != nil {
		gs, err = cfg.Predictor.New()
	} else {
		gs, err = predictor.NewGshare(cfg.PredictorBits)
	}
	if err != nil {
		return nil, err
	}
	var tlb *cache.TLB
	if cfg.TLB != nil {
		tlb, err = cache.NewTLB(*cfg.TLB)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Warmup {
		stats.WarmHierarchy(h, t)
	}
	events := make([]uarch.Event, t.Len())
	for i := range t.Instrs {
		in := &t.Instrs[i]
		ev := &events[i]
		ev.ICache = h.Fetch(in.PC)
		switch in.Class {
		case isa.Branch:
			ev.Mispredict = gs.Predict(in.PC) != in.Taken
			gs.Update(in.PC, in.Taken)
		case isa.Load, isa.Store:
			if tlb != nil {
				ev.TLBMiss = !tlb.Access(in.Addr)
			}
			ev.DCache = h.Data(in.Addr)
		}
	}
	return events, nil
}
