// Package isa defines the minimal RISC-like instruction set abstraction the
// simulators and the first-order model operate on. The paper's model only
// depends on a handful of instruction properties — operation class (for
// latency), register dependences, memory address (for loads/stores), and
// branch outcome — so that is exactly what the ISA captures.
package isa

import "fmt"

// Class is the operation class of an instruction. Classes determine
// execution latency and which structural resources an instruction touches.
type Class uint8

const (
	// ALU is a single-cycle integer operation.
	ALU Class = iota
	// Mul is an integer multiply.
	Mul
	// Div is an integer divide.
	Div
	// FPU is a floating-point operation.
	FPU
	// Load reads memory through the data cache.
	Load
	// Store writes memory through the data cache. Stores commit at retire
	// and do not stall issue in the modeled machine.
	Store
	// Branch is a conditional branch; its prediction gates the front end.
	Branch
	// NumClasses is the number of operation classes.
	NumClasses = iota
)

// String returns the conventional mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ALU:
		return "alu"
	case Mul:
		return "mul"
	case Div:
		return "div"
	case FPU:
		return "fpu"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Valid reports whether c is one of the defined operation classes.
func (c Class) Valid() bool { return c < NumClasses }

// NumArchRegs is the size of the architectural register namespace. The
// dependence generator maps logical producer–consumer distances onto this
// namespace; 64 registers keeps false dependences negligible while staying
// realistic for a RISC ISA.
const NumArchRegs = 64

// RegNone marks an absent register operand.
const RegNone int16 = -1

// LatencyTable maps each operation class to its execution latency in
// cycles. Latencies model fully pipelined functional units: a new operation
// of any class can start every cycle (the paper assumes an unbounded number
// of functional units of each type).
type LatencyTable [NumClasses]int

// DefaultLatencies mirrors the latency assumptions of the paper's baseline
// machine: single-cycle integer ops and branches, longer multiplies,
// divides, and floating point. Load latency here is the cache *hit* latency;
// miss latencies come from the memory hierarchy.
func DefaultLatencies() LatencyTable {
	var t LatencyTable
	t[ALU] = 1
	t[Mul] = 3
	t[Div] = 12
	t[FPU] = 4
	t[Load] = 1
	t[Store] = 1
	t[Branch] = 1
	return t
}

// Validate reports an error if any latency is non-positive.
func (t LatencyTable) Validate() error {
	for c := Class(0); c < NumClasses; c++ {
		if t[c] <= 0 {
			return fmt.Errorf("isa: class %v has non-positive latency %d", c, t[c])
		}
	}
	return nil
}

// Latency returns the execution latency for class c.
func (t LatencyTable) Latency(c Class) int { return t[c] }
