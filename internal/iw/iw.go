// Package iw extracts the IW characteristic — the relationship between
// issue-window size W and average issue rate I — from an instruction trace,
// and fits it to the paper's power law I = alpha * W^beta.
//
// Following §3 of the paper, the characteristic is measured with an
// idealized trace-driven simulation: no miss-events, an unbounded number of
// functional units, unbounded issue and dispatch width, and unit latencies;
// the only limited resource is the issue window. The resulting curve is
// implementation independent — it reflects only the register dependence
// structure of the benchmark. Non-unit latencies are handled afterwards via
// Little's law (I_L = I_1/L), and a finite machine issue width clips the
// curve at saturation (Fig. 6 / Jouppi's observation).
package iw

import (
	"fmt"

	"fomodel/internal/isa"
	"fomodel/internal/trace"
)

// Point is one measured point of the IW characteristic.
type Point struct {
	// W is the issue window size in entries.
	W int
	// I is the measured average issue rate (useful instructions per cycle).
	I float64
}

// Options control the idealized simulation.
type Options struct {
	// Latencies, when non-nil, replaces unit latencies with the given
	// table. The paper's Table 1 parameters use unit latencies and fold
	// real latencies in through Little's law; the table is exposed for
	// ablation.
	Latencies *isa.LatencyTable
	// IssueWidth, when positive, caps instructions issued per cycle
	// (oldest first). Zero means unbounded (the paper's ideal case).
	IssueWidth int
	// Producers, when non-nil, supplies precomputed dependence links for
	// the trace (trace.ComputeProducers), letting callers that also run
	// other simulators share one derivation. Must have exactly one entry
	// per instruction; nil means compute them here (once per
	// Characteristic call, shared across its window sizes).
	Producers []trace.Producer
}

// unitLatencies is the all-ones table of the paper's idealized simulation,
// built once instead of per window-size run.
var unitLatencies = func() isa.LatencyTable {
	var t isa.LatencyTable
	for c := range t {
		t[c] = 1
	}
	return t
}()

// DefaultWindows is the window-size sweep of the paper's Fig. 4:
// log2(W) from 1 to 6.
func DefaultWindows() []int { return []int{2, 4, 8, 16, 32, 64} }

// Characteristic measures the IW curve of t at each window size. The
// per-trace preparation (dependence links, scratch buffers) is shared
// across the window sizes.
func Characteristic(t *trace.Trace, windows []int, opts Options) ([]Point, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("iw: empty trace %q", t.Name)
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("iw: no window sizes given")
	}
	prod := opts.Producers
	if prod == nil {
		prod = trace.ComputeProducers(t)
	} else if len(prod) != t.Len() {
		return nil, fmt.Errorf("iw: %d producer links for %d instructions", len(prod), t.Len())
	}
	lat := unitLatencies
	if opts.Latencies != nil {
		lat = *opts.Latencies
		if err := lat.Validate(); err != nil {
			return nil, err
		}
	}
	// finish is reused (re-zeroed) across the window sizes.
	finish := make([]int64, t.Len())
	points := make([]Point, 0, len(windows))
	for i, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("iw: window size %d must be positive", w)
		}
		if i > 0 {
			clear(finish)
		}
		ipc, err := simulate(t, w, opts.IssueWidth, lat, prod, finish)
		if err != nil {
			return nil, err
		}
		points = append(points, Point{W: w, I: ipc})
	}
	return points, nil
}

// simulate runs the idealized window-limited simulation and returns the
// average issue rate. prod and finish are supplied by Characteristic so
// the six-window sweep shares one dependence derivation and one scratch
// buffer; finish must be zeroed on entry.
func simulate(t *trace.Trace, window, issueWidth int, lat isa.LatencyTable,
	prod []trace.Producer, finish []int64) (float64, error) {
	n := t.Len()

	// slot is one window entry: the instruction index, its producer
	// indices (-1 if none/ready), and the memoized earliest issue cycle
	// (0 until every producer has issued).
	type slot struct {
		idx        int32
		src1, src2 int32
		readyAt    int64
	}
	win := make([]slot, 0, window)
	next := 0 // fill frontier
	issued := 0
	var now int64 = 1

	fill := func() {
		for len(win) < window && next < n {
			s := slot{idx: int32(next), src1: prod[next].Src1, src2: prod[next].Src2}
			if s.src1 < 0 && s.src2 < 0 {
				s.readyAt = 1 // no producers: ready from the first cycle
			}
			win = append(win, s)
			next++
		}
	}

	// ready memoizes the slot's earliest issue cycle once all producers
	// have issued; finish entries are write-once, so the memo never goes
	// stale (see uarch.entryReady for the same pattern).
	ready := func(s *slot) bool {
		if s.readyAt != 0 {
			return s.readyAt <= now
		}
		readyAt := int64(1)
		if s.src1 >= 0 {
			f := finish[s.src1]
			if f == 0 {
				return false
			}
			if f > readyAt {
				readyAt = f
			}
		}
		if s.src2 >= 0 {
			f := finish[s.src2]
			if f == 0 {
				return false
			}
			if f > readyAt {
				readyAt = f
			}
		}
		s.readyAt = readyAt
		return readyAt <= now
	}

	fill()
	for issued < n {
		// Issue every ready instruction this cycle (oldest first), up to
		// the optional width cap.
		kept := win[:0]
		issuedThisCycle := 0
		for i := range win {
			s := &win[i]
			if (issueWidth <= 0 || issuedThisCycle < issueWidth) && ready(s) {
				finish[s.idx] = now + int64(lat.Latency(t.Instrs[s.idx].Class))
				issuedThisCycle++
				issued++
				continue
			}
			kept = append(kept, *s)
		}
		win = kept
		fill()
		now++
	}
	cycles := now - 1
	if cycles <= 0 {
		return 0, fmt.Errorf("iw: degenerate simulation of %q", t.Name)
	}
	return float64(n) / float64(cycles), nil
}
