// Package linttest is the golden-diagnostic harness for the
// fomodelvet analyzers, modeled on x/tools' analysistest: testdata
// packages carry `// want "regexp"` comments on the lines where an
// analyzer must fire, and the harness fails on any diagnostic without
// a want as well as any want without a diagnostic.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fomodel/internal/lint/analysis"
	"fomodel/internal/lint/load"
)

// expectation is one `// want` regexp waiting on a diagnostic at its
// file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// wantTokenRE splits the arguments of a want comment into Go string
// literals (interpreted or raw).
var wantTokenRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the single package under dir (a testdata directory) as
// import path pkgPath, applies the analyzer, and compares its
// diagnostics against the package's want comments. The import path
// matters: analyzers that scope themselves to specific packages (for
// example detrand's pure-model set) see the testdata package under
// exactly the path the test chooses.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := load.Dir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, tok := range wantTokenRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pattern, err := strconv.Unquote(tok)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, tok, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !match(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// match consumes the first unhit expectation covering the diagnostic.
func match(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}
