package uarch

import (
	"fmt"
	"sync"

	"fomodel/internal/cache"
	"fomodel/internal/metrics"
	"fomodel/internal/predictor"
	"fomodel/internal/trace"
)

// classKey is the classification-relevant subset of Config. Two configs
// with equal keys produce bit-identical classify results on the same
// trace, so the prep cache may share one classification between them.
//
// Deliberately excluded — they affect only the timing pass, never the
// functional classification: Width, FrontEndDepth, WindowSize, ROBSize,
// Latencies, FUCounts, FetchBufferSize, InOrder, RecordIssueTrace,
// Clusters, BypassLatency, SerializeLongMisses, the three Ideal* toggles
// (classify always runs the full functional pass; run decides whether to
// charge the events), the hierarchy's Short/LongMissLatency, and the
// TLB's MissLatency. The Ideal-toggle exclusion is what lets the paper's
// five-simulation experiments (Fig. 2, Fig. 9, …) share one prep.
type classKey struct {
	l1i, l1d, l2 cache.Config
	predBits     uint
	hasSpec      bool
	spec         predictor.Spec
	hasTLB       bool
	tlbEntries   int
	tlbPageBytes uint64
	warmup       bool
}

// classificationKey projects cfg onto its classification-relevant subset.
func classificationKey(cfg Config) classKey {
	k := classKey{
		l1i:    cfg.Hierarchy.L1I,
		l1d:    cfg.Hierarchy.L1D,
		l2:     cfg.Hierarchy.L2,
		warmup: cfg.Warmup,
	}
	if cfg.Predictor != nil {
		// The spec overrides the gshare default, so PredictorBits is
		// irrelevant and must not fragment the key.
		k.hasSpec, k.spec = true, *cfg.Predictor
	} else {
		k.predBits = cfg.PredictorBits
	}
	if cfg.TLB != nil {
		k.hasTLB = true
		k.tlbEntries = cfg.TLB.Entries
		k.tlbPageBytes = cfg.TLB.PageBytes
	}
	return k
}

// prepsKey identifies one cached classification: the trace (by identity —
// traces are built once and never mutated by the simulators) and the
// classification-relevant config subset.
type prepsKey struct {
	trace *trace.Trace
	key   classKey
}

// prepsEntry is one single-flight cache slot: the first caller classifies
// inside once, every later or concurrent caller blocks on it and shares
// the outcome. Errors are cached too — classification is deterministic,
// so retrying cannot change the result.
type prepsEntry struct {
	once  sync.Once
	preps []prep
	err   error
}

// prodEntry single-flights the per-trace producer-link computation.
type prodEntry struct {
	once sync.Once
	prod []trace.Producer
}

// PrepCache memoizes the expensive one-time preparation work of Simulate
// across configs and runs: the functional classification pass (caches,
// predictor, TLB, warmup) keyed on the classification-relevant subset of
// Config, and the per-trace producer dependence links keyed on the trace
// alone. Multi-config studies — the paper's five-simulation independence
// experiments, predictor studies, ROB/window sweeps — vary only
// timing-side parameters, so with the cache they classify each trace once
// instead of once per config.
//
// The cache is safe for concurrent use and single-flight: concurrent
// requests for the same key block on one computation and share its
// result, so a parallel sweep performs exactly the same number of
// classifications as a sequential one. run never mutates preps or
// producer links, so sharing one slice across concurrent simulations is
// race-free.
//
// A nil *PrepCache is valid and simply disables caching.
type PrepCache struct {
	mu    sync.Mutex
	preps map[prepsKey]*prepsEntry
	prods map[*trace.Trace]*prodEntry

	// hits and misses use the shared metrics counter type so the CLI's
	// -timing report and the daemon's /metrics endpoint read the same
	// source (see Counters).
	hits, misses metrics.Counter
}

// NewPrepCache returns an empty cache.
func NewPrepCache() *PrepCache {
	return &PrepCache{
		preps: make(map[prepsKey]*prepsEntry),
		prods: make(map[*trace.Trace]*prodEntry),
	}
}

// Simulate is Simulate with the preparation work served from the cache.
// It returns results identical to the package-level Simulate for every
// (trace, config) pair.
func (pc *PrepCache) Simulate(t *trace.Trace, cfg Config) (*Result, error) {
	if pc == nil {
		return Simulate(t, cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("uarch: empty trace %q", t.Name)
	}
	preps, err := pc.classified(t, cfg)
	if err != nil {
		return nil, err
	}
	return run(t, cfg, preps, pc.producers(t))
}

// classified returns the cached classification of (t, cfg), computing it
// on first use.
func (pc *PrepCache) classified(t *trace.Trace, cfg Config) ([]prep, error) {
	k := prepsKey{trace: t, key: classificationKey(cfg)}
	pc.mu.Lock()
	e, ok := pc.preps[k]
	if !ok {
		e = &prepsEntry{}
		pc.preps[k] = e
	}
	pc.mu.Unlock()
	if ok {
		pc.hits.Inc()
	} else {
		pc.misses.Inc()
	}
	e.once.Do(func() { e.preps, e.err = classify(t, cfg) })
	return e.preps, e.err
}

// producers returns the cached producer links of t, computing them on
// first use.
func (pc *PrepCache) producers(t *trace.Trace) []trace.Producer {
	pc.mu.Lock()
	e, ok := pc.prods[t]
	if !ok {
		e = &prodEntry{}
		pc.prods[t] = e
	}
	pc.mu.Unlock()
	e.once.Do(func() { e.prod = trace.ComputeProducers(t) })
	return e.prod
}

// Stats reports how many classification requests were served from the
// cache (hits) versus computed (misses). A request that joins an
// in-flight computation counts as a hit: it performed no work of its own.
// Safe for concurrent use; zero on a nil cache.
func (pc *PrepCache) Stats() (hits, misses int64) {
	if pc == nil {
		return 0, 0
	}
	return pc.hits.Load(), pc.misses.Load()
}

// Counters exposes the live hit/miss counters themselves (not copies),
// so a metrics exporter can register them once and always report the
// same values Stats prints. Nil on a nil cache.
func (pc *PrepCache) Counters() (hits, misses *metrics.Counter) {
	if pc == nil {
		return nil, nil
	}
	return &pc.hits, &pc.misses
}
