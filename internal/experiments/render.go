package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// table renders rows as an aligned text table with a header line.
type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) String() string {
	var sb strings.Builder
	if t.title != "" {
		fmt.Fprintf(&sb, "%s\n", t.title)
	}
	tw := tabwriter.NewWriter(&sb, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.header, "\t"))
	for _, r := range t.rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	// Flushing a tabwriter over a strings.Builder cannot fail.
	tw.Flush()
	for _, n := range t.notes {
		fmt.Fprintf(&sb, "%s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header row first,
// notes omitted). Cells are quoted only when they contain commas.
func (t *table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
