package uarch

import (
	"fmt"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/predictor"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
)

// maxIdleCycles bounds how long the simulator may go without retiring an
// instruction before it reports a deadlock; generous compared to any legal
// stall (memory latency + pipeline depth).
const maxIdleCycles = 1 << 20

// prep holds the precomputed, program-order miss-event classification of
// one instruction (see the package comment for why classification is
// decoupled from timing).
type prep struct {
	ires    cache.Result
	dres    cache.Result
	misp    bool
	tlbMiss bool
}

// Simulate runs the detailed cycle-level simulation of t on the machine
// described by cfg.
func Simulate(t *trace.Trace, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("uarch: empty trace %q", t.Name)
	}
	preps, err := classify(t, cfg)
	if err != nil {
		return nil, err
	}
	return run(t, cfg, preps)
}

// Event is an externally supplied per-instruction miss-event
// classification, used by SimulateWithEvents. It replaces the functional
// cache/predictor pass for callers that synthesize events statistically
// (statistical simulation, the paper's related work [8-10]).
type Event struct {
	// ICache classifies the instruction's fetch.
	ICache cache.Result
	// DCache classifies the data access (loads/stores only).
	DCache cache.Result
	// Mispredict marks a mispredicted branch (branches only).
	Mispredict bool
	// TLBMiss marks a data-TLB miss (loads/stores only; needs cfg.TLB).
	TLBMiss bool
}

// SimulateWithEvents runs the timing simulation of t with the given
// per-instruction miss events instead of deriving them from the cache and
// predictor models. len(events) must equal t.Len().
func SimulateWithEvents(t *trace.Trace, events []Event, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("uarch: empty trace %q", t.Name)
	}
	if len(events) != t.Len() {
		return nil, fmt.Errorf("uarch: %d events for %d instructions", len(events), t.Len())
	}
	preps := make([]prep, len(events))
	for i, ev := range events {
		if ev.TLBMiss && cfg.TLB == nil {
			return nil, fmt.Errorf("uarch: event %d has a TLB miss but no TLB is configured", i)
		}
		preps[i] = prep{ires: ev.ICache, dres: ev.DCache, misp: ev.Mispredict, tlbMiss: ev.TLBMiss}
	}
	return run(t, cfg, preps)
}

// classify performs the functional program-order pass: every instruction's
// fetch result, data access result, and (for branches) predictor outcome.
// The access sequence matches stats.Analyze exactly, so miss-event counts
// agree between the model's inputs and the simulator.
func classify(t *trace.Trace, cfg Config) ([]prep, error) {
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	gs, err := newPredictor(cfg.Predictor, cfg.PredictorBits)
	if err != nil {
		return nil, err
	}
	var tlb *cache.TLB
	if cfg.TLB != nil {
		tlb, err = cache.NewTLB(*cfg.TLB)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Warmup {
		stats.WarmHierarchy(h, t)
	}
	preps := make([]prep, t.Len())
	for i := range t.Instrs {
		in := &t.Instrs[i]
		p := &preps[i]
		p.ires = h.Fetch(in.PC)
		switch in.Class {
		case isa.Branch:
			p.misp = gs.Predict(in.PC) != in.Taken
			gs.Update(in.PC, in.Taken)
		case isa.Load, isa.Store:
			if tlb != nil {
				p.tlbMiss = !tlb.Access(in.Addr)
			}
			p.dres = h.Data(in.Addr)
		}
	}
	return preps, nil
}

// winEntry is one issue-window slot: the instruction index and the indices
// of its producers (-1 when an operand is ready at dispatch).
type winEntry struct {
	idx        int32
	src1, src2 int32
}

// run executes the timing simulation proper.
func run(t *trace.Trace, cfg Config, preps []prep) (*Result, error) {
	n := t.Len()
	res := &Result{
		Instructions:   n,
		IssueHistogram: make([]int64, cfg.Width+1),
	}

	// finish[i] is the cycle instruction i's result becomes available;
	// 0 means not yet issued (cycles start at 1).
	finish := make([]int64, n)

	// Front-end pipeline: instructions [dispatched, fetched) are in
	// flight; feReady is a ring of their dispatch-ready cycles. An
	// optional fetch buffer adds capacity beyond the pipeline stages.
	feCap := cfg.FrontEndDepth*cfg.Width + cfg.FetchBufferSize
	feReady := make([]int64, feCap)

	window := make([]winEntry, 0, cfg.WindowSize)
	var lastWriter [isa.NumArchRegs]int32
	for i := range lastWriter {
		lastWriter[i] = -1
	}

	// Clustering (§7 extension #3): instructions steer round-robin to
	// clusters by dispatch order, so an instruction's cluster is simply
	// its index mod the cluster count.
	clusters := cfg.Clusters
	if clusters < 1 {
		clusters = 1
	}
	clusterWidth := cfg.Width / clusters
	clusterWindow := cfg.WindowSize / clusters
	bypass := int64(cfg.BypassLatency)
	winCount := make([]int, clusters)
	issuedByCluster := make([]int, clusters)

	var (
		cycle      int64 = 1
		fetched    int   // next instruction to fetch
		dispatched int   // next instruction to dispatch
		retired    int   // next instruction to retire
		robCount   int

		// fetchStallUntil blocks fetch for I-cache misses; fetchHalted
		// blocks it for an in-flight mispredicted branch, cleared when
		// branchResume (set at the branch's issue) passes.
		fetchStallUntil int64
		fetchHalted     bool
		branchResume    int64

		// outstanding holds the finish cycles of in-flight long data
		// misses, for overlap accounting and the serialize option.
		outstanding []int64

		lastRetireCycle int64 = 1
	)

	latBranch := int64(cfg.Latencies.Latency(isa.Branch))

	for retired < n {
		// --- Retire (in order, up to Width finished instructions).
		for k := 0; k < cfg.Width && retired < dispatched; k++ {
			f := finish[retired]
			if f == 0 || f > cycle {
				break
			}
			retired++
			robCount--
			lastRetireCycle = cycle
		}

		// Prune completed long misses.
		live := outstanding[:0]
		for _, f := range outstanding {
			if f > cycle {
				live = append(live, f)
			}
		}
		outstanding = live

		// --- Issue (oldest first, up to Width ready instructions; at
		// most FUCounts[class] per class where limited, and at most
		// Width/Clusters per cluster when partitioned).
		issuedThisCycle := 0
		var issuedByClass [isa.NumClasses]int
		for c := range issuedByCluster {
			issuedByCluster[c] = 0
		}
		if len(window) > 0 {
			kept := window[:0]
			stalled := false
			for _, e := range window {
				class := t.Instrs[e.idx].Class
				cluster := int(e.idx) % clusters
				if stalled ||
					issuedThisCycle >= cfg.Width ||
					(clusters > 1 && issuedByCluster[cluster] >= clusterWidth) ||
					(cfg.FUCounts[class] > 0 && issuedByClass[class] >= cfg.FUCounts[class]) ||
					!isReady(e, finish, cycle, clusters, bypass) {
					kept = append(kept, e)
					// In-order issue stalls at the first instruction
					// that cannot go, whatever the reason.
					stalled = stalled || cfg.InOrder
					continue
				}
				idx := int(e.idx)
				in := &t.Instrs[idx]
				lat := int64(cfg.Latencies.Latency(in.Class))
				if in.IsMem() && preps[idx].tlbMiss {
					lat += int64(cfg.TLB.MissLatency)
					res.TLBMisses++
				}
				if in.IsMem() && !cfg.IdealDCache {
					switch preps[idx].dres {
					case cache.ShortMiss:
						lat += int64(cfg.Hierarchy.ShortMissLatency)
						res.DCacheShort++
					case cache.LongMiss:
						if cfg.SerializeLongMisses && len(outstanding) > 0 {
							// Demoted to a hit for the isolation study.
							break
						}
						lat += int64(cfg.Hierarchy.LongMissLatency)
						res.DCacheLong++
						outstanding = append(outstanding, cycle+lat)
					}
				}
				finish[idx] = cycle + lat
				issuedThisCycle++
				issuedByClass[class]++
				issuedByCluster[cluster]++
				winCount[cluster]--
				if in.Class == isa.Branch && preps[idx].misp && !cfg.IdealPredictor {
					res.Mispredicts++
					if len(outstanding) > 0 {
						res.MispredictsOverlapped++
					}
					branchResume = cycle + latBranch
				}
			}
			window = kept
		}
		res.IssueHistogram[issuedThisCycle]++
		if cfg.RecordIssueTrace && len(res.IssueTrace) < 1<<22 {
			res.IssueTrace = append(res.IssueTrace, uint8(issuedThisCycle))
		}

		// --- Dispatch (in order, up to Width; the steered cluster's
		// window slice, the whole window, and the ROB must have room).
		for k := 0; k < cfg.Width && dispatched < fetched; k++ {
			if feReady[dispatched%feCap] > cycle ||
				len(window) >= cfg.WindowSize || robCount >= cfg.ROBSize ||
				(clusters > 1 && winCount[dispatched%clusters] >= clusterWindow) {
				break
			}
			in := &t.Instrs[dispatched]
			e := winEntry{idx: int32(dispatched), src1: -1, src2: -1}
			if in.Src1 >= 0 {
				e.src1 = lastWriter[in.Src1]
			}
			if in.Src2 >= 0 {
				e.src2 = lastWriter[in.Src2]
			}
			if in.Dest >= 0 {
				lastWriter[in.Dest] = int32(dispatched)
			}
			window = append(window, e)
			winCount[dispatched%clusters]++
			robCount++
			dispatched++
		}

		// --- Fetch (up to Width, subject to miss-event throttles).
		if fetchHalted && branchResume > 0 && cycle >= branchResume {
			fetchHalted = false
			branchResume = 0
		}
		if !fetchHalted && cycle >= fetchStallUntil {
			for k := 0; k < cfg.Width && fetched < n && fetched-dispatched < feCap; k++ {
				in := &t.Instrs[fetched]
				if !cfg.IdealICache && preps[fetched].ires != cache.Hit {
					// The missing instruction (and everything after it)
					// arrives only after the miss delay; charge it once
					// by consuming the classification now.
					delay := int64(cfg.Hierarchy.Latency(preps[fetched].ires))
					if preps[fetched].ires == cache.ShortMiss {
						res.ICacheShort++
					} else {
						res.ICacheLong++
					}
					if len(outstanding) > 0 {
						res.ICacheOverlapped++
					}
					preps[fetched].ires = cache.Hit
					fetchStallUntil = cycle + delay
					break
				}
				feReady[fetched%feCap] = cycle + int64(cfg.FrontEndDepth)
				fetched++
				if in.Class == isa.Branch && preps[fetched-1].misp && !cfg.IdealPredictor {
					// Fetch of useful instructions stops until the
					// branch resolves at issue.
					fetchHalted = true
					branchResume = 0
					break
				}
			}
		}

		res.WindowOccupancySum += uint64(len(window))
		res.ROBOccupancySum += uint64(robCount)
		res.FrontEndOccupancySum += uint64(fetched - dispatched)

		if cycle-lastRetireCycle > maxIdleCycles {
			return nil, fmt.Errorf("uarch: no retirement for %d cycles at cycle %d (retired %d/%d) — machine deadlocked",
				maxIdleCycles, cycle, retired, n)
		}
		cycle++
	}

	res.Cycles = cycle - 1
	return res, nil
}

// isReady reports whether every producer of e has finished by now; with
// clustering, an operand produced in a different cluster arrives bypass
// cycles later.
func isReady(e winEntry, finish []int64, now int64, clusters int, bypass int64) bool {
	if e.src1 >= 0 {
		f := finish[e.src1]
		if f == 0 {
			return false
		}
		if clusters > 1 && int(e.src1)%clusters != int(e.idx)%clusters {
			f += bypass
		}
		if f > now {
			return false
		}
	}
	if e.src2 >= 0 {
		f := finish[e.src2]
		if f == 0 {
			return false
		}
		if clusters > 1 && int(e.src2)%clusters != int(e.idx)%clusters {
			f += bypass
		}
		if f > now {
			return false
		}
	}
	return true
}

// newPredictor instantiates the configured predictor: the spec when
// given, otherwise the default gshare with the given index width.
func newPredictor(spec *predictor.Spec, bits uint) (predictor.Predictor, error) {
	if spec != nil {
		return spec.New()
	}
	return predictor.NewGshare(bits)
}
