package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fomodel/internal/experiments"
)

// Experiments implements cmd/experiments: regenerate paper tables and
// figures by label.
func Experiments(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	n := fs.Int("n", 500000, "dynamic instructions per workload")
	seed := fs.Uint64("seed", 1, "workload generation seed")
	list := fs.Bool("list", false, "list experiment labels and exit")
	csv := fs.Bool("csv", false, "emit CSV for tabular experiments")
	outDir := fs.String("out", "", "write outputs to this directory instead of stdout")
	quiet := fs.Bool("quiet", false, "suppress timing lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := experiments.DefaultRegistry()
	if *list {
		for _, l := range reg.Labels() {
			fmt.Fprintln(out, l)
		}
		return nil
	}

	labels := fs.Args()
	if len(labels) == 0 {
		labels = reg.Labels()
	}
	suite := experiments.NewSuite(*n, *seed)
	for _, label := range labels {
		run, ok := reg[label]
		if !ok {
			return fmt.Errorf("experiments: unknown experiment %q (try -list)", label)
		}
		start := time.Now()
		res, err := run(suite)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", label, err)
		}
		body, ext := res.Render(), "txt"
		if *csv {
			if c, ok := res.(interface{ CSV() string }); ok {
				body, ext = c.CSV(), "csv"
			}
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, label+"."+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				return err
			}
			if !*quiet {
				fmt.Fprintf(out, "== %s (%.1fs) → %s\n", label, time.Since(start).Seconds(), path)
			}
			continue
		}
		if *quiet {
			fmt.Fprintf(out, "== %s ==\n%s\n", label, body)
		} else {
			fmt.Fprintf(out, "== %s (%.1fs) ==\n%s\n", label, time.Since(start).Seconds(), body)
		}
	}
	return nil
}
