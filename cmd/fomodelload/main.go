// Command fomodelload is a closed-loop /v1/predict load generator for
// benchmarking a fomodeld daemon or a fomodelproxy fleet: it drives a
// fixed keyset (workloads × ROB sizes) in the LRU-adversarial cyclic
// order and reports throughput, error count, and the endpoint-reported
// cache hit rate as JSON. See internal/cli.Fomodelload for the flags.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fomodel/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Fomodelload(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fomodelload:", err)
		os.Exit(1)
	}
}
