// Command traceinfo prints the model-facing statistics of one or all
// synthetic workloads: instruction mix, fitted IW power-law parameters
// (alpha, beta), average latency L, branch misprediction rate, cache miss
// rates, and the long-miss overlap factor. It is the quickest way to see
// the inputs the first-order model consumes (the paper's Table 1 plus §5
// step 5).
//
// Usage:
//
//	traceinfo [-n instructions] [-seed seed] [-profile file.json] [workload ...]
package main

import (
	"fmt"
	"os"

	"fomodel/internal/cli"
)

func main() {
	if err := cli.Traceinfo(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
}
