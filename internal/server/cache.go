package server

import (
	"container/list"
	"sync"

	"fomodel/internal/metrics"
)

// respCache is the daemon's canonical-request response cache: finished
// response bodies keyed by the canonicalized request, bounded LRU, with
// single-flight admission — concurrent requests for the same key block
// on one computation and share its bytes. It layers on top of the
// simulator's prep cache: a response hit skips everything, a response
// miss still reuses cached classification passes underneath.
//
// Only successful (HTTP 200) responses are retained; errors and non-200
// statuses are delivered to every request already waiting on the entry
// (shared fate, like singleflight) and then forgotten, so a canceled or
// failed computation never poisons later requests.
type respCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*respEntry
	order   *list.List // front = most recently used

	hits, misses metrics.Counter
}

type respEntry struct {
	key  string
	elem *list.Element
	done chan struct{}

	status int
	body   []byte
	err    error
}

func newRespCache(capacity int) *respCache {
	return &respCache{
		cap:     capacity,
		entries: make(map[string]*respEntry),
		order:   list.New(),
	}
}

// Do returns the cached response for key, or runs compute once and
// caches its result. hit reports whether the response came from the
// cache (including joining a computation already in flight — the request
// performed no work of its own).
func (c *respCache) Do(key string, compute func() (status int, body []byte, err error)) (status int, body []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.done
		c.hits.Inc()
		return e.status, e.body, true, e.err
	}
	e := &respEntry{key: key, done: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.cap {
		oldest := c.order.Back().Value.(*respEntry)
		c.order.Remove(oldest.elem)
		delete(c.entries, oldest.key)
	}
	c.mu.Unlock()

	c.misses.Inc()
	e.status, e.body, e.err = compute()
	close(e.done)
	if e.err != nil || e.status != 200 {
		c.mu.Lock()
		if c.entries[key] == e {
			c.order.Remove(e.elem)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.status, e.body, false, e.err
}

// Len returns the number of cached entries (including in-flight ones).
func (c *respCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit and miss counts.
func (c *respCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
