GO ?= go

.PHONY: build test race lint fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# Project-invariant analyzers (internal/lint, DESIGN.md §7a). Also
# runnable through the go command's build cache:
#   go build -o bin/fomodelvet ./cmd/fomodelvet && go vet -vettool=bin/fomodelvet ./...
lint:
	$(GO) run ./cmd/fomodelvet ./...

fuzz-smoke:
	$(GO) test ./internal/artifact -run '^$$' -fuzz FuzzStoreRoundTrip -fuzztime 30s
	$(GO) test ./internal/reqkey -run '^$$' -fuzz FuzzCanonicalKey -fuzztime 30s
	$(GO) test ./internal/workload -run '^$$' -fuzz FuzzReadProfile -fuzztime 30s

check: build lint test race
