package fit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1.25
	}
	line, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-2.5) > 1e-12 || math.Abs(line.Intercept+1.25) > 1e-12 {
		t.Fatalf("fit %+v", line)
	}
	if math.Abs(line.R2-1) > 1e-12 {
		t.Fatalf("R2 %v, want 1", line.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1.1, 1.9, 3.2, 3.8, 5.1, 5.9}
	line, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-1) > 0.1 {
		t.Fatalf("slope %v, want ~1", line.Slope)
	}
	if line.R2 < 0.98 {
		t.Fatalf("R2 %v too low", line.R2)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Linear([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestLinearConstantY(t *testing.T) {
	line, err := Linear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if line.Slope != 0 || line.Intercept != 5 || line.R2 != 1 {
		t.Fatalf("constant fit %+v", line)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean %v", got)
	}
}

func TestMeanAbsRelError(t *testing.T) {
	got, err := MeanAbsRelError([]float64{1.1, 1.8}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("error %v, want 0.1", got)
	}
	if _, err := MeanAbsRelError([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MeanAbsRelError([]float64{1}, []float64{0}); err == nil {
		t.Fatal("all-zero reference accepted")
	}
}

func TestMaxAbsRelError(t *testing.T) {
	worst, at, err := MaxAbsRelError([]float64{1.1, 1.0, 3.0}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if at != 1 || math.Abs(worst-0.5) > 1e-12 {
		t.Fatalf("worst %v at %d", worst, at)
	}
}

func TestLinearPropertyRecoversLine(t *testing.T) {
	f := func(slope, intercept int8) bool {
		s, c := float64(slope), float64(intercept)
		xs := []float64{-2, -1, 0, 1, 2, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = s*x + c
		}
		line, err := Linear(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(line.Slope-s) < 1e-9 && math.Abs(line.Intercept-c) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
