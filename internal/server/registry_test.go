package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fomodel/internal/artifact"
	"fomodel/internal/registry"
	"fomodel/internal/workload"
)

// profileJSON renders a registerable profile body derived from a
// built-in, renamed to name.
func profileJSON(t *testing.T, builtin, name string) string {
	t.Helper()
	p, err := workload.ByName(builtin)
	if err != nil {
		t.Fatal(err)
	}
	p.Name = name
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// doReq runs one request with an optional tenant header through the
// full handler chain.
func doReq(s *Server, method, path, body, tenant string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func register(t *testing.T, s *Server, name, body, tenant string) WorkloadRegistration {
	t.Helper()
	rec := doReq(s, http.MethodPost, "/v1/workloads/"+name, body, tenant)
	if rec.Code != http.StatusOK {
		t.Fatalf("register %s: status %d\nbody: %s", name, rec.Code, rec.Body.String())
	}
	var reg WorkloadRegistration
	if err := json.Unmarshal(rec.Body.Bytes(), &reg); err != nil {
		t.Fatalf("register %s: bad body: %v", name, err)
	}
	return reg
}

func TestWorkloadRegisterGetDeleteFlow(t *testing.T) {
	s := testServer(Config{})
	body := profileJSON(t, "gzip", "mine")

	reg := register(t, s, "mine", body, "")
	if reg.Name != "mine" || reg.Tenant != "default" || reg.ContentHash == "" {
		t.Errorf("registration = %+v", reg)
	}

	got := doReq(s, http.MethodGet, "/v1/workloads/mine", "", "")
	if got.Code != http.StatusOK {
		t.Fatalf("get: status %d", got.Code)
	}
	var read WorkloadRegistration
	if err := json.Unmarshal(got.Body.Bytes(), &read); err != nil {
		t.Fatal(err)
	}
	if read.ContentHash != reg.ContentHash || read.Profile.Name != "mine" {
		t.Errorf("get did not round-trip: %+v", read)
	}

	del := doReq(s, http.MethodDelete, "/v1/workloads/mine", "", "")
	if del.Code != http.StatusOK {
		t.Fatalf("delete: status %d\nbody: %s", del.Code, del.Body.String())
	}
	if rec := doReq(s, http.MethodGet, "/v1/workloads/mine", "", ""); rec.Code != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", rec.Code)
	}
	if rec := doReq(s, http.MethodDelete, "/v1/workloads/mine", "", ""); rec.Code != http.StatusNotFound {
		t.Errorf("second delete: status %d, want 404", rec.Code)
	}
}

func TestWorkloadRegistryStatuses(t *testing.T) {
	s := testServer(Config{Registry: registry.New(registry.Config{MaxPerTenant: 1})})
	gzipBody := profileJSON(t, "gzip", "")

	cases := []struct {
		name   string
		run    func() *httptest.ResponseRecorder
		status int
	}{
		{"builtin collision", func() *httptest.ResponseRecorder {
			return doReq(s, http.MethodPost, "/v1/workloads/gzip", gzipBody, "")
		}, http.StatusBadRequest},
		{"invalid name", func() *httptest.ResponseRecorder {
			return doReq(s, http.MethodPost, "/v1/workloads/bad%7Cname", gzipBody, "")
		}, http.StatusBadRequest},
		{"invalid tenant", func() *httptest.ResponseRecorder {
			return doReq(s, http.MethodPost, "/v1/workloads/ok", gzipBody, "bad tenant")
		}, http.StatusBadRequest},
		{"invalid profile", func() *httptest.ResponseRecorder {
			return doReq(s, http.MethodPost, "/v1/workloads/ok", `{"name":"ok"}`, "")
		}, http.StatusBadRequest},
		{"cross-tenant replace", func() *httptest.ResponseRecorder {
			register(t, s, "shared", profileJSON(t, "gzip", "shared"), "alice")
			return doReq(s, http.MethodPost, "/v1/workloads/shared", profileJSON(t, "gzip", "shared"), "bob")
		}, http.StatusConflict},
		{"cross-tenant delete", func() *httptest.ResponseRecorder {
			return doReq(s, http.MethodDelete, "/v1/workloads/shared", "", "bob")
		}, http.StatusConflict},
		{"quota exceeded", func() *httptest.ResponseRecorder {
			return doReq(s, http.MethodPost, "/v1/workloads/second", profileJSON(t, "mcf", "second"), "alice")
		}, http.StatusForbidden},
		{"missing name", func() *httptest.ResponseRecorder {
			return doReq(s, http.MethodGet, "/v1/workloads/absent", "", "")
		}, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := tc.run()
			if rec.Code != tc.status {
				t.Errorf("status %d, want %d\nbody: %s", rec.Code, tc.status, rec.Body.String())
			}
		})
	}
}

// TestRegisteredPredictSharesContentKeyedCache pins the content-hash
// contract: a registered clone of a built-in profile reuses the
// built-in's trace generation (same content hash, name aside), and its
// prediction matches the built-in's numbers exactly while the response
// carries the registered name.
func TestRegisteredPredictSharesContentKeyedCache(t *testing.T) {
	s := testServer(Config{})
	register(t, s, "gzip-clone", profileJSON(t, "gzip", "gzip-clone"), "")

	builtin := post(s, "/v1/predict", `{"bench":"gzip"}`)
	if builtin.Code != http.StatusOK {
		t.Fatalf("builtin predict: %d\n%s", builtin.Code, builtin.Body.String())
	}
	named := post(s, "/v1/predict", `{"bench":"gzip-clone"}`)
	if named.Code != http.StatusOK {
		t.Fatalf("registered predict: %d\n%s", named.Code, named.Body.String())
	}
	var a, b PredictRecord
	if err := json.Unmarshal(builtin.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(named.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.Bench != "gzip-clone" {
		t.Errorf("bench = %q, want the registered name", b.Bench)
	}
	// Only the workload's name may differ between the two records.
	bi := b.Inputs
	bi.Name = a.Inputs.Name
	if a.Estimate != b.Estimate || a.Inputs != bi {
		t.Errorf("identical content produced different predictions:\n%+v\n%+v", a, b)
	}

	// The same registered request again is a response-cache hit with
	// byte-identical bytes.
	again := post(s, "/v1/predict", `{"bench":"gzip-clone"}`)
	if got := again.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q, want hit", got)
	}
	if again.Body.String() != named.Body.String() {
		t.Error("cached registered predict differs from computed one")
	}
}

// TestReregisterNeverServesStaleBytes is the stale-bytes property test:
// register, predict, delete, re-register the SAME name with DIFFERENT
// content — the new prediction must never be the first profile's cached
// bytes.
func TestReregisterNeverServesStaleBytes(t *testing.T) {
	s := testServer(Config{})
	register(t, s, "wl", profileJSON(t, "gzip", "wl"), "")
	first := post(s, "/v1/predict", `{"bench":"wl"}`)
	if first.Code != http.StatusOK {
		t.Fatalf("first predict: %d\n%s", first.Code, first.Body.String())
	}

	if rec := doReq(s, http.MethodDelete, "/v1/workloads/wl", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	if rec := post(s, "/v1/predict", `{"bench":"wl"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("predict after delete: %d, want 400", rec.Code)
	}

	register(t, s, "wl", profileJSON(t, "mcf", "wl"), "")
	second := post(s, "/v1/predict", `{"bench":"wl"}`)
	if second.Code != http.StatusOK {
		t.Fatalf("second predict: %d\n%s", second.Code, second.Body.String())
	}
	if second.Body.String() == first.Body.String() {
		t.Fatal("re-registered workload served the previous profile's cached bytes")
	}
	// The new content must match an mcf-content prediction exactly.
	var mcfLike, reRegistered PredictRecord
	mcf := post(s, "/v1/predict", `{"bench":"mcf"}`)
	if err := json.Unmarshal(mcf.Body.Bytes(), &mcfLike); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &reRegistered); err != nil {
		t.Fatal(err)
	}
	if mcfLike.Estimate != reRegistered.Estimate {
		t.Errorf("re-registered profile's prediction does not reflect the new content")
	}
}

// TestForgedContentFieldIsOverwritten pins the anti-forgery rule: the
// predict wire shape exposes "content" for canonical keys, but the
// server overwrites whatever the client sent.
func TestForgedContentFieldIsOverwritten(t *testing.T) {
	s := testServer(Config{})
	honest := post(s, "/v1/predict", `{"bench":"gzip"}`)
	forged := post(s, "/v1/predict", `{"bench":"gzip","content":"deadbeef"}`)
	if forged.Code != http.StatusOK {
		t.Fatalf("forged-content predict: %d\n%s", forged.Code, forged.Body.String())
	}
	if forged.Body.String() != honest.Body.String() {
		t.Error("client-supplied content changed the response")
	}
	if got := forged.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q — forged content forked the cache key", got)
	}
}

func TestRegisteredNameInSweepBatchOptimize(t *testing.T) {
	s := testServer(Config{})
	register(t, s, "wl", profileJSON(t, "gzip", "wl"), "")

	sweep := post(s, "/v1/sweep", `{"param":"rob","benches":["wl"],"values":[64,128]}`)
	if sweep.Code != http.StatusOK {
		t.Fatalf("sweep: %d\n%s", sweep.Code, sweep.Body.String())
	}
	if !strings.Contains(sweep.Body.String(), `"wl"`) {
		t.Error("sweep response does not mention the registered name")
	}

	batch := post(s, "/v1/batch", `{"items":[{"bench":"wl"},{"bench":"gzip"}]}`)
	if batch.Code != http.StatusOK {
		t.Fatalf("batch: %d\n%s", batch.Code, batch.Body.String())
	}
	var br BatchResponse
	if err := json.Unmarshal(batch.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 2 || br.Items[0].Status != http.StatusOK {
		t.Fatalf("batch items: %+v", br.Items)
	}

	opt := post(s, "/v1/optimize",
		`{"workloads":[{"bench":"wl"}],"bounds":{"width":{"min":1,"max":2}},"budget":4}`)
	if opt.Code != http.StatusOK {
		t.Fatalf("optimize: %d\n%s", opt.Code, opt.Body.String())
	}

	// Unknown names still fail everywhere.
	if rec := post(s, "/v1/sweep", `{"param":"rob","benches":["nope"],"values":[32]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("sweep with unknown bench: %d, want 400", rec.Code)
	}
	if rec := post(s, "/v1/optimize",
		`{"workloads":[{"bench":"nope"}],"bounds":{"width":{"min":1,"max":2}},"budget":4}`); rec.Code != http.StatusBadRequest {
		t.Errorf("optimize with unknown bench: %d, want 400", rec.Code)
	}
}

// TestRegistrationsSurviveRestart pins daemon-restart persistence
// through the artifact store.
func TestRegistrationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store1, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := testServer(Config{Store: store1})
	reg := register(t, s1, "wl", profileJSON(t, "gzip", "wl"), "alice")
	first := post(s1, "/v1/predict", `{"bench":"wl"}`)
	if first.Code != http.StatusOK {
		t.Fatalf("predict: %d", first.Code)
	}

	// "Restart": fresh store handle, fresh registry loaded from disk,
	// fresh server — as the daemon main does at boot.
	store2, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := registry.New(registry.Config{Store: store2})
	if n, err := reg2.Load(); err != nil || n != 1 {
		t.Fatalf("Load = (%d, %v), want (1, nil)", n, err)
	}
	s2 := testServer(Config{Store: store2, Registry: reg2})
	got := doReq(s2, http.MethodGet, "/v1/workloads/wl", "", "")
	if got.Code != http.StatusOK {
		t.Fatalf("get after restart: %d", got.Code)
	}
	var read WorkloadRegistration
	if err := json.Unmarshal(got.Body.Bytes(), &read); err != nil {
		t.Fatal(err)
	}
	if read.ContentHash != reg.ContentHash || read.Tenant != "alice" {
		t.Errorf("restored registration %+v, want hash %s tenant alice", read, reg.ContentHash)
	}
	second := post(s2, "/v1/predict", `{"bench":"wl"}`)
	if second.Code != http.StatusOK {
		t.Fatalf("predict after restart: %d\n%s", second.Code, second.Body.String())
	}
	if second.Body.String() != first.Body.String() {
		t.Error("post-restart predict differs from pre-restart bytes")
	}
}

func TestRegistryMetricsExposed(t *testing.T) {
	s := testServer(Config{})
	register(t, s, "wl", profileJSON(t, "gzip", "wl"), "alice")
	if rec := post(s, "/v1/predict", `{"bench":"wl"}`); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d", rec.Code)
	}
	post(s, "/v1/predict", `{"bench":"wl"}`) // cache hit

	m := get(s, "/metrics").Body.String()
	for _, want := range []string{
		"fomodeld_registry_registrations_total 1",
		`fomodeld_registry_workloads{tenant="alice"} 1`,
		`fomodeld_registry_bytes{tenant="alice"}`,
		fmt.Sprintf(`fomodeld_registered_workload_requests_total{workload="wl"} 2`),
		fmt.Sprintf(`fomodeld_registered_workload_cache_hits_total{workload="wl"} 1`),
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
