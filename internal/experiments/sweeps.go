package experiments

import (
	"fmt"

	"fomodel/internal/core"
	"fomodel/internal/stats"
	"fomodel/internal/uarch"
)

// SweepPoint is one (parameter value, benchmark) sample of a machine
// sweep.
type SweepPoint struct {
	Bench    string
	Value    int
	SimCPI   float64
	ModelCPI float64
	Err      float64
}

// SweepResult is a machine-parameter sweep validating the model across a
// dimension the paper varies analytically.
type SweepResult struct {
	Title      string
	Param      string
	Points     []SweepPoint
	MeanAbsErr float64
}

// tab builds the result table.
func (r *SweepResult) tab() *table {
	t := &table{
		title:  r.Title,
		header: []string{"bench", r.Param, "model CPI", "sim CPI", "err"},
	}
	for _, p := range r.Points {
		t.addRow(p.Bench, fmt.Sprintf("%d", p.Value), f3(p.ModelCPI), f3(p.SimCPI), pct(p.Err))
	}
	t.addNote("mean |err| %s", pct(r.MeanAbsErr))
	return t
}

// Render prints the table as aligned text.
func (r *SweepResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *SweepResult) CSV() string { return r.tab().CSV() }

func (r *SweepResult) finish() {
	for _, p := range r.Points {
		r.MeanAbsErr += abs(p.Err)
	}
	if len(r.Points) > 0 {
		r.MeanAbsErr /= float64(len(r.Points))
	}
}

// WindowSweep validates the steady-state model through the knee of the IW
// curve: as the window shrinks below saturation, the power law (not the
// width clip) sets the background IPC. Three benchmarks spanning the beta
// range, windows 8–96.
func WindowSweep(s *Suite) (*SweepResult, error) {
	res := &SweepResult{
		Title: "Window sweep: steady state through the IW-curve knee",
		Param: "window",
	}
	for _, bench := range []string{"gzip", "vortex", "vpr"} {
		w, err := s.Workload(bench)
		if err != nil {
			return nil, err
		}
		for _, win := range []int{8, 16, 32, 48, 96} {
			sim, err := s.Simulate(w, func(c *uarch.Config) {
				c.WindowSize = win
				if c.ROBSize < win {
					c.ROBSize = win
				}
			})
			if err != nil {
				return nil, err
			}
			m := s.Machine
			m.WindowSize = win
			if m.ROBSize < win {
				m.ROBSize = win
			}
			// Re-derive the measured steady point at this window size.
			in, err := core.InputsFromCurve(w.Law, w.Points, win, w.Summary)
			if err != nil {
				return nil, err
			}
			est, err := m.Estimate(in, modelOptions())
			if err != nil {
				return nil, err
			}
			pt := SweepPoint{
				Bench:    bench,
				Value:    win,
				SimCPI:   sim.CPI(),
				ModelCPI: est.CPI,
				Err:      relErr(est.CPI, sim.CPI()),
			}
			res.Points = append(res.Points, pt)
		}
	}
	res.finish()
	return res, nil
}

// ROBSweep validates the data-miss overlap model across reorder-buffer
// sizes: a larger ROB overlaps more long misses, so f_LDM — and with it
// the d-miss CPI — must be re-derived per size. The d-miss-heavy
// benchmarks are the sensitive ones.
func ROBSweep(s *Suite) (*SweepResult, error) {
	res := &SweepResult{
		Title: "ROB sweep: equation (8) overlap across reorder-buffer sizes",
		Param: "rob",
	}
	for _, bench := range []string{"mcf", "twolf", "gap"} {
		w, err := s.Workload(bench)
		if err != nil {
			return nil, err
		}
		for _, rob := range []int{48, 96, 128, 256} {
			sim, err := s.Simulate(w, func(c *uarch.Config) { c.ROBSize = rob })
			if err != nil {
				return nil, err
			}
			// Re-analyze with the new grouping horizon.
			scfg := stats.DefaultConfig()
			scfg.Hierarchy = s.Sim.Hierarchy
			scfg.PredictorBits = s.Sim.PredictorBits
			scfg.Latencies = s.Sim.Latencies
			scfg.ROBSize = rob
			scfg.Warmup = s.Sim.Warmup
			sum, err := stats.Analyze(w.Trace, scfg)
			if err != nil {
				return nil, err
			}
			m := s.Machine
			m.ROBSize = rob
			in, err := core.InputsFromCurve(w.Law, w.Points, m.WindowSize, sum)
			if err != nil {
				return nil, err
			}
			est, err := m.Estimate(in, modelOptions())
			if err != nil {
				return nil, err
			}
			pt := SweepPoint{
				Bench:    bench,
				Value:    rob,
				SimCPI:   sim.CPI(),
				ModelCPI: est.CPI,
				Err:      relErr(est.CPI, sim.CPI()),
			}
			res.Points = append(res.Points, pt)
		}
	}
	res.finish()
	return res, nil
}
