package detrand_test

import (
	"testing"

	"fomodel/internal/lint/detrand"
	"fomodel/internal/lint/linttest"
)

// TestDetrand pins the golden diagnostics on a pure-model package.
func TestDetrand(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/src/detrand", "fomodel/internal/uarch")
}

// TestDetrandExemptsServingPackages loads the same kinds of
// violations under a serving import path and requires silence.
func TestDetrandExemptsServingPackages(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/src/impure", "fomodel/internal/server")
}
