#!/usr/bin/env bash
# proxy_smoke.sh — CI smoke test for the fomodelproxy serving fleet.
#
# Boots a reference fomodeld, a 2-replica fleet, and a fomodelproxy in
# front of it, then asserts the tentpole contract end to end over real
# sockets: every response through the proxy — /v1/predict, a
# shard-splitting /v1/batch, /v1/sweep buffered AND streamed NDJSON,
# /v1/workloads — is byte-equal to the reference daemon's. It then kills
# one replica and verifies requests keep succeeding (failover to the
# ring successor), and tears everything down via the trap.
#
# Uses a small -n so the whole run stays in CI-seconds territory; byte
# equivalence does not depend on trace length.
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-20000}
bin=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

echo "== build" >&2
go build -o "$bin/fomodeld" ./cmd/fomodeld
go build -o "$bin/fomodelproxy" ./cmd/fomodelproxy

wait_ready() {
    for _ in $(seq 1 200); do
        if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "endpoint never became ready: $1" >&2
    return 1
}

echo "== boot: reference daemon, 2 replicas, proxy" >&2
"$bin/fomodeld" -addr 127.0.0.1:8781 -n "$N" -warm=false >"$bin/ref.log" 2>&1 &
pids+=($!)
"$bin/fomodeld" -addr 127.0.0.1:8782 -n "$N" -warm=false >"$bin/rep1.log" 2>&1 &
pids+=($!)
"$bin/fomodeld" -addr 127.0.0.1:8783 -n "$N" -warm=false >"$bin/rep2.log" 2>&1 &
rep2_pid=$!
pids+=($rep2_pid)
"$bin/fomodelproxy" -addr 127.0.0.1:8780 \
    -replicas http://127.0.0.1:8782,http://127.0.0.1:8783 \
    -n "$N" -probe-interval 500ms >"$bin/proxy.log" 2>&1 &
pids+=($!)
ref=http://127.0.0.1:8781
proxy=http://127.0.0.1:8780
wait_ready "$ref"
wait_ready http://127.0.0.1:8782
wait_ready http://127.0.0.1:8783
wait_ready "$proxy"

check_equal() {  # $1 label, $2 path, $3 body ("" = GET), $4 extra curl args
    local label=$1 path=$2 body=$3; shift 3
    if [ -n "$body" ]; then
        curl -fsS "$@" -X POST -H 'Content-Type: application/json' \
            -d "$body" "$ref$path" >"$bin/want"
        curl -fsS "$@" -X POST -H 'Content-Type: application/json' \
            -d "$body" "$proxy$path" >"$bin/got"
    else
        curl -fsS "$@" "$ref$path" >"$bin/want"
        curl -fsS "$@" "$proxy$path" >"$bin/got"
    fi
    if ! cmp -s "$bin/want" "$bin/got"; then
        echo "BYTE MISMATCH: $label" >&2
        diff "$bin/want" "$bin/got" >&2 || true
        exit 1
    fi
    echo "ok: $label byte-equal" >&2
}

predict='{"bench": "gzip", "machine": {"rob": 64}}'
batch='{"items": [{"bench": "gzip"}, {"bench": "gcc"}, {"bench": "mcf"}, {"bench": "vpr"}, {"bench": "gap"}, {"bench": "eon"}]}'
sweep='{"param": "rob", "benches": ["gzip", "gcc"], "values": [64, 128]}'

check_equal "predict (cold)" /v1/predict "$predict"
check_equal "predict (hot)" /v1/predict "$predict"
check_equal "batch (shard-split)" /v1/batch "$batch"
check_equal "sweep (buffered)" /v1/sweep "$sweep"
check_equal "sweep (NDJSON stream)" /v1/sweep "$sweep" -H 'Accept: application/x-ndjson'
check_equal "workloads" /v1/workloads ""

echo "== failover: kill one replica, requests must keep succeeding" >&2
{ kill -9 "$rep2_pid" && wait "$rep2_pid"; } 2>/dev/null || true
for i in $(seq 1 6); do
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "{\"bench\": \"gzip\", \"machine\": {\"rob\": $((32 * i + 32))}}" \
        "$proxy/v1/predict" >/dev/null
done
echo "ok: 6/6 requests served with a dead replica" >&2

curl -fsS "$proxy/metrics" | grep -q '^fomodelproxy_requests_total' \
    || { echo "proxy /metrics missing counters" >&2; exit 1; }
echo "proxy smoke passed" >&2
