package server

import (
	"fomodel/internal/experiments"
	"fomodel/internal/optimize"
	"fomodel/internal/reqkey"
	"fomodel/internal/workload"
)

// This file is the daemon's half of the shared canonical-key contract
// (see internal/reqkey): every response-cache key the daemon uses is
// derived through the exported functions below, and the fomodelproxy
// router calls the very same functions to pick a replica — so the key a
// request is routed by and the key the replica caches it under are one
// string by construction.

// KeyDefaults returns the normalization defaults this configuration
// serves under; a router configured with the same defaults shares the
// daemon's keyspace. The daemon's workload registry rides along as the
// resolver, so registered-workload names canonicalize to keys carrying
// their profile content hash.
func (c Config) KeyDefaults() reqkey.Defaults {
	reg := c.Registry
	c = c.withDefaults()
	d := reqkey.Defaults{N: c.N, Seed: c.Seed}
	if reg != nil {
		d.Resolver = reg
	}
	return d
}

// PredictCacheKey canonicalizes one predict request against the given
// defaults: the request is normalized (defaults filled, inputs
// validated, registered names resolved to content hashes) and the
// normalized value keyed, so spelling differences — omitted versus
// explicit defaults — collapse to one key. The returned error is the
// same 400-shaped validation error the daemon would produce.
func PredictCacheKey(req PredictRequest, d reqkey.Defaults) (string, error) {
	if err := req.Normalize(d); err != nil {
		return "", err
	}
	return reqkey.Canonical("predict", req)
}

// contentVector maps a bench-name list onto the content hashes of its
// registered entries, positionally: built-in names map to "". It
// returns nil — and the caller keys the bare spec, byte-identical to a
// registry-less server — when no name resolves through the registry,
// which is what keeps every pre-registry cache key stable.
func contentVector(benches []string, res reqkey.Resolver) []string {
	if res == nil {
		return nil
	}
	var out []string
	for i, b := range benches {
		if _, err := workload.ByName(b); err == nil {
			continue
		}
		if hash, ok := res.WorkloadContent(b); ok {
			if out == nil {
				out = make([]string, len(benches))
			}
			out[i] = hash
		}
	}
	return out
}

// keyedSweep is a sweep spec plus the content vector of its registered
// benches; embedding inlines the spec's fields, so a nil vector
// marshals byte-identically to the bare spec.
type keyedSweep struct {
	experiments.SweepSpec
	Content []string `json:"content,omitempty"`
}

// SweepCacheKey canonicalizes one sweep spec. Sweeps have no
// server-side defaults to fill; decoding the JSON into the typed spec
// and re-encoding it is the canonicalization, plus — for specs naming
// registered workloads — the positional content-hash vector that makes
// re-registered content a different key.
func SweepCacheKey(spec experiments.SweepSpec, d reqkey.Defaults) (string, error) {
	return reqkey.Canonical("sweep", keyedSweep{
		SweepSpec: spec,
		Content:   contentVector(spec.Benches, d.Resolver),
	})
}

// keyedOptimize is an optimize spec plus the content vector of its
// registered mix entries, mirroring keyedSweep.
type keyedOptimize struct {
	optimize.Spec
	Content []string `json:"content,omitempty"`
}

// resolverKnown adapts a reqkey.Resolver to the known-workload
// predicate optimize validation accepts; nil in, nil out.
func resolverKnown(res reqkey.Resolver) func(string) bool {
	if res == nil {
		return nil
	}
	return func(name string) bool {
		_, ok := res.WorkloadContent(name)
		return ok
	}
}

// OptimizeCacheKey canonicalizes one optimize spec against the given
// defaults: the spec is normalized (defaults filled, inputs validated,
// registered names accepted through the resolver) and the normalized
// value keyed with its content vector — shared, like every key in this
// file's contract, with the fomodelproxy router's replica selection.
func OptimizeCacheKey(spec optimize.Spec, d reqkey.Defaults) (string, error) {
	if err := spec.NormalizeWith(d.N, d.Seed, resolverKnown(d.Resolver)); err != nil {
		return "", err
	}
	benches := make([]string, len(spec.Workloads))
	for i, w := range spec.Workloads {
		benches[i] = w.Bench
	}
	return reqkey.Canonical("optimize", keyedOptimize{
		Spec:    spec,
		Content: contentVector(benches, d.Resolver),
	})
}

// WorkloadItemKey canonicalizes one named-workload registration
// (GET /v1/workloads/{name}); the router routes reads by it so a name's
// lookups concentrate on one replica.
func WorkloadItemKey(name string) (string, error) {
	return reqkey.Canonical("workload", name)
}

// WorkloadsCacheKey is the single cache key of the parameterless
// /v1/workloads endpoint.
const WorkloadsCacheKey = "workloads"
