package experiments

import (
	"fomodel/internal/iw"
	"fomodel/internal/uarch"
)

// InOrderRow compares the out-of-order machine (the model's target)
// against an in-order-issue baseline on one benchmark.
type InOrderRow struct {
	Name string
	// OOOCPI and InOrderCPI are simulated CPIs; Slowdown their ratio.
	OOOCPI     float64
	InOrderCPI float64
	Slowdown   float64
	// InOrderSmallWin is the in-order machine with a 4-entry window —
	// nearly identical to InOrderCPI because an in-order machine cannot
	// exploit a deep window.
	InOrderSmallWin float64
}

// InOrderResult quantifies why the paper models out-of-order machines:
// in-order issue forfeits the window's latency tolerance, and window size
// stops mattering.
type InOrderResult struct {
	Rows []InOrderRow
}

// InOrderBaseline runs the comparison over three contrasting benchmarks,
// fanning them out across the suite's worker pool.
func InOrderBaseline(s *Suite) (*InOrderResult, error) {
	benches := []string{"gzip", "mcf", "vpr"}
	res := &InOrderResult{}
	err := RunOrdered(s.workers(), len(benches), func(i int) (InOrderRow, error) {
		var zero InOrderRow
		bench := benches[i]
		w, err := s.Workload(bench)
		if err != nil {
			return zero, err
		}
		ooo, err := s.Simulate(w, nil)
		if err != nil {
			return zero, err
		}
		inorder, err := s.Simulate(w, func(c *uarch.Config) { c.InOrder = true })
		if err != nil {
			return zero, err
		}
		small, err := s.Simulate(w, func(c *uarch.Config) {
			c.InOrder = true
			c.WindowSize = 4
		})
		if err != nil {
			return zero, err
		}
		row := InOrderRow{
			Name:            bench,
			OOOCPI:          ooo.CPI(),
			InOrderCPI:      inorder.CPI(),
			InOrderSmallWin: small.CPI(),
		}
		row.Slowdown = row.InOrderCPI / row.OOOCPI
		return row, nil
	}, func(_ int, row InOrderRow) error {
		res.Rows = append(res.Rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// tab builds the result table.
func (r *InOrderResult) tab() *table {
	t := &table{
		title:  "In-order baseline: the machine class the first-order model does NOT target",
		header: []string{"bench", "OOO CPI", "in-order CPI", "slowdown", "in-order, window=4"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.OOOCPI), f3(row.InOrderCPI),
			f2(row.Slowdown), f3(row.InOrderSmallWin))
	}
	t.addNote("in-order issue forfeits the window's latency tolerance; note how the 4-entry")
	t.addNote("window barely changes the in-order CPI — the IW characteristic is an")
	t.addNote("out-of-order phenomenon")
	return t
}

// Render prints the table as aligned text.
func (r *InOrderResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *InOrderResult) CSV() string { return r.tab().CSV() }

// LittleRow validates the paper's Little's-law step on one benchmark.
type LittleRow struct {
	Name string
	// MeasuredIL is the issue rate of the idealized window-limited
	// simulation run with REAL latencies at the baseline window.
	MeasuredIL float64
	// ScaledI1 is the unit-latency rate divided by the average latency —
	// the paper's I_L = I_1/L approximation.
	ScaledI1 float64
	Err      float64
}

// LittleResult checks §3's I_L = I_1/L across all benchmarks.
type LittleResult struct {
	Rows       []LittleRow
	MeanAbsErr float64
}

// LittlesLaw measures both sides of the approximation at the baseline
// window size.
func LittlesLaw(s *Suite) (*LittleResult, error) {
	lat := s.Sim.Latencies
	rows, err := MapWorkloads(s, func(w *Workload) (LittleRow, error) {
		var zero LittleRow
		real, err := iw.Characteristic(w.Trace, []int{s.Machine.WindowSize}, iw.Options{Latencies: &lat})
		if err != nil {
			return zero, err
		}
		unit, err := iw.InterpolateAt(w.Points, float64(s.Machine.WindowSize))
		if err != nil {
			return zero, err
		}
		row := LittleRow{
			Name:       w.Name,
			MeasuredIL: real[0].I,
			ScaledI1:   unit / w.Trace.AverageLatency(lat),
		}
		row.Err = relErr(row.ScaledI1, row.MeasuredIL)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &LittleResult{Rows: rows}
	for _, r := range res.Rows {
		res.MeanAbsErr += abs(r.Err)
	}
	res.MeanAbsErr /= float64(len(res.Rows))
	return res, nil
}

// tab builds the result table.
func (r *LittleResult) tab() *table {
	t := &table{
		title:  "Little's law check (§3): I_L = I_1 / L at the baseline window",
		header: []string{"bench", "measured I_L", "I_1 / L", "err"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.MeasuredIL), f3(row.ScaledI1), pct(row.Err))
	}
	t.addNote("mean |err| %s — the latency-division approximation the paper layers on the", pct(r.MeanAbsErr))
	t.addNote("unit-latency power law (exact only when latencies scale uniformly)")
	return t
}

// Render prints the table as aligned text.
func (r *LittleResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *LittleResult) CSV() string { return r.tab().CSV() }
