#!/usr/bin/env bash
# bench.sh — run the suite's benchmarks and record ns/op + allocs/op.
#
# Usage: scripts/bench.sh [output.json]   # library/experiment benchmarks
#        scripts/bench.sh server [output] # fomodeld load benchmark
#
# Library mode runs two stages: a -benchtime=1x smoke pass over every
# benchmark in the repo (so a broken benchmark fails fast without a long
# timed run), then timed passes over the experiment-level acceptance
# benchmarks and the simulator/analyzer micro-benchmarks. Results land
# in BENCH_PR2.json (or the given path) keyed by benchmark name, with
# the pre-PR-2 baseline and computed speedups for the two acceptance
# benchmarks.
#
# Server mode drives the fomodeld handler chain end to end — cache-hot
# and cache-cold /v1/predict, the cold-start-after-warm path (a fresh
# server per request on a warm artifact store), plus a 12-cell /v1/sweep
# at 1 worker and at GOMAXPROCS workers — and records req/sec and the
# cold/hot ratios in BENCH_PR6.json.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "server" ]; then
    out=${2:-BENCH_PR6.json}
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    echo "== timed: fomodeld load benchmarks" >&2
    go test -run '^$' \
        -bench 'BenchmarkPredictHot$|BenchmarkPredictCold$|BenchmarkPredictColdWarmStore$|BenchmarkSweepWorkers1$|BenchmarkSweepWorkersN$' \
        -benchmem -benchtime=20x ./internal/server/ | tee "$tmp" >&2
    awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$(nproc)" '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns[name] = $3
    }
    END {
        printf "{\n  \"generated\": \"%s\",\n  \"cpus\": %d,\n", date, procs
        printf "  \"predict\": {\n"
        printf "    \"cache_hot\":  {\"ns_per_req\": %d, \"req_per_sec\": %.0f},\n", \
            ns["BenchmarkPredictHot"], 1e9 / ns["BenchmarkPredictHot"]
        printf "    \"cache_cold\": {\"ns_per_req\": %d, \"req_per_sec\": %.1f},\n", \
            ns["BenchmarkPredictCold"], 1e9 / ns["BenchmarkPredictCold"]
        printf "    \"cold_warm_store\": {\"ns_per_req\": %d, \"req_per_sec\": %.0f},\n", \
            ns["BenchmarkPredictColdWarmStore"], 1e9 / ns["BenchmarkPredictColdWarmStore"]
        printf "    \"hot_over_cold\": %.0f,\n", \
            ns["BenchmarkPredictCold"] / ns["BenchmarkPredictHot"]
        printf "    \"warm_store_cold_over_hot\": %.1f,\n", \
            ns["BenchmarkPredictColdWarmStore"] / ns["BenchmarkPredictHot"]
        printf "    \"store_speedup_over_cold\": %.1f\n  },\n", \
            ns["BenchmarkPredictCold"] / ns["BenchmarkPredictColdWarmStore"]
        printf "  \"sweep_12_cells\": {\n"
        printf "    \"workers_1\": {\"ns_per_req\": %d},\n", ns["BenchmarkSweepWorkers1"]
        printf "    \"workers_n\": {\"ns_per_req\": %d},\n", ns["BenchmarkSweepWorkersN"]
        printf "    \"parallel_speedup\": %.2f\n  }\n}\n", \
            ns["BenchmarkSweepWorkers1"] / ns["BenchmarkSweepWorkersN"]
    }' "$tmp" > "$out"
    echo "wrote $out" >&2
    exit 0
fi

out=${1:-BENCH_PR2.json}

echo "== smoke (-benchtime=1x, all benchmarks)" >&2
go test -run '^$' -bench . -benchtime=1x ./... >/dev/null

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== timed: experiment-level (bench_test.go)" >&2
go test -run '^$' -bench 'BenchmarkFigure2$|BenchmarkROBSweep$' \
    -benchmem -benchtime=3x . | tee -a "$tmp" >&2
echo "== timed: uarch micro-benchmarks" >&2
go test -run '^$' \
    -bench 'BenchmarkSimulate$|BenchmarkPrepCacheHit$|BenchmarkPrepCacheMiss$|BenchmarkSimulateIdealSweep$' \
    -benchmem -benchtime=20x ./internal/uarch/ | tee -a "$tmp" >&2
echo "== timed: iw + stats micro-benchmarks" >&2
go test -run '^$' -bench 'BenchmarkCharacteristic' \
    -benchmem -benchtime=10x ./internal/iw/ | tee -a "$tmp" >&2
go test -run '^$' -bench 'BenchmarkAnalyze$' \
    -benchmem -benchtime=10x ./internal/stats/ | tee -a "$tmp" >&2

# Baseline ns/op, B/op, allocs/op for the acceptance benchmarks, measured
# at the pre-PR-2 tree (commit 58b301e) with the same -benchtime=3x.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    name = $1
    order[++n] = name
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op")          ns[name] = $i
        else if ($(i+1) == "B/op")      bytes[name] = $i
        else if ($(i+1) == "allocs/op") allocs[name] = $i
    }
}
END {
    base_ns["BenchmarkFigure2"]  = 1598509701
    base_ns["BenchmarkROBSweep"] = 459931992
    base_allocs["BenchmarkFigure2"]  = 1549
    base_allocs["BenchmarkROBSweep"] = 731
    printf "{\n  \"generated\": \"%s\",\n  \"benchmarks\": {\n", date
    for (j = 1; j <= n; j++) {
        name = order[j]
        printf "    \"%s\": {\"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n", \
            name, ns[name], bytes[name], allocs[name], (j < n ? "," : "")
    }
    printf "  },\n  \"baseline\": {\n"
    printf "    \"commit\": \"58b301e\",\n"
    k = 0
    for (name in base_ns) k++
    j = 0
    for (name in base_ns) {
        j++
        printf "    \"%s\": {\"ns_per_op\": %d, \"allocs_per_op\": %d, \"speedup\": %.2f}%s\n", \
            name, base_ns[name], base_allocs[name], base_ns[name] / ns[name], (j < k ? "," : "")
    }
    printf "  }\n}\n"
}' "$tmp" > "$out"

echo "wrote $out" >&2
