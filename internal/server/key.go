package server

import (
	"fomodel/internal/experiments"
	"fomodel/internal/reqkey"
)

// This file is the daemon's half of the shared canonical-key contract
// (see internal/reqkey): every response-cache key the daemon uses is
// derived through the exported functions below, and the fomodelproxy
// router calls the very same functions to pick a replica — so the key a
// request is routed by and the key the replica caches it under are one
// string by construction.

// KeyDefaults returns the normalization defaults this configuration
// serves under; a router configured with the same defaults shares the
// daemon's keyspace.
func (c Config) KeyDefaults() reqkey.Defaults {
	c = c.withDefaults()
	return reqkey.Defaults{N: c.N, Seed: c.Seed}
}

// PredictCacheKey canonicalizes one predict request against the given
// defaults: the request is normalized (defaults filled, inputs
// validated) and the normalized value keyed, so spelling differences —
// omitted versus explicit defaults — collapse to one key. The returned
// error is the same 400-shaped validation error the daemon would
// produce.
func PredictCacheKey(req PredictRequest, d reqkey.Defaults) (string, error) {
	if err := req.Normalize(d); err != nil {
		return "", err
	}
	return reqkey.Canonical("predict", req)
}

// SweepCacheKey canonicalizes one sweep spec. Sweeps have no
// server-side defaults to fill; decoding the JSON into the typed spec
// and re-encoding it is the canonicalization.
func SweepCacheKey(spec experiments.SweepSpec) (string, error) {
	return reqkey.Canonical("sweep", spec)
}

// WorkloadsCacheKey is the single cache key of the parameterless
// /v1/workloads endpoint.
const WorkloadsCacheKey = "workloads"
