package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fomodel/internal/artifact"
)

// openTestStore opens an artifact store in a per-test directory.
func openTestStore(t *testing.T, dir string) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// storeRequests is the request set the round-trip properties run: the
// default path, a non-default seed (the dedicated trace cache), a
// machine override (a distinct analysis key), and a simulator run (the
// prep-cache artifacts).
var storeRequests = []string{
	`{"bench": "gzip"}`,
	`{"bench": "gzip", "seed": 3}`,
	`{"bench": "mcf", "machine": {"rob": 64}}`,
	`{"bench": "gcc", "seed": 3, "sim": true}`,
}

// TestStoreRoundTripByteIdentical is the round-trip property of the
// tentpole: a fresh server process booting on a warm artifact store must
// produce /v1/predict bodies byte-identical to both the server that
// wrote the store and a server with no store at all.
func TestStoreRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cold := testServer(Config{N: 8000})
	writer := testServer(Config{N: 8000, Store: openTestStore(t, dir)})

	want := make([]string, len(storeRequests))
	for i, body := range storeRequests {
		rec := post(writer, "/v1/predict", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("writer request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		want[i] = rec.Body.String()

		rec = post(cold, "/v1/predict", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("storeless request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != want[i] {
			t.Errorf("request %d: store-writing server and storeless server disagree", i)
		}
	}
	if _, _, _, writes, _ := writer.cfg.Store.Stats(); writes == 0 {
		t.Fatal("warm pass wrote no artifacts")
	}

	// A fresh process: new server, new store handle, same directory.
	reader := testServer(Config{N: 8000, Store: openTestStore(t, dir)})
	for i, body := range storeRequests {
		rec := post(reader, "/v1/predict", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("reader request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != want[i] {
			t.Errorf("request %d: store-served body differs from fresh computation\nwant: %s\ngot:  %s",
				i, want[i], rec.Body.String())
		}
	}
	hits, _, _, _, _ := reader.cfg.Store.Stats()
	if hits == 0 {
		t.Error("fresh server on a warm store served nothing from it")
	}
}

// TestStoreCorruptionRecomputes damages every stored artifact and checks
// a fresh server detects the damage (checksum or framing), recomputes,
// and still answers byte-identically.
func TestStoreCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	writer := testServer(Config{N: 8000, Store: openTestStore(t, dir)})
	const reqBody = `{"bench": "gzip", "seed": 3, "sim": true}`
	rec := post(writer, "/v1/predict", reqBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("writer: status %d: %s", rec.Code, rec.Body.String())
	}
	want := rec.Body.String()

	files, err := filepath.Glob(filepath.Join(dir, "*.foa"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no artifacts on disk (%v)", err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff // flip a bit mid-file: key, payload, or checksum
		if err := os.WriteFile(f, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reader := testServer(Config{N: 8000, Store: openTestStore(t, dir)})
	rec = post(reader, "/v1/predict", reqBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("reader: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Body.String() != want {
		t.Error("recomputed response differs from the original")
	}
	if _, _, corrupt, _, _ := reader.cfg.Store.Stats(); corrupt == 0 {
		t.Error("no artifact was flagged corrupt despite damaging every file")
	}
}

// TestTraceCacheBounded sweeps many non-default seeds through a small
// trace cache and checks the server's footprint stays bounded: the trace
// LRU respects its capacity and evicted traces release the prep-cache
// entries they pinned.
func TestTraceCacheBounded(t *testing.T) {
	s := testServer(Config{N: 8000, TraceCacheEntries: 4})
	for seed := uint64(2); seed <= 21; seed++ {
		body := fmt.Sprintf(`{"bench": "gzip", "n": 2000, "seed": %d, "sim": true}`, seed)
		rec := post(s, "/v1/predict", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, rec.Code, rec.Body.String())
		}
		if got := s.traceCacheLen(); got > 4 {
			t.Fatalf("seed %d: trace cache grew to %d entries (cap 4)", seed, got)
		}
		if preps, prods := s.suite.Preps().Len(); preps > 5 || prods > 5 {
			t.Fatalf("seed %d: prep cache holds %d preps, %d prods — evicted traces did not release them",
				seed, preps, prods)
		}
	}
	if s.traceEvictions.Load() == 0 {
		t.Error("20-seed sweep through a 4-entry cache evicted nothing")
	}
	// The sweep's analyses are content-keyed and bounded too.
	if got := s.analysis.Len(); got > 20 {
		t.Errorf("analysis cache holds %d entries", got)
	}
}

// TestRequestBodyTooLarge pins the 413 contract: a body over the
// endpoint's bound is an explicit 413 naming the limit, never a silent
// truncation misreported as malformed JSON — even when the oversized
// body's prefix would parse.
func TestRequestBodyTooLarge(t *testing.T) {
	s := testServer(Config{})
	pad := strings.Repeat(" ", maxBodyBytes)
	cases := []struct {
		name, path, body string
		limit            int
	}{
		{"predict oversized", "/v1/predict", `{"bench": "gzip"` + strings.Repeat(" ", maxBodyBytes) + `}`, maxBodyBytes},
		{"predict valid prefix", "/v1/predict", `{"bench": "gzip"}` + pad, maxBodyBytes},
		{"sweep oversized", "/v1/sweep", `{"param": "width"` + pad + `}`, maxBodyBytes},
		{"batch oversized", "/v1/batch", `{"items": [{"bench": "gzip"}]}` + strings.Repeat(" ", maxBatchBodyBytes), maxBatchBodyBytes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(s, tc.path, tc.body)
			if rec.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d, want 413; body: %s", rec.Code, rec.Body.String())
			}
			msg := errorBody(t, rec)
			if want := fmt.Sprintf("%d-byte limit", tc.limit); !strings.Contains(msg, want) {
				t.Errorf("error %q does not name the limit %q", msg, want)
			}
		})
	}
	// At the limit is still fine.
	small := `{"bench": "gzip", "n": 2000}`
	body := small + strings.Repeat(" ", maxBodyBytes-len(small))
	if rec := post(s, "/v1/predict", body); rec.Code != http.StatusOK {
		t.Errorf("exactly-at-limit body rejected: status %d: %s", rec.Code, rec.Body.String())
	}
}
