package trace

import (
	"math"
	"testing"

	"fomodel/internal/isa"
)

func validTrace() *Trace {
	return &Trace{
		Name: "t",
		Instrs: []Instruction{
			{PC: 0x1000, Class: isa.ALU, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
			{PC: 0x1004, Class: isa.Load, Addr: 0x8000, Dest: 2, Src1: 1, Src2: isa.RegNone},
			{PC: 0x1008, Class: isa.Store, Addr: 0x8010, Dest: isa.RegNone, Src1: 2, Src2: 1},
			{PC: 0x100c, Class: isa.Branch, Dest: isa.RegNone, Src1: 2, Src2: isa.RegNone, Taken: true},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejectsBadClass(t *testing.T) {
	tr := validTrace()
	tr.Instrs[0].Class = isa.Class(99)
	if err := tr.Validate(); err == nil {
		t.Fatal("invalid class accepted")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	for _, mutate := range []func(*Instruction){
		func(in *Instruction) { in.Dest = isa.NumArchRegs },
		func(in *Instruction) { in.Src1 = -2 },
		func(in *Instruction) { in.Src2 = 1000 },
	} {
		tr := validTrace()
		mutate(&tr.Instrs[0])
		if err := tr.Validate(); err == nil {
			t.Fatal("out-of-range register accepted")
		}
	}
}

func TestValidateRejectsTakenNonBranch(t *testing.T) {
	tr := validTrace()
	tr.Instrs[0].Taken = true
	if err := tr.Validate(); err == nil {
		t.Fatal("taken ALU accepted")
	}
}

func TestMix(t *testing.T) {
	tr := validTrace()
	mix := tr.Mix()
	var total float64
	for _, f := range mix {
		total += f
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("mix sums to %v", total)
	}
	if mix[isa.ALU] != 0.25 || mix[isa.Branch] != 0.25 {
		t.Fatalf("unexpected mix %v", mix)
	}
}

func TestMixEmpty(t *testing.T) {
	tr := &Trace{Name: "empty"}
	mix := tr.Mix()
	for c, f := range mix {
		if f != 0 {
			t.Fatalf("empty trace has non-zero mix for class %d", c)
		}
	}
}

func TestAverageLatency(t *testing.T) {
	tr := validTrace()
	lat := isa.DefaultLatencies()
	// ALU 1 + Load 1 + Store 1 + Branch 1 → mean 1.
	if got := tr.AverageLatency(lat); got != 1 {
		t.Fatalf("average latency %v, want 1", got)
	}
	tr.Instrs[0].Class = isa.Div // 12 + 1 + 1 + 1 → 3.75
	if got := tr.AverageLatency(lat); got != 3.75 {
		t.Fatalf("average latency %v, want 3.75", got)
	}
	if got := (&Trace{}).AverageLatency(lat); got != 0 {
		t.Fatalf("empty trace latency %v, want 0", got)
	}
}

func TestHelpers(t *testing.T) {
	tr := validTrace()
	if !tr.Instrs[0].HasDest() || tr.Instrs[2].HasDest() {
		t.Fatal("HasDest wrong")
	}
	if !tr.Instrs[1].IsMem() || !tr.Instrs[2].IsMem() || tr.Instrs[0].IsMem() {
		t.Fatal("IsMem wrong")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len %d", tr.Len())
	}
}
