// Fixture for the //folint:allow suppression path, loaded under a
// pure-model import path so detrand fires. Each function is one case
// of the suppression contract.
package uarch

import "time"

// annotatedAbove: the comment-above form suppresses the diagnostic on
// the next line.
func annotatedAbove() time.Time {
	//folint:allow(detrand) fixture: annotated violation must pass
	return time.Now()
}

// annotatedTrailing: the same-line form suppresses too.
func annotatedTrailing() time.Time {
	return time.Now() //folint:allow(detrand) fixture: trailing annotation must pass
}

// unannotatedTwin is the identical violation without an annotation;
// it must still be reported.
func unannotatedTwin() time.Time {
	return time.Now()
}

// stale carries an annotation with no matching diagnostic left; the
// annotation itself must be reported as unused.
func stale() int {
	//folint:allow(detrand) fixture: nothing wrong on the next line anymore
	return 1
}

// missingReason suppresses its diagnostic but must be reported for
// carrying no written reason.
func missingReason() time.Time {
	//folint:allow(detrand)
	return time.Now()
}

// otherAnalyzer names an analyzer outside the running set; it must be
// left alone (single-analyzer runs must not call the other suite
// members' annotations stale) and must not suppress detrand.
func otherAnalyzer() time.Time {
	//folint:allow(lockheld) fixture: names a different analyzer
	return time.Now()
}
