package isa

import (
	"strings"
	"testing"
)

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ALU: "alu", Mul: "mul", Div: "div", FPU: "fpu",
		Load: "load", Store: "store", Branch: "branch",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", c, got, s)
		}
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown class string %q", got)
	}
}

func TestClassValid(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if !c.Valid() {
			t.Errorf("class %v should be valid", c)
		}
	}
	if Class(NumClasses).Valid() {
		t.Error("out-of-range class reported valid")
	}
}

func TestDefaultLatencies(t *testing.T) {
	lat := DefaultLatencies()
	if err := lat.Validate(); err != nil {
		t.Fatalf("default latencies invalid: %v", err)
	}
	if lat.Latency(ALU) != 1 {
		t.Errorf("ALU latency %d, want 1", lat.Latency(ALU))
	}
	if lat.Latency(Div) <= lat.Latency(Mul) {
		t.Errorf("divide (%d) should be slower than multiply (%d)", lat.Latency(Div), lat.Latency(Mul))
	}
}

func TestLatencyValidateRejectsNonPositive(t *testing.T) {
	lat := DefaultLatencies()
	lat[Mul] = 0
	if err := lat.Validate(); err == nil {
		t.Fatal("zero latency passed validation")
	}
	lat[Mul] = -3
	if err := lat.Validate(); err == nil {
		t.Fatal("negative latency passed validation")
	}
}
