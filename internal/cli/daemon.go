package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"fomodel/internal/artifact"
	"fomodel/internal/registry"
	"fomodel/internal/server"
)

// Fomodeld implements cmd/fomodeld: the HTTP model-serving daemon. It
// binds the listen address, serves until ctx is canceled (the main wires
// SIGINT/SIGTERM into ctx), then shuts down gracefully, draining
// in-flight requests — running sweeps included — for up to the -drain
// timeout. Structured JSON logs go to out.
func Fomodeld(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fomodeld", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8750", "listen address")
	n := fs.Int("n", 500000, "default dynamic instructions per workload")
	seed := fs.Uint64("seed", 1, "default workload generation seed")
	parallel := fs.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	inflight := fs.Int("max-inflight", 0, "concurrent API requests before 429 shedding (0 = 2×GOMAXPROCS)")
	cacheEntries := fs.Int("cache", 1024, "response cache capacity in entries")
	traceEntries := fs.Int("trace-cache", 64, "non-default trace cache capacity in entries")
	analysisEntries := fs.Int("analysis-cache", 128, "in-memory analysis bundle cache capacity in entries")
	reqTimeout := fs.Duration("request-timeout", 2*time.Minute, "per-request computation deadline")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	storeDir := fs.String("store", "", "workload-artifact store directory (empty = no persistence)")
	storeMax := fs.Int64("store-max-bytes", 1<<30, "artifact store size bound in bytes (0 = unbounded)")
	warm := fs.Bool("warm", true, "precompute the default workload bundles at boot (background)")
	wlQuota := fs.Int("workload-quota", 0, "registered workloads allowed per tenant (0 = 16)")
	wlQuotaBytes := fs.Int64("workload-quota-bytes", 0, "registered-profile bytes allowed per tenant (0 = 1 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fomodeld: unexpected argument %q", fs.Arg(0))
	}

	logger := slog.New(slog.NewJSONHandler(out, nil))
	var store *artifact.Store
	if *storeDir != "" {
		var err error
		store, err = artifact.Open(*storeDir, *storeMax)
		if err != nil {
			return fmt.Errorf("fomodeld: open artifact store: %w", err)
		}
		logger.Info("artifact store open", "dir", store.Dir(), "bytes", store.SizeBytes())
	}
	reg := registry.New(registry.Config{
		MaxPerTenant:      *wlQuota,
		MaxBytesPerTenant: *wlQuotaBytes,
		Store:             store,
	})
	if n, err := reg.Load(); err != nil {
		logger.Warn("workload registry load failed", "err", err.Error())
	} else if n > 0 {
		logger.Info("workload registry loaded", "workloads", n)
	}
	srv := server.New(server.Config{
		N:                    *n,
		Seed:                 *seed,
		Workers:              *parallel,
		MaxInflight:          *inflight,
		CacheEntries:         *cacheEntries,
		TraceCacheEntries:    *traceEntries,
		AnalysisCacheEntries: *analysisEntries,
		RequestTimeout:       *reqTimeout,
		Store:                store,
		Registry:             reg,
	}, logger)
	if *warm {
		// Warm in the background so the listener is up immediately; the
		// first requests for a still-cold workload simply join the warm
		// computation through the suite's single-flight cache. Until the
		// warm-up completes, /readyz answers 503 so a routing proxy keeps
		// this cold replica out of its ring; /healthz stays 200 throughout.
		srv.SetReady(false)
		go func() {
			start := time.Now()
			if err := srv.Warm(ctx); err != nil {
				logger.Info("warm-up stopped", "err", err.Error())
				return
			}
			srv.SetReady(true)
			logger.Info("warm-up complete", "dur_ms", time.Since(start).Milliseconds())
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("fomodeld listening", "addr", ln.Addr().String(), "n", *n, "seed", *seed)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "timeout", (*drain).String())
	//folint:allow(ctxflow) the parent ctx is already cancelled here; the drain deadline needs a fresh context
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("fomodeld: drain incomplete: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("fomodeld stopped")
	return nil
}
