package experiments

import (
	"fmt"

	"fomodel/internal/uarch"
)

// Figure9Row is one benchmark of the paper's Fig. 9: the simulated penalty
// per branch misprediction for 5- and 9-stage front ends, next to the
// model's isolated-penalty prediction.
type Figure9Row struct {
	Name string
	// SimPenalty5 / SimPenalty9 are measured penalties in cycles per
	// misprediction at front-end depths 5 and 9 (ideal caches, real
	// gshare, differenced against the ideal-predictor runs).
	SimPenalty5 float64
	SimPenalty9 float64
	// ModelIsolated5 / ModelIsolated9 are the model's equation (2)
	// penalties at the same depths.
	ModelIsolated5 float64
	ModelIsolated9 float64
}

// Figure9Result is the full Fig. 9 dataset.
type Figure9Result struct {
	Rows []Figure9Row
}

// Figure9 measures the branch misprediction penalty per benchmark,
// fanning the benchmarks out across the suite's worker pool.
func Figure9(s *Suite) (*Figure9Result, error) {
	rows, err := MapWorkloads(s, func(w *Workload) (Figure9Row, error) {
		row := Figure9Row{Name: w.Name}
		for _, depth := range []int{5, 9} {
			ideal, err := s.Simulate(w, func(c *uarch.Config) {
				c.FrontEndDepth = depth
				c.IdealICache, c.IdealDCache, c.IdealPredictor = true, true, true
			})
			if err != nil {
				return row, err
			}
			brOnly, err := s.Simulate(w, func(c *uarch.Config) {
				c.FrontEndDepth = depth
				c.IdealICache, c.IdealDCache = true, true
			})
			if err != nil {
				return row, err
			}
			penalty := 0.0
			if brOnly.Mispredicts > 0 {
				penalty = float64(brOnly.Cycles-ideal.Cycles) / float64(brOnly.Mispredicts)
			}

			m := s.Machine
			m.FrontEndDepth = depth
			curve := m.Curve(w.Inputs, modelOptions())
			steady := m.SteadyStateIPC(w.Inputs, modelOptions())
			isolated := curve.Drain(float64(m.WindowSize), steady) +
				float64(depth) +
				curve.RampUp(steady, transientEpsilon)

			if depth == 5 {
				row.SimPenalty5, row.ModelIsolated5 = penalty, isolated
			} else {
				row.SimPenalty9, row.ModelIsolated9 = penalty, isolated
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure9Result{Rows: rows}, nil
}

// tab builds the result table.
func (r *Figure9Result) tab() *table {
	t := &table{
		title:  "Figure 9: penalty per branch misprediction (cycles)",
		header: []string{"bench", "sim dP=5", "model dP=5", "sim dP=9", "model dP=9"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f2(row.SimPenalty5), f2(row.ModelIsolated5),
			f2(row.SimPenalty9), f2(row.ModelIsolated9))
	}
	t.addNote("paper: penalties exceed the front-end depth — typically 6.4–10 cycles at dP=5 (vpr 14.7)")
	return t
}

// Render prints the table as aligned text.
func (r *Figure9Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure9Result) CSV() string { return r.tab().CSV() }

// Figure11Row is one benchmark of the paper's Fig. 11: the I-cache miss
// penalty is ≈ the miss delay and independent of front-end depth.
type Figure11Row struct {
	Name string
	// Misses5/Misses9 are charged I-cache stalls in each configuration.
	Misses5, Misses9 uint64
	// SimPenalty5 / SimPenalty9 are measured cycles per I-cache miss.
	SimPenalty5 float64
	SimPenalty9 float64
}

// Figure11Result is the full Fig. 11 dataset.
type Figure11Result struct {
	Rows []Figure11Row
	// MissDelay is the configured L2 access delay (the paper's 8).
	MissDelay int
}

// Figure11 measures the I-cache miss penalty per benchmark at front-end
// depths 5 and 9 (real I-cache, ideal D-cache and predictor).
func Figure11(s *Suite) (*Figure11Result, error) {
	rows, err := MapWorkloads(s, func(w *Workload) (Figure11Row, error) {
		row := Figure11Row{Name: w.Name}
		for _, depth := range []int{5, 9} {
			ideal, err := s.Simulate(w, func(c *uarch.Config) {
				c.FrontEndDepth = depth
				c.IdealICache, c.IdealDCache, c.IdealPredictor = true, true, true
			})
			if err != nil {
				return row, err
			}
			icOnly, err := s.Simulate(w, func(c *uarch.Config) {
				c.FrontEndDepth = depth
				c.IdealDCache, c.IdealPredictor = true, true
			})
			if err != nil {
				return row, err
			}
			misses := icOnly.ICacheShort + icOnly.ICacheLong
			penalty := 0.0
			if misses > 0 {
				penalty = float64(icOnly.Cycles-ideal.Cycles) / float64(misses)
			}
			if depth == 5 {
				row.SimPenalty5, row.Misses5 = penalty, misses
			} else {
				row.SimPenalty9, row.Misses9 = penalty, misses
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure11Result{Rows: rows, MissDelay: s.Sim.Hierarchy.ShortMissLatency}, nil
}

// tab builds the result table.
func (r *Figure11Result) tab() *table {
	t := &table{
		title:  fmt.Sprintf("Figure 11: I-cache miss penalty (cycles; miss delay %d)", r.MissDelay),
		header: []string{"bench", "misses", "sim dP=5", "sim dP=9"},
	}
	for _, row := range r.Rows {
		note := ""
		if row.Misses5 < 100 {
			note = " (few misses)"
		}
		t.addRow(row.Name+note, fmt.Sprintf("%d", row.Misses5), f2(row.SimPenalty5), f2(row.SimPenalty9))
	}
	t.addNote("paper: penalty ≈ the L2 miss delay and independent of the front-end depth")
	return t
}

// Render prints the table as aligned text.
func (r *Figure11Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure11Result) CSV() string { return r.tab().CSV() }

// Figure14Row is one benchmark of the paper's Fig. 14: penalty per long
// data-cache miss, simulation vs model (equation 8).
type Figure14Row struct {
	Name string
	// SimPenalty is the measured penalty per long miss (real D-cache,
	// ideal predictor and I-cache, differenced against all-ideal).
	SimPenalty float64
	// ModelPenalty is ΔD × Σ f_LDM(i)/i.
	ModelPenalty float64
	// IsolatedPenalty is the measured penalty when long misses are
	// artificially serialized (the paper's isolation experiment).
	IsolatedPenalty float64
	LongMisses      uint64
}

// Figure14Result is the full Fig. 14 dataset.
type Figure14Result struct {
	Rows []Figure14Row
}

// Figure14 measures the long data miss penalty per benchmark, fanning the
// benchmarks out across the suite's worker pool.
func Figure14(s *Suite) (*Figure14Result, error) {
	rows, err := MapWorkloads(s, func(w *Workload) (Figure14Row, error) {
		var zero Figure14Row
		ideal, err := s.Simulate(w, func(c *uarch.Config) {
			c.IdealICache, c.IdealDCache, c.IdealPredictor = true, true, true
		})
		if err != nil {
			return zero, err
		}
		dOnly, err := s.Simulate(w, func(c *uarch.Config) {
			c.IdealICache, c.IdealPredictor = true, true
		})
		if err != nil {
			return zero, err
		}
		serial, err := s.Simulate(w, func(c *uarch.Config) {
			c.IdealICache, c.IdealPredictor = true, true
			c.SerializeLongMisses = true
		})
		if err != nil {
			return zero, err
		}
		row := Figure14Row{Name: w.Name, LongMisses: dOnly.DCacheLong}
		if dOnly.DCacheLong > 0 {
			row.SimPenalty = float64(dOnly.Cycles-ideal.Cycles) / float64(dOnly.DCacheLong)
		}
		if serial.DCacheLong > 0 {
			row.IsolatedPenalty = float64(serial.Cycles-ideal.Cycles) / float64(serial.DCacheLong)
		}
		row.ModelPenalty = float64(s.Machine.LongMissLatency) * w.Inputs.OverlapFactor
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure14Result{Rows: rows}, nil
}

// tab builds the result table.
func (r *Figure14Result) tab() *table {
	t := &table{
		title:  "Figure 14: penalty per long data cache miss (cycles)",
		header: []string{"bench", "long misses", "sim", "model (eq.8)", "isolated sim"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, fmt.Sprintf("%d", row.LongMisses),
			f2(row.SimPenalty), f2(row.ModelPenalty), f2(row.IsolatedPenalty))
	}
	t.addNote("paper: the model is reasonably close; data-miss overlap is the weakest link")
	return t
}

// Render prints the table as aligned text.
func (r *Figure14Result) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *Figure14Result) CSV() string { return r.tab().CSV() }
