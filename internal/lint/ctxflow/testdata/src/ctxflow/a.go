// Fixture for the ctxflow analyzer: library code (non-main package).
package client

import (
	"context"
	"net/http"
	"os/exec"
)

func fresh() context.Context {
	return context.Background() // want `context\.Background\(\) outside package main`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) outside package main`
}

func unused(ctx context.Context, n int) int { // want `context parameter ctx is never used`
	return n + 1
}

func deliberateDrop(_ context.Context, n int) int {
	return n + 1
}

func threaded(ctx context.Context) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", "http://replica", nil)
}

func detachedRequest(ctx context.Context) {
	req, err := http.NewRequest("GET", "http://replica", nil) // want `http\.NewRequest in a function that has a ctx`
	_, _, _ = req, err, ctx
}

func detachedGet(ctx context.Context) {
	resp, err := http.Get("http://replica") // want `http\.Get uses the background context`
	_, _, _ = resp, err, ctx
}

func detachedCommand(ctx context.Context) {
	cmd := exec.Command("true") // want `exec\.Command in a function that has a ctx`
	_, _ = cmd, ctx
}

func usedInClosure(ctx context.Context) func() {
	return func() { <-ctx.Done() }
}

var literalWithCtx = func(ctx context.Context) int { // want `context parameter ctx is never used`
	return 1
}

func noCtxNoRules() (*http.Request, error) {
	// Without a ctx in the signature there is nothing to thread; the
	// detached constructor is not flagged here.
	return http.NewRequest("GET", "http://replica", nil)
}
