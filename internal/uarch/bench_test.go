package uarch_test

import (
	"sync"
	"testing"

	"fomodel/internal/trace"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

// benchTrace is shared across benchmarks so trace generation is paid once.
var (
	benchTraceOnce sync.Once
	benchTraceVal  *trace.Trace
)

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	benchTraceOnce.Do(func() {
		t, err := workload.Generate("gzip", 50000, 1)
		if err != nil {
			panic(err)
		}
		benchTraceVal = t
	})
	return benchTraceVal
}

// BenchmarkSimulate times one full uncached simulation: functional
// classification plus the cycle-level timing pass.
func BenchmarkSimulate(b *testing.B) {
	t := benchTrace(b)
	cfg := uarch.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Simulate(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrepCacheHit times a simulation whose classification is served
// from a warm PrepCache — the steady state of every multi-config study.
// The delta against BenchmarkSimulate is the cost of the functional pass
// the cache removes.
func BenchmarkPrepCacheHit(b *testing.B) {
	t := benchTrace(b)
	cfg := uarch.DefaultConfig()
	pc := uarch.NewPrepCache()
	if _, err := pc.Simulate(t, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Simulate(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrepCacheMiss times a simulation through a cold cache (a fresh
// cache per iteration), measuring the overhead the cache layer adds on
// the first run of a new classification key.
func BenchmarkPrepCacheMiss(b *testing.B) {
	t := benchTrace(b)
	cfg := uarch.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uarch.NewPrepCache()
		if _, err := pc.Simulate(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateIdealSweep mimics the paper's five-configuration
// independence experiment on one benchmark: same classification key,
// five timing variants. With the cache this pays one functional pass;
// uncached it would pay five.
func BenchmarkSimulateIdealSweep(b *testing.B) {
	t := benchTrace(b)
	base := uarch.DefaultConfig()
	variants := make([]uarch.Config, 0, 5)
	for _, m := range []func(*uarch.Config){
		func(c *uarch.Config) { c.IdealICache, c.IdealDCache, c.IdealPredictor = true, true, true },
		func(c *uarch.Config) { c.IdealICache, c.IdealDCache = true, true },
		func(c *uarch.Config) { c.IdealDCache, c.IdealPredictor = true, true },
		func(c *uarch.Config) { c.IdealICache, c.IdealPredictor = true, true },
		func(c *uarch.Config) {},
	} {
		cfg := base
		m(&cfg)
		variants = append(variants, cfg)
	}
	pc := uarch.NewPrepCache()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range variants {
			if _, err := pc.Simulate(t, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
