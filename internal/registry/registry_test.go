package registry

import (
	"errors"
	"testing"

	"fomodel/internal/artifact"
	"fomodel/internal/workload"
)

// testProfile returns a valid profile derived from a built-in, renamed
// so it can be registered.
func testProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = name
	return p
}

func TestRegisterGetDelete(t *testing.T) {
	r := New(Config{})
	prof := testProfile(t, "mine")
	e, err := r.Register("alice", "mine", prof)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "mine" || e.Tenant != "alice" || e.Hash == "" || e.Bytes <= 0 {
		t.Errorf("entry = %+v", e)
	}
	if got, ok := r.Get("mine"); !ok || got.Hash != e.Hash {
		t.Error("Get did not round-trip the registration")
	}
	if hash, ok := r.WorkloadContent("mine"); !ok || hash != e.Hash {
		t.Error("WorkloadContent did not resolve the registered name")
	}
	if err := r.Delete("alice", "mine"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("mine"); ok {
		t.Error("entry survived deletion")
	}
	if err := r.Delete("alice", "mine"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete = %v, want ErrNotFound", err)
	}
}

func TestRegisterFillsAndChecksProfileName(t *testing.T) {
	r := New(Config{})
	prof := testProfile(t, "x")
	prof.Name = ""
	e, err := r.Register("alice", "x", prof)
	if err != nil {
		t.Fatal(err)
	}
	if e.Profile.Name != "x" {
		t.Errorf("empty profile name not filled from the workload name: %q", e.Profile.Name)
	}
	if _, err := r.Register("alice", "y", testProfile(t, "not-y")); err == nil {
		t.Error("mismatched profile name accepted")
	}
}

func TestBuiltinCollisionRejected(t *testing.T) {
	r := New(Config{})
	if _, err := r.Register("alice", "gzip", testProfile(t, "gzip")); !errors.Is(err, ErrBuiltin) {
		t.Errorf("registering over a built-in = %v, want ErrBuiltin", err)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	r := New(Config{})
	for _, name := range []string{"", "has space", "has/slash", "has:colon", "has|pipe",
		"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"} {
		if ValidName(name) {
			t.Errorf("ValidName(%q) = true", name)
		}
		if _, err := r.Register("alice", name, testProfile(t, name)); err == nil {
			t.Errorf("invalid name %q accepted", name)
		}
	}
	if _, err := r.Register("bad tenant", "ok", testProfile(t, "ok")); err == nil {
		t.Error("invalid tenant accepted")
	}
}

func TestTenantOwnership(t *testing.T) {
	r := New(Config{})
	if _, err := r.Register("alice", "shared", testProfile(t, "shared")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("bob", "shared", testProfile(t, "shared")); !errors.Is(err, ErrOwned) {
		t.Errorf("cross-tenant replace = %v, want ErrOwned", err)
	}
	if err := r.Delete("bob", "shared"); !errors.Is(err, ErrOwned) {
		t.Errorf("cross-tenant delete = %v, want ErrOwned", err)
	}
	// The owner can still replace its own entry.
	if _, err := r.Register("alice", "shared", testProfile(t, "shared")); err != nil {
		t.Errorf("owner replace failed: %v", err)
	}
}

func TestCountQuota(t *testing.T) {
	r := New(Config{MaxPerTenant: 2})
	for _, name := range []string{"a", "b"} {
		if _, err := r.Register("alice", name, testProfile(t, name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Register("alice", "c", testProfile(t, "c")); !errors.Is(err, ErrQuota) {
		t.Errorf("over-quota register = %v, want ErrQuota", err)
	}
	// Replacement does not consume a new slot.
	if _, err := r.Register("alice", "a", testProfile(t, "a")); err != nil {
		t.Errorf("replacement counted against the quota: %v", err)
	}
	// Other tenants have their own budget.
	if _, err := r.Register("bob", "c", testProfile(t, "c")); err != nil {
		t.Errorf("other tenant's register failed: %v", err)
	}
}

func TestByteQuota(t *testing.T) {
	prof := testProfile(t, "a")
	size, err := encodedSize(prof)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{MaxBytesPerTenant: size + size/2})
	if _, err := r.Register("alice", "a", prof); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("alice", "b", testProfile(t, "b")); !errors.Is(err, ErrQuota) {
		t.Errorf("over-byte-quota register = %v, want ErrQuota", err)
	}
	u := r.TenantUsage()["alice"]
	if u.Count != 1 || u.Bytes != size {
		t.Errorf("usage = %+v, want {1 %d}", u, size)
	}
}

func TestNilRegistryIsEmpty(t *testing.T) {
	var r *Registry
	if _, ok := r.Get("x"); ok {
		t.Error("nil Get hit")
	}
	if _, _, ok := r.Snapshot("x"); ok {
		t.Error("nil Snapshot hit")
	}
	if r.List() != nil || r.TenantUsage() != nil {
		t.Error("nil accessors not empty")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{Store: store})
	want, err := r.Register("alice", "mine", testProfile(t, "mine"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("bob", "other", testProfile(t, "other")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("bob", "other"); err != nil {
		t.Fatal(err)
	}

	// A fresh process: new store handle, new registry, Load.
	store2, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(Config{Store: store2})
	n, err := r2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d entries, want 1", n)
	}
	got, ok := r2.Get("mine")
	if !ok {
		t.Fatal("persisted entry missing after Load")
	}
	if got.Tenant != "alice" || got.Hash != want.Hash || got.Bytes != want.Bytes {
		t.Errorf("restored entry %+v, want %+v", got, want)
	}
	if _, ok := r2.Get("other"); ok {
		t.Error("deleted entry resurrected by Load")
	}
}

func TestLoadSkipsInvalidEntries(t *testing.T) {
	store, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{Store: store})
	if _, err := r.Register("alice", "good", testProfile(t, "good")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the persisted index with an entry colliding with a
	// built-in and one with a broken profile.
	bad := testProfile(t, "gzip")
	broken := testProfile(t, "broken")
	broken.NumBlocks = -1
	r.entries["gzip"] = &Entry{Name: "gzip", Tenant: "alice", Profile: bad}
	r.entries["broken"] = &Entry{Name: "broken", Tenant: "alice", Profile: broken}
	r.mu.Lock()
	r.persistLocked()
	r.mu.Unlock()

	r2 := New(Config{Store: store})
	n, err := r2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("restored %d entries, want only the valid one", n)
	}
	if _, ok := r2.Get("gzip"); ok {
		t.Error("built-in-colliding entry restored")
	}
	if _, ok := r2.Get("broken"); ok {
		t.Error("invalid profile restored")
	}
}
