// Package driver runs the fomodelvet analyzers over loaded packages,
// applies //folint:allow suppressions, and returns position-resolved
// diagnostics ready to print. It is shared by the standalone
// fomodelvet binary, its `go vet -vettool` mode, and the test
// harness, so suppression semantics cannot drift between them.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"fomodel/internal/lint/analysis"
	"fomodel/internal/lint/load"
)

// Diagnostic is one finding with its position resolved, independent
// of any FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// MetaAnalyzer attributes the driver's own diagnostics about the
// suppression mechanism (missing reasons, stale allows).
const MetaAnalyzer = "folint"

// allowRE matches the escape hatch. The required shape is
//
//	//folint:allow(analyzer1,analyzer2) reason the violation is intended
//
// following the Go directive-comment convention (no space after //);
// the space-separated spelling is accepted too so a gofmt-style
// comment still counts rather than silently not suppressing.
var allowRE = regexp.MustCompile(`^//\s?folint:allow\(([^)]*)\)\s*(.*)$`)

// allow is one parsed //folint:allow comment.
type allow struct {
	pos    token.Position
	names  []string
	reason string
	used   map[string]bool
}

// collectAllows parses every //folint:allow comment of a file.
func collectAllows(fset *token.FileSet, file *ast.File) []*allow {
	var allows []*allow
	for _, group := range file.Comments {
		for _, c := range group.List {
			m := allowRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			a := &allow{
				pos:    fset.Position(c.Pos()),
				reason: strings.TrimSpace(m[2]),
				used:   map[string]bool{},
			}
			for _, n := range strings.Split(m[1], ",") {
				if n = strings.TrimSpace(n); n != "" {
					a.names = append(a.names, n)
				}
			}
			allows = append(allows, a)
		}
	}
	return allows
}

// Run executes every analyzer over every package, filters diagnostics
// through //folint:allow comments, and reports suppression misuse.
// Diagnostics in _test.go files are dropped: tests are allowed to do
// what production code is not (fixed seeds aside, they are where
// clocks and contexts get faked).
//
// A suppression applies to diagnostics of the named analyzers on the
// comment's own line or the line directly below it (the standalone
// comment-above form). Every allow must carry a reason, and an allow
// that suppresses nothing is itself reported — stale escapes rot.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	inRun := map[string]bool{}
	for _, a := range analyzers {
		inRun[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					raw = append(raw, Diagnostic{
						Pos:      pkg.Fset.Position(d.Pos),
						Analyzer: d.Analyzer,
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
			}
		}

		allows := map[string][]*allow{} // filename -> allows
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			allows[name] = collectAllows(pkg.Fset, f)
		}

		for _, d := range raw {
			if strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			if suppressed(allows[d.Pos.Filename], d) {
				continue
			}
			out = append(out, d)
		}

		// Suppression hygiene: reasons are mandatory, stale allows are
		// findings. An allow naming an analyzer outside this run is
		// left alone — single-analyzer runs (tests) must not flag the
		// other analyzers' annotations as stale.
		for _, file := range sortedKeys(allows) {
			for _, a := range allows[file] {
				if strings.HasSuffix(file, "_test.go") {
					continue
				}
				if a.reason == "" {
					out = append(out, Diagnostic{
						Pos:      a.pos,
						Analyzer: MetaAnalyzer,
						Message: fmt.Sprintf("folint:allow(%s) needs a reason: write //folint:allow(%s) <why this violation is intended>",
							strings.Join(a.names, ","), strings.Join(a.names, ",")),
					})
				}
				for _, n := range a.names {
					if inRun[n] && !a.used[n] {
						out = append(out, Diagnostic{
							Pos:      a.pos,
							Analyzer: MetaAnalyzer,
							Message:  fmt.Sprintf("unused folint:allow(%s): no %s diagnostic here anymore; delete the comment", n, n),
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppressed reports (and records) whether d is covered by an allow
// on its own line or the line above.
func suppressed(allows []*allow, d Diagnostic) bool {
	for _, a := range allows {
		if a.pos.Line != d.Pos.Line && a.pos.Line != d.Pos.Line-1 {
			continue
		}
		for _, n := range a.names {
			if n == d.Analyzer {
				a.used[n] = true
				return true
			}
		}
	}
	return false
}

func sortedKeys(m map[string][]*allow) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
