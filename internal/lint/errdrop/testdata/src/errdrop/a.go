// Fixture for the errdrop analyzer, loaded under the server import
// path (one of the error-critical packages).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type payload struct{ X int }

func marshalDrop(p payload) []byte {
	b, _ := json.Marshal(p) // want `error result of json\.Marshal discarded`
	return b
}

func statementDrop(f *os.File, p payload) {
	json.NewEncoder(f).Encode(p) // want `error result of Encoder\.Encode ignored`
	os.Remove("stale")           // want `error result of os\.Remove ignored`
}

func blankAssign(f *os.File) {
	_ = f.Close() // want `error value of File\.Close discarded`
}

func deferredCloseIsIdiomatic(f *os.File) {
	defer f.Close()
}

func handled(p payload) ([]byte, error) {
	return json.Marshal(p)
}

func commaOkIsNotAnError(v any) string {
	s, _ := v.(string)
	return s
}

func nonErrorResultsAreFine(m map[string]int) int {
	n, _ := m["x"]
	return n
}

func fprintfStatementIsIdiomatic(w io.Writer) {
	fmt.Fprintf(w, "metric %d\n", 1)
	fmt.Fprintln(w, "done")
}

func fprintfBlankDiscardStillFlagged(w io.Writer) {
	_, _ = fmt.Fprintf(w, "x") // want `error result of fmt\.Fprintf discarded`
}
