package server

import (
	"fmt"
	"net/http"
	"runtime"
	"testing"

	"fomodel/internal/artifact"
)

// benchPost drives one request through the handler chain and fails the
// benchmark on a non-200.
func benchPost(b *testing.B, s *Server, path, body string) {
	b.Helper()
	rec := post(s, path, body)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status = %d\nbody: %s", path, rec.Code, rec.Body.String())
	}
}

// BenchmarkPredictHot measures the cache-hot predict path: every request
// after the first is served from the response cache, so this is the
// daemon's steady-state throughput ceiling for repeated queries.
func BenchmarkPredictHot(b *testing.B) {
	s := testServer(Config{N: 20000})
	const body = `{"bench":"gzip","sim":true}`
	benchPost(b, s, "/v1/predict", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/predict", body)
	}
}

// BenchmarkPredictCold measures the cache-cold predict path: each request
// uses a fresh seed, so every iteration generates a trace and runs the
// full analysis pipeline (IW characteristic, fit, miss statistics, model).
func BenchmarkPredictCold(b *testing.B) {
	s := testServer(Config{N: 20000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/predict",
			fmt.Sprintf(`{"bench":"gzip","seed":%d}`, i+2))
	}
}

// BenchmarkPredictColdWarmStore measures the restart path the artifact
// store exists for: every iteration boots a fresh server — empty
// response, trace, analysis, and prep caches, as after a process
// restart — on a shared warm store, and serves the same request
// BenchmarkPredictCold pays the full pipeline for. The gap between this
// and BenchmarkPredictCold is what persistence buys.
func BenchmarkPredictColdWarmStore(b *testing.B) {
	st, err := artifact.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	const body = `{"bench":"gzip","seed":2}`
	warm := testServer(Config{N: 20000, Store: st})
	benchPost(b, warm, "/v1/predict", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := testServer(Config{N: 20000, Store: st})
		benchPost(b, s, "/v1/predict", body)
	}
}

// benchmarkSweep measures one /v1/sweep request latency at a given worker
// count; per-iteration titles bust the response cache so every iteration
// runs the full 12-cell grid (workload analyses are shared, the detailed
// simulations are not).
func benchmarkSweep(b *testing.B, workers int) {
	s := testServer(Config{N: 20000, Workers: workers})
	// Warm the workload cache so iterations measure sweep execution, not
	// first-touch trace analysis.
	benchPost(b, s, "/v1/sweep",
		`{"title":"warm","param":"width","benches":["gzip","mcf","vortex"],"values":[2,4,6,8]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/sweep", fmt.Sprintf(
			`{"title":"run %d","param":"width","benches":["gzip","mcf","vortex"],"values":[2,4,6,8]}`, i))
	}
}

func BenchmarkSweepWorkers1(b *testing.B) { benchmarkSweep(b, 1) }

func BenchmarkSweepWorkersN(b *testing.B) { benchmarkSweep(b, runtime.GOMAXPROCS(0)) }
