package report

import (
	"bytes"
	"strings"
	"testing"

	"fomodel/internal/experiments"
)

func TestGenerateAndWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	// The report needs all twelve benchmarks (fig16 checks mcf/twolf
	// shares); a short trace keeps this test manageable.
	s := experiments.NewSuite(60000, 1)
	r, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total < 12 {
		t.Fatalf("only %d checks", r.Total)
	}
	// At this trace length a couple of noisy checks may miss their
	// tolerance, but the battery must be broadly green.
	if r.Passed < r.Total-3 {
		for _, c := range r.Checks {
			if !c.Pass {
				t.Logf("CHECK %s: %s (measured %s)", c.ID, c.Claim, c.Measured)
			}
		}
		t.Fatalf("%d/%d checks passed", r.Passed, r.Total)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Reproduction report", "| fig15 |", "## fig8", "PASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if len(r.Sections) != r.Total {
		t.Fatalf("%d sections for %d checks", len(r.Sections), r.Total)
	}
}

func TestWithin(t *testing.T) {
	if !within(5, 4, 6) || within(7, 4, 6) || within(3, 4, 6) {
		t.Fatal("within broken")
	}
	if abs(-2) != 2 || abs(2) != 2 {
		t.Fatal("abs broken")
	}
}
