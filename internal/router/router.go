// Package router implements fomodelproxy's routing core: a cache-aware
// HTTP proxy that spreads load across N fomodeld replicas while keeping
// each replica's caches hot. Requests are mapped onto replicas by the
// same canonical key the daemon's response cache uses (internal/reqkey +
// internal/server's typed key functions — one code path, so proxy and
// daemon can never shard by different keys), via a bounded-load
// consistent-hash ring. On top of the per-replica clients' 429/503
// retry schedule the router adds what a single client cannot: replica
// health (active /readyz probes plus passive failure counting, with
// ejection and re-admission), instant failover to the key's ring
// successor on transport errors, and latency hedging — a second attempt
// at the next ring replica once the first has outlived the observed P99,
// first response wins, loser canceled.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fomodel/internal/client"
	"fomodel/internal/experiments"
	"fomodel/internal/metrics"
	"fomodel/internal/optimize"
	"fomodel/internal/reqkey"
	"fomodel/internal/server"
)

// Config parameterizes the router. The zero value of every field (other
// than Replicas) selects a production-shaped default.
type Config struct {
	// Replicas are the fomodeld base URLs, e.g. "http://127.0.0.1:8751".
	// At least one is required.
	Replicas []string
	// Defaults are the trace defaults (n, seed) shared with the replicas;
	// the proxy normalizes predict requests with them before keying, so
	// an explicit {"n":500000} and an implicit default land on the same
	// shard. Zero fields fall back to reqkey.StandardDefaults.
	Defaults reqkey.Defaults
	// VNodes is the number of ring points per replica (0 = 64).
	VNodes int
	// RoundRobin selects the cache-oblivious baseline policy instead of
	// consistent hashing — kept for benchmarking the difference, which is
	// the point of this proxy.
	RoundRobin bool
	// LoadFactor is the bounded-load factor c: a replica already carrying
	// more than c×(mean in-flight) is skipped in favor of its ring
	// successor, trading one request's cache locality for tail latency.
	// 0 = 1.25; negative disables the bound.
	LoadFactor float64
	// DisableHedge turns latency hedging off (it is on by default when
	// there are ≥2 replicas).
	DisableHedge bool
	// HedgeQuantile is the upstream-latency quantile that arms the hedge
	// timer (0 = 0.99).
	HedgeQuantile float64
	// HedgeMin and HedgeMax clamp the derived hedge delay
	// (0 = 1ms and 1s). Until HedgeMinSamples (0 = 50) upstream latencies
	// have been observed, the delay conservatively sits at HedgeMax.
	HedgeMin        time.Duration
	HedgeMax        time.Duration
	HedgeMinSamples int
	// EjectAfter is the consecutive-transport-failure count that passively
	// ejects a replica from rotation (0 = 3); an ejected replica rejoins
	// only when a /readyz probe succeeds.
	EjectAfter int
	// ProbeInterval is the /readyz probe period (0 = 2s) and ProbeTimeout
	// each probe's deadline (0 = 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// UpstreamTimeout bounds each buffered upstream attempt; streaming
	// attempts are bounded by the client's context only. The default
	// (0 = 150s) sits above the daemon's 2-minute computation deadline so
	// the daemon's own 503 arrives before the proxy gives up.
	UpstreamTimeout time.Duration
	// UpstreamRetries is each replica client's 429/503 retry budget
	// (0 = 2, negative disables): deliberately smaller than the consumer
	// default, because the router's hedging and failover already provide
	// the second chances.
	UpstreamRetries int
	// MaxIdleConns bounds each replica's keep-alive connection pool
	// (0 = 32).
	MaxIdleConns int
}

func (c Config) withDefaults() Config {
	c.Defaults = c.Defaults.WithFallback()
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.99
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = time.Second
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 50
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.UpstreamTimeout == 0 {
		c.UpstreamTimeout = 150 * time.Second
	}
	if c.UpstreamRetries == 0 {
		c.UpstreamRetries = 2
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 32
	}
	return c
}

// replica is one fomodeld upstream: its pooled client plus the health
// state and counters the router keeps about it.
type replica struct {
	url string
	cl  *client.Client
	// probeCl shares cl's connection pool but never retries and has no
	// per-attempt timeout of its own: a warming replica's /readyz 503
	// must come back as a clean "not ready" within ProbeTimeout, not
	// burn the probe window on cl's 429/503 backoff schedule and
	// surface as a misleading context-deadline error.
	probeCl *client.Client

	// healthy is flipped false by EjectAfter consecutive transport
	// failures or a failed /readyz probe, and true only by a successful
	// probe — a replica that is answering requests but still reports
	// "warming" stays out of rotation until its caches are actually hot.
	healthy     atomic.Bool
	consecFails atomic.Int32

	inflight metrics.Gauge
	requests metrics.Counter
	hits     metrics.Counter
	hedges   metrics.Counter
	failures metrics.Counter
	ejects   metrics.Counter
	readmits metrics.Counter
}

// Router routes requests across the replica set. Construct with New;
// all methods are safe for concurrent use.
type Router struct {
	cfg   Config
	log   *slog.Logger
	ring  *ring
	reps  []*replica
	start time.Time

	// upstream feeds the hedge delay: per-attempt upstream latency on
	// sub-millisecond buckets, so the P99 of a cache-hot fleet is a few
	// hundred microseconds, not "somewhere under 1ms".
	upstream *metrics.Histogram
	// latency is the proxy-side end-to-end request histogram for /metrics.
	latency *metrics.Histogram

	hedgeWins  metrics.Counter
	noCands    metrics.Counter
	rrCursor   atomic.Uint64
	reqIDSeq   atomic.Uint64
	reqMu      sync.Mutex
	requests   map[requestKey]*metrics.Counter
	probeGroup sync.WaitGroup

	// mirror tracks name → content hash for workload registrations the
	// proxy has replicated, so registered names canonicalize to the same
	// content-carrying keys on the proxy as on the daemons.
	mirror *workloadMirror
}

type requestKey struct {
	path string
	code int
}

// New builds a router over cfg.Replicas. A nil logger discards logs.
func New(cfg Config, log *slog.Logger) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: at least one replica URL is required")
	}
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	mirror := newWorkloadMirror()
	if cfg.Defaults.Resolver == nil {
		// The mirror doubles as the proxy's name resolver: once a
		// registration has fanned out, the name keys like a daemon's.
		cfg.Defaults.Resolver = mirror
	}
	rt := &Router{
		cfg:      cfg,
		log:      log,
		ring:     newRing(cfg.Replicas, cfg.VNodes),
		reps:     make([]*replica, len(cfg.Replicas)),
		start:    time.Now(),
		upstream: metrics.NewHistogram(metrics.HedgeLatencyBounds()...),
		latency:  metrics.NewHistogram(metrics.DefaultLatencyBounds()...),
		requests: make(map[requestKey]*metrics.Counter),
		mirror:   mirror,
	}
	for i, url := range cfg.Replicas {
		cl := client.NewPooled(url, cfg.MaxIdleConns)
		cl.RequestTimeout = cfg.UpstreamTimeout
		cl.MaxRetries = cfg.UpstreamRetries
		// Per-attempt upstream latency feeds the hedge delay. The hook
		// fires inside the client's retry loop, before any backoff sleep,
		// so Retry-After waits from a shedding replica can never ratchet
		// the observed "service time" toward HedgeMax and suppress
		// hedging long after the episode. Shedding responses themselves
		// (429/503) are excluded too: they describe the replica's refusal
		// latency, not how long a served request takes.
		cl.AttemptObserver = func(d time.Duration, status int, err error) {
			if err == nil && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
				rt.upstream.Observe(d.Seconds())
			}
		}
		probeCl := client.New(url)
		probeCl.HTTPClient = cl.HTTPClient
		probeCl.MaxRetries = -1
		probeCl.RequestTimeout = -1 // the probe context carries the deadline
		rep := &replica{url: url, cl: cl, probeCl: probeCl}
		// Replicas start in rotation; the first probe pass corrects this
		// within one ProbeInterval, and passive ejection corrects it after
		// EjectAfter failed requests even with probes disabled.
		rep.healthy.Store(true)
		rt.reps[i] = rep
	}
	return rt, nil
}

// Start launches the /readyz probe loop (one immediate pass, then every
// ProbeInterval) and returns. The loop stops when ctx is done; Wait
// blocks until it has.
func (rt *Router) Start(ctx context.Context) {
	rt.probeGroup.Add(1)
	go func() {
		defer rt.probeGroup.Done()
		rt.ProbeOnce(ctx)
		tick := time.NewTicker(rt.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				rt.ProbeOnce(ctx)
			}
		}
	}()
}

// Wait blocks until the probe loop started by Start has exited.
func (rt *Router) Wait() { rt.probeGroup.Wait() }

// ProbeOnce probes every replica's /readyz once, concurrently, updating
// rotation membership. Exported so tests (and Start) drive probe passes
// deterministically.
func (rt *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.reps {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// probe asks one replica's /readyz and folds the answer into its health:
// ready re-admits (and resets the failure streak), anything else —
// refusal, timeout, or a 503 "warming" — ejects.
func (rt *Router) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	resp, err := rep.probeCl.DoRaw(pctx, http.MethodGet, "/readyz", nil, nil, false)
	ready := false
	if err == nil {
		//folint:allow(errdrop) best-effort probe-body drain for connection reuse; only the status code matters
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close() //folint:allow(errdrop) read-side close after a drain; there is nothing to act on
		ready = resp.StatusCode == http.StatusOK
	}
	if ready {
		rep.consecFails.Store(0)
		if rep.healthy.CompareAndSwap(false, true) {
			rep.readmits.Inc()
			rt.log.Info("replica readmitted", "replica", rep.url)
		}
		return
	}
	if rep.healthy.CompareAndSwap(true, false) {
		rep.ejects.Inc()
		reason := "not ready"
		if err != nil {
			reason = err.Error()
		}
		rt.log.Info("replica ejected", "replica", rep.url, "reason", reason)
	}
}

// noteFailure records a transport-level failure against rep, ejecting it
// after EjectAfter consecutive ones. Status-level responses (even 500s)
// never land here: the daemon answered, so the daemon is reachable.
func (rt *Router) noteFailure(rep *replica, err error) {
	rep.failures.Inc()
	if int(rep.consecFails.Add(1)) >= rt.cfg.EjectAfter {
		if rep.healthy.CompareAndSwap(true, false) {
			rep.ejects.Inc()
			rt.log.Info("replica ejected", "replica", rep.url, "reason", err.Error())
		}
	}
}

// noteSuccess resets rep's failure streak. It deliberately does not
// re-admit: only a /readyz probe does, so a replica that was ejected
// while warming rejoins when its caches are ready, not merely reachable.
func (rt *Router) noteSuccess(rep *replica) {
	rep.consecFails.Store(0)
}

// candidates returns the replicas to try for key, in preference order:
// the key's ring sequence (or the rotating round-robin order), healthy
// replicas first. With every replica ejected it falls back to the full
// sequence — attempting a probably-dead upstream beats refusing outright
// when there is nothing better. In hash mode the bounded-load check may
// rotate an overloaded owner behind its first un-crowded successor.
func (rt *Router) candidates(key string) []*replica {
	var order []int
	if rt.cfg.RoundRobin {
		n := len(rt.reps)
		start := int(rt.rrCursor.Add(1)-1) % n
		order = make([]int, 0, n)
		for i := 0; i < n; i++ {
			order = append(order, (start+i)%n)
		}
	} else {
		order = rt.ring.sequence(key)
	}
	cands := make([]*replica, 0, len(order))
	for _, i := range order {
		if rt.reps[i].healthy.Load() {
			cands = append(cands, rt.reps[i])
		}
	}
	if len(cands) == 0 {
		for _, i := range order {
			cands = append(cands, rt.reps[i])
		}
		return cands
	}
	if !rt.cfg.RoundRobin && rt.cfg.LoadFactor > 0 && len(cands) > 1 {
		var total int64
		for _, rep := range rt.reps {
			total += rep.inflight.Load()
		}
		// Bounded load: capacity = ceil(c × (total+1) / healthy), counting
		// the request being placed.
		capacity := int64(math.Ceil(rt.cfg.LoadFactor * float64(total+1) / float64(len(cands))))
		for j, rep := range cands {
			if rep.inflight.Load() < capacity {
				if j > 0 {
					picked := cands[j]
					copy(cands[1:j+1], cands[:j])
					cands[0] = picked
				}
				break
			}
		}
	}
	return cands
}

// hedgeDelay derives the current hedge timer from observed upstream
// latency: the configured quantile of the per-attempt histogram, clamped
// to [HedgeMin, HedgeMax]. Zero means "do not hedge" (hedging disabled
// or a single replica); before HedgeMinSamples observations it sits at
// HedgeMax, hedging only clearly-stuck requests until the latency
// profile is learned.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.DisableHedge || len(rt.reps) < 2 {
		return 0
	}
	snap := rt.upstream.Snapshot()
	if snap.Count < int64(rt.cfg.HedgeMinSamples) {
		return rt.cfg.HedgeMax
	}
	q := rt.upstream.Quantile(rt.cfg.HedgeQuantile)
	if math.IsInf(q, 1) {
		return rt.cfg.HedgeMax
	}
	d := time.Duration(q * float64(time.Second))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		d = rt.cfg.HedgeMax
	}
	return d
}

// errNoReplicas means the replica set is empty after filtering — only
// possible when the router was built with zero replicas, which New
// rejects; kept as a guard.
var errNoReplicas = errors.New("no replicas available")

// upstreamResult is one attempt's outcome.
type upstreamResult struct {
	idx    int
	rep    *replica
	resp   *http.Response
	err    error
	hedged bool
}

// forward routes one request to the replica set and returns the winning
// terminal response (any status, body intact — the caller relays it
// verbatim) and the replica that produced it.
//
// The attempt machinery: the key's first candidate is tried immediately;
// a hedge timer armed at the observed-P99 delay launches a concurrent
// attempt at the next candidate (first response wins, loser canceled);
// a transport error with no other attempt in flight fails over to the
// next candidate at once. The hedge timer runs in this goroutine,
// concurrent with any Retry-After backoff inside an attempt's client —
// a shedding replica can stall its own attempt, never the hedge.
func (rt *Router) forward(ctx context.Context, method, path string, body []byte, hdr http.Header, stream bool, key string) (*http.Response, *replica, error) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.noCands.Inc()
		return nil, nil, errNoReplicas
	}
	results := make(chan upstreamResult, len(cands))
	cancels := make([]context.CancelFunc, len(cands))
	next, inflight := 0, 0
	launch := func(hedged bool) {
		idx := next
		rep := cands[idx]
		next++
		inflight++
		actx, cancel := context.WithCancel(ctx)
		cancels[idx] = cancel
		rep.requests.Inc()
		if hedged {
			rep.hedges.Inc()
		}
		rep.inflight.Add(1)
		go func() {
			// Upstream latency is observed per HTTP attempt by the
			// client's AttemptObserver (wired in New), not here: timing
			// the whole DoRaw would fold retry backoff sleeps into the
			// hedge histogram.
			resp, err := rep.cl.DoRaw(actx, method, path, body, hdr, stream)
			rep.inflight.Add(-1)
			results <- upstreamResult{idx: idx, rep: rep, resp: resp, err: err, hedged: hedged}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if d := rt.hedgeDelay(); d > 0 && next < len(cands) {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	for inflight > 0 {
		select {
		case res := <-results:
			inflight--
			if res.err != nil {
				cancels[res.idx]()
				// A canceled attempt (client gone, or a losing hedge
				// being reaped elsewhere) says nothing about the replica.
				if ctx.Err() == nil && !errors.Is(res.err, context.Canceled) {
					rt.noteFailure(res.rep, res.err)
					if firstErr == nil {
						firstErr = res.err
					}
				}
				if inflight > 0 {
					continue
				}
				if err := ctx.Err(); err != nil {
					return nil, nil, err
				}
				if next < len(cands) {
					launch(false)
					continue
				}
				return nil, nil, firstErr
			}

			// Winner. Cancel the other in-flight attempts and drain their
			// results in the background, closing any bodies; tie the
			// winner's per-attempt context to its body so resources are
			// released when the caller finishes relaying.
			rt.noteSuccess(res.rep)
			if res.hedged {
				rt.hedgeWins.Inc()
			}
			for i, c := range cancels {
				if c != nil && i != res.idx {
					c()
				}
			}
			if inflight > 0 {
				go func(n int) {
					for i := 0; i < n; i++ {
						r := <-results
						if r.resp != nil {
							//folint:allow(errdrop) closing a hedge loser's body; its response is already discarded
							r.resp.Body.Close()
						}
					}
				}(inflight)
			}
			res.resp.Body = &cancelOnClose{ReadCloser: res.resp.Body, cancel: cancels[res.idx]}
			return res.resp, res.rep, nil

		case <-hedgeC:
			hedgeC = nil
			// The timer was armed when a spare candidate existed, but a
			// fast transport failure may have consumed it as a failover
			// before the timer fired — with nothing left to hedge at,
			// the firing is a no-op.
			if next < len(cands) {
				launch(true)
			}
		}
	}
	if firstErr == nil {
		firstErr = errNoReplicas
	}
	return nil, nil, firstErr
}

// cancelOnClose releases an attempt's context when the relayed body is
// done, mirroring the client's cancelingBody.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// strictDecode parses b exactly the way the daemon parses request
// bodies: unknown fields and trailing data are errors. The proxy uses it
// only to derive routing keys — a body it cannot decode still gets
// forwarded (routed by its raw bytes) so the daemon's own error response
// stays authoritative.
func strictDecode(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data")
	}
	return nil
}

// rawKey routes an unkeyable body by its bytes; the derivation lives in
// reqkey.Raw so the fallback keyspace is defined next to the canonical
// one it must stay disjoint from.
func rawKey(endpoint string, body []byte) string {
	return reqkey.Raw(endpoint, body)
}

// predictKey derives the /v1/predict routing key — the daemon's own
// response-cache key, normalization included.
func (rt *Router) predictKey(body []byte) string {
	var req server.PredictRequest
	if err := strictDecode(body, &req); err != nil {
		return rawKey("predict", body)
	}
	key, err := server.PredictCacheKey(req, rt.cfg.Defaults)
	if err != nil {
		return rawKey("predict", body)
	}
	return key
}

// sweepKey derives the /v1/sweep routing key, shared with the daemon's
// buffered-sweep cache key.
func (rt *Router) sweepKey(body []byte) string {
	var spec experiments.SweepSpec
	if err := strictDecode(body, &spec); err != nil {
		return rawKey("sweep", body)
	}
	key, err := server.SweepCacheKey(spec, rt.cfg.Defaults)
	if err != nil {
		return rawKey("sweep", body)
	}
	return key
}

// optimizeKey derives the /v1/optimize routing key, shared with the
// daemon's buffered-optimize cache key so repeated searches land on the
// replica already holding the result (and the predict-cache entries its
// evaluations warmed).
func (rt *Router) optimizeKey(body []byte) string {
	var spec optimize.Spec
	if err := strictDecode(body, &spec); err != nil {
		return rawKey("optimize", body)
	}
	key, err := server.OptimizeCacheKey(spec, rt.cfg.Defaults)
	if err != nil {
		return rawKey("optimize", body)
	}
	return key
}

// nextRequestID mints a proxy-scoped request ID: a monotonically
// increasing sequence number under a per-process prefix derived from the
// router's start time, so IDs from proxy restarts do not collide while
// staying cheap and allocation-free to generate.
func (rt *Router) nextRequestID() string {
	return fmt.Sprintf("%x-%x", rt.start.UnixNano(), rt.reqIDSeq.Add(1))
}

// requestCounter returns the live counter for one (path, status) pair.
func (rt *Router) requestCounter(path string, code int) *metrics.Counter {
	rt.reqMu.Lock()
	defer rt.reqMu.Unlock()
	k := requestKey{path: path, code: code}
	c := rt.requests[k]
	if c == nil {
		c = &metrics.Counter{}
		rt.requests[k] = c
	}
	return c
}
