package experiments

import (
	"context"
	"strings"
	"testing"

	"fomodel/internal/core"
)

// smallSuite keeps the simulator-heavy tests fast: three contrasting
// benchmarks at a short trace length.
func smallSuite() *Suite {
	s := NewSuite(60000, 1)
	s.Names = []string{"gzip", "mcf", "vortex"}
	return s
}

func TestSuiteCaching(t *testing.T) {
	s := smallSuite()
	a, err := s.Workload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Workload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("workload not cached")
	}
	if a.Trace.Len() < 60000 {
		t.Fatalf("trace too short: %d", a.Trace.Len())
	}
	if err := a.Inputs.Validate(); err != nil {
		t.Fatalf("derived inputs invalid: %v", err)
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	s := smallSuite()
	if _, err := s.Workload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFigure2Independence(t *testing.T) {
	res, err := Figure2(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The paper's central claim: summing isolated penalties lands close
	// to the combined run. Short traces are noisy; 12% is conservative.
	if res.MeanIndependentErr > 0.12 {
		t.Fatalf("independent approximation off by %v", res.MeanIndependentErr)
	}
	for _, r := range res.Rows {
		if r.CombinedIPC <= 0 || r.IndependentIPC <= 0 || r.CompensatedIPC <= 0 {
			t.Fatalf("non-positive IPC in %+v", r)
		}
	}
	if !strings.Contains(res.Render(), "Figure 2") {
		t.Fatal("render missing title")
	}
}

func TestFigure4And5(t *testing.T) {
	s := smallSuite()
	f4, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Curves) != 3 || len(f4.Windows) == 0 {
		t.Fatal("figure 4 incomplete")
	}
	for name, pts := range f4.Curves {
		for i := 1; i < len(pts); i++ {
			if pts[i].I < pts[i-1].I-1e-9 {
				t.Fatalf("%s: IW curve not monotone at W=%d", name, pts[i].W)
			}
		}
	}
	f5, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f5.Rows {
		if e := abs(relErr(row.FittedI, row.MeasuredI)); e > 0.25 {
			t.Fatalf("%s W=%d: fit error %v too large", row.Name, row.W, e)
		}
	}
	if !strings.Contains(f4.Render(), "W=64") || !strings.Contains(f5.Render(), "vpr") {
		t.Fatal("render incomplete")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	vortex, ok := res.Row("vortex")
	if !ok {
		t.Fatal("vortex missing")
	}
	gzip, _ := res.Row("gzip")
	// The paper's ordering: vortex has the highest beta of the three.
	if vortex.Beta <= gzip.Beta {
		t.Fatalf("vortex beta %v not above gzip %v", vortex.Beta, gzip.Beta)
	}
	if _, ok := res.Row("absent"); ok {
		t.Fatal("phantom row found")
	}
	if !strings.Contains(res.Render(), "alpha") {
		t.Fatal("render incomplete")
	}
}

func TestFigure6Saturation(t *testing.T) {
	res, err := Figure6(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	unlimited := res.CurvesByWidth[0]
	for _, width := range []int{2, 4, 8} {
		pts := res.CurvesByWidth[width]
		last := pts[len(pts)-1]
		if last.I > float64(width)+0.01 {
			t.Fatalf("width-%d curve exceeds its cap: %v", width, last.I)
		}
		// At the smallest window the limited curve follows the ideal one.
		if abs(pts[0].I-unlimited[0].I) > 0.15*unlimited[0].I {
			t.Fatalf("width-%d curve diverges from ideal at W=2", width)
		}
	}
	if !strings.Contains(res.Render(), "unlimited") {
		t.Fatal("render incomplete")
	}
}

func TestFigure8PaperNumbers(t *testing.T) {
	res, err := Figure8(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if abs(res.Drain-2.1) > 0.3 || abs(res.RampUp-2.7) > 0.3 || abs(res.Total-9.7) > 0.5 {
		t.Fatalf("Fig. 8 numbers drain=%.2f ramp=%.2f total=%.2f, paper 2.1/2.7/9.7",
			res.Drain, res.RampUp, res.Total)
	}
	if len(res.Points) == 0 {
		t.Fatal("no transient points")
	}
	if !strings.Contains(res.Render(), "drain") {
		t.Fatal("render incomplete")
	}
}

func TestFigure9PenaltyBounds(t *testing.T) {
	res, err := Figure9(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Paper: the penalty exceeds the front-end depth, and a 9-stage
		// front end costs more than a 5-stage one.
		if row.SimPenalty5 <= 5 {
			t.Errorf("%s: dP=5 penalty %v not above the pipeline depth", row.Name, row.SimPenalty5)
		}
		if row.SimPenalty9 <= row.SimPenalty5 {
			t.Errorf("%s: dP=9 penalty %v not above dP=5 %v", row.Name, row.SimPenalty9, row.SimPenalty5)
		}
		if row.SimPenalty5 > 25 {
			t.Errorf("%s: dP=5 penalty %v implausibly large", row.Name, row.SimPenalty5)
		}
	}
	if !strings.Contains(res.Render(), "model dP=9") {
		t.Fatal("render incomplete")
	}
}

func TestFigure10And12Shapes(t *testing.T) {
	s := smallSuite()
	f10, err := Figure10(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Points) == 0 {
		t.Fatal("figure 10 empty")
	}
	f12, err := Figure12(s)
	if err != nil {
		t.Fatal(err)
	}
	// The d-miss transient must idle for most of ΔD and recover.
	zeros := 0
	for _, p := range f12.Points {
		if p.Issue == 0 {
			zeros++
		}
	}
	if zeros < f12.MissDelay/2 {
		t.Fatalf("d-miss transient idles only %d cycles of %d", zeros, f12.MissDelay)
	}
	if !strings.Contains(f10.Render(), "Figure 10") || !strings.Contains(f12.Render(), "Figure 12") {
		t.Fatal("render incomplete")
	}
}

func TestFigure11DepthIndependence(t *testing.T) {
	s := smallSuite()
	s.Names = []string{"vortex"} // the I-cache-heavy benchmark
	res, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Misses5 < 200 {
		t.Fatalf("vortex produced only %d I-misses; test needs pressure", row.Misses5)
	}
	if abs(row.SimPenalty5-row.SimPenalty9) > 1.5 {
		t.Fatalf("penalty depends on depth: %v vs %v", row.SimPenalty5, row.SimPenalty9)
	}
	if abs(row.SimPenalty5-float64(res.MissDelay)) > 3 {
		t.Fatalf("penalty %v, want ≈ miss delay %d", row.SimPenalty5, res.MissDelay)
	}
}

func TestFigure14ModelTracksSim(t *testing.T) {
	res, err := Figure14(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.LongMisses < 50 {
			continue // too noisy to judge
		}
		if e := abs(relErr(row.ModelPenalty, row.SimPenalty)); e > 0.45 {
			t.Errorf("%s: model penalty %v vs sim %v (err %v)", row.Name, row.ModelPenalty, row.SimPenalty, e)
		}
		// The serialized (isolated) penalty approaches ΔD − rob_fill.
		if row.IsolatedPenalty < 120 || row.IsolatedPenalty > 215 {
			t.Errorf("%s: isolated penalty %v outside [ΔD−rob_fill, ΔD]", row.Name, row.IsolatedPenalty)
		}
	}
	if !strings.Contains(res.Render(), "eq.8") {
		t.Fatal("render incomplete")
	}
}

func TestFigure15HeadlineAccuracy(t *testing.T) {
	res, err := Figure15(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	// Short traces are noisier than the 500k-instruction runs reported
	// in EXPERIMENTS.md (compulsory warm-region long misses are a much
	// larger fraction of a 60k-instruction run, and this suite picks the
	// three hardest benchmarks): the paper's 5.8% average / 13% worst
	// becomes a generous 15% / 25% here.
	if res.MeanAbsErr > 0.15 {
		t.Fatalf("mean CPI error %v", res.MeanAbsErr)
	}
	if res.MaxAbsErr > 0.25 {
		t.Fatalf("worst CPI error %v on %s", res.MaxAbsErr, res.WorstBench)
	}
	if !strings.Contains(res.Render(), "paper 5.8%") {
		t.Fatal("render incomplete")
	}
}

func TestFigure16StackStructure(t *testing.T) {
	res, err := Figure16(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	var mcf, vortex Figure15Row
	for _, row := range res.Rows {
		switch row.Name {
		case "mcf":
			mcf = row
		case "vortex":
			vortex = row
		}
	}
	// mcf is dominated by long data misses; vortex by the I-cache.
	if mcf.Estimate.DCacheCPI/mcf.Estimate.CPI < 0.4 {
		t.Fatalf("mcf D-cache share %v, want dominant", mcf.Estimate.DCacheCPI/mcf.Estimate.CPI)
	}
	if vortex.Estimate.ICacheShortCPI <= mcf.Estimate.ICacheShortCPI {
		t.Fatal("vortex should have the larger I-cache component")
	}
	if !strings.Contains(res.Render(), "D$ share") {
		t.Fatal("render incomplete")
	}
}

func TestFigure17TrendShapes(t *testing.T) {
	res, err := Figure17(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	opt3 := res.Optimal[3]
	if opt3.Depth < 40 || opt3.Depth > 75 {
		t.Fatalf("width-3 optimum %d, paper ≈55", opt3.Depth)
	}
	if res.Optimal[8].Depth >= res.Optimal[2].Depth {
		t.Fatal("optimum should move shallower with width")
	}
	if !strings.Contains(res.Render(), "optimal depths") {
		t.Fatal("render incomplete")
	}
}

func TestFigure18Quadratic(t *testing.T) {
	res, err := Figure18(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Fractions {
		ratio := res.Required[8][i].InstrBetweenMispredicts / res.Required[4][i].InstrBetweenMispredicts
		if ratio < 3 || ratio > 5.5 {
			t.Fatalf("width 4→8 requirement ratio %v at f=%v, want ≈4", ratio, res.Fractions[i])
		}
	}
	if !strings.Contains(res.Render(), "width 16") {
		t.Fatal("render incomplete")
	}
}

func TestFigure19Peaks(t *testing.T) {
	res, err := Figure19(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	peak := func(width int) float64 {
		p := 0.0
		for _, pt := range res.Traces[width] {
			if pt.Issue > p {
				p = pt.Issue
			}
		}
		return p
	}
	// The paper's observation: 100 instructions between mispredictions
	// barely reach the width at 4 and stay well short at 8.
	if p := peak(4); p < 3.7 || p > 4 {
		t.Fatalf("width-4 peak %v, want ≈4", p)
	}
	if p := peak(8); p < 5.5 || p > 7.5 {
		t.Fatalf("width-8 peak %v, want ≈6–7", p)
	}
	if !strings.Contains(res.Render(), "width 8") {
		t.Fatal("render incomplete")
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is slow")
	}
	s := smallSuite()
	s.Names = []string{"gzip"}
	reg := DefaultRegistry()
	if len(reg.Labels()) < 16 {
		t.Fatalf("registry has %d experiments", len(reg.Labels()))
	}
	for _, label := range reg.Labels() {
		res, err := reg[label](context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Render() == "" {
			t.Fatalf("%s: empty render", label)
		}
	}
}

func TestEstimateHelper(t *testing.T) {
	s := smallSuite()
	w, err := s.Workload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if est.CPI <= est.SteadyCPI {
		t.Fatal("estimate lost its miss-event components")
	}
	var zero core.Estimate
	if est == zero {
		t.Fatal("zero estimate")
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := &table{
		header: []string{"a", "b"},
		rows:   [][]string{{"x,y", `say "hi"`}},
	}
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV quoting wrong:\n got %q\nwant %q", csv, want)
	}
}
