// Package predictor implements the branch direction predictors used by the
// simulators: the paper's 8K-entry gshare, plus bimodal, static, and ideal
// predictors for the "everything ideal" configurations and for baselines.
package predictor

import "fmt"

// Predictor predicts conditional branch directions. Predict returns the
// predicted direction for the branch at pc; Update trains the predictor
// with the actual outcome. Implementations are deterministic and not safe
// for concurrent use.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved outcome of the branch
	// at pc.
	Update(pc uint64, taken bool)
	// Name identifies the predictor for reports.
	Name() string
}

// Kind selects a predictor family for Spec.
type Kind int

const (
	// KindGshare is the paper's global-history predictor.
	KindGshare Kind = iota
	// KindBimodal is a PC-indexed counter table.
	KindBimodal
	// KindAlwaysTaken and KindAlwaysNotTaken are static predictors.
	KindAlwaysTaken
	KindAlwaysNotTaken
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGshare:
		return "gshare"
	case KindBimodal:
		return "bimodal"
	case KindAlwaysTaken:
		return "always-taken"
	case KindAlwaysNotTaken:
		return "always-not-taken"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec describes a predictor configuration that can be instantiated
// repeatedly (the functional analyzer and the simulator each need a fresh
// instance trained from scratch).
type Spec struct {
	Kind Kind
	// IndexBits sizes the table for gshare/bimodal; ignored by the
	// static predictors.
	IndexBits uint
}

// DefaultSpec returns the paper's 8K gshare.
func DefaultSpec() Spec { return Spec{Kind: KindGshare, IndexBits: 13} }

// New instantiates a fresh, untrained predictor from the spec.
func (s Spec) New() (Predictor, error) {
	switch s.Kind {
	case KindGshare:
		return NewGshare(s.IndexBits)
	case KindBimodal:
		return NewBimodal(s.IndexBits)
	case KindAlwaysTaken:
		return Static{Taken: true}, nil
	case KindAlwaysNotTaken:
		return Static{}, nil
	default:
		return nil, fmt.Errorf("predictor: unknown kind %d", int(s.Kind))
	}
}

// counter is a 2-bit saturating counter; values 0..1 predict not-taken,
// 2..3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Gshare is the classic global-history predictor: the PC is XORed with a
// global history register to index a table of 2-bit counters. The paper's
// baseline is an 8K-entry (13-bit index) gshare.
type Gshare struct {
	table     []counter
	history   uint64
	histBits  uint
	indexMask uint64
}

// NewGshare builds a gshare with 2^indexBits counters and indexBits of
// global history.
func NewGshare(indexBits uint) (*Gshare, error) {
	if indexBits == 0 || indexBits > 28 {
		return nil, fmt.Errorf("predictor: gshare index bits %d out of range [1,28]", indexBits)
	}
	g := &Gshare{
		table:     make([]counter, 1<<indexBits),
		histBits:  indexBits,
		indexMask: 1<<indexBits - 1,
	}
	// Weakly taken initial state converges quickly either way.
	for i := range g.table {
		g.table[i] = 2
	}
	return g, nil
}

// DefaultGshare returns the paper's 8K-entry gshare.
func DefaultGshare() *Gshare {
	g, err := NewGshare(13)
	if err != nil {
		// 13 is statically valid; reaching here is a programming error.
		panic(err)
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	// Drop the instruction alignment bits so neighbouring branches spread
	// across the table.
	return ((pc >> 2) ^ g.history) & g.indexMask
}

// Predict returns the predicted direction for pc.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update trains the counter and shifts the outcome into the history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= g.indexMask
}

// Name identifies the predictor.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%dk", len(g.table)/1024) }

// Bimodal is a PC-indexed table of 2-bit counters with no history.
type Bimodal struct {
	table     []counter
	indexMask uint64
}

// NewBimodal builds a bimodal predictor with 2^indexBits counters.
func NewBimodal(indexBits uint) (*Bimodal, error) {
	if indexBits == 0 || indexBits > 28 {
		return nil, fmt.Errorf("predictor: bimodal index bits %d out of range [1,28]", indexBits)
	}
	b := &Bimodal{table: make([]counter, 1<<indexBits), indexMask: 1<<indexBits - 1}
	for i := range b.table {
		b.table[i] = 2
	}
	return b, nil
}

// Predict returns the predicted direction for pc.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[(pc>>2)&b.indexMask].taken() }

// Update trains the counter for pc.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := (pc >> 2) & b.indexMask
	b.table[i] = b.table[i].update(taken)
}

// Name identifies the predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%dk", len(b.table)/1024) }

// Static predicts a fixed direction for every branch.
type Static struct {
	// Taken is the constant prediction.
	Taken bool
}

// Predict returns the constant direction.
func (s Static) Predict(uint64) bool { return s.Taken }

// Update is a no-op for a static predictor.
func (s Static) Update(uint64, bool) {}

// Name identifies the predictor.
func (s Static) Name() string {
	if s.Taken {
		return "always-taken"
	}
	return "always-not-taken"
}

// Ideal is an oracle: the simulator feeds it the actual outcome through
// SetOutcome before asking for the prediction. It never mispredicts.
type Ideal struct {
	next bool
}

// SetOutcome primes the oracle with the actual direction of the branch
// about to be predicted.
func (i *Ideal) SetOutcome(taken bool) { i.next = taken }

// Predict returns the primed outcome.
func (i *Ideal) Predict(uint64) bool { return i.next }

// Update is a no-op for the oracle.
func (i *Ideal) Update(uint64, bool) {}

// Name identifies the predictor.
func (i *Ideal) Name() string { return "ideal" }

// Stats accumulates prediction accuracy over a run.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
}

// Record notes one predicted/actual pair.
func (s *Stats) Record(predicted, actual bool) {
	s.Branches++
	if predicted != actual {
		s.Mispredicts++
	}
}

// MispredictRate returns Mispredicts/Branches, or 0 with no branches.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}
