package core_test

import (
	"fmt"

	"fomodel/internal/core"
)

// The model in a nutshell: describe the machine, hand it the trace
// statistics, read off the CPI stack.
func ExampleMachine_Estimate() {
	machine := core.DefaultMachine() // ΔP=5, width 4, window 48, ROB 128

	inputs := core.Inputs{
		Name:                "example",
		Alpha:               1.0, // the square-law IW characteristic
		Beta:                0.5,
		AvgLatency:          1.0,
		MispredictsPerInstr: 0.01,  // 1-in-5 branches, 5% mispredicted
		ICacheShortPerInstr: 0.002, // L1-I misses hitting L2
		DCacheLongPerInstr:  0.001, // L2 data misses
		OverlapFactor:       0.8,   // eq. (8): some of them overlap
	}

	est, err := machine.Estimate(inputs, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("steady-state CPI %.3f\n", est.SteadyCPI)
	fmt.Printf("branch penalty   %.1f cycles/event\n", est.BranchPenalty)
	fmt.Printf("I-cache penalty  %.1f cycles/event\n", est.ICacheShortPenalty)
	fmt.Printf("D-cache penalty  %.1f cycles/event\n", est.DCachePenalty)
	fmt.Printf("total CPI        %.3f\n", est.CPI)
	// Output:
	// steady-state CPI 0.250
	// branch penalty   7.4 cycles/event
	// I-cache penalty  8.6 cycles/event
	// D-cache penalty  160.0 cycles/event
	// total CPI        0.501
}

// The transient machinery behind Fig. 8: drain, refill, ramp-up.
func ExampleIWCurve_Drain() {
	curve := core.IWCurve{Alpha: 1, Beta: 0.5, L: 1, Width: 4}
	drain := curve.Drain(48, 4)
	ramp := curve.RampUp(4, 0.05)
	fmt.Printf("drain %.1f + front end 5 + ramp-up %.1f ≈ %.1f cycles per isolated misprediction\n",
		drain, ramp, drain+5+ramp)
	// Output:
	// drain 2.1 + front end 5 + ramp-up 2.7 ≈ 9.7 cycles per isolated misprediction
}

// The §6.1 trend study: absolute performance peaks at a deep front end.
func ExamplePipelineDepthStudy() {
	depths := make([]int, 100)
	for i := range depths {
		depths[i] = i + 1
	}
	pts, err := core.PipelineDepthStudy(3, depths)
	if err != nil {
		panic(err)
	}
	opt := core.OptimalDepth(pts)
	fmt.Printf("width 3 optimum: %d front-end stages\n", opt.Depth)
	// Output:
	// width 3 optimum: 57 front-end stages
}
