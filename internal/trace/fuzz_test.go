package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the binary trace decoder against arbitrary input: it
// must either return an error or a trace that passes validation — never
// panic or return garbage.
func FuzzRead(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	var buf bytes.Buffer
	if err := Write(&buf, validTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("FOT1"))
	f.Add([]byte{})
	truncatedCount := append([]byte(nil), valid...)
	truncatedCount[7] = 0xff // corrupt the name length
	f.Add(truncatedCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read returned an invalid trace: %v", err)
		}
		// A decoded trace must re-encode and decode to itself.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Len() != tr.Len() || tr2.Name != tr.Name {
			t.Fatal("round trip changed the trace")
		}
	})
}
