package reqkeycheck_test

import (
	"testing"

	"fomodel/internal/lint/linttest"
	"fomodel/internal/lint/reqkeycheck"
)

// TestReqkeycheck pins the golden diagnostics on a serving package.
func TestReqkeycheck(t *testing.T) {
	linttest.Run(t, reqkeycheck.Analyzer, "testdata/src/reqkeycheck", "fomodel/internal/server")
}

// TestReqkeycheckScoped requires silence outside the server/router
// packages: the artifact store and experiments build their own
// content keys by design.
func TestReqkeycheckScoped(t *testing.T) {
	linttest.Run(t, reqkeycheck.Analyzer, "testdata/src/exempt", "fomodel/internal/artifact")
}
