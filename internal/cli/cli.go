// Package cli implements the command-line tools (traceinfo, fosim,
// fomodel, experiments) as testable functions: each takes its argument
// list and an output writer and returns an error instead of exiting, so
// the thin mains in cmd/ stay untested-by-necessity while the behaviour
// lives under test here.
package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"fomodel/internal/client"
	"fomodel/internal/core"
	"fomodel/internal/isa"
	"fomodel/internal/iw"
	"fomodel/internal/optimize"
	"fomodel/internal/server"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

// loadWorkloads resolves the tool's workload selection: an explicit
// -profile file, named profiles, or all profiles.
func loadWorkloads(profilePath string, names []string, n int, seed uint64) ([]*trace.Trace, error) {
	if profilePath != "" {
		f, err := os.Open(profilePath)
		if err != nil {
			return nil, err
		}
		p, err := workload.ReadProfile(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		g, err := workload.NewGenerator(p, seed)
		if err != nil {
			return nil, err
		}
		t, err := g.Generate(n)
		if err != nil {
			return nil, err
		}
		return []*trace.Trace{t}, nil
	}
	if len(names) == 0 {
		names = workload.Names()
	}
	traces := make([]*trace.Trace, 0, len(names))
	for _, name := range names {
		t, err := workload.Generate(name, n, seed)
		if err != nil {
			return nil, err
		}
		traces = append(traces, t)
	}
	return traces, nil
}

// Traceinfo implements cmd/traceinfo: the model-facing statistics of each
// workload.
func Traceinfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(out)
	n := fs.Int("n", 200000, "dynamic instructions per workload")
	seed := fs.Uint64("seed", 1, "workload generation seed")
	profile := fs.String("profile", "", "JSON profile file instead of named workloads")
	if err := fs.Parse(args); err != nil {
		return err
	}
	traces, err := loadWorkloads(*profile, fs.Args(), *n, *seed)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\talpha\tbeta\tR2\tL\tbr/instr\tmisp%\tiL1miss/ki\tiL2miss/ki\tdShort/ki\tdLong/ki\toverlap")
	for _, t := range traces {
		points, err := iw.Characteristic(t, iw.DefaultWindows(), iw.Options{})
		if err != nil {
			return err
		}
		law, err := iw.Fit(points)
		if err != nil {
			return err
		}
		cfg := stats.DefaultConfig()
		cfg.Warmup = true
		sum, err := stats.Analyze(t, cfg)
		if err != nil {
			return err
		}
		ki := float64(sum.Instructions) / 1000
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.3f\t%.2f\t%.3f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			t.Name, law.Alpha, law.Beta, law.R2, sum.AvgLatency,
			float64(sum.Branches)/float64(sum.Instructions),
			100*sum.MispredictRate(),
			float64(sum.ICacheShort)/ki, float64(sum.ICacheLong)/ki,
			float64(sum.DCacheShort)/ki, float64(sum.DCacheLong)/ki,
			sum.OverlapFactor())
	}
	return tw.Flush()
}

// machineFlags registers the shared machine-parameter flags, including
// the §7 extensions (clusters, fetch buffer, TLB, FU limits). They are
// the flag-facing form of server.MachineSpec, so the CLI tools and the
// serving daemon describe machines identically.
type machineFlags struct {
	width, depth, window, rob *int
	clusters, bypass, fetbuf  *int
	tlb                       *bool
	fu                        *string
}

func addMachineFlags(fs *flag.FlagSet) machineFlags {
	return machineFlags{
		width:    fs.Int("width", 4, "fetch/dispatch/issue/retire width"),
		depth:    fs.Int("depth", 5, "front-end pipeline depth"),
		window:   fs.Int("window", 48, "issue window size"),
		rob:      fs.Int("rob", 128, "reorder buffer size"),
		clusters: fs.Int("clusters", 1, "issue window partitions (>1 adds bypass latency)"),
		bypass:   fs.Int("bypass", 1, "cross-cluster bypass latency in cycles"),
		fetbuf:   fs.Int("fetch-buffer", 0, "fetch buffer entries beyond the pipeline"),
		tlb:      fs.Bool("tlb", false, "add the default 64-entry data TLB"),
		fu:       fs.String("fu", "", "per-class issue limits, e.g. mul=1,load=2"),
	}
}

// parseFUCounts parses "class=count" pairs.
func parseFUCounts(s string) ([isa.NumClasses]int, error) {
	return server.ParseFUCounts(s)
}

// spec projects the parsed flags onto the shared machine description.
func (m machineFlags) spec() server.MachineSpec {
	return server.MachineSpec{
		Width:       *m.width,
		Depth:       *m.depth,
		Window:      *m.window,
		ROB:         *m.rob,
		Clusters:    *m.clusters,
		Bypass:      *m.bypass,
		FetchBuffer: *m.fetbuf,
		TLB:         *m.tlb,
		FU:          *m.fu,
	}
}

func (m machineFlags) simConfig() (uarch.Config, error) { return m.spec().SimConfig() }

func (m machineFlags) machine() (core.Machine, error) { return m.spec().Machine() }

// Fosim implements cmd/fosim: the detailed simulator.
func Fosim(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fosim", flag.ContinueOnError)
	fs.SetOutput(out)
	n := fs.Int("n", 500000, "dynamic instructions per workload")
	seed := fs.Uint64("seed", 1, "workload generation seed")
	mf := addMachineFlags(fs)
	idealI := fs.Bool("ideal-icache", false, "disable I-cache stalls")
	idealD := fs.Bool("ideal-dcache", false, "disable D-cache miss latencies")
	idealP := fs.Bool("ideal-predictor", false, "disable branch misprediction breaks")
	dump := fs.String("dump", "", "write the generated trace to this file and exit")
	load := fs.String("load", "", "simulate a trace file instead of generating one")
	profile := fs.String("profile", "", "JSON profile file instead of named workloads")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := mf.simConfig()
	if err != nil {
		return err
	}
	cfg.IdealICache = *idealI
	cfg.IdealDCache = *idealD
	cfg.IdealPredictor = *idealP

	var traces []*trace.Trace
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		t, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		traces = []*trace.Trace{t}
	default:
		var err error
		traces, err = loadWorkloads(*profile, fs.Args(), *n, *seed)
		if err != nil {
			return err
		}
	}

	if *dump != "" {
		if len(traces) != 1 {
			return fmt.Errorf("-dump requires exactly one workload, got %d", len(traces))
		}
		f, err := os.Create(*dump)
		if err != nil {
			return err
		}
		if err := trace.Write(f, traces[0]); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tinstrs\tcycles\tIPC\tCPI\tmisp\tiShort\tiLong\tdShort\tdLong\tavgWin\tavgROB")
	for _, t := range traces {
		r, err := uarch.Simulate(t, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\n",
			t.Name, r.Instructions, r.Cycles, r.IPC(), r.CPI(),
			r.Mispredicts, r.ICacheShort, r.ICacheLong, r.DCacheShort, r.DCacheLong,
			r.AvgWindowOccupancy(), r.AvgROBOccupancy())
	}
	return tw.Flush()
}

// Fomodel implements cmd/fomodel: the analytical model, optionally
// validated against the simulator. With -remote it computes nothing
// locally: the workloads are evaluated by a fomodeld daemon through one
// /v1/batch round trip, and the output — table or -json — is identical
// to the local run's, because the daemon's per-item bodies are pinned
// byte-equal to `fomodel -json` output. ctx bounds the remote call, so
// an interrupt cancels an in-flight batch instead of leaving it to the
// request timeout.
func Fomodel(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fomodel", flag.ContinueOnError)
	fs.SetOutput(out)
	n := fs.Int("n", 500000, "dynamic instructions per workload")
	seed := fs.Uint64("seed", 1, "workload generation seed")
	sim := fs.Bool("sim", false, "also run the detailed simulator and report model error")
	jsonOut := fs.Bool("json", false, "emit one JSON object per workload instead of the table")
	branchMode := fs.String("branch-mode", "midpoint", "branch penalty derivation: midpoint|isolated|measured")
	mf := addMachineFlags(fs)
	profile := fs.String("profile", "", "JSON profile file instead of named workloads")
	remote := fs.String("remote", "", "fomodeld base URL (e.g. http://127.0.0.1:8750): predict via the daemon instead of computing locally")
	remoteTimeout := fs.Duration("remote-timeout", client.DefaultRequestTimeout, "per-request deadline for -remote calls")
	optimizePath := fs.String("optimize", "", `JSON optimize-spec file ("-" = stdin): search the design space instead of predicting`)
	dumpProfile := fs.String("dump-profile", "", "print the named built-in workload's profile JSON (editable, registerable via POST /v1/workloads/{name}) and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dumpProfile != "" {
		prof, err := workload.ByName(*dumpProfile)
		if err != nil {
			return fmt.Errorf("fomodel: %w", err)
		}
		body, err := server.EncodeIndented(prof)
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	}

	if *optimizePath != "" {
		return runOptimize(ctx, *optimizePath, *jsonOut, *remote, *remoteTimeout, *n, *seed, out)
	}

	mode, err := server.ParseBranchMode(*branchMode)
	if err != nil {
		return fmt.Errorf("fomodel: unknown branch mode %q", *branchMode)
	}

	var enc *json.Encoder
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	switch {
	case *jsonOut:
		enc = json.NewEncoder(out)
		enc.SetIndent("", "  ")
	case *sim:
		fmt.Fprintln(tw, "bench\tidealCPI\tbrCPI\tiL1CPI\tiL2CPI\tdCPI\tmodelCPI\tsimCPI\terr%")
	default:
		fmt.Fprintln(tw, "bench\tidealCPI\tbrCPI\tiL1CPI\tiL2CPI\tdCPI\tmodelCPI")
	}
	// emit renders one prediction record, identically for local and
	// remote computations.
	emit := func(record server.PredictRecord) error {
		if enc != nil {
			return enc.Encode(record)
		}
		est := record.Estimate
		if !*sim {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				record.Bench, est.SteadyCPI, est.BranchCPI, est.ICacheShortCPI, est.ICacheLongCPI, est.DCacheCPI, est.CPI)
			return nil
		}
		simCPI := *record.SimCPI
		errPct := 100 * (est.CPI - simCPI) / simCPI
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%+.1f\n",
			record.Bench, est.SteadyCPI, est.BranchCPI, est.ICacheShortCPI, est.ICacheLongCPI, est.DCacheCPI, est.CPI, simCPI, errPct)
		return nil
	}

	if *remote != "" {
		if *profile != "" {
			return fmt.Errorf("fomodel: -remote does not take -profile files; register the profile with POST /v1/workloads/{name} and pass the registered name instead")
		}
		names := fs.Args()
		if len(names) == 0 {
			names = workload.Names()
		}
		items := make([]server.PredictRequest, len(names))
		for i, name := range names {
			items[i] = server.PredictRequest{
				Bench: name, N: *n, Seed: *seed,
				Machine: mf.spec(), BranchMode: *branchMode, Sim: *sim,
			}
		}
		cl := client.New(*remote)
		cl.RequestTimeout = *remoteTimeout
		batch, err := cl.Batch(ctx, items)
		if err != nil {
			return fmt.Errorf("fomodel: %w", err)
		}
		for i, item := range batch {
			if item.Status != 200 {
				return fmt.Errorf("fomodel: %s: %s (HTTP %d)", names[i], item.Error, item.Status)
			}
			if *jsonOut {
				// The item body already is the daemon's exact indented
				// JSON — identical to what enc would produce locally.
				if _, err := io.WriteString(out, item.Body); err != nil {
					return err
				}
				continue
			}
			var record server.PredictRecord
			if err := json.Unmarshal([]byte(item.Body), &record); err != nil {
				return fmt.Errorf("fomodel: %s: bad daemon response: %w", names[i], err)
			}
			if err := emit(record); err != nil {
				return err
			}
		}
		return tw.Flush()
	}

	traces, err := loadWorkloads(*profile, fs.Args(), *n, *seed)
	if err != nil {
		return err
	}

	machine, err := mf.machine()
	if err != nil {
		return err
	}
	ucfg, err := mf.simConfig()
	if err != nil {
		return err
	}

	// The full per-trace pipeline is server.Predict — the same function
	// the daemon's /v1/predict handler calls, which is what keeps a
	// server response byte-equivalent in content to this tool's output.
	for _, t := range traces {
		record, err := server.Predict(t, machine, ucfg, mode, *sim, nil)
		if err != nil {
			return err
		}
		if err := emit(record); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// runOptimize implements `fomodel -optimize`: a design-space search over
// the machine parameters, driven by a JSON spec. Locally it runs the
// search through an in-process server.Server — the exact code a fomodeld
// daemon runs for /v1/optimize — so local -json output is byte-identical
// to what -remote fetches from a daemon with the same trace defaults.
func runOptimize(ctx context.Context, path string, jsonOut bool, remote string, remoteTimeout time.Duration, n int, seed uint64, out io.Writer) error {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var spec optimize.Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("fomodel: bad optimize spec: %w", err)
	}

	if remote != "" {
		cl := client.New(remote)
		cl.RequestTimeout = remoteTimeout
		body, err := cl.OptimizeRaw(ctx, spec)
		if err != nil {
			return fmt.Errorf("fomodel: %w", err)
		}
		if jsonOut {
			_, err := out.Write(body)
			return err
		}
		var resp server.OptimizeResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("fomodel: bad daemon response: %w", err)
		}
		_, err = io.WriteString(out, resp.Render)
		return err
	}

	// The spec's own deadline applies locally too, mirroring the daemon.
	if spec.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	s := server.New(server.Config{N: n, Seed: seed}, nil)
	res, err := s.Optimize(ctx, spec, nil)
	if err != nil {
		return fmt.Errorf("fomodel: %w", err)
	}
	if jsonOut {
		body, err := server.EncodeIndented(server.OptimizeResponse{Result: res, Render: res.Render(), CSV: res.CSV()})
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	}
	_, err = io.WriteString(out, res.Render())
	return err
}
